//! Minimal in-tree stand-in for the [Criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched; this shim implements exactly the API surface the workspace's six
//! benches use — `Criterion`, `BenchmarkGroup`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!`/`criterion_main!`
//! macros — with a small wall-clock measurement loop behind them. Timings it
//! reports are indicative, not statistically rigorous; swap the manifest
//! entry back to the crates.io package for publication-grade numbers.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Target measurement budget per benchmark. Deliberately tiny: the tier-1
/// gate only requires `cargo bench --no-run` to compile, so an accidental
/// full `cargo bench` should stay fast.
const MEASUREMENT_BUDGET: Duration = Duration::from_millis(200);
const WARMUP_ITERS: u64 = 3;

/// Entry point handed to benchmark functions; hands out benchmark groups.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { _parent: self, name, throughput: None }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_benchmark_id().label, None, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing throughput/sampling settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's fixed measurement budget
    /// ignores the requested sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares how much work one iteration performs, so per-element rates
    /// can be reported.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, self.throughput, &mut f);
        self
    }

    /// Benchmarks a closure that borrows a per-benchmark input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.throughput, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group. (The real crate flushes reports here.)
    pub fn finish(self) {}
}

/// Identifies one benchmark: a function name, a parameter, or both.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark named `name`, parameterised by `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// A benchmark identified only by its parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Conversion into [`BenchmarkId`], so benchmark entry points accept plain
/// strings as well as explicit ids.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self.to_owned() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Work performed per iteration, used to derive throughput rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements (records, items, ...).
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive so the optimiser
    /// cannot discard the measured work.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        // Calibrate: time one iteration, then size the batch to fit the
        // measurement budget.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (MEASUREMENT_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = batch;
    }
}

fn run_one<F>(label: &str, throughput: Option<Throughput>, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
    f(&mut b);
    if b.iters == 0 {
        println!("  {label}: no measurement (Bencher::iter never called)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(", {:.3e} elem/s", n as f64 / per_iter),
        Throughput::Bytes(n) => format!(", {:.3e} B/s", n as f64 / per_iter),
    });
    println!(
        "  {label}: {:.3} us/iter ({} iters){}",
        per_iter * 1e6,
        b.iters,
        rate.unwrap_or_default()
    );
}

/// Declares a benchmark group function invoking each target with a fresh
/// [`Criterion`], mirroring the real macro's simple `(name, targets...)`
/// form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo passes harness flags (e.g. `--bench`) that the shim
            // does not interpret.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| {
            b.iter(|| (0..4u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &n| {
            b.iter(|| n * n);
        });
        group.finish();
    }
}
