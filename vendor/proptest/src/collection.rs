//! Collection strategies (`vec`).

use std::fmt;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::{Rejection, TestRng};

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { min: exact, max: exact }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range {r:?}");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range {r:?}");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: fmt::Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Rejection> {
        let len = self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
