//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// Declares property tests: each `fn name(binding in strategy, ...) { body }`
/// item becomes a `#[test]` running the body over many generated inputs.
///
/// An optional leading `#![proptest_config(...)]` sets the configuration
/// for every test in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($binding:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($config);
            let strategy = ($($strategy,)+);
            runner.run(
                &strategy,
                |($($binding,)+)| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
}

/// Like `assert!`, but fails the current property case (with the generated
/// input attached) instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!`, but fails the current property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Like `assert_ne!`, but fails the current property case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current generated input (it does not count toward the case
/// budget) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
