//! The [`Strategy`] trait, its combinators, and strategy implementations
//! for ranges and tuples.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::{Rejection, TestRng};

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a generator. All combinators the workspace tests use are provided.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generates one value, or [`Rejection`] when a filter refused the
    /// candidate (the runner retries).
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Discards generated values failing `predicate`; `reason` labels the
    /// filter in diagnostics.
    fn prop_filter<F>(self, reason: impl fmt::Display, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, reason: reason.to_string(), predicate }
    }

    /// Builds a recursive strategy: `self` generates leaves and `branch`
    /// wraps an inner strategy into one more level, applied `depth` times.
    /// `_desired_size` and `_expected_branch_size` are accepted for API
    /// compatibility and ignored (recursion is bounded by `depth` alone).
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strategy = self.boxed();
        for _ in 0..depth {
            strategy = branch(strategy).boxed();
        }
        strategy
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        self.0.generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        self.source.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<S2::Value, Rejection> {
        let seed = self.source.generate(rng)?;
        (self.f)(seed).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    #[allow(dead_code)] // diagnostic label, mirrored from the real API
    reason: String,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        // Retry locally a few times so a mildly selective filter does not
        // reject the whole composite value it is embedded in.
        for _ in 0..16 {
            let candidate = self.source.generate(rng)?;
            if (self.predicate)(&candidate) {
                return Ok(candidate);
            }
        }
        Err(Rejection)
    }
}

/// Uniform choice between strategies of a common value type; the engine
/// behind `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug> Union<T> {
    /// A union over `options`. Must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                assert!(self.start < self.end, "empty range strategy {self:?}");
                let span = (self.end as i128 - self.start as i128) as u128;
                Ok((self.start as i128 + rng.below_u128(span) as i128) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                assert!(self.start() <= self.end(), "empty range strategy {self:?}");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                Ok((*self.start() as i128 + rng.below_u128(span) as i128) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                Ok(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Uniform choice among strategies producing one value type.
///
/// Each arm is boxed, so arms of different strategy types mix freely as
/// long as their `Value` types agree.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
