//! Minimal in-tree stand-in for the [proptest](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched; this shim implements the API surface the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter` / `prop_recursive`, range / tuple / boolean / integer
//! strategies, [`collection::vec`], `prop_oneof!`, and the `proptest!`
//! test-harness macro with `prop_assert*` / `prop_assume!`.
//!
//! Differences from real proptest, by design:
//!
//! * generation is driven by a fixed-seed [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//!   generator, so runs are deterministic (override with `PROPTEST_SEED`);
//! * there is **no shrinking** — a failing case reports the original input;
//! * no failure persistence files are written.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::Strategy;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(64));
        runner.run(&(1usize..=3, -5i64..5), |(a, b)| {
            if !(1..=3).contains(&a) || !(-5..5).contains(&b) {
                return Err(crate::test_runner::TestCaseError::fail("out of range"));
            }
            Ok(())
        });
    }

    #[test]
    fn filter_map_flat_map_compose() {
        let strat = (1usize..=3)
            .prop_flat_map(|n| {
                crate::collection::vec((0i64..10).prop_filter("odd", |v| v % 2 == 1), n)
            })
            .prop_map(|v| v.len());
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(64));
        runner.run(&(strat,), |(len,)| {
            prop_assert!((1..=3).contains(&len));
            Ok(())
        });
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        #[derive(Debug)]
        enum T {
            Leaf(i32),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(v) => {
                    assert!((0..100).contains(v), "leaf {v} out of range");
                    0
                }
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0i32..100).prop_map(T::Leaf);
        let tree = leaf.prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                (0i32..100).prop_map(T::Leaf),
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b))),
            ]
        });
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(64));
        runner.run(&(tree,), |(t,)| {
            prop_assert!(depth(&t) <= 3, "depth {} exceeds recursion bound", depth(&t));
            Ok(())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_macro_smoke(v in crate::collection::vec(any::<u32>(), 0..8), flip in any::<bool>()) {
            prop_assume!(v.len() != 7);
            let doubled: Vec<u64> = v.iter().map(|x| u64::from(*x) * 2).collect();
            prop_assert_eq!(doubled.len(), v.len());
            if flip {
                prop_assert!(doubled.iter().all(|d| d % 2 == 0));
            }
        }
    }
}
