//! `any::<T>()` — full-range strategies for primitive types.

use std::fmt;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::{Rejection, TestRng};

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Generates one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(T::arbitrary(rng))
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
