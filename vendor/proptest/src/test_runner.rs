//! Test-case execution: configuration, the deterministic RNG, and the
//! runner that drives a [`Strategy`] through many cases.

use crate::strategy::Strategy;

/// How many random cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
    /// Give up after this many generator/`prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_global_rejects: 65536 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// Deterministic [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
/// generator driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator. `PROPTEST_SEED` (decimal u64) overrides the
    /// built-in fixed seed at runtime.
    pub fn from_env() -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        TestRng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is ≤ bound/2^64 — irrelevant for test generation.
        self.next_u64() % bound
    }

    /// Uniform value in `[0, bound)` for width-128 spans (signed 64-bit
    /// ranges can span more than `u64::MAX` values).
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % bound
    }
}

/// Why a property case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property is false for the generated input.
    Fail(String),
    /// `prop_assume!` (or a filter) rejected the input; try another.
    Reject,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Generated input did not satisfy a `prop_filter` predicate.
#[derive(Debug)]
pub struct Rejection;

/// Runs one property over many generated cases.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// A runner with the given configuration and the deterministic seed.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config, rng: TestRng::from_env() }
    }

    /// Generates inputs from `strategy` and checks `test` against each,
    /// panicking (so the enclosing `#[test]` fails) on the first failing
    /// case. There is no shrinking: the panic reports the original input.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases {
            if rejected > self.config.max_global_rejects {
                panic!(
                    "proptest shim: too many rejected inputs ({rejected}) after {passed} passing cases; \
                     loosen the filters or assumptions"
                );
            }
            let value = match strategy.generate(&mut self.rng) {
                Ok(v) => v,
                Err(Rejection) => {
                    rejected += 1;
                    continue;
                }
            };
            let rendered = format!("{value:?}");
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => rejected += 1,
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "proptest shim: property failed after {passed} passing cases\n\
                         message: {message}\n\
                         input:   {rendered}"
                    );
                }
            }
        }
    }
}
