//! # foray-suite — the FORAY-GEN reproduction, in one dependency
//!
//! Meta-crate re-exporting every component of the reproduction of
//! *FORAY-GEN: Automatic Generation of Affine Functions for Memory
//! Optimizations* (Issenin & Dutt, DATE 2005). Depend on this crate to get
//! the whole stack; depend on the individual crates ([`foray`], [`minic`],
//! [`minic_sim`], ...) to pick components.
//!
//! The `examples/` and `tests/` directories of this package host the
//! runnable walk-throughs of the paper's figures and the cross-crate
//! integration/property tests.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), foray_suite::foray::PipelineError> {
//! use foray_suite::foray::ForayGen;
//!
//! let out = ForayGen::new().run_source(
//!     "int a[64]; void main() { int i; for (i = 0; i < 64; i++) { a[i] = i; } }",
//! )?;
//! assert_eq!(out.model.ref_count(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use foray;
pub use foray_baseline;
pub use foray_serve;
pub use foray_spm;
pub use foray_workloads;
pub use minic;
pub use minic_sim;
pub use minic_trace;
