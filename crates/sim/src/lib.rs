//! # minic-sim — a profiling simulator for mini-C
//!
//! The instruction-set-simulator substitute in the FORAY-GEN reproduction
//! (the paper used a modified SimpleScalar). It executes a
//! [`minic::Program`] deterministically in a flat 32-bit address space and
//! streams a profiling trace — memory accesses with synthetic instruction
//! addresses, interleaved with loop checkpoints — into any
//! [`minic_trace::TraceSink`]. Running the analyzer *as* the sink gives the
//! paper's constant-space online mode; collecting into a
//! [`minic_trace::VecSink`] or a trace file gives the offline mode.
//!
//! Two execution engines produce **byte-identical** traces:
//!
//! * [`Engine::Vm`] (the default) [`compile`]s the program once into a
//!   slot-resolved bytecode and executes it on [`Vm`] — no string hashing,
//!   no type clones, no per-scope allocation on the hot path;
//! * [`Engine::Tree`] walks the AST directly ([`Interp`]). It is the
//!   differential oracle: slower, but structurally close to the semantics
//!   it implements.
//!
//! Select the engine through [`SimConfig::engine`]; `tests/vm_equiv.rs`
//! locks the two engines together on the whole workload corpus.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prog = minic::frontend(
//!     "int a[16];
//!      void main() { int i; for (i = 0; i < 16; i++) { a[i] = i; } }",
//! )?;
//! let (outcome, trace) = minic_sim::run(&prog, &minic_sim::SimConfig::default(), &[])?;
//! assert_eq!(outcome.accesses, 16);
//! assert!(trace.iter().any(|r| matches!(r, minic_trace::Record::Access(_))));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bytecode;
pub mod interp;
pub mod lower;
pub mod mem;
pub(crate) mod syslib;
pub mod value;
pub mod vm;

pub use bytecode::{CompiledProgram, Op, TyKind, TypeId, TypeTable, VmValue};
pub use interp::{Interp, RuntimeError, SimConfig, SimOutcome};
pub use lower::compile;
pub use mem::{Heap, HeapBlock, Memory};
pub use value::Value;
pub use vm::Vm;

use minic::Program;
use minic_trace::{Record, TraceSink, VecSink};

/// Which execution engine profiles the program. Both emit byte-identical
/// traces; see the crate docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Tree-walking interpreter ([`Interp`]) — the differential oracle.
    Tree,
    /// Compiled bytecode VM ([`Vm`]) — the fast default.
    #[default]
    Vm,
}

impl Engine {
    /// Parses an engine name (`"tree"` / `"vm"`), as accepted by the CLI's
    /// `--engine` flag.
    pub fn parse(name: &str) -> Option<Engine> {
        match name {
            "tree" => Some(Engine::Tree),
            "vm" => Some(Engine::Vm),
            _ => None,
        }
    }

    /// The CLI spelling of the engine.
    pub fn as_str(self) -> &'static str {
        match self {
            Engine::Tree => "tree",
            Engine::Vm => "vm",
        }
    }
}

/// Runs a program, collecting the full trace in memory.
///
/// # Errors
///
/// Any [`RuntimeError`] raised during execution.
pub fn run(
    prog: &Program,
    config: &SimConfig,
    inputs: &[i64],
) -> Result<(SimOutcome, Vec<Record>), RuntimeError> {
    let mut sink = VecSink::new();
    let outcome = run_with_sink(prog, config, inputs, &mut sink)?;
    Ok((outcome, sink.into_records()))
}

/// Runs a program, streaming records into the caller's sink — the paper's
/// online analysis mode (constant space in the trace length).
///
/// # Errors
///
/// Any [`RuntimeError`] raised during execution.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let prog = minic::frontend("int g; void main() { g = 1; }")?;
/// let mut count = minic_trace::CountingSink::new();
/// let outcome = minic_sim::run_with_sink(
///     &prog, &minic_sim::SimConfig::default(), &[], &mut count)?;
/// assert_eq!(count.accesses, outcome.accesses);
/// # Ok(())
/// # }
/// ```
pub fn run_with_sink<S: TraceSink>(
    prog: &Program,
    config: &SimConfig,
    inputs: &[i64],
    sink: &mut S,
) -> Result<SimOutcome, RuntimeError> {
    match config.engine {
        Engine::Tree => {
            let interp = Interp::new(prog, config.clone(), inputs.to_vec(), sink);
            let (outcome, _) = interp.run()?;
            Ok(outcome)
        }
        Engine::Vm => {
            let compiled = compile(prog);
            let vm = Vm::new(&compiled, config.clone(), inputs.to_vec(), sink);
            let (outcome, _) = vm.run()?;
            Ok(outcome)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic_trace::{layout, AccessKind};

    fn run_src(src: &str) -> (SimOutcome, Vec<Record>) {
        let prog = minic::frontend(src).expect("valid program");
        run(&prog, &SimConfig::default(), &[]).expect("clean run")
    }

    fn run_src_uninstrumented(src: &str) -> (SimOutcome, Vec<Record>) {
        let mut prog = minic::parse(src).expect("parses");
        minic::check(&mut prog).expect("checks");
        run(&prog, &SimConfig::default(), &[]).expect("clean run")
    }

    #[test]
    fn array_writes_traced_at_global_base() {
        let (outcome, trace) =
            run_src_uninstrumented("int a[4]; void main() { int i; for (i=0;i<4;i++) a[i] = i; }");
        assert_eq!(outcome.accesses, 4);
        let addrs: Vec<u32> = trace
            .iter()
            .filter_map(|r| match r {
                Record::Access(a) => Some(a.addr.0),
                _ => None,
            })
            .collect();
        assert_eq!(
            addrs,
            vec![
                layout::GLOBAL_BASE,
                layout::GLOBAL_BASE + 4,
                layout::GLOBAL_BASE + 8,
                layout::GLOBAL_BASE + 12
            ]
        );
    }

    #[test]
    fn char_array_steps_by_one_byte() {
        let (_, trace) =
            run_src_uninstrumented("char c[4]; void main() { int i; for (i=0;i<4;i++) c[i] = i; }");
        let addrs: Vec<u32> = trace
            .iter()
            .filter_map(|r| match r {
                Record::Access(a) => Some(a.addr.0),
                _ => None,
            })
            .collect();
        assert_eq!(addrs[1] - addrs[0], 1);
    }

    #[test]
    fn pointer_arithmetic_scales() {
        // `p += 1` on int* moves 4 bytes.
        let (_, trace) = run_src_uninstrumented(
            "int a[8]; int *p; void main() { p = a; *p = 1; p += 1; *p = 2; }",
        );
        let addrs: Vec<u32> = trace
            .iter()
            .filter_map(|r| match r {
                Record::Access(a) if a.kind == AccessKind::Write => Some(a.addr.0),
                _ => None,
            })
            .collect();
        // p is a global pointer: writes to p itself + writes through p.
        // Filter to the array segment (p lives at a different global slot).
        let through: Vec<u32> =
            addrs.iter().copied().filter(|a| *a < layout::GLOBAL_BASE + 32).collect();
        assert_eq!(through[1] - through[0], 4);
    }

    #[test]
    fn computation_is_correct_fib() {
        let (outcome, _) = run_src_uninstrumented(
            "int fib(int n) { return n < 2 ? n : fib(n-1) + fib(n-2); }
             void main() { print_int(fib(10)); }",
        );
        assert_eq!(outcome.printed, vec![55]);
    }

    #[test]
    fn computation_through_memory() {
        let (outcome, _) = run_src_uninstrumented(
            "int a[10];
             void main() {
               int i; int s;
               for (i = 0; i < 10; i++) { a[i] = i * i; }
               s = 0;
               for (i = 0; i < 10; i++) { s += a[i]; }
               print_int(s);
             }",
        );
        assert_eq!(outcome.printed, vec![285]);
    }

    #[test]
    fn figure4_trace_shape() {
        // The paper's Fig 4(a) program: 2 outer iterations × 3 inner writes.
        let (outcome, trace) = run_src(
            "char q[10000]; char *ptr;
             void main() { int i; int t1 = 98; ptr = q;
               while (t1 < 100) { t1++; ptr += 100;
                 for (i = 40; i > 37; i--) { *ptr++ = i*i % 256; } } }",
        );
        assert!(outcome.accesses > 6);
        let through_q: Vec<u32> = trace
            .iter()
            .filter_map(|r| match r {
                Record::Access(a)
                    if a.kind == AccessKind::Write
                        && (layout::GLOBAL_BASE..layout::GLOBAL_BASE + 10000)
                            .contains(&a.addr.0) =>
                {
                    Some(a.addr.0)
                }
                _ => None,
            })
            .collect();
        let q = layout::GLOBAL_BASE;
        assert_eq!(through_q, vec![q + 100, q + 101, q + 102, q + 203, q + 204, q + 205]);
        // Checkpoints: while loop entered once (LB) with 2 iterations
        // (2 BB + 2 BE), for loop entered twice (2 LB) with 3 iterations each
        // (6 BB + 6 BE).
        assert_eq!(outcome.checkpoints, 1 + 2 + 2 + 2 + 6 + 6);
    }

    #[test]
    fn local_arrays_reallocate_per_depth() {
        // Fig 7, first case: the local array lands at different addresses
        // when frames differ; force different depths via a wrapper.
        let (_, trace) = run_src_uninstrumented(
            "int deep(int d) { int buf[4]; buf[0] = d; return buf[0]; }
             int wrap(int d) { return deep(d); }
             void main() { deep(1); wrap(2); }",
        );
        // Frame-traffic writes also land on the stack and trivially move
        // with sp, so restrict to user-code stores (the `buf[0] = d` site)
        // and require the same instruction to hit two distinct addresses
        // across the two call depths.
        let mut addrs_by_instr: std::collections::BTreeMap<u32, std::collections::BTreeSet<u32>> =
            std::collections::BTreeMap::new();
        for r in &trace {
            if let Record::Access(a) = r {
                if a.kind == AccessKind::Write
                    && a.addr.0 > layout::HEAP_BASE
                    && (layout::CODE_BASE..layout::FRAME_CODE_BASE).contains(&a.instr.0)
                {
                    addrs_by_instr.entry(a.instr.0).or_default().insert(a.addr.0);
                }
            }
        }
        assert!(
            addrs_by_instr.values().any(|addrs| addrs.len() >= 2),
            "no user store was re-executed at a different stack address: {addrs_by_instr:?}"
        );
    }

    #[test]
    fn library_traffic_is_tagged() {
        let (_, trace) = run_src_uninstrumented(
            "char *p; void main() { p = malloc(64); memset(p, 0, 64); free(p); }",
        );
        let lib = trace
            .iter()
            .filter(|r| match r {
                Record::Access(a) => layout::is_library_instr(a.instr),
                _ => false,
            })
            .count();
        // malloc header write + 16 word memsets + free header read.
        assert_eq!(lib, 1 + 16 + 1);
    }

    #[test]
    fn malloc_returns_usable_memory() {
        let (outcome, _) = run_src_uninstrumented(
            "int *p; void main() { p = malloc(40);
               int i; for (i = 0; i < 10; i++) { p[i] = i; }
               print_int(p[7]); }",
        );
        assert_eq!(outcome.printed, vec![7]);
    }

    #[test]
    fn memcpy_copies() {
        let (outcome, _) = run_src_uninstrumented(
            "int a[4]; int b[4];
             void main() { a[0]=1; a[1]=2; a[2]=3; a[3]=4;
               memcpy(b, a, 16); print_int(b[2]); }",
        );
        assert_eq!(outcome.printed, vec![3]);
    }

    #[test]
    fn input_is_deterministic() {
        let prog = minic::frontend(
            "void main() { print_int(input(0)); print_int(input(1)); print_int(input(0)); }",
        )
        .unwrap();
        let (o1, _) = run(&prog, &SimConfig::default(), &[10, 20]).unwrap();
        let (o2, _) = run(&prog, &SimConfig::default(), &[10, 20]).unwrap();
        assert_eq!(o1.printed, vec![10, 20, 10]);
        assert_eq!(o1.printed, o2.printed);
    }

    #[test]
    fn rand_is_deterministic_and_seedable() {
        let prog =
            minic::frontend("void main() { srand(42); print_int(rand()); print_int(rand()); }")
                .unwrap();
        let (o1, _) = run(&prog, &SimConfig::default(), &[]).unwrap();
        let (o2, _) = run(&prog, &SimConfig::default(), &[]).unwrap();
        assert_eq!(o1.printed, o2.printed);
        assert!(o1.printed[0] >= 0);
        assert_ne!(o1.printed[0], o1.printed[1]);
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let prog = minic::frontend("void main() { int x; x = 1 / (x - x); }").unwrap();
        assert_eq!(run(&prog, &SimConfig::default(), &[]), Err(RuntimeError::DivisionByZero));
    }

    #[test]
    fn step_limit_catches_infinite_loops() {
        let prog = minic::frontend("void main() { while (1) { } }").unwrap();
        let config = SimConfig { max_steps: 10_000, ..SimConfig::default() };
        assert_eq!(run(&prog, &config, &[]), Err(RuntimeError::StepLimitExceeded));
    }

    #[test]
    fn deep_recursion_overflows() {
        let prog =
            minic::frontend("int f(int n) { return f(n + 1); } void main() { f(0); }").unwrap();
        assert_eq!(run(&prog, &SimConfig::default(), &[]), Err(RuntimeError::StackOverflow));
    }

    #[test]
    fn deref_of_int_is_an_error() {
        let mut prog2 = minic::parse("void main() { int x; *x = 1; }").unwrap();
        minic::check(&mut prog2).unwrap();
        assert!(matches!(
            run(&prog2, &SimConfig::default(), &[]),
            Err(RuntimeError::DerefNonPointer { .. })
        ));
    }

    #[test]
    fn call_overhead_is_optional() {
        let src = "int f(int a, int b) { return a + b; } void main() { print_int(f(1, 2)); }";
        let prog = minic::frontend(src).unwrap();
        let with = run(&prog, &SimConfig::default(), &[]).unwrap().0;
        let without =
            run(&prog, &SimConfig { model_call_overhead: false, ..SimConfig::default() }, &[])
                .unwrap()
                .0;
        assert_eq!(with.printed, vec![3]);
        assert_eq!(without.printed, vec![3]);
        // 2 arg writes + 2 arg reads.
        assert_eq!(with.accesses - without.accesses, 4);
    }

    #[test]
    fn checkpoints_interleave_with_accesses() {
        let (_, trace) =
            run_src("int a[4]; void main() { int i; for (i = 0; i < 2; i++) { a[i] = i; } }");
        use minic::LoopId;
        let kinds: Vec<String> = trace
            .iter()
            .map(|r| match r {
                Record::Checkpoint { loop_id: LoopId(l), kind } => {
                    format!("{}{}", kind.code(), l)
                }
                Record::Access(_) => "A".to_owned(),
            })
            .collect();
        assert_eq!(kinds, vec!["LB0", "BB0", "A", "BE0", "BB0", "A", "BE0"], "full: {kinds:?}");
    }

    #[test]
    fn do_while_executes_body_first() {
        let (outcome, _) = run_src_uninstrumented(
            "void main() { int n; n = 0; do { n++; } while (0); print_int(n); }",
        );
        assert_eq!(outcome.printed, vec![1]);
    }

    #[test]
    fn break_and_continue() {
        let (outcome, _) = run_src(
            "void main() { int i; int s; s = 0;
               for (i = 0; i < 10; i++) {
                 if (i == 3) { continue; }
                 if (i == 6) { break; }
                 s += i;
               }
               print_int(s); }",
        );
        // 0+1+2+4+5 = 12.
        assert_eq!(outcome.printed, vec![12]);
    }

    #[test]
    fn global_scalars_are_memory_resident() {
        let (outcome, _) = run_src_uninstrumented("int g; void main() { g = 7; g = g + 1; }");
        // write, read, write.
        assert_eq!(outcome.accesses, 3);
    }

    #[test]
    fn locals_are_register_allocated() {
        let (outcome, _) =
            run_src_uninstrumented("void main() { int x; x = 7; x = x + 1; print_int(x); }");
        // Only the print_int staging write (library).
        assert_eq!(outcome.accesses, 1);
        assert_eq!(outcome.printed, vec![8]);
    }

    #[test]
    fn pointer_into_int_array_via_int_star_star() {
        // Pointer stored into memory, loaded back through int**: Fig 1's
        // `result[currow++] = workspace` pattern.
        let (outcome, _) = run_src_uninstrumented(
            "int *rows[4]; int data[8];
             void main() {
               int i;
               for (i = 0; i < 4; i++) { rows[i] = &data[i * 2]; }
               rows[1][1] = 42;
               print_int(data[3]);
             }",
        );
        assert_eq!(outcome.printed, vec![42]);
    }

    #[test]
    fn outcome_counters_match_trace() {
        let (outcome, trace) =
            run_src("int a[8]; void main() { int i; for (i=0;i<8;i++) { a[i] = rand(); } }");
        let accesses = trace.iter().filter(|r| matches!(r, Record::Access(_))).count() as u64;
        let cps = trace.iter().filter(|r| matches!(r, Record::Checkpoint { .. })).count() as u64;
        assert_eq!(outcome.accesses, accesses);
        assert_eq!(outcome.checkpoints, cps);
    }

    #[test]
    fn ternary_and_logical_ops() {
        let (outcome, _) = run_src_uninstrumented(
            "void main() {
               int a; a = 5;
               print_int(a > 3 && a < 10 ? 1 : 0);
               print_int(a < 3 || a == 5);
               print_int(!a);
               print_int(a % 3);
               print_int(a << 2);
               print_int(-a);
             }",
        );
        assert_eq!(outcome.printed, vec![1, 1, 0, 2, 20, -5]);
    }

    #[test]
    fn compound_assignment_through_memory() {
        let (outcome, _) = run_src_uninstrumented(
            "int a[2]; void main() { a[0] = 10; a[0] += 5; a[0] *= 2; print_int(a[0]); }",
        );
        assert_eq!(outcome.printed, vec![30]);
        // 1 write + (read+write) + (read+write) = 5 array accesses,
        // + 1 read of a[0] as the print argument + 1 print staging write.
        assert_eq!(outcome.accesses, 7);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use minic_trace::layout;

    fn run_ok(src: &str) -> SimOutcome {
        let mut prog = minic::parse(src).expect("parses");
        minic::check(&mut prog).expect("checks");
        run(&prog, &SimConfig::default(), &[]).expect("runs").0
    }

    #[test]
    fn char_storage_wraps_to_byte() {
        let o = run_ok(
            "char c[2]; void main() { c[0] = 300; c[1] = 0 - 1; print_int(c[0]); print_int(c[1]); }",
        );
        assert_eq!(o.printed, vec![44, 255]);
    }

    #[test]
    fn int_storage_wraps_to_32_bits() {
        let o = run_ok("int g; void main() { g = 2147483647; g = g + 1; print_int(g); }");
        assert_eq!(o.printed, vec![-2147483648]);
    }

    #[test]
    fn shifts_and_bitops() {
        let o = run_ok(
            "void main() { int x; x = 5;
               print_int(x << 3); print_int(x >> 1);
               print_int(x & 3); print_int(x | 8); print_int(x ^ 1); print_int(~x); }",
        );
        assert_eq!(o.printed, vec![40, 2, 1, 13, 4, -6]);
    }

    #[test]
    fn pointer_comparison_and_difference() {
        let o = run_ok(
            "int a[10]; int *p; int *q;
             void main() { p = a; q = &a[7];
               print_int(q - p); print_int(p < q); print_int(q == q); }",
        );
        assert_eq!(o.printed, vec![7, 1, 1]);
    }

    #[test]
    fn empty_input_vector_reads_zero() {
        let o = run_ok("void main() { print_int(input(5)); }");
        assert_eq!(o.printed, vec![0]);
    }

    #[test]
    fn memset_handles_non_word_tail() {
        let mut prog = minic::parse(
            "char b[7]; void main() { memset(b, 42, 7); print_int(b[0]); print_int(b[6]); }",
        )
        .unwrap();
        minic::check(&mut prog).unwrap();
        let (o, trace) = run(&prog, &SimConfig::default(), &[]).unwrap();
        assert_eq!(o.printed, vec![42, 42]);
        // One word write + 3 byte writes, all library-tagged, plus the two
        // print_int staging writes.
        let lib_writes = trace
            .iter()
            .filter(|r| match r {
                minic_trace::Record::Access(a) => layout::is_library_instr(a.instr),
                _ => false,
            })
            .count();
        assert_eq!(lib_writes, 1 + 3 + 2);
    }

    #[test]
    fn scope_shadowing_restores_outer_binding() {
        let o =
            run_ok("void main() { int x; x = 1; { int x; x = 2; print_int(x); } print_int(x); }");
        assert_eq!(o.printed, vec![2, 1]);
    }

    #[test]
    fn global_initializers_are_loaded() {
        let o = run_ok(
            "int g = 7; int t[4] = { 10, 20, 30 };
             void main() { print_int(g); print_int(t[1]); print_int(t[3]); }",
        );
        assert_eq!(o.printed, vec![7, 20, 0]); // tail zero-filled
    }

    #[test]
    fn negative_division_truncates_toward_zero() {
        let o = run_ok(
            "void main() { print_int((0 - 7) / 2); print_int((0 - 7) % 2); print_int(7 / (0 - 2)); }",
        );
        assert_eq!(o.printed, vec![-3, -1, -3]);
    }

    #[test]
    fn min_max_abs_builtins() {
        let o = run_ok(
            "void main() { print_int(min(3, 0 - 5)); print_int(max(3, 0 - 5)); print_int(abs(0 - 9)); }",
        );
        assert_eq!(o.printed, vec![-5, 3, 9]);
    }

    #[test]
    fn malloc_zero_and_free_unknown_are_tolerated() {
        let o = run_ok("char *p; void main() { p = malloc(0); free(p); free(p); print_int(1); }");
        assert_eq!(o.printed, vec![1]);
    }

    #[test]
    fn bad_builtin_arguments_error() {
        let mut prog = minic::parse("char b[4]; void main() { memset(b, 0, 0 - 5); }").unwrap();
        minic::check(&mut prog).unwrap();
        assert!(matches!(
            run(&prog, &SimConfig::default(), &[]),
            Err(RuntimeError::BadBuiltinArgument { builtin: "memset", .. })
        ));
        let mut prog2 = minic::parse("char *p; void main() { p = malloc(0 - 1); }").unwrap();
        minic::check(&mut prog2).unwrap();
        assert!(matches!(
            run(&prog2, &SimConfig::default(), &[]),
            Err(RuntimeError::BadBuiltinArgument { builtin: "malloc", .. })
        ));
    }

    #[test]
    fn for_loop_step_runs_on_continue() {
        // C semantics: continue jumps to the step, not past it.
        let o = run_ok(
            "void main() { int i; int n; n = 0;
               for (i = 0; i < 10; i++) { if (i % 2 == 0) { continue; } n++; }
               print_int(n); print_int(i); }",
        );
        assert_eq!(o.printed, vec![5, 10]);
    }

    #[test]
    fn error_display_strings() {
        assert_eq!(RuntimeError::DivisionByZero.to_string(), "division by zero");
        assert_eq!(RuntimeError::StackOverflow.to_string(), "stack overflow");
        assert!(RuntimeError::UnknownVariable { name: "x".into() }.to_string().contains("`x`"));
    }
}
