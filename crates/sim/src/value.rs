//! Runtime values.
//!
//! The simulator is dynamically typed: a value is either an integer or a
//! typed pointer. Pointers carry their pointee type so pointer arithmetic
//! scales correctly (`char*` steps by 1 byte, `int*` by 4) — the mechanism
//! behind the paper's Fig. 4 example, where `ptr += 100` advances 100 bytes
//! and the resulting affine coefficient over the outer `while` iterator
//! becomes 103.
//!
//! The pointee type is interned behind an [`Rc`], so copying a pointer value
//! (the single most common operation in the tree-walking oracle) is a
//! reference-count bump rather than a deep [`Type`] clone. The compiled VM
//! goes further and replaces the `Rc` with a dense table index (see
//! `crate::bytecode::VmValue`).

use minic::Type;
use std::fmt;
use std::rc::Rc;

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Integer (also carries chars and booleans).
    Int(i64),
    /// Typed pointer into the simulated address space.
    Ptr {
        /// Byte address.
        addr: u32,
        /// Pointee type, used to scale arithmetic and type loads.
        pointee: Rc<Type>,
    },
}

impl Value {
    /// The canonical null/zero value.
    pub fn zero() -> Value {
        Value::Int(0)
    }

    /// Makes a typed pointer.
    pub fn ptr(addr: u32, pointee: impl Into<Rc<Type>>) -> Value {
        Value::Ptr { addr, pointee: pointee.into() }
    }

    /// Numeric view: pointers expose their address.
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            Value::Ptr { addr, .. } => *addr as i64,
        }
    }

    /// C truthiness.
    pub fn is_truthy(&self) -> bool {
        self.as_int() != 0
    }

    /// Coerces the value into a declared type: pointers are re-tagged to the
    /// declared pointee, integers assigned to pointer slots become pointers
    /// (C's implicit int↔pointer traffic, needed for `int *p = malloc(n)`),
    /// and integers assigned to scalar slots stay integers.
    pub fn coerce_to(self, ty: &Type) -> Value {
        match ty {
            Type::Ptr(pointee) => match self {
                // Already a pointer of the declared pointee: keep the
                // interned Rc instead of cloning the type.
                Value::Ptr { addr, pointee: p } if *p == **pointee => {
                    Value::Ptr { addr, pointee: p }
                }
                other => Value::Ptr {
                    addr: other.as_int() as u32,
                    pointee: Rc::new((**pointee).clone()),
                },
            },
            Type::Int => Value::Int(self.as_int() as i32 as i64),
            Type::Char => Value::Int(self.as_int() as u8 as i64),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Ptr { addr, pointee } => write!(f, "({pointee}*)0x{addr:x}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_view_of_pointer() {
        let p = Value::ptr(0x1000, Type::Char);
        assert_eq!(p.as_int(), 0x1000);
        assert!(p.is_truthy());
        assert!(!Value::Int(0).is_truthy());
    }

    #[test]
    fn coercion_retags_pointers() {
        let p = Value::ptr(0x1000, Type::Char);
        let q = p.coerce_to(&Type::ptr_to(Type::Int));
        assert_eq!(q, Value::ptr(0x1000, Type::Int));
    }

    #[test]
    fn coercion_same_pointee_is_identity() {
        let p = Value::ptr(0x2000, Type::Int);
        let Value::Ptr { pointee: before, .. } = p.clone() else { unreachable!() };
        let q = p.coerce_to(&Type::ptr_to(Type::Int));
        let Value::Ptr { pointee: after, .. } = &q else { unreachable!() };
        // The interned Rc is reused, not reallocated.
        assert!(Rc::ptr_eq(&before, after));
        assert_eq!(q, Value::ptr(0x2000, Type::Int));
    }

    #[test]
    fn coercion_int_to_pointer_and_back() {
        let v = Value::Int(0x4000_0000);
        let p = v.coerce_to(&Type::ptr_to(Type::Char));
        assert_eq!(p, Value::ptr(0x4000_0000, Type::Char));
        assert_eq!(p.coerce_to(&Type::Int), Value::Int(0x4000_0000));
    }

    #[test]
    fn coercion_truncates_char() {
        assert_eq!(Value::Int(300).coerce_to(&Type::Char), Value::Int(44));
        assert_eq!(Value::Int(-1).coerce_to(&Type::Char), Value::Int(255));
    }

    #[test]
    fn coercion_wraps_int32() {
        assert_eq!(Value::Int(0x1_0000_0001).coerce_to(&Type::Int), Value::Int(1));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::ptr(0xff, Type::Int).to_string(), "(int*)0xff");
    }
}
