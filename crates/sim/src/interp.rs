//! Tree-walking interpreter with trace emission — the functional-simulator
//! substitute for Step 2 of FORAY-GEN's Algorithm 1.
//!
//! Execution model, chosen to mirror what a compiler-plus-SimpleScalar setup
//! produces in the paper:
//!
//! * scalar locals and parameters live in "registers" (no memory traffic);
//! * local arrays live on the descending stack — so a local array in a
//!   function called repeatedly re-materializes at call-dependent addresses
//!   (the first non-affine scenario of the paper's Fig. 7);
//! * every array/pointer access and every global-scalar access emits a trace
//!   record tagged with the site's synthetic instruction address;
//! * builtin ("system library") routines emit traffic from the library
//!   instruction range (Table III's middle column);
//! * optionally, calls emit synthetic argument-passing stack traffic
//!   (references the paper notes exist in real traces and are purged by
//!   Step 4's heuristic).

use crate::mem::{Heap, Memory};
use crate::value::Value;
use minic::ast::*;
use minic::builtins::BUILTINS;
use minic_trace::layout;
use minic_trace::{AccessKind, Record, TraceSink};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Stack pointer floor; descending below this is a stack overflow.
pub(crate) const STACK_LIMIT: u32 = 0x7f00_0000;

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Abort after this many executed steps (statements/expressions on the
    /// tree-walker, bytecode instructions on the VM — either way, a guard
    /// against non-terminating programs).
    pub max_steps: u64,
    /// Emit synthetic argument-passing stack traffic around user calls.
    pub model_call_overhead: bool,
    /// Maximum user call depth. The default (128) is conservative so the
    /// tree-walker's own recursion fits in a 2 MiB thread stack (the VM
    /// uses an explicit call stack but honors the same limit for trace
    /// equality).
    pub max_call_depth: usize,
    /// Which execution engine to run (default: the compiled VM).
    pub engine: crate::Engine,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_steps: 500_000_000,
            model_call_overhead: true,
            max_call_depth: 128,
            engine: crate::Engine::default(),
        }
    }
}

/// Result of a successful run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimOutcome {
    /// Values passed to `print_int`, in order.
    pub printed: Vec<i64>,
    /// Executed steps — statement/expression evaluations on the
    /// tree-walker, bytecode instructions on the VM. The unit is
    /// engine-specific; every other counter is engine-identical.
    pub steps: u64,
    /// Memory access records emitted.
    pub accesses: u64,
    /// Checkpoint records emitted.
    pub checkpoints: u64,
    /// `malloc` calls performed.
    pub heap_allocations: u64,
}

/// Runtime failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Dereference/index of a non-pointer value.
    DerefNonPointer {
        /// What was found instead.
        found: String,
    },
    /// `&local_scalar` — scalar locals are register-allocated here.
    AddressOfRegister {
        /// Variable name.
        name: String,
    },
    /// Name not bound at runtime (should be prevented by `minic::check`).
    UnknownVariable {
        /// Variable name.
        name: String,
    },
    /// Call of an unknown function (should be prevented by `minic::check`).
    UnknownFunction {
        /// Function name.
        name: String,
    },
    /// Heap exhausted.
    HeapExhausted,
    /// Stack overflow (local arrays or call depth).
    StackOverflow,
    /// Step budget exceeded (probable non-termination).
    StepLimitExceeded,
    /// `main` missing (should be prevented by `minic::check`).
    MissingMain,
    /// Negative or oversized size passed to an allocator/copy builtin.
    BadBuiltinArgument {
        /// Builtin name.
        builtin: &'static str,
        /// Offending value.
        value: i64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
            RuntimeError::DerefNonPointer { found } => {
                write!(f, "dereference of non-pointer value {found}")
            }
            RuntimeError::AddressOfRegister { name } => {
                write!(f, "cannot take address of register-allocated local `{name}`")
            }
            RuntimeError::UnknownVariable { name } => write!(f, "unknown variable `{name}`"),
            RuntimeError::UnknownFunction { name } => write!(f, "unknown function `{name}`"),
            RuntimeError::HeapExhausted => write!(f, "heap exhausted"),
            RuntimeError::StackOverflow => write!(f, "stack overflow"),
            RuntimeError::StepLimitExceeded => write!(f, "step limit exceeded"),
            RuntimeError::MissingMain => write!(f, "program has no `main`"),
            RuntimeError::BadBuiltinArgument { builtin, value } => {
                write!(f, "bad argument {value} to builtin `{builtin}`")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

type RunResult<T> = Result<T, RuntimeError>;

/// Control-flow outcome of a statement.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// A storage slot for a local name. Pointee/element types are interned
/// behind `Rc` so handing out decayed pointers never deep-clones a `Type`.
#[derive(Debug, Clone)]
enum Slot {
    Reg { ty: Type, value: Value },
    Array { elem: Rc<Type>, addr: u32 },
}

/// Global storage resolved at startup.
#[derive(Debug, Clone)]
enum GlobalSlot {
    Scalar { ty: Rc<Type>, addr: u32 },
    Array { elem: Rc<Type>, addr: u32 },
}

struct Frame {
    scopes: Vec<HashMap<String, Slot>>,
    sp_on_entry: u32,
}

/// Where an lvalue lives.
enum Place {
    Reg { name: String },
    Mem { addr: u32, ty: Rc<Type>, site: SiteId },
}

/// The interpreter. Most uses go through [`crate::run`] /
/// [`crate::run_with_sink`]; construct directly for fine-grained control.
pub struct Interp<'p, S: TraceSink> {
    prog: &'p Program,
    config: SimConfig,
    mem: Memory,
    heap: Heap,
    globals: HashMap<String, GlobalSlot>,
    func_idx: HashMap<String, usize>,
    builtin_idx: HashMap<&'static str, usize>,
    frames: Vec<Frame>,
    sp: u32,
    sink: S,
    inputs: Vec<i64>,
    rng_state: u64,
    outcome: SimOutcome,
}

impl<'p, S: TraceSink> Interp<'p, S> {
    /// Prepares an interpreter: lays out globals and applies initializers
    /// (silently, as a loader would — no trace records).
    pub fn new(prog: &'p Program, config: SimConfig, inputs: Vec<i64>, sink: S) -> Self {
        let mut mem = Memory::new();
        let mut globals = HashMap::new();
        let mut next = layout::GLOBAL_BASE;
        for g in &prog.globals {
            let addr = next;
            // Each global is 4-byte aligned.
            next += (g.byte_size() + 3) & !3;
            let ty = Rc::new(g.ty.clone());
            match g.array_len {
                Some(_) => {
                    for (i, v) in g.init.iter().enumerate() {
                        write_typed(&mut mem, addr + i as u32 * g.ty.size(), &g.ty, *v);
                    }
                    globals.insert(g.name.clone(), GlobalSlot::Array { elem: ty, addr });
                }
                None => {
                    if let Some(v) = g.init.first() {
                        write_typed(&mut mem, addr, &g.ty, *v);
                    }
                    globals.insert(g.name.clone(), GlobalSlot::Scalar { ty, addr });
                }
            }
        }
        let func_idx =
            prog.functions.iter().enumerate().map(|(i, f)| (f.name.clone(), i)).collect();
        let builtin_idx = BUILTINS.iter().enumerate().map(|(i, b)| (b.name, i)).collect();
        Interp {
            prog,
            config,
            mem,
            heap: Heap::new(),
            globals,
            func_idx,
            builtin_idx,
            frames: Vec::new(),
            sp: layout::STACK_TOP,
            sink,
            inputs,
            rng_state: 0x2545_f491_4f6c_dd1d,
            outcome: SimOutcome::default(),
        }
    }

    /// Runs `main` to completion.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`] raised during execution.
    pub fn run(mut self) -> RunResult<(SimOutcome, S)> {
        let main_idx = *self.func_idx.get("main").ok_or(RuntimeError::MissingMain)?;
        self.call_user(main_idx, Vec::new())?;
        self.sink.finish();
        Ok((self.outcome, self.sink))
    }

    // ---- bookkeeping ---------------------------------------------------

    fn step(&mut self) -> RunResult<()> {
        self.outcome.steps += 1;
        if self.outcome.steps > self.config.max_steps {
            Err(RuntimeError::StepLimitExceeded)
        } else {
            Ok(())
        }
    }

    fn emit_access(&mut self, instr: minic_trace::InstrAddr, addr: u32, kind: AccessKind) {
        self.outcome.accesses += 1;
        self.sink.record(&Record::Access(minic_trace::Access {
            instr,
            addr: minic_trace::MemAddr(addr),
            kind,
        }));
    }

    fn emit_checkpoint(&mut self, loop_id: LoopId, kind: CheckpointKind) {
        self.outcome.checkpoints += 1;
        self.sink.record(&Record::Checkpoint { loop_id, kind });
    }

    fn frame(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("active frame")
    }

    fn lookup_slot(&self, name: &str) -> Option<&Slot> {
        let frame = self.frames.last()?;
        frame.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn lookup_slot_mut(&mut self, name: &str) -> Option<&mut Slot> {
        let frame = self.frames.last_mut()?;
        frame.scopes.iter_mut().rev().find_map(|s| s.get_mut(name))
    }

    // ---- memory load/store with tracing ---------------------------------

    fn load_mem(&mut self, addr: u32, ty: &Type, site: SiteId) -> Value {
        self.emit_access(layout::user_instr(site.0), addr, AccessKind::Read);
        read_typed(&self.mem, addr, ty)
    }

    fn store_mem(&mut self, addr: u32, ty: &Type, site: SiteId, value: &Value) {
        self.emit_access(layout::user_instr(site.0), addr, AccessKind::Write);
        write_typed(&mut self.mem, addr, ty, value.as_int());
    }

    fn load_place(&mut self, place: &Place) -> RunResult<Value> {
        match place {
            Place::Reg { name } => match self.lookup_slot(name) {
                Some(Slot::Reg { value, .. }) => Ok(value.clone()),
                Some(Slot::Array { elem, addr }) => Ok(Value::ptr(*addr, elem.clone())),
                None => Err(RuntimeError::UnknownVariable { name: name.clone() }),
            },
            Place::Mem { addr, ty, site } => Ok(self.load_mem(*addr, ty, *site)),
        }
    }

    fn store_place(&mut self, place: &Place, value: Value) -> RunResult<()> {
        match place {
            Place::Reg { name } => {
                match self.lookup_slot_mut(name) {
                    Some(Slot::Reg { ty, value: v }) => {
                        *v = value.coerce_to(ty);
                        Ok(())
                    }
                    Some(Slot::Array { .. }) => {
                        // `minic::check` rejects assignments to array names.
                        Err(RuntimeError::UnknownVariable { name: name.clone() })
                    }
                    None => Err(RuntimeError::UnknownVariable { name: name.clone() }),
                }
            }
            Place::Mem { addr, ty, site } => {
                self.store_mem(*addr, ty, *site, &value);
                Ok(())
            }
        }
    }

    // ---- expression evaluation ------------------------------------------

    fn eval_place(&mut self, expr: &Expr) -> RunResult<Place> {
        match expr {
            Expr::Var { name, site, .. } => {
                if self.lookup_slot(name).is_some() {
                    Ok(Place::Reg { name: name.clone() })
                } else {
                    match self.globals.get(name) {
                        Some(GlobalSlot::Scalar { ty, addr }) => {
                            Ok(Place::Mem { addr: *addr, ty: ty.clone(), site: *site })
                        }
                        // Array names are not themselves places; reads decay
                        // (handled in eval), writes are rejected by sema.
                        Some(GlobalSlot::Array { .. }) | None => {
                            Err(RuntimeError::UnknownVariable { name: name.clone() })
                        }
                    }
                }
            }
            Expr::Index { base, index, site, .. } => {
                let base_v = self.eval(base)?;
                let idx = self.eval(index)?.as_int();
                let Value::Ptr { addr, pointee } = base_v else {
                    return Err(RuntimeError::DerefNonPointer { found: base_v.to_string() });
                };
                let addr = addr.wrapping_add((idx.wrapping_mul(pointee.size() as i64)) as u32);
                Ok(Place::Mem { addr, ty: pointee, site: *site })
            }
            Expr::Deref { ptr, site, .. } => {
                let v = self.eval(ptr)?;
                let Value::Ptr { addr, pointee } = v else {
                    return Err(RuntimeError::DerefNonPointer { found: v.to_string() });
                };
                Ok(Place::Mem { addr, ty: pointee, site: *site })
            }
            other => Err(RuntimeError::DerefNonPointer {
                found: format!("non-lvalue expression {other:?}"),
            }),
        }
    }

    fn eval(&mut self, expr: &Expr) -> RunResult<Value> {
        self.step()?;
        match expr {
            Expr::IntLit(v) => Ok(Value::Int(*v)),
            Expr::Var { name, site, .. } => {
                if let Some(slot) = self.lookup_slot(name) {
                    return Ok(match slot {
                        Slot::Reg { value, .. } => value.clone(),
                        Slot::Array { elem, addr } => Value::ptr(*addr, elem.clone()),
                    });
                }
                match self.globals.get(name) {
                    Some(GlobalSlot::Scalar { ty, addr }) => {
                        let (ty, addr) = (ty.clone(), *addr);
                        Ok(self.load_mem(addr, &ty, *site))
                    }
                    Some(GlobalSlot::Array { elem, addr }) => Ok(Value::ptr(*addr, elem.clone())),
                    None => Err(RuntimeError::UnknownVariable { name: name.clone() }),
                }
            }
            Expr::Index { .. } | Expr::Deref { .. } => {
                let place = self.eval_place(expr)?;
                self.load_place(&place)
            }
            Expr::AddrOf { lvalue, .. } => match lvalue.as_ref() {
                Expr::Var { name, .. } => {
                    if let Some(slot) = self.lookup_slot(name) {
                        match slot {
                            Slot::Array { elem, addr } => Ok(Value::ptr(*addr, elem.clone())),
                            Slot::Reg { .. } => {
                                Err(RuntimeError::AddressOfRegister { name: name.clone() })
                            }
                        }
                    } else {
                        match self.globals.get(name) {
                            Some(GlobalSlot::Scalar { ty, addr }) => {
                                Ok(Value::ptr(*addr, ty.clone()))
                            }
                            Some(GlobalSlot::Array { elem, addr }) => {
                                Ok(Value::ptr(*addr, elem.clone()))
                            }
                            None => Err(RuntimeError::UnknownVariable { name: name.clone() }),
                        }
                    }
                }
                other => {
                    // `&a[i]` / `&*p`: compute the place without accessing it.
                    let place = self.eval_place(other)?;
                    match place {
                        Place::Mem { addr, ty, .. } => Ok(Value::ptr(addr, ty)),
                        Place::Reg { name } => Err(RuntimeError::AddressOfRegister { name }),
                    }
                }
            },
            Expr::Unary { op, expr } => {
                let v = self.eval(expr)?.as_int();
                Ok(Value::Int(match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => (v == 0) as i64,
                    UnOp::BitNot => !v,
                }))
            }
            Expr::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs),
            Expr::IncDec { op, target } => {
                let place = self.eval_place(target)?;
                let old = self.load_place(&place)?;
                let new = offset_value(&old, op.delta());
                self.store_place(&place, new.clone())?;
                Ok(if op.is_post() { old } else { new })
            }
            Expr::Cond { cond, then, els } => {
                if self.eval(cond)?.is_truthy() {
                    self.eval(then)
                } else {
                    self.eval(els)
                }
            }
            Expr::Call { name, args, .. } => self.eval_call(name, args),
        }
    }

    fn eval_binary(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> RunResult<Value> {
        // Short-circuit forms first.
        match op {
            BinOp::And => {
                let l = self.eval(lhs)?;
                if !l.is_truthy() {
                    return Ok(Value::Int(0));
                }
                let r = self.eval(rhs)?;
                return Ok(Value::Int(r.is_truthy() as i64));
            }
            BinOp::Or => {
                let l = self.eval(lhs)?;
                if l.is_truthy() {
                    return Ok(Value::Int(1));
                }
                let r = self.eval(rhs)?;
                return Ok(Value::Int(r.is_truthy() as i64));
            }
            _ => {}
        }
        let l = self.eval(lhs)?;
        let r = self.eval(rhs)?;
        // Pointer arithmetic.
        match (op, &l, &r) {
            (BinOp::Add, Value::Ptr { .. }, Value::Int(n)) => return Ok(offset_value(&l, *n)),
            (BinOp::Add, Value::Int(n), Value::Ptr { .. }) => return Ok(offset_value(&r, *n)),
            (BinOp::Sub, Value::Ptr { .. }, Value::Int(n)) => return Ok(offset_value(&l, -*n)),
            (BinOp::Sub, Value::Ptr { addr: a, pointee }, Value::Ptr { addr: b, .. }) => {
                let diff = (*a as i64 - *b as i64) / pointee.size() as i64;
                return Ok(Value::Int(diff));
            }
            _ => {}
        }
        Ok(Value::Int(int_binop(op, l.as_int(), r.as_int())?))
    }

    fn eval_call(&mut self, name: &str, args: &[Expr]) -> RunResult<Value> {
        if let Some(&bi) = self.builtin_idx.get(name) {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(self.eval(a)?);
            }
            return self.call_builtin(bi, vals);
        }
        let Some(&fi) = self.func_idx.get(name) else {
            return Err(RuntimeError::UnknownFunction { name: name.to_owned() });
        };
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(a)?);
        }
        self.call_user(fi, vals)
    }

    fn call_user(&mut self, func_idx: usize, args: Vec<Value>) -> RunResult<Value> {
        if self.frames.len() >= self.config.max_call_depth {
            return Err(RuntimeError::StackOverflow);
        }
        let func = &self.prog.functions[func_idx];
        let sp_on_entry = self.sp;

        // Model the compiler's argument-passing stack traffic: the caller
        // stores each argument word, the callee loads it back.
        if self.config.model_call_overhead && !args.is_empty() {
            let bytes = 4 * args.len() as u32;
            if self.sp.saturating_sub(bytes) < STACK_LIMIT {
                return Err(RuntimeError::StackOverflow);
            }
            self.sp -= bytes;
            for (i, v) in args.iter().enumerate() {
                let addr = self.sp + 4 * i as u32;
                self.mem.write_u32(addr, v.as_int() as u32);
                self.emit_access(
                    layout::frame_instr(func_idx as u32, i as u32),
                    addr,
                    AccessKind::Write,
                );
            }
            for (i, _) in args.iter().enumerate() {
                let addr = self.sp + 4 * i as u32;
                self.emit_access(
                    layout::frame_instr(func_idx as u32, (args.len() + i) as u32),
                    addr,
                    AccessKind::Read,
                );
            }
        }

        let mut top = HashMap::new();
        for (param, value) in func.params.iter().zip(args) {
            top.insert(
                param.name.clone(),
                Slot::Reg { ty: param.ty.clone(), value: value.coerce_to(&param.ty) },
            );
        }
        self.frames.push(Frame { scopes: vec![top], sp_on_entry });
        let flow = self.exec_block(&func.body)?;
        let frame = self.frames.pop().expect("frame pushed above");
        self.sp = frame.sp_on_entry;
        let ret = match flow {
            Flow::Return(v) => v,
            _ => Value::zero(),
        };
        Ok(match &func.ret {
            Some(ty) => ret.coerce_to(ty),
            None => Value::zero(),
        })
    }

    // ---- statements ------------------------------------------------------

    fn exec_block(&mut self, block: &Block) -> RunResult<Flow> {
        self.frame().scopes.push(HashMap::new());
        let result = self.exec_stmts(&block.stmts);
        self.frame().scopes.pop();
        result
    }

    fn exec_stmts(&mut self, stmts: &[Stmt]) -> RunResult<Flow> {
        for stmt in stmts {
            match self.exec_stmt(stmt)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> RunResult<Flow> {
        self.step()?;
        match stmt {
            Stmt::LocalDecl { name, ty, array_len, init, .. } => {
                let slot = match array_len {
                    Some(len) => {
                        let size = (ty.size() * len + 3) & !3;
                        if self.sp.saturating_sub(size) < STACK_LIMIT {
                            return Err(RuntimeError::StackOverflow);
                        }
                        self.sp -= size;
                        Slot::Array { elem: Rc::new(ty.clone()), addr: self.sp }
                    }
                    None => {
                        let value = match init {
                            Some(e) => self.eval(e)?.coerce_to(ty),
                            None => Value::zero().coerce_to(ty),
                        };
                        Slot::Reg { ty: ty.clone(), value }
                    }
                };
                self.frame()
                    .scopes
                    .last_mut()
                    .expect("scope stack non-empty")
                    .insert(name.clone(), slot);
                Ok(Flow::Normal)
            }
            Stmt::Assign { target, op, value } => {
                match op.bin_op() {
                    None => {
                        let v = self.eval(value)?;
                        let place = self.eval_place(target)?;
                        self.store_place(&place, v)?;
                    }
                    Some(bop) => {
                        let place = self.eval_place(target)?;
                        let old = self.load_place(&place)?;
                        let rhs = self.eval(value)?;
                        let new = apply_compound(bop, &old, &rhs)?;
                        self.store_place(&place, new)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then_blk, else_blk } => {
                if self.eval(cond)?.is_truthy() {
                    self.exec_block(then_blk)
                } else if let Some(e) = else_blk {
                    self.exec_block(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body, .. } => {
                loop {
                    if !self.eval(cond)?.is_truthy() {
                        break;
                    }
                    match self.exec_block(body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::DoWhile { body, cond, .. } => {
                loop {
                    match self.exec_block(body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                    if !self.eval(cond)?.is_truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For { init, cond, step, body, .. } => {
                // The init declaration needs its own scope.
                self.frame().scopes.push(HashMap::new());
                let result = (|| -> RunResult<Flow> {
                    if let Some(i) = init {
                        self.exec_stmt(i)?;
                    }
                    loop {
                        if let Some(c) = cond {
                            if !self.eval(c)?.is_truthy() {
                                break;
                            }
                        }
                        match self.exec_block(body)? {
                            Flow::Normal | Flow::Continue => {}
                            Flow::Break => break,
                            ret @ Flow::Return(_) => return Ok(ret),
                        }
                        if let Some(s) = step {
                            self.exec_stmt(s)?;
                        }
                    }
                    Ok(Flow::Normal)
                })();
                self.frame().scopes.pop();
                result
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => Value::zero(),
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Block(b) => self.exec_block(b),
            Stmt::Checkpoint { loop_id, kind } => {
                self.emit_checkpoint(*loop_id, *kind);
                Ok(Flow::Normal)
            }
        }
    }

    // ---- builtins ---------------------------------------------------------

    /// Runs a builtin through the shared system-library implementation
    /// (`crate::syslib`) — one body for both engines, so library traffic
    /// cannot drift between them.
    fn call_builtin(&mut self, bi: usize, args: Vec<Value>) -> RunResult<Value> {
        let mut a = [0i64; 3];
        for (i, v) in args.iter().take(3).enumerate() {
            a[i] = v.as_int();
        }
        let mut ctx = crate::syslib::LibCtx {
            mem: &mut self.mem,
            heap: &mut self.heap,
            sink: &mut self.sink,
            outcome: &mut self.outcome,
            inputs: &self.inputs,
            rng_state: &mut self.rng_state,
        };
        Ok(match crate::syslib::call_builtin(&mut ctx, bi, a)? {
            crate::syslib::LibValue::Int(v) => Value::Int(v),
            crate::syslib::LibValue::MallocPtr(addr) => Value::ptr(addr, Type::Char),
            crate::syslib::LibValue::Zero => Value::zero(),
        })
    }
}

/// Adds `delta` elements to a pointer, or `delta` to an integer.
fn offset_value(v: &Value, delta: i64) -> Value {
    match v {
        Value::Int(n) => Value::Int(n.wrapping_add(delta)),
        Value::Ptr { addr, pointee } => Value::Ptr {
            addr: addr.wrapping_add(delta.wrapping_mul(pointee.size() as i64) as u32),
            pointee: pointee.clone(),
        },
    }
}

fn apply_compound(op: BinOp, old: &Value, rhs: &Value) -> RunResult<Value> {
    // `ptr += n` / `ptr -= n` preserve pointer-ness with scaling.
    if let Value::Ptr { .. } = old {
        match op {
            BinOp::Add => return Ok(offset_value(old, rhs.as_int())),
            BinOp::Sub => return Ok(offset_value(old, -rhs.as_int())),
            _ => {}
        }
    }
    // `AssignOp::bin_op` only yields the five arithmetic operators.
    Ok(Value::Int(int_binop(op, old.as_int(), rhs.as_int())?))
}

/// The one integer-arithmetic table both engines (and the bytecode
/// lowerer's constant folder) share: wrapping two's-complement arithmetic,
/// C-truncating division with a checked divisor, 63-masked shifts, and 0/1
/// comparisons. Centralized so the engines' byte-identity contract cannot
/// drift through a one-sided edit.
#[inline(always)]
pub(crate) fn int_binop(op: BinOp, a: i64, b: i64) -> RunResult<i64> {
    Ok(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return Err(RuntimeError::DivisionByZero);
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return Err(RuntimeError::DivisionByZero);
            }
            a.wrapping_rem(b)
        }
        BinOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinOp::Shr => a.wrapping_shr((b & 63) as u32),
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::BitXor => a ^ b,
        BinOp::Lt => (a < b) as i64,
        BinOp::Le => (a <= b) as i64,
        BinOp::Gt => (a > b) as i64,
        BinOp::Ge => (a >= b) as i64,
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
        BinOp::And | BinOp::Or => unreachable!("short-circuit forms never reach int_binop"),
    })
}

fn read_typed(mem: &Memory, addr: u32, ty: &Type) -> Value {
    match ty {
        Type::Int => Value::Int(mem.read_i32(addr)),
        Type::Char => Value::Int(mem.read_u8(addr) as i64),
        Type::Ptr(pointee) => {
            Value::Ptr { addr: mem.read_u32(addr), pointee: Rc::new((**pointee).clone()) }
        }
    }
}

fn write_typed(mem: &mut Memory, addr: u32, ty: &Type, value: i64) {
    match ty {
        Type::Int | Type::Ptr(_) => mem.write_u32(addr, value as u32),
        Type::Char => mem.write_u8(addr, value as u8),
    }
}
