//! AST → bytecode lowering (one pass over the checked program).
//!
//! Resolution happens **here, once**, instead of per-access at runtime:
//!
//! * every local/parameter name becomes a dense frame-slot index (scalars
//!   hold their value in the slot; local arrays hold the decayed pointer
//!   produced by their `AllocArray`);
//! * every global resolves to an absolute address in the
//!   [`minic_trace::layout::GLOBAL_BASE`] segment, laid out in declaration
//!   order exactly like the tree-walker's loader;
//! * every type is interned into the program's [`TypeTable`];
//! * every call resolves to a function index (builtins first, mirroring
//!   the oracle's lookup order).
//!
//! Evaluation *order* is preserved instruction by instruction — simple
//! assignment evaluates the value before the place, compound assignment
//! reads the place before the right-hand side, call arguments go left to
//! right — because trace byte-identity with the oracle depends on side
//! effects (access records) happening in the same sequence.

use crate::bytecode::{CompiledFunction, CompiledProgram, Op, TypeId, TypeTable};
use crate::interp::RuntimeError;
use minic::ast::*;
use minic_trace::layout;
use std::collections::HashMap;

/// Compiles a (checked, optionally instrumented) program to bytecode.
///
/// Lowering itself cannot fail: constructs the tree-walking oracle only
/// rejects at runtime (unknown names, `&scalar_local`, non-lvalue places)
/// become [`Op::Trap`] instructions that raise the identical
/// [`RuntimeError`] if and when they execute.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), minic::Error> {
/// let prog = minic::frontend("int a[4]; void main() { a[0] = 1; }")?;
/// let compiled = minic_sim::compile(&prog);
/// assert!(compiled.op_count() > 0);
/// # Ok(())
/// # }
/// ```
pub fn compile(prog: &Program) -> CompiledProgram {
    let mut lw = Lowerer::new(prog);
    lw.layout_globals();
    for (i, func) in prog.functions.iter().enumerate() {
        lw.lower_function(i, func);
    }
    let main = lw.func_idx.get("main").map(|&i| i as u32);
    let char_ty = lw.types.intern(&Type::Char);
    CompiledProgram {
        ops: lw.ops,
        functions: lw.functions,
        main,
        types: lw.types,
        traps: lw.traps,
        global_image: lw.global_image,
        char_ty,
    }
}

/// Where a name points, from the current lowering position.
enum VarRef {
    /// Local/parameter frame slot.
    Slot(u32, SlotInfo),
    /// Memory-resident global scalar.
    GlobalScalar { addr: u32, ty: TypeId },
    /// Global array (decays to a pointer; not itself an lvalue).
    GlobalArray { addr: u32, elem: TypeId },
    /// Not bound — the oracle raises `UnknownVariable` when executed.
    Unknown,
}

#[derive(Debug, Clone, Copy)]
struct SlotInfo {
    ty: TypeId,
    is_array: bool,
}

enum GlobalRef {
    Scalar { addr: u32, ty: TypeId },
    Array { addr: u32, elem: TypeId },
}

/// Break/continue patch lists for the innermost lowered loop.
#[derive(Default)]
struct LoopCtx {
    break_jumps: Vec<usize>,
    continue_jumps: Vec<usize>,
}

struct Lowerer<'p> {
    types: TypeTable,
    globals: HashMap<&'p str, GlobalRef>,
    global_image: Vec<(u32, TypeId, i64)>,
    func_idx: HashMap<&'p str, usize>,
    builtin_idx: HashMap<&'static str, usize>,
    ops: Vec<Op>,
    traps: Vec<RuntimeError>,
    functions: Vec<CompiledFunction>,
    prog: &'p Program,
    // Per-function state.
    scopes: Vec<HashMap<&'p str, u32>>,
    slots: Vec<SlotInfo>,
    loops: Vec<LoopCtx>,
    /// Peephole fence: the highest op index any jump label points at.
    /// Fusion never rewrites ops at or after a label, so every recorded
    /// jump target keeps its meaning.
    barrier: usize,
}

impl<'p> Lowerer<'p> {
    fn new(prog: &'p Program) -> Self {
        let func_idx =
            prog.functions.iter().enumerate().map(|(i, f)| (f.name.as_str(), i)).collect();
        let builtin_idx =
            minic::builtins::BUILTINS.iter().enumerate().map(|(i, b)| (b.name, i)).collect();
        Lowerer {
            types: TypeTable::new(),
            globals: HashMap::new(),
            global_image: Vec::new(),
            func_idx,
            builtin_idx,
            ops: Vec::new(),
            traps: Vec::new(),
            functions: Vec::new(),
            prog,
            scopes: Vec::new(),
            slots: Vec::new(),
            loops: Vec::new(),
            barrier: 0,
        }
    }

    /// Lays out globals at [`layout::GLOBAL_BASE`] in declaration order —
    /// bit-for-bit the tree-walker's loader, including 4-byte alignment —
    /// and records the initializer image.
    fn layout_globals(&mut self) {
        let mut next = layout::GLOBAL_BASE;
        for g in &self.prog.globals {
            let addr = next;
            next += (g.byte_size() + 3) & !3;
            let ty = self.types.intern(&g.ty);
            match g.array_len {
                Some(_) => {
                    for (i, v) in g.init.iter().enumerate() {
                        self.global_image.push((addr + i as u32 * g.ty.size(), ty, *v));
                    }
                    self.globals.insert(&g.name, GlobalRef::Array { addr, elem: ty });
                }
                None => {
                    if let Some(v) = g.init.first() {
                        self.global_image.push((addr, ty, *v));
                    }
                    self.globals.insert(&g.name, GlobalRef::Scalar { addr, ty });
                }
            }
        }
    }

    // ---- emission helpers -----------------------------------------------

    fn emit(&mut self, op: Op) {
        self.ops.push(op);
    }

    fn emit_trap(&mut self, err: RuntimeError) {
        let idx = self.traps.len() as u32;
        self.traps.push(err);
        self.ops.push(Op::Trap(idx));
    }

    /// Emits a placeholder jump, returning its index for [`Self::patch`].
    fn emit_jump(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    /// Returns the current position as a jump label, fencing it off from
    /// the peephole fusion in [`Self::emit_binary_op`].
    fn here(&mut self) -> u32 {
        self.barrier = self.ops.len();
        self.ops.len() as u32
    }

    /// Emits a non-short-circuit binary operator, fusing constant and
    /// slot-fed right-hand sides. Safe because a fused op replaces the ops
    /// it subsumes *in place* (jumps to the first subsumed op observe
    /// identical stack effects) and [`Self::here`] fences every label.
    fn emit_binary_op(&mut self, op: BinOp) {
        let n = self.ops.len();
        if self.barrier < n {
            if let Op::PushInt(k) = self.ops[n - 1] {
                if self.barrier < n - 1 {
                    if let Op::PushInt(a) = self.ops[n - 2] {
                        if let Some(v) = const_fold(op, a, k) {
                            self.ops.truncate(n - 2);
                            self.emit(Op::PushInt(v));
                            return;
                        }
                    }
                }
                self.ops[n - 1] = Op::BinaryImm { op, imm: k };
                return;
            }
            if let Op::LoadSlot(slot) = self.ops[n - 1] {
                self.ops[n - 1] = Op::BinarySlot { op, slot };
                return;
            }
        }
        self.emit(Op::Binary(op));
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.ops[at] {
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    // ---- name resolution ------------------------------------------------

    fn resolve(&self, name: &str) -> VarRef {
        for scope in self.scopes.iter().rev() {
            if let Some(&slot) = scope.get(name) {
                return VarRef::Slot(slot, self.slots[slot as usize]);
            }
        }
        match self.globals.get(name) {
            Some(GlobalRef::Scalar { addr, ty }) => VarRef::GlobalScalar { addr: *addr, ty: *ty },
            Some(GlobalRef::Array { addr, elem }) => {
                VarRef::GlobalArray { addr: *addr, elem: *elem }
            }
            None => VarRef::Unknown,
        }
    }

    fn new_slot(&mut self, info: SlotInfo) -> u32 {
        self.slots.push(info);
        (self.slots.len() - 1) as u32
    }

    fn bind(&mut self, name: &'p str, slot: u32) {
        self.scopes.last_mut().expect("scope stack non-empty").insert(name, slot);
    }

    // ---- functions ------------------------------------------------------

    fn lower_function(&mut self, _idx: usize, func: &'p Function) {
        let entry = self.here();
        self.scopes.clear();
        self.slots.clear();
        self.loops.clear();
        let mut top = HashMap::new();
        let mut params = Vec::with_capacity(func.params.len());
        for p in &func.params {
            let ty = self.types.intern(&p.ty);
            let slot = self.new_slot(SlotInfo { ty, is_array: false });
            top.insert(p.name.as_str(), slot);
            params.push(ty);
        }
        self.scopes.push(top);
        self.lower_block(&func.body);
        // Falling off the end returns zero (coerced by `Ret`).
        self.emit(Op::PushInt(0));
        self.emit(Op::Ret);
        self.scopes.pop();
        let ret = func.ret.as_ref().map(|t| self.types.intern(t));
        self.functions.push(CompiledFunction {
            name: func.name.clone(),
            entry,
            nslots: self.slots.len() as u32,
            params,
            ret,
        });
    }

    fn lower_block(&mut self, block: &'p Block) {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.lower_stmt(stmt);
        }
        self.scopes.pop();
    }

    // ---- statements -----------------------------------------------------

    fn lower_stmt(&mut self, stmt: &'p Stmt) {
        match stmt {
            Stmt::LocalDecl { name, ty, array_len, init, .. } => match array_len {
                Some(len) => {
                    let size = (ty.size() * len + 3) & !3;
                    let elem = self.types.intern(ty);
                    let slot = self.new_slot(SlotInfo { ty: elem, is_array: true });
                    self.emit(Op::AllocArray { slot, elem, size });
                    self.bind(name, slot);
                }
                None => {
                    match init {
                        Some(e) => self.lower_expr(e),
                        None => self.emit(Op::PushInt(0)),
                    }
                    let tyid = self.types.intern(ty);
                    let slot = self.new_slot(SlotInfo { ty: tyid, is_array: false });
                    self.emit(Op::StoreSlot { slot, ty: tyid });
                    // Bound only after the initializer: `int x = x;` reads
                    // the outer binding, exactly like the tree-walker.
                    self.bind(name, slot);
                }
            },
            Stmt::Assign { target, op, value } => self.lower_assign(target, *op, value),
            Stmt::Expr(e) => {
                self.lower_expr(e);
                self.emit(Op::Pop);
            }
            Stmt::If { cond, then_blk, else_blk } => {
                self.lower_expr(cond);
                let jf = self.emit_jump(Op::JumpIfFalse(0));
                self.lower_block(then_blk);
                match else_blk {
                    Some(els) => {
                        let jend = self.emit_jump(Op::Jump(0));
                        let here = self.here();
                        self.patch(jf, here);
                        self.lower_block(els);
                        let here = self.here();
                        self.patch(jend, here);
                    }
                    None => {
                        let here = self.here();
                        self.patch(jf, here);
                    }
                }
            }
            Stmt::While { cond, body, .. } => {
                let cond_label = self.here();
                self.lower_expr(cond);
                let jf = self.emit_jump(Op::JumpIfFalse(0));
                self.loops.push(LoopCtx::default());
                self.lower_block(body);
                self.emit(Op::Jump(cond_label));
                let end = self.here();
                self.patch(jf, end);
                let ctx = self.loops.pop().expect("loop ctx");
                for j in ctx.break_jumps {
                    self.patch(j, end);
                }
                for j in ctx.continue_jumps {
                    self.patch(j, cond_label);
                }
            }
            Stmt::DoWhile { body, cond, .. } => {
                let body_label = self.here();
                self.loops.push(LoopCtx::default());
                self.lower_block(body);
                let ctx = self.loops.pop().expect("loop ctx");
                let cond_label = self.here();
                self.lower_expr(cond);
                self.emit(Op::JumpIfTrue(body_label));
                let end = self.here();
                for j in ctx.break_jumps {
                    self.patch(j, end);
                }
                for j in ctx.continue_jumps {
                    self.patch(j, cond_label);
                }
            }
            Stmt::For { init, cond, step, body, .. } => {
                // The init declaration scopes over cond/step/body.
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.lower_stmt(i);
                }
                let cond_label = self.here();
                let jf = cond.as_ref().map(|c| {
                    self.lower_expr(c);
                    self.emit_jump(Op::JumpIfFalse(0))
                });
                self.loops.push(LoopCtx::default());
                self.lower_block(body);
                let ctx = self.loops.pop().expect("loop ctx");
                let step_label = self.here();
                if let Some(s) = step {
                    self.lower_stmt(s);
                }
                self.emit(Op::Jump(cond_label));
                let end = self.here();
                if let Some(j) = jf {
                    self.patch(j, end);
                }
                for j in ctx.break_jumps {
                    self.patch(j, end);
                }
                for j in ctx.continue_jumps {
                    // C semantics: continue runs the step.
                    self.patch(j, step_label);
                }
                self.scopes.pop();
            }
            Stmt::Return(e) => {
                match e {
                    Some(e) => self.lower_expr(e),
                    None => self.emit(Op::PushInt(0)),
                }
                self.emit(Op::Ret);
            }
            Stmt::Break => match self.loops.last_mut() {
                Some(_) => {
                    let j = self.emit_jump(Op::Jump(0));
                    self.loops.last_mut().expect("loop ctx").break_jumps.push(j);
                }
                None => {
                    // The oracle unwinds a stray break/continue to the end
                    // of the function, which returns zero.
                    self.emit(Op::PushInt(0));
                    self.emit(Op::Ret);
                }
            },
            Stmt::Continue => match self.loops.last_mut() {
                Some(_) => {
                    let j = self.emit_jump(Op::Jump(0));
                    self.loops.last_mut().expect("loop ctx").continue_jumps.push(j);
                }
                None => {
                    self.emit(Op::PushInt(0));
                    self.emit(Op::Ret);
                }
            },
            Stmt::Block(b) => self.lower_block(b),
            Stmt::Checkpoint { loop_id, kind } => {
                self.emit(Op::Checkpoint { loop_id: loop_id.0, kind: *kind });
            }
        }
    }

    fn lower_assign(&mut self, target: &'p Expr, op: AssignOp, value: &'p Expr) {
        match op.bin_op() {
            // Simple assignment: the oracle evaluates the value first,
            // then resolves the place.
            None => match target {
                Expr::Var { name, site, .. } => {
                    self.lower_expr(value);
                    match self.resolve(name) {
                        VarRef::Slot(slot, info) if !info.is_array => {
                            self.emit(Op::StoreSlot { slot, ty: info.ty });
                        }
                        VarRef::GlobalScalar { addr, ty } => {
                            self.emit(Op::StoreGlobal { addr, ty, site: site.0 });
                        }
                        // Array names and unknowns: `minic::check` rejects
                        // these; the oracle raises UnknownVariable after
                        // evaluating the value.
                        VarRef::Slot(..) | VarRef::GlobalArray { .. } | VarRef::Unknown => {
                            self.emit_trap(RuntimeError::UnknownVariable { name: name.clone() });
                        }
                    }
                }
                Expr::Index { .. } | Expr::Deref { .. } => {
                    self.lower_expr(value);
                    if let Some(site) = self.lower_place_ptr(target) {
                        self.emit(Op::Swap);
                        self.emit(Op::StoreThru { site });
                    }
                }
                other => {
                    self.lower_expr(value);
                    self.emit_trap(non_lvalue(other));
                }
            },
            // Compound assignment: place first, then load, then the
            // right-hand side.
            Some(bop) => match target {
                Expr::Var { name, site, .. } => match self.resolve(name) {
                    VarRef::Slot(slot, info) if !info.is_array => {
                        self.emit(Op::LoadSlot(slot));
                        self.lower_expr(value);
                        self.emit(Op::Compound(bop));
                        self.emit(Op::StoreSlot { slot, ty: info.ty });
                    }
                    VarRef::Slot(slot, _) => {
                        // `arr += n`: the oracle loads the decayed pointer,
                        // evaluates the rhs, and only then fails the store.
                        self.emit(Op::LoadSlot(slot));
                        self.lower_expr(value);
                        self.emit(Op::Compound(bop));
                        self.emit_trap(RuntimeError::UnknownVariable { name: name.clone() });
                    }
                    VarRef::GlobalScalar { addr, ty } => {
                        self.emit(Op::LoadGlobal { addr, ty, site: site.0 });
                        self.lower_expr(value);
                        self.emit(Op::Compound(bop));
                        self.emit(Op::StoreGlobal { addr, ty, site: site.0 });
                    }
                    VarRef::GlobalArray { .. } | VarRef::Unknown => {
                        self.emit_trap(RuntimeError::UnknownVariable { name: name.clone() });
                    }
                },
                Expr::Index { .. } | Expr::Deref { .. } => {
                    if let Some(site) = self.lower_place_ptr(target) {
                        self.emit(Op::Dup);
                        self.emit(Op::LoadThru { site });
                        self.lower_expr(value);
                        self.emit(Op::Compound(bop));
                        self.emit(Op::StoreThru { site });
                    }
                }
                other => self.emit_trap(non_lvalue(other)),
            },
        }
    }

    /// Lowers the address computation of a memory place (`a[i]`, `*p`),
    /// leaving a typed pointer on the stack. Returns the access site, or
    /// `None` if the expression was not a memory lvalue (a trap was
    /// emitted).
    fn lower_place_ptr(&mut self, e: &'p Expr) -> Option<u32> {
        match e {
            Expr::Index { base, index, site, .. } => {
                self.lower_expr(base);
                self.lower_expr(index);
                self.emit(Op::IndexPtr);
                Some(site.0)
            }
            Expr::Deref { ptr, site, .. } => {
                self.lower_expr(ptr);
                Some(site.0)
            }
            other => {
                self.emit_trap(non_lvalue(other));
                None
            }
        }
    }

    // ---- expressions ----------------------------------------------------

    fn lower_expr(&mut self, e: &'p Expr) {
        match e {
            Expr::IntLit(v) => self.emit(Op::PushInt(*v)),
            Expr::Var { name, site, .. } => match self.resolve(name) {
                // Scalars hold their value, arrays their decayed pointer —
                // both are a plain slot read.
                VarRef::Slot(slot, _) => self.emit(Op::LoadSlot(slot)),
                VarRef::GlobalScalar { addr, ty } => {
                    self.emit(Op::LoadGlobal { addr, ty, site: site.0 });
                }
                VarRef::GlobalArray { addr, elem } => {
                    self.emit(Op::PushPtr { addr, pointee: elem });
                }
                VarRef::Unknown => {
                    self.emit_trap(RuntimeError::UnknownVariable { name: name.clone() });
                }
            },
            Expr::Index { .. } | Expr::Deref { .. } => {
                if let Some(site) = self.lower_place_ptr(e) {
                    self.emit(Op::LoadThru { site });
                }
            }
            Expr::AddrOf { lvalue, .. } => self.lower_addr_of(lvalue),
            Expr::Unary { op, expr } => {
                self.lower_expr(expr);
                self.emit(Op::Unary(*op));
            }
            Expr::Binary { op, lhs, rhs } => self.lower_binary(*op, lhs, rhs),
            Expr::IncDec { op, target } => self.lower_incdec(*op, target),
            Expr::Cond { cond, then, els } => {
                self.lower_expr(cond);
                let jf = self.emit_jump(Op::JumpIfFalse(0));
                self.lower_expr(then);
                let jend = self.emit_jump(Op::Jump(0));
                let here = self.here();
                self.patch(jf, here);
                self.lower_expr(els);
                let here = self.here();
                self.patch(jend, here);
            }
            Expr::Call { name, args, .. } => {
                if let Some(&bi) = self.builtin_idx.get(name.as_str()) {
                    for a in args {
                        self.lower_expr(a);
                    }
                    self.emit(Op::CallBuiltin { builtin: bi as u32, nargs: args.len() as u32 });
                } else if let Some(&fi) = self.func_idx.get(name.as_str()) {
                    for a in args {
                        self.lower_expr(a);
                    }
                    self.emit(Op::Call { func: fi as u32, nargs: args.len() as u32 });
                } else {
                    // The oracle fails the lookup before evaluating any
                    // argument.
                    self.emit_trap(RuntimeError::UnknownFunction { name: name.clone() });
                }
            }
        }
    }

    fn lower_binary(&mut self, op: BinOp, lhs: &'p Expr, rhs: &'p Expr) {
        match op {
            BinOp::And => {
                self.lower_expr(lhs);
                let jf = self.emit_jump(Op::JumpIfFalse(0));
                self.lower_expr(rhs);
                self.emit(Op::Truthy);
                let jend = self.emit_jump(Op::Jump(0));
                let here = self.here();
                self.patch(jf, here);
                self.emit(Op::PushInt(0));
                let here = self.here();
                self.patch(jend, here);
            }
            BinOp::Or => {
                self.lower_expr(lhs);
                let jt = self.emit_jump(Op::JumpIfTrue(0));
                self.lower_expr(rhs);
                self.emit(Op::Truthy);
                let jend = self.emit_jump(Op::Jump(0));
                let here = self.here();
                self.patch(jt, here);
                self.emit(Op::PushInt(1));
                let here = self.here();
                self.patch(jend, here);
            }
            _ => {
                self.lower_expr(lhs);
                self.lower_expr(rhs);
                self.emit_binary_op(op);
            }
        }
    }

    fn lower_incdec(&mut self, op: IncDec, target: &'p Expr) {
        let (delta, post) = (op.delta() as i8, op.is_post());
        match target {
            Expr::Var { name, site, .. } => match self.resolve(name) {
                VarRef::Slot(slot, info) if !info.is_array => {
                    self.emit(Op::IncDecSlot { slot, ty: info.ty, delta, post });
                }
                VarRef::Slot(..) => {
                    // `arr++`: load and offset succeed, the store fails.
                    self.emit_trap(RuntimeError::UnknownVariable { name: name.clone() });
                }
                VarRef::GlobalScalar { addr, ty } => {
                    self.emit(Op::IncDecGlobal { addr, ty, site: site.0, delta, post });
                }
                VarRef::GlobalArray { .. } | VarRef::Unknown => {
                    self.emit_trap(RuntimeError::UnknownVariable { name: name.clone() });
                }
            },
            Expr::Index { .. } | Expr::Deref { .. } => {
                if let Some(site) = self.lower_place_ptr(target) {
                    self.emit(Op::IncDecThru { site, delta, post });
                }
            }
            other => self.emit_trap(non_lvalue(other)),
        }
    }

    fn lower_addr_of(&mut self, lvalue: &'p Expr) {
        match lvalue {
            Expr::Var { name, .. } => match self.resolve(name) {
                VarRef::Slot(slot, info) if info.is_array => self.emit(Op::LoadSlot(slot)),
                VarRef::Slot(..) => {
                    self.emit_trap(RuntimeError::AddressOfRegister { name: name.clone() });
                }
                VarRef::GlobalScalar { addr, ty } => {
                    self.emit(Op::PushPtr { addr, pointee: ty });
                }
                VarRef::GlobalArray { addr, elem } => {
                    self.emit(Op::PushPtr { addr, pointee: elem });
                }
                VarRef::Unknown => {
                    self.emit_trap(RuntimeError::UnknownVariable { name: name.clone() });
                }
            },
            // `&a[i]` / `&*p`: compute the place without accessing it.
            Expr::Index { base, index, .. } => {
                self.lower_expr(base);
                self.lower_expr(index);
                self.emit(Op::IndexPtr);
            }
            Expr::Deref { ptr, .. } => {
                self.lower_expr(ptr);
                self.emit(Op::CheckPtr);
            }
            other => self.emit_trap(non_lvalue(other)),
        }
    }
}

/// The oracle's `eval_place` error for non-lvalue expressions, byte for
/// byte (it embeds the AST node's `Debug` form).
fn non_lvalue(e: &Expr) -> RuntimeError {
    RuntimeError::DerefNonPointer { found: format!("non-lvalue expression {e:?}") }
}

/// Folds `a op b` over integer literals via the engines' shared
/// [`int_binop`] table. Division by a zero literal is *not* folded — it
/// must keep raising its runtime error at the original point — and the
/// short-circuit forms never reach the folder (they lower to jumps).
fn const_fold(op: BinOp, a: i64, b: i64) -> Option<i64> {
    if matches!(op, BinOp::And | BinOp::Or) {
        return None;
    }
    crate::interp::int_binop(op, a, b).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_src(src: &str) -> CompiledProgram {
        let prog = minic::frontend(src).expect("valid program");
        compile(&prog)
    }

    #[test]
    fn figure4_compiles_to_a_reasonable_program() {
        let c = compile_src(
            "char q[10000]; char *ptr;
             void main() { int i; int t1 = 98; ptr = q;
               while (t1 < 100) { t1++; ptr += 100;
                 for (i = 40; i > 37; i--) { *ptr++ = i*i % 256; } } }",
        );
        assert_eq!(c.functions.len(), 1);
        assert_eq!(c.main, Some(0));
        assert!(c.traps.is_empty());
        // i, t1 as slots; q/ptr are globals.
        assert_eq!(c.functions[0].nslots, 2);
        assert!(c.ops.iter().any(|op| matches!(op, Op::Checkpoint { .. })));
        assert!(c.ops.iter().any(|op| matches!(op, Op::IncDecGlobal { .. })));
        // The disassembly renders without panicking.
        assert!(c.to_string().contains("main:"));
    }

    #[test]
    fn unknown_names_lower_to_traps_not_failures() {
        let mut prog = minic::parse("void main() { }").unwrap();
        // Synthesize an unchecked call to an unknown function.
        prog.functions[0].body.stmts.push(Stmt::Expr(Expr::Call {
            name: "nope".into(),
            args: vec![],
            loc: Default::default(),
        }));
        let c = compile(&prog);
        assert_eq!(c.traps, vec![RuntimeError::UnknownFunction { name: "nope".into() }]);
    }

    #[test]
    fn global_image_matches_declaration_order() {
        let c = compile_src("int g = 7; int t[4] = { 10, 20 }; void main() { }");
        let values: Vec<i64> = c.global_image.iter().map(|(_, _, v)| *v).collect();
        assert_eq!(values, vec![7, 10, 20]);
        // t starts 4-byte aligned after g.
        assert_eq!(c.global_image[1].0, layout::GLOBAL_BASE + 4);
    }
}
