//! Flat, sparse, byte-addressable memory with the segment layout of
//! [`minic_trace::layout`]: globals low, heap growing up, stack growing down
//! from just under `0x8000_0000` — the same flavour as the paper's
//! SimpleScalar runs (its Fig. 4 trace shows stack addresses `0x7fff_xxxx`).

use minic_trace::layout;
use std::collections::HashMap;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;
/// Second-level fan-out: each directory node covers 4 MiB.
const NODE_LEN: usize = 1 << 10;
/// Top-level fan-out over the 32-bit space.
const DIR_LEN: usize = 1 << 10;

type Leaf = [u8; PAGE_SIZE];
type Node = [Option<Box<Leaf>>; NODE_LEN];

const NO_LEAF: Option<Box<Leaf>> = None;

/// Sparse byte memory. Any 32-bit address is readable/writable; untouched
/// bytes read as zero (the simulator zero-initializes, like a loader's BSS).
///
/// Storage is a two-level page directory (10 + 10 + 12 bit split): a load
/// or store is two array indexes and two pointer hops — no hashing — which
/// is what keeps both execution engines' `Memory` traffic cheap relative
/// to their own dispatch overhead.
#[derive(Debug, Clone)]
pub struct Memory {
    dir: Vec<Option<Box<Node>>>,
}

impl Default for Memory {
    fn default() -> Self {
        Memory::new()
    }
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory { dir: vec![None; DIR_LEN] }
    }

    #[inline]
    fn page(&self, addr: u32) -> Option<&Leaf> {
        let node = self.dir[(addr >> (PAGE_BITS + 10)) as usize].as_deref()?;
        node[((addr >> PAGE_BITS) as usize) & (NODE_LEN - 1)].as_deref()
    }

    fn page_mut(&mut self, addr: u32) -> &mut Leaf {
        let node = self.dir[(addr >> (PAGE_BITS + 10)) as usize]
            .get_or_insert_with(|| Box::new([NO_LEAF; NODE_LEN]));
        node[((addr >> PAGE_BITS) as usize) & (NODE_LEN - 1)]
            .get_or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.page(addr) {
            Some(page) => page[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads a little-endian u32 (no alignment requirement, as on the
    /// paper's PISA-like target accesses are byte-granular in the trace).
    /// Words within one page — the overwhelmingly common case — cost a
    /// single page walk.
    #[inline]
    pub fn read_u32(&self, addr: u32) -> u32 {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + 4 <= PAGE_SIZE {
            match self.page(addr) {
                Some(page) => {
                    u32::from_le_bytes(page[off..off + 4].try_into().expect("4-byte slice"))
                }
                None => 0,
            }
        } else {
            let mut bytes = [0u8; 4];
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = self.read_u8(addr.wrapping_add(i as u32));
            }
            u32::from_le_bytes(bytes)
        }
    }

    /// Writes a little-endian u32.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + 4 <= PAGE_SIZE {
            self.page_mut(addr)[off..off + 4].copy_from_slice(&value.to_le_bytes());
        } else {
            for (i, b) in value.to_le_bytes().iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u32), *b);
            }
        }
    }

    /// Reads a sign-extended i32.
    pub fn read_i32(&self, addr: u32) -> i64 {
        self.read_u32(addr) as i32 as i64
    }

    /// Number of resident pages (diagnostic).
    pub fn resident_pages(&self) -> usize {
        self.dir
            .iter()
            .flatten()
            .map(|node| node.iter().filter(|leaf| leaf.is_some()).count())
            .sum()
    }
}

/// Bump allocator over the heap segment, with simple free accounting.
///
/// `free` does not recycle memory (a bump allocator cannot); it only checks
/// that the pointer was live and counts the release. That is enough for the
/// reproduction: what matters is the *addresses* malloc hands out and the
/// library traffic it generates, not fragmentation behaviour.
#[derive(Debug, Clone)]
pub struct Heap {
    next: u32,
    live: HashMap<u32, u32>,
    /// Total bytes ever allocated.
    pub allocated_bytes: u64,
    /// Number of `malloc` calls.
    pub allocations: u64,
    /// Number of `free` calls.
    pub frees: u64,
}

impl Default for Heap {
    fn default() -> Self {
        Heap::new()
    }
}

impl Heap {
    /// Creates an empty heap starting at [`layout::HEAP_BASE`].
    pub fn new() -> Self {
        Heap {
            next: layout::HEAP_BASE,
            live: HashMap::new(),
            allocated_bytes: 0,
            allocations: 0,
            frees: 0,
        }
    }

    /// Allocates `size` bytes, 8-byte aligned, leaving a 4-byte metadata
    /// header before the returned block (the header address is what the
    /// library traffic touches).
    ///
    /// Returns `None` if the heap would collide with the stack ceiling.
    pub fn alloc(&mut self, size: u32) -> Option<HeapBlock> {
        let header = self.next;
        let user = header.checked_add(8)?;
        let end = user.checked_add(size.max(1))?;
        // Round the next pointer up to 8.
        let next = end.checked_add(7)? & !7;
        if next >= layout::STACK_TOP {
            return None;
        }
        self.next = next;
        self.live.insert(user, size);
        self.allocated_bytes += size as u64;
        self.allocations += 1;
        Some(HeapBlock { header, user })
    }

    /// Releases a block. Returns `false` for unknown/double frees.
    pub fn free(&mut self, user_addr: u32) -> bool {
        self.frees += 1;
        self.live.remove(&user_addr).is_some()
    }

    /// Number of live allocations.
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }
}

/// Result of a heap allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapBlock {
    /// Metadata header address (library-touched).
    pub header: u32,
    /// First usable byte handed to the program.
    pub user: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let mem = Memory::new();
        assert_eq!(mem.read_u8(0x1234_5678), 0);
        assert_eq!(mem.read_u32(layout::GLOBAL_BASE), 0);
    }

    #[test]
    fn byte_and_word_round_trip() {
        let mut mem = Memory::new();
        mem.write_u8(0x1000_0000, 0xab);
        assert_eq!(mem.read_u8(0x1000_0000), 0xab);
        mem.write_u32(0x1000_0010, 0xdead_beef);
        assert_eq!(mem.read_u32(0x1000_0010), 0xdead_beef);
    }

    #[test]
    fn word_crossing_page_boundary() {
        let mut mem = Memory::new();
        let addr = (1 << PAGE_BITS) - 2;
        mem.write_u32(addr as u32, 0x0102_0304);
        assert_eq!(mem.read_u32(addr as u32), 0x0102_0304);
    }

    #[test]
    fn sign_extension() {
        let mut mem = Memory::new();
        mem.write_u32(0x10, 0xffff_ffff);
        assert_eq!(mem.read_i32(0x10), -1);
    }

    #[test]
    fn heap_allocates_disjoint_aligned_blocks() {
        let mut heap = Heap::new();
        let a = heap.alloc(100).unwrap();
        let b = heap.alloc(100).unwrap();
        assert!(a.user >= layout::HEAP_BASE);
        assert_eq!(a.user % 8, 0);
        assert!(b.user >= a.user + 100);
        assert_eq!(heap.live_blocks(), 2);
        assert!(heap.free(a.user));
        assert!(!heap.free(a.user), "double free detected");
        assert_eq!(heap.live_blocks(), 1);
    }

    #[test]
    fn heap_zero_size_allocation_is_distinct() {
        let mut heap = Heap::new();
        let a = heap.alloc(0).unwrap();
        let b = heap.alloc(0).unwrap();
        assert_ne!(a.user, b.user);
    }

    #[test]
    fn heap_exhaustion() {
        let mut heap = Heap::new();
        assert!(heap.alloc(u32::MAX).is_none());
    }
}
