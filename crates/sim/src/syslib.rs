//! The simulated "system library": one implementation of every builtin,
//! shared by both execution engines.
//!
//! Byte-identity between the tree-walker and the VM depends on builtins
//! having *identical* side effects — the memset/memcpy word-split loops,
//! `print_int`'s I/O-buffer address formula, `rand`'s xorshift constants,
//! `input`'s address math, the allocator's header traffic. Centralizing
//! the bodies here (over a [`LibCtx`] view of whichever engine is running)
//! makes a one-sided edit impossible.
//!
//! Builtins only ever consume integer views of their arguments, so the
//! engines pass a fixed `[i64; 3]` (max arity is 3; missing arguments read
//! as 0, like the oracle's historical `args.get(i).map_or(0, ..)`). The
//! one pointer-producing builtin (`malloc`) returns [`LibValue::MallocPtr`]
//! and each engine tags it with its own `char` representation.

use crate::interp::{RuntimeError, SimOutcome};
use crate::mem::{Heap, Memory};
use minic::builtins::{BuiltinKind, BUILTINS};
use minic_trace::layout;
use minic_trace::{AccessKind, Record, TraceSink};

/// Mutable view of the engine state a builtin may touch.
pub(crate) struct LibCtx<'a, S: TraceSink> {
    pub mem: &'a mut Memory,
    pub heap: &'a mut Heap,
    pub sink: &'a mut S,
    pub outcome: &'a mut SimOutcome,
    pub inputs: &'a [i64],
    pub rng_state: &'a mut u64,
}

/// Engine-agnostic builtin result.
pub(crate) enum LibValue {
    /// Plain integer result.
    Int(i64),
    /// `malloc`'s user pointer (each engine tags it as `char*`).
    MallocPtr(u32),
    /// `void` builtins (the engines push their zero value).
    Zero,
}

impl<S: TraceSink> LibCtx<'_, S> {
    fn emit(&mut self, builtin: usize, slot: u32, addr: u32, kind: AccessKind) {
        self.outcome.accesses += 1;
        self.sink.record(&Record::Access(minic_trace::Access {
            instr: layout::library_instr(builtin as u32, slot),
            addr: minic_trace::MemAddr(addr),
            kind,
        }));
    }
}

/// Executes builtin `bi` (index into [`BUILTINS`]) with integer argument
/// views. Trace traffic, memory effects, and errors are identical no
/// matter which engine calls.
pub(crate) fn call_builtin<S: TraceSink>(
    ctx: &mut LibCtx<'_, S>,
    bi: usize,
    args: [i64; 3],
) -> Result<LibValue, RuntimeError> {
    let arg = |i: usize| args[i];
    match BUILTINS[bi].kind {
        BuiltinKind::Malloc => {
            let size = arg(0);
            let size = u32::try_from(size)
                .map_err(|_| RuntimeError::BadBuiltinArgument { builtin: "malloc", value: size })?;
            let block = ctx.heap.alloc(size).ok_or(RuntimeError::HeapExhausted)?;
            ctx.outcome.heap_allocations += 1;
            // Allocator writes its size header.
            ctx.mem.write_u32(block.header, size);
            ctx.emit(bi, 0, block.header, AccessKind::Write);
            Ok(LibValue::MallocPtr(block.user))
        }
        BuiltinKind::Free => {
            let addr = arg(0) as u32;
            // Allocator reads the header back.
            ctx.emit(bi, 0, addr.wrapping_sub(8), AccessKind::Read);
            ctx.heap.free(addr);
            Ok(LibValue::Zero)
        }
        BuiltinKind::Memset => {
            let (dst, val, n) = (arg(0) as u32, arg(1) as u8, arg(2));
            let n = checked_len("memset", n)?;
            let mut off = 0;
            while off + 4 <= n {
                let word = u32::from_le_bytes([val; 4]);
                ctx.mem.write_u32(dst + off, word);
                ctx.emit(bi, 0, dst + off, AccessKind::Write);
                off += 4;
            }
            while off < n {
                ctx.mem.write_u8(dst + off, val);
                ctx.emit(bi, 1, dst + off, AccessKind::Write);
                off += 1;
            }
            Ok(LibValue::Zero)
        }
        BuiltinKind::Memcpy => {
            let (dst, src, n) = (arg(0) as u32, arg(1) as u32, arg(2));
            let n = checked_len("memcpy", n)?;
            let mut off = 0;
            while off + 4 <= n {
                let word = ctx.mem.read_u32(src + off);
                ctx.emit(bi, 0, src + off, AccessKind::Read);
                ctx.mem.write_u32(dst + off, word);
                ctx.emit(bi, 1, dst + off, AccessKind::Write);
                off += 4;
            }
            while off < n {
                let b = ctx.mem.read_u8(src + off);
                ctx.emit(bi, 2, src + off, AccessKind::Read);
                ctx.mem.write_u8(dst + off, b);
                ctx.emit(bi, 3, dst + off, AccessKind::Write);
                off += 1;
            }
            Ok(LibValue::Zero)
        }
        BuiltinKind::PrintInt => {
            let v = arg(0);
            // Stage the value through the I/O buffer, like printf's
            // internal buffering would.
            let pos = (ctx.outcome.printed.len() as u32 % 16) * 4;
            let addr = layout::LIB_DATA_BASE + 0x40 + pos;
            ctx.mem.write_u32(addr, v as u32);
            ctx.emit(bi, 0, addr, AccessKind::Write);
            ctx.outcome.printed.push(v);
            Ok(LibValue::Zero)
        }
        BuiltinKind::Input => {
            let idx = arg(0);
            let value = if ctx.inputs.is_empty() {
                0
            } else {
                let i = (idx.rem_euclid(ctx.inputs.len() as i64)) as usize;
                ctx.inputs[i]
            };
            let addr = layout::LIB_DATA_BASE + 0x100 + ((idx.rem_euclid(1024)) as u32) * 4;
            ctx.emit(bi, 0, addr, AccessKind::Read);
            Ok(LibValue::Int(value))
        }
        BuiltinKind::Rand => {
            // xorshift*; reads and writes its static state like libc.
            let state_addr = layout::LIB_DATA_BASE;
            ctx.emit(bi, 0, state_addr, AccessKind::Read);
            let mut x = *ctx.rng_state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            *ctx.rng_state = x;
            ctx.emit(bi, 1, state_addr, AccessKind::Write);
            let v = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 33) as i64;
            Ok(LibValue::Int(v & 0x7fff_ffff))
        }
        BuiltinKind::Srand => {
            *ctx.rng_state = (arg(0) as u64) | 1;
            ctx.emit(bi, 0, layout::LIB_DATA_BASE, AccessKind::Write);
            Ok(LibValue::Zero)
        }
        BuiltinKind::Abs => Ok(LibValue::Int(arg(0).wrapping_abs())),
        BuiltinKind::Min => Ok(LibValue::Int(arg(0).min(arg(1)))),
        BuiltinKind::Max => Ok(LibValue::Int(arg(0).max(arg(1)))),
    }
}

/// Validates a length argument for `memset`/`memcpy`.
fn checked_len(builtin: &'static str, n: i64) -> Result<u32, RuntimeError> {
    if !(0..=0x1000_0000).contains(&n) {
        Err(RuntimeError::BadBuiltinArgument { builtin, value: n })
    } else {
        Ok(n as u32)
    }
}
