//! Flat bytecode for the compiled execution engine.
//!
//! The lowering pass (`crate::lower`) walks a checked program **once**,
//! resolves every name to a numeric frame slot or a global address, interns
//! every type into a dense [`TypeTable`], and emits one flat [`Op`] stream
//! per program. The VM (`crate::vm`) then executes slots out of a
//! contiguous `Vec<VmValue>` with zero string hashing and zero `Type`
//! clones on the hot path, producing a trace byte-identical to the
//! tree-walking oracle (`crate::Interp`).
//!
//! Design notes:
//!
//! * **Stack machine.** Expression lowering mirrors the oracle's
//!   evaluation order exactly (left-to-right operands, value-before-place
//!   for simple assignment, place-before-value for compound assignment),
//!   which is what makes the emitted trace records arrive in the same
//!   order.
//! * **Sites stay static.** Every memory-touching op carries the
//!   [`minic::SiteId`] index it was lowered from, so the synthetic
//!   instruction addresses in the trace are decided at compile time.
//! * **Errors are values.** Constructs the oracle only rejects *when
//!   executed* (unknown names, `&scalar_local`, assignment to an array
//!   name) lower to a [`Op::Trap`] carrying the identical
//!   [`RuntimeError`], so even most programs that skipped `minic::check`
//!   behave the same. The byte-identity *guarantee*, however, covers
//!   checked programs: on arity-mismatched calls (which `minic::check`
//!   rejects) the VM zero-initializes the missing parameter slots, where
//!   the oracle leaves those names unbound.

use crate::interp::RuntimeError;
use minic::ast::{BinOp, CheckpointKind, UnOp};
use minic::Type;
use std::collections::HashMap;
use std::fmt;

/// Handle to an interned [`Type`] in a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TypeId(pub u32);

/// Storage class of an interned type — everything the VM needs at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TyKind {
    /// 32-bit signed integer (4 bytes in memory).
    Int,
    /// 8-bit unsigned char (1 byte in memory).
    Char,
    /// Pointer; the payload is the interned pointee.
    Ptr(TypeId),
}

/// One interned type.
#[derive(Debug, Clone)]
pub struct TypeInfo {
    /// Storage class (with interned pointee for pointers).
    pub kind: TyKind,
    /// Size in bytes when stored in memory.
    pub size: u32,
    /// C spelling, used only for diagnostics (`int`, `char*`, ...).
    pub name: String,
}

/// Dense type interner shared by the compiler and the VM.
#[derive(Debug, Default, Clone)]
pub struct TypeTable {
    infos: Vec<TypeInfo>,
    index: HashMap<Type, TypeId>,
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        TypeTable::default()
    }

    /// Interns a type (and, recursively, its pointee chain).
    pub fn intern(&mut self, ty: &Type) -> TypeId {
        if let Some(id) = self.index.get(ty) {
            return *id;
        }
        let kind = match ty {
            Type::Int => TyKind::Int,
            Type::Char => TyKind::Char,
            Type::Ptr(inner) => TyKind::Ptr(self.intern(inner)),
        };
        let id = TypeId(self.infos.len() as u32);
        self.infos.push(TypeInfo { kind, size: ty.size(), name: ty.to_string() });
        self.index.insert(ty.clone(), id);
        id
    }

    /// Storage class of `id`.
    #[inline]
    pub fn kind(&self, id: TypeId) -> TyKind {
        self.infos[id.0 as usize].kind
    }

    /// In-memory size of `id`, in bytes.
    #[inline]
    pub fn size(&self, id: TypeId) -> u32 {
        self.infos[id.0 as usize].size
    }

    /// C spelling of `id` (diagnostics only).
    pub fn name(&self, id: TypeId) -> &str {
        &self.infos[id.0 as usize].name
    }

    /// Number of interned types.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }
}

/// A VM runtime value: the `Copy` analogue of [`crate::Value`], with the
/// pointee type replaced by a [`TypeId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmValue {
    /// Integer (also chars and booleans).
    Int(i64),
    /// Typed pointer into the simulated address space.
    Ptr {
        /// Byte address.
        addr: u32,
        /// Interned pointee type.
        pointee: TypeId,
    },
}

impl VmValue {
    /// The canonical zero value.
    #[inline]
    pub fn zero() -> VmValue {
        VmValue::Int(0)
    }

    /// Numeric view: pointers expose their address.
    #[inline]
    pub fn as_int(self) -> i64 {
        match self {
            VmValue::Int(v) => v,
            VmValue::Ptr { addr, .. } => addr as i64,
        }
    }

    /// C truthiness.
    #[inline]
    pub fn is_truthy(self) -> bool {
        self.as_int() != 0
    }

    /// Renders the value exactly like [`crate::Value`]'s `Display`
    /// (needed so VM runtime errors match the oracle's byte for byte).
    pub fn display(self, types: &TypeTable) -> String {
        match self {
            VmValue::Int(v) => v.to_string(),
            VmValue::Ptr { addr, pointee } => format!("({}*)0x{addr:x}", types.name(pointee)),
        }
    }
}

/// One bytecode instruction.
///
/// Stack-effect notation: `[a b] -> [c]` pops `b` then `a`, pushes `c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `[] -> [n]` — push a literal.
    PushInt(i64),
    /// `[v] -> []` — discard the top of stack.
    Pop,
    /// `[v] -> [v v]` — duplicate the top of stack.
    Dup,
    /// `[a b] -> [b a]` — swap the two topmost values.
    Swap,
    /// `[] -> [v]` — push the current frame's slot (register value or the
    /// decayed pointer of a local array).
    LoadSlot(u32),
    /// `[v] -> []` — coerce to the slot's declared type and store.
    StoreSlot {
        /// Frame slot index.
        slot: u32,
        /// Declared type (coercion target).
        ty: TypeId,
    },
    /// `[] -> [old|new]` — `++`/`--` on a register slot.
    IncDecSlot {
        /// Frame slot index.
        slot: u32,
        /// Declared type (coercion target for the stored value).
        ty: TypeId,
        /// +1 or -1.
        delta: i8,
        /// Push the pre-update value (postfix) instead of the new one.
        post: bool,
    },
    /// `[] -> [v]` — load a memory-resident global scalar, emitting a read
    /// access record at `site`.
    LoadGlobal {
        /// Absolute address of the scalar.
        addr: u32,
        /// Scalar type (decides load width/signedness).
        ty: TypeId,
        /// Access-site index (`layout::user_instr`).
        site: u32,
    },
    /// `[v] -> []` — store a global scalar, emitting a write access record.
    StoreGlobal {
        /// Absolute address of the scalar.
        addr: u32,
        /// Scalar type (decides store width).
        ty: TypeId,
        /// Access-site index.
        site: u32,
    },
    /// `[] -> [old|new]` — `++`/`--` on a global scalar (read + write
    /// records, like the oracle's load/store pair).
    IncDecGlobal {
        /// Absolute address of the scalar.
        addr: u32,
        /// Scalar type.
        ty: TypeId,
        /// Access-site index.
        site: u32,
        /// +1 or -1 (elements for pointers, units for integers).
        delta: i8,
        /// Push the pre-update value instead of the new one.
        post: bool,
    },
    /// `[] -> [ptr]` — push a constant typed pointer (global array decay,
    /// `&global`).
    PushPtr {
        /// Absolute address.
        addr: u32,
        /// Interned pointee type.
        pointee: TypeId,
    },
    /// `[] -> []` — carve a local array from the descending stack and bind
    /// its decayed pointer to `slot`. Re-executes (and re-allocates) each
    /// time the declaration runs, like the oracle.
    AllocArray {
        /// Frame slot receiving the decayed pointer.
        slot: u32,
        /// Element type.
        elem: TypeId,
        /// Word-aligned byte size to reserve.
        size: u32,
    },
    /// `[ptr idx] -> [ptr']` — pointer element arithmetic for `base[idx]`;
    /// errors like the oracle if `base` is not a pointer.
    IndexPtr,
    /// `[ptr] -> [v]` — load through a pointer, emitting a read record.
    LoadThru {
        /// Access-site index.
        site: u32,
    },
    /// `[ptr v] -> []` — store through a pointer, emitting a write record.
    StoreThru {
        /// Access-site index.
        site: u32,
    },
    /// `[ptr] -> [old|new]` — `++`/`--` through a pointer (read + write
    /// records).
    IncDecThru {
        /// Access-site index.
        site: u32,
        /// +1 or -1.
        delta: i8,
        /// Push the pre-update value instead of the new one.
        post: bool,
    },
    /// `[v] -> [v]` — require a pointer on top of stack (`&*p`).
    CheckPtr,
    /// `[v] -> [op v]` — unary operator.
    Unary(UnOp),
    /// `[a b] -> [a op b]` — binary operator with the oracle's pointer
    /// arithmetic. `&&`/`||` never reach the VM (lowered to jumps).
    Binary(BinOp),
    /// `[a] -> [a op imm]` — fused `PushInt` + [`Op::Binary`] (pure
    /// peephole; semantics identical to the unfused pair).
    BinaryImm {
        /// The operator.
        op: BinOp,
        /// The literal right-hand side.
        imm: i64,
    },
    /// `[a] -> [a op frame[slot]]` — fused `LoadSlot` + [`Op::Binary`].
    BinarySlot {
        /// The operator.
        op: BinOp,
        /// Frame slot supplying the right-hand side.
        slot: u32,
    },
    /// `[old rhs] -> [new]` — compound-assignment arithmetic (`+=` family;
    /// pointers scale on `+`/`-`, everything else is integer).
    Compound(BinOp),
    /// `[v] -> [0|1]` — C truthiness (second operand of `&&`/`||`).
    Truthy,
    /// `[] -> []` — unconditional jump.
    Jump(u32),
    /// `[v] -> []` — jump when falsy.
    JumpIfFalse(u32),
    /// `[v] -> []` — jump when truthy.
    JumpIfTrue(u32),
    /// `[a1..an] -> [ret]` — call a user function with `nargs` stacked
    /// arguments (synthetic frame traffic included when configured).
    Call {
        /// Callee index in [`CompiledProgram::functions`].
        func: u32,
        /// Argument count.
        nargs: u32,
    },
    /// `[a1..an] -> [ret]` — call a builtin (`minic::builtins::BUILTINS`
    /// index).
    CallBuiltin {
        /// Builtin index.
        builtin: u32,
        /// Argument count.
        nargs: u32,
    },
    /// `[ret] -> []` in the callee / `[] -> [ret]` in the caller — pop the
    /// frame, coercing the value to the function's return type (`void`
    /// returns zero).
    Ret,
    /// `[] -> []` — emit a checkpoint record.
    Checkpoint {
        /// Loop identity.
        loop_id: u32,
        /// Which of the paper's three checkpoint kinds.
        kind: CheckpointKind,
    },
    /// `[] -> !` — raise the pre-built [`RuntimeError`] at
    /// [`CompiledProgram::traps`]`[i]`.
    Trap(u32),
}

/// One lowered function.
#[derive(Debug, Clone)]
pub struct CompiledFunction {
    /// Source-level name (diagnostics).
    pub name: String,
    /// Entry offset into [`CompiledProgram::ops`].
    pub entry: u32,
    /// Total frame slots (parameters first).
    pub nslots: u32,
    /// Parameter coercion targets, in order.
    pub params: Vec<TypeId>,
    /// Return coercion target; `None` is `void` (returns zero).
    pub ret: Option<TypeId>,
}

/// A fully lowered program, ready for [`crate::vm::Vm`].
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// All functions' code, concatenated.
    pub ops: Vec<Op>,
    /// Per-function metadata, in `Program::functions` order.
    pub functions: Vec<CompiledFunction>,
    /// Index of `main`, if present.
    pub main: Option<u32>,
    /// Interned types.
    pub types: TypeTable,
    /// Pre-built runtime errors referenced by [`Op::Trap`].
    pub traps: Vec<RuntimeError>,
    /// Global-initializer image: `(address, type, value)` writes the
    /// loader applies silently before execution.
    pub global_image: Vec<(u32, TypeId, i64)>,
    /// Interned `char` (the type `malloc` results carry).
    pub char_ty: TypeId,
}

impl CompiledProgram {
    /// Number of bytecode instructions.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }
}

impl fmt::Display for CompiledProgram {
    /// Disassembly listing (one op per line, function headers inline).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, op) in self.ops.iter().enumerate() {
            if let Some(func) = self.functions.iter().find(|fun| fun.entry as usize == i) {
                writeln!(f, "{}: ; {} slots", func.name, func.nslots)?;
            }
            writeln!(f, "  {i:5}  {op:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_recursive() {
        let mut t = TypeTable::new();
        let a = t.intern(&Type::ptr_to(Type::ptr_to(Type::Char)));
        let b = t.intern(&Type::ptr_to(Type::ptr_to(Type::Char)));
        assert_eq!(a, b);
        // char, char*, char** all interned.
        assert_eq!(t.len(), 3);
        let TyKind::Ptr(inner) = t.kind(a) else { panic!("not a pointer") };
        assert_eq!(t.kind(inner), TyKind::Ptr(t.intern(&Type::Char)));
        assert_eq!(t.size(a), 4);
        assert_eq!(t.name(a), "char**");
        assert!(!t.is_empty());
    }

    #[test]
    fn vm_value_matches_oracle_display() {
        let mut t = TypeTable::new();
        let int_id = t.intern(&Type::Int);
        let v = VmValue::Ptr { addr: 0xff, pointee: int_id };
        assert_eq!(v.display(&t), crate::Value::ptr(0xff, Type::Int).to_string());
        assert_eq!(VmValue::Int(-5).display(&t), "-5");
        assert_eq!(v.as_int(), 0xff);
        assert!(v.is_truthy());
        assert!(!VmValue::zero().is_truthy());
    }
}
