//! The compiled execution engine: a slot-resolved bytecode VM.
//!
//! Executes a [`CompiledProgram`] with
//!
//! * frame slots in one contiguous `Vec<VmValue>` (no per-scope `HashMap`,
//!   no string hashing, no per-block allocation),
//! * `Copy` values whose pointee types are dense [`TypeId`]s (no `Type`
//!   clones anywhere on the hot path),
//! * an explicit call stack (deep mini-C recursion no longer consumes the
//!   host's stack),
//!
//! while emitting trace records and checkpoints **byte-identical** to the
//! tree-walking oracle [`crate::Interp`] — same access order, same
//! addresses, same synthetic instruction addresses, same runtime errors.
//! The equivalence is locked by `tests/vm_equiv.rs` (every workload at
//! scale 1 and 2, plus property tests over random inputs).

use crate::bytecode::{CompiledProgram, Op, TyKind, TypeId, VmValue};
use crate::interp::{int_binop, RuntimeError, SimConfig, SimOutcome, STACK_LIMIT};
use crate::mem::{Heap, Memory};
use minic::ast::{BinOp, CheckpointKind, LoopId, UnOp};
use minic_trace::layout;
use minic_trace::{AccessKind, Record, TraceSink};

type RunResult<T> = Result<T, RuntimeError>;

/// One entry of the VM's explicit call stack.
#[derive(Debug, Clone, Copy)]
struct FrameRec {
    func: u32,
    ret_pc: u32,
    slot_base: u32,
    sp_on_entry: u32,
}

/// The bytecode VM. Most uses go through [`crate::run`] /
/// [`crate::run_with_sink`] with [`crate::Engine::Vm`]; construct directly
/// (over a [`crate::compile`]d program) to amortize compilation across
/// runs.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let prog = minic::frontend("int g; void main() { g = 1; }")?;
/// let compiled = minic_sim::compile(&prog);
/// let vm = minic_sim::Vm::new(
///     &compiled, minic_sim::SimConfig::default(), Vec::new(), minic_trace::VecSink::new());
/// let (outcome, sink) = vm.run()?;
/// assert_eq!(outcome.accesses, 1);
/// assert_eq!(sink.records.len(), 1);
/// # Ok(())
/// # }
/// ```
pub struct Vm<'c, S: TraceSink> {
    code: &'c CompiledProgram,
    config: SimConfig,
    mem: Memory,
    heap: Heap,
    stack: Vec<VmValue>,
    slots: Vec<VmValue>,
    frames: Vec<FrameRec>,
    /// Slot base of the active frame (cached from `frames.last()`).
    cur_base: usize,
    sp: u32,
    sink: S,
    inputs: Vec<i64>,
    rng_state: u64,
    outcome: SimOutcome,
}

impl<'c, S: TraceSink> Vm<'c, S> {
    /// Prepares a VM: lays out global initializers (silently, as a loader
    /// would — no trace records).
    pub fn new(code: &'c CompiledProgram, config: SimConfig, inputs: Vec<i64>, sink: S) -> Self {
        let mut mem = Memory::new();
        for &(addr, ty, value) in &code.global_image {
            write_typed(&mut mem, addr, code.types.kind(ty), value);
        }
        Vm {
            code,
            config,
            mem,
            heap: Heap::new(),
            stack: Vec::with_capacity(64),
            slots: Vec::with_capacity(256),
            frames: Vec::with_capacity(16),
            cur_base: 0,
            sp: layout::STACK_TOP,
            sink,
            inputs,
            rng_state: 0x2545_f491_4f6c_dd1d,
            outcome: SimOutcome::default(),
        }
    }

    /// Runs `main` to completion.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`] raised during execution. Errors (including
    /// their messages) match the tree-walking oracle's for the same
    /// program and inputs.
    pub fn run(mut self) -> RunResult<(SimOutcome, S)> {
        // The step counter lives in a run-local so the hot loop's
        // bookkeeping stays in registers; it is flushed into the outcome
        // on every exit path.
        let mut steps: u64 = 0;
        let result = self.exec(&mut steps);
        self.outcome.steps = steps;
        result?;
        self.sink.finish();
        Ok((self.outcome, self.sink))
    }

    fn exec(&mut self, steps: &mut u64) -> RunResult<()> {
        let main = self.code.main.ok_or(RuntimeError::MissingMain)? as usize;
        let mut pc = self.call(main, 0, u32::MAX)?;
        let max_steps = self.config.max_steps;
        loop {
            // The VM's step unit is one bytecode instruction (the oracle
            // counts statement/expression evaluations); the budget guards
            // non-termination either way.
            *steps += 1;
            if *steps > max_steps {
                return Err(RuntimeError::StepLimitExceeded);
            }
            let op = self.code.ops[pc];
            pc += 1;
            match op {
                Op::PushInt(v) => self.stack.push(VmValue::Int(v)),
                Op::Pop => {
                    self.stack.pop();
                }
                Op::Dup => {
                    let top = *self.stack.last().expect("stack underflow");
                    self.stack.push(top);
                }
                Op::Swap => {
                    let n = self.stack.len();
                    self.stack.swap(n - 1, n - 2);
                }
                Op::LoadSlot(slot) => {
                    let v = self.slots[self.cur_base + slot as usize];
                    self.stack.push(v);
                }
                Op::StoreSlot { slot, ty } => {
                    let v = self.stack.pop().expect("stack underflow");
                    self.slots[self.cur_base + slot as usize] = self.coerce(v, ty);
                }
                Op::IncDecSlot { slot, ty, delta, post } => {
                    let idx = self.cur_base + slot as usize;
                    let old = self.slots[idx];
                    let new = self.offset(old, delta as i64);
                    self.slots[idx] = self.coerce(new, ty);
                    self.stack.push(if post { old } else { new });
                }
                Op::LoadGlobal { addr, ty, site } => {
                    self.emit_access(layout::user_instr(site), addr, AccessKind::Read);
                    let v = self.read_typed(addr, ty);
                    self.stack.push(v);
                }
                Op::StoreGlobal { addr, ty, site } => {
                    let v = self.stack.pop().expect("stack underflow");
                    self.emit_access(layout::user_instr(site), addr, AccessKind::Write);
                    write_typed(&mut self.mem, addr, self.code.types.kind(ty), v.as_int());
                }
                Op::IncDecGlobal { addr, ty, site, delta, post } => {
                    self.emit_access(layout::user_instr(site), addr, AccessKind::Read);
                    let old = self.read_typed(addr, ty);
                    let new = self.offset(old, delta as i64);
                    self.emit_access(layout::user_instr(site), addr, AccessKind::Write);
                    write_typed(&mut self.mem, addr, self.code.types.kind(ty), new.as_int());
                    self.stack.push(if post { old } else { new });
                }
                Op::PushPtr { addr, pointee } => self.stack.push(VmValue::Ptr { addr, pointee }),
                Op::AllocArray { slot, elem, size } => {
                    if self.sp.saturating_sub(size) < STACK_LIMIT {
                        return Err(RuntimeError::StackOverflow);
                    }
                    self.sp -= size;
                    self.slots[self.cur_base + slot as usize] =
                        VmValue::Ptr { addr: self.sp, pointee: elem };
                }
                Op::IndexPtr => {
                    let idx = self.stack.pop().expect("stack underflow").as_int();
                    let base = self.stack.pop().expect("stack underflow");
                    let VmValue::Ptr { addr, pointee } = base else {
                        return Err(self.deref_non_pointer(base));
                    };
                    let size = self.code.types.size(pointee) as i64;
                    let addr = addr.wrapping_add(idx.wrapping_mul(size) as u32);
                    self.stack.push(VmValue::Ptr { addr, pointee });
                }
                Op::LoadThru { site } => {
                    let p = self.stack.pop().expect("stack underflow");
                    let VmValue::Ptr { addr, pointee } = p else {
                        return Err(self.deref_non_pointer(p));
                    };
                    self.emit_access(layout::user_instr(site), addr, AccessKind::Read);
                    let v = self.read_typed(addr, pointee);
                    self.stack.push(v);
                }
                Op::StoreThru { site } => {
                    let v = self.stack.pop().expect("stack underflow");
                    let p = self.stack.pop().expect("stack underflow");
                    let VmValue::Ptr { addr, pointee } = p else {
                        return Err(self.deref_non_pointer(p));
                    };
                    self.emit_access(layout::user_instr(site), addr, AccessKind::Write);
                    write_typed(&mut self.mem, addr, self.code.types.kind(pointee), v.as_int());
                }
                Op::IncDecThru { site, delta, post } => {
                    let p = self.stack.pop().expect("stack underflow");
                    let VmValue::Ptr { addr, pointee } = p else {
                        return Err(self.deref_non_pointer(p));
                    };
                    self.emit_access(layout::user_instr(site), addr, AccessKind::Read);
                    let old = self.read_typed(addr, pointee);
                    let new = self.offset(old, delta as i64);
                    self.emit_access(layout::user_instr(site), addr, AccessKind::Write);
                    write_typed(&mut self.mem, addr, self.code.types.kind(pointee), new.as_int());
                    self.stack.push(if post { old } else { new });
                }
                Op::CheckPtr => {
                    let p = *self.stack.last().expect("stack underflow");
                    if !matches!(p, VmValue::Ptr { .. }) {
                        return Err(self.deref_non_pointer(p));
                    }
                }
                Op::Unary(op) => {
                    let v = self.stack.pop().expect("stack underflow").as_int();
                    self.stack.push(VmValue::Int(match op {
                        UnOp::Neg => v.wrapping_neg(),
                        UnOp::Not => (v == 0) as i64,
                        UnOp::BitNot => !v,
                    }));
                }
                Op::Binary(op) => {
                    let r = self.stack.pop().expect("stack underflow");
                    let l = self.stack.pop().expect("stack underflow");
                    let v = self.binary(op, l, r)?;
                    self.stack.push(v);
                }
                Op::BinaryImm { op, imm } => {
                    let l = self.stack.pop().expect("stack underflow");
                    let v = self.binary(op, l, VmValue::Int(imm))?;
                    self.stack.push(v);
                }
                Op::BinarySlot { op, slot } => {
                    let r = self.slots[self.cur_base + slot as usize];
                    let l = self.stack.pop().expect("stack underflow");
                    let v = self.binary(op, l, r)?;
                    self.stack.push(v);
                }
                Op::Compound(op) => {
                    let rhs = self.stack.pop().expect("stack underflow");
                    let old = self.stack.pop().expect("stack underflow");
                    let v = self.compound(op, old, rhs)?;
                    self.stack.push(v);
                }
                Op::Truthy => {
                    let v = self.stack.pop().expect("stack underflow");
                    self.stack.push(VmValue::Int(v.is_truthy() as i64));
                }
                Op::Jump(t) => pc = t as usize,
                Op::JumpIfFalse(t) => {
                    if !self.stack.pop().expect("stack underflow").is_truthy() {
                        pc = t as usize;
                    }
                }
                Op::JumpIfTrue(t) => {
                    if self.stack.pop().expect("stack underflow").is_truthy() {
                        pc = t as usize;
                    }
                }
                Op::Call { func, nargs } => {
                    pc = self.call(func as usize, nargs as usize, pc as u32)?;
                }
                Op::CallBuiltin { builtin, nargs } => {
                    self.call_builtin(builtin as usize, nargs as usize)?;
                }
                Op::Ret => match self.ret() {
                    Some(next) => pc = next,
                    None => return Ok(()),
                },
                Op::Checkpoint { loop_id, kind } => self.emit_checkpoint(LoopId(loop_id), kind),
                Op::Trap(i) => return Err(self.code.traps[i as usize].clone()),
            }
        }
    }

    // ---- bookkeeping ----------------------------------------------------

    fn emit_access(&mut self, instr: minic_trace::InstrAddr, addr: u32, kind: AccessKind) {
        self.outcome.accesses += 1;
        self.sink.record(&Record::Access(minic_trace::Access {
            instr,
            addr: minic_trace::MemAddr(addr),
            kind,
        }));
    }

    fn emit_checkpoint(&mut self, loop_id: LoopId, kind: CheckpointKind) {
        self.outcome.checkpoints += 1;
        self.sink.record(&Record::Checkpoint { loop_id, kind });
    }

    fn deref_non_pointer(&self, v: VmValue) -> RuntimeError {
        RuntimeError::DerefNonPointer { found: v.display(&self.code.types) }
    }

    // ---- calls ----------------------------------------------------------

    /// Enters `func` with the top `nargs` stack values as arguments;
    /// returns the entry pc.
    fn call(&mut self, func: usize, nargs: usize, ret_pc: u32) -> RunResult<usize> {
        if self.frames.len() >= self.config.max_call_depth {
            return Err(RuntimeError::StackOverflow);
        }
        let code = self.code;
        let f = &code.functions[func];
        let argstart = self.stack.len() - nargs;
        let sp_on_entry = self.sp;

        // The compiler's argument-passing stack traffic: caller stores,
        // callee loads (identical addresses and instruction slots to the
        // oracle).
        if self.config.model_call_overhead && nargs > 0 {
            let bytes = 4 * nargs as u32;
            if self.sp.saturating_sub(bytes) < STACK_LIMIT {
                return Err(RuntimeError::StackOverflow);
            }
            self.sp -= bytes;
            for i in 0..nargs {
                let addr = self.sp + 4 * i as u32;
                let word = self.stack[argstart + i].as_int() as u32;
                self.mem.write_u32(addr, word);
                self.emit_access(
                    layout::frame_instr(func as u32, i as u32),
                    addr,
                    AccessKind::Write,
                );
            }
            for i in 0..nargs {
                let addr = self.sp + 4 * i as u32;
                self.emit_access(
                    layout::frame_instr(func as u32, (nargs + i) as u32),
                    addr,
                    AccessKind::Read,
                );
            }
        }

        let slot_base = self.slots.len();
        self.slots.resize(slot_base + f.nslots as usize, VmValue::Int(0));
        for (i, &pt) in f.params.iter().enumerate().take(nargs) {
            self.slots[slot_base + i] = self.coerce(self.stack[argstart + i], pt);
        }
        self.stack.truncate(argstart);
        self.frames.push(FrameRec {
            func: func as u32,
            ret_pc,
            slot_base: slot_base as u32,
            sp_on_entry,
        });
        self.cur_base = slot_base;
        Ok(f.entry as usize)
    }

    /// Pops the active frame, pushing the (return-type-coerced) result for
    /// the caller. Returns the caller's pc, or `None` when `main` returns.
    fn ret(&mut self) -> Option<usize> {
        let v = self.stack.pop().expect("return value on stack");
        let fr = self.frames.pop().expect("active frame");
        let f = &self.code.functions[fr.func as usize];
        let result = match f.ret {
            Some(ty) => self.coerce(v, ty),
            None => VmValue::Int(0),
        };
        self.slots.truncate(fr.slot_base as usize);
        self.sp = fr.sp_on_entry;
        self.cur_base = self.frames.last().map_or(0, |f| f.slot_base as usize);
        if self.frames.is_empty() {
            None
        } else {
            self.stack.push(result);
            Some(fr.ret_pc as usize)
        }
    }

    // ---- value operations -----------------------------------------------

    /// [`crate::Value::coerce_to`] over interned types.
    #[inline(always)]
    fn coerce(&self, v: VmValue, ty: TypeId) -> VmValue {
        match self.code.types.kind(ty) {
            TyKind::Ptr(p) => VmValue::Ptr { addr: v.as_int() as u32, pointee: p },
            TyKind::Int => VmValue::Int(v.as_int() as i32 as i64),
            TyKind::Char => VmValue::Int(v.as_int() as u8 as i64),
        }
    }

    /// Adds `delta` elements to a pointer, or `delta` to an integer.
    #[inline(always)]
    fn offset(&self, v: VmValue, delta: i64) -> VmValue {
        match v {
            VmValue::Int(n) => VmValue::Int(n.wrapping_add(delta)),
            VmValue::Ptr { addr, pointee } => VmValue::Ptr {
                addr: addr
                    .wrapping_add(delta.wrapping_mul(self.code.types.size(pointee) as i64) as u32),
                pointee,
            },
        }
    }

    #[inline(always)]
    fn read_typed(&self, addr: u32, ty: TypeId) -> VmValue {
        match self.code.types.kind(ty) {
            TyKind::Int => VmValue::Int(self.mem.read_i32(addr)),
            TyKind::Char => VmValue::Int(self.mem.read_u8(addr) as i64),
            TyKind::Ptr(p) => VmValue::Ptr { addr: self.mem.read_u32(addr), pointee: p },
        }
    }

    /// Non-short-circuit binary operators, with the oracle's pointer
    /// arithmetic.
    #[inline(always)]
    fn binary(&self, op: BinOp, l: VmValue, r: VmValue) -> RunResult<VmValue> {
        match (op, l, r) {
            (BinOp::Add, VmValue::Ptr { .. }, VmValue::Int(n)) => return Ok(self.offset(l, n)),
            (BinOp::Add, VmValue::Int(n), VmValue::Ptr { .. }) => return Ok(self.offset(r, n)),
            (BinOp::Sub, VmValue::Ptr { .. }, VmValue::Int(n)) => return Ok(self.offset(l, -n)),
            (BinOp::Sub, VmValue::Ptr { addr: a, pointee }, VmValue::Ptr { addr: b, .. }) => {
                let diff = (a as i64 - b as i64) / self.code.types.size(pointee) as i64;
                return Ok(VmValue::Int(diff));
            }
            _ => {}
        }
        Ok(VmValue::Int(int_binop(op, l.as_int(), r.as_int())?))
    }

    /// Compound-assignment arithmetic (`+=` family): `ptr += n` / `ptr -= n`
    /// preserve pointer-ness with scaling, everything else is integer.
    fn compound(&self, op: BinOp, old: VmValue, rhs: VmValue) -> RunResult<VmValue> {
        if let VmValue::Ptr { .. } = old {
            match op {
                BinOp::Add => return Ok(self.offset(old, rhs.as_int())),
                BinOp::Sub => return Ok(self.offset(old, -rhs.as_int())),
                _ => {}
            }
        }
        // `AssignOp::bin_op` only yields the five arithmetic operators.
        Ok(VmValue::Int(int_binop(op, old.as_int(), rhs.as_int())?))
    }

    // ---- builtins --------------------------------------------------------

    /// Executes a builtin over the top `nargs` stack values, replacing
    /// them with the result. The body lives in `crate::syslib`, shared
    /// with the tree-walking oracle — identical library traffic,
    /// addresses, and error values by construction.
    fn call_builtin(&mut self, bi: usize, nargs: usize) -> RunResult<()> {
        let argstart = self.stack.len() - nargs;
        let mut a = [0i64; 3];
        for (i, v) in self.stack[argstart..].iter().take(3).enumerate() {
            a[i] = v.as_int();
        }
        let mut ctx = crate::syslib::LibCtx {
            mem: &mut self.mem,
            heap: &mut self.heap,
            sink: &mut self.sink,
            outcome: &mut self.outcome,
            inputs: &self.inputs,
            rng_state: &mut self.rng_state,
        };
        let result = crate::syslib::call_builtin(&mut ctx, bi, a)?;
        self.stack.truncate(argstart);
        self.stack.push(match result {
            crate::syslib::LibValue::Int(v) => VmValue::Int(v),
            crate::syslib::LibValue::MallocPtr(addr) => {
                VmValue::Ptr { addr, pointee: self.code.char_ty }
            }
            crate::syslib::LibValue::Zero => VmValue::zero(),
        });
        Ok(())
    }
}

fn write_typed(mem: &mut Memory, addr: u32, kind: TyKind, value: i64) {
    match kind {
        TyKind::Int | TyKind::Ptr(_) => mem.write_u32(addr, value as u32),
        TyKind::Char => mem.write_u8(addr, value as u8),
    }
}
