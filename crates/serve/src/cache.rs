//! The content-addressed result cache: bounded in-memory LRU with an
//! optional on-disk spill directory.
//!
//! Values are the finished jobs' payload strings (model C text, report
//! JSON, or DSE JSON), keyed by [`crate::key`] digests. Eviction is
//! least-recently-used by an access tick; the scan to find the victim is
//! O(entries), a deliberate simplicity trade — the cache is bounded to a
//! few hundred entries and eviction is rare next to the cost of one
//! analysis run.
//!
//! With a spill directory configured, evicted entries are written to
//! `<dir>/<key>.json` and a later miss on that key is served by reloading
//! the file (counted separately as a *disk hit*, and re-inserted into
//! memory).

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

/// Counters describing cache behaviour since startup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered (from memory or disk).
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Values stored.
    pub insertions: u64,
    /// In-memory entries displaced to make room.
    pub evictions: u64,
    /// Evicted entries written to the spill directory.
    pub spills: u64,
    /// Hits served by reloading a spilled entry from disk.
    pub disk_hits: u64,
}

/// Spill-file format tag.
const SPILL_SCHEMA: &str = "foray-serve-spill/v1";

/// A bounded LRU of job results, keyed by content digest.
#[derive(Debug)]
pub struct ResultCache {
    entries: HashMap<String, (Arc<str>, u64)>,
    capacity: usize,
    spill_dir: Option<PathBuf>,
    tick: u64,
    counters: CacheCounters,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries in memory (a capacity of
    /// zero disables in-memory caching entirely but still spills when a
    /// directory is set), spilling evictions to `spill_dir` if given.
    pub fn new(capacity: usize, spill_dir: Option<PathBuf>) -> ResultCache {
        ResultCache {
            entries: HashMap::new(),
            capacity,
            spill_dir,
            tick: 0,
            counters: CacheCounters::default(),
        }
    }

    /// Looks up `key`, refreshing its recency. Falls back to the spill
    /// directory on a memory miss.
    pub fn get(&mut self, key: &str) -> Option<Arc<str>> {
        self.tick += 1;
        if let Some((value, stamp)) = self.entries.get_mut(key) {
            *stamp = self.tick;
            self.counters.hits += 1;
            return Some(Arc::clone(value));
        }
        if let Some(value) = self.load_spilled(key) {
            self.counters.hits += 1;
            self.counters.disk_hits += 1;
            self.insert_inner(key, Arc::clone(&value), false);
            return Some(value);
        }
        self.counters.misses += 1;
        None
    }

    /// Stores a freshly computed result.
    pub fn insert(&mut self, key: &str, value: Arc<str>) {
        self.counters.insertions += 1;
        self.insert_inner(key, value, true);
    }

    /// Current counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Entries resident in memory.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the in-memory cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn insert_inner(&mut self, key: &str, value: Arc<str>, spill_on_evict: bool) {
        if self.capacity == 0 {
            if spill_on_evict {
                self.spill(key, &value);
            }
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(key) && self.entries.len() >= self.capacity {
            // O(n) victim scan; see the module docs for why that's fine.
            if let Some(victim) =
                self.entries.iter().min_by_key(|(_, (_, t))| *t).map(|(k, _)| k.clone())
            {
                if let Some((evicted, _)) = self.entries.remove(&victim) {
                    self.counters.evictions += 1;
                    self.spill(&victim, &evicted);
                }
            }
        }
        self.entries.insert(key.to_owned(), (value, self.tick));
    }

    fn spill_path(&self, key: &str) -> Option<PathBuf> {
        // Keys are 16 hex chars; refuse anything else so a hostile key
        // can't traverse outside the spill directory.
        if key.len() != 16 || !key.chars().all(|c| c.is_ascii_hexdigit()) {
            return None;
        }
        self.spill_dir.as_ref().map(|d| d.join(format!("{key}.json")))
    }

    fn spill(&mut self, key: &str, value: &str) {
        let Some(path) = self.spill_path(key) else { return };
        let body = crate::json::obj([
            ("schema", crate::json::Json::Str(SPILL_SCHEMA.into())),
            ("key", crate::json::Json::Str(key.into())),
            ("result", crate::json::Json::Str(value.into())),
        ])
        .render();
        if let Some(dir) = path.parent() {
            let _ = fs::create_dir_all(dir);
        }
        // Spill failures degrade to a smaller effective cache, never an
        // error: write to a sibling temp file, then rename for atomicity.
        let tmp = path.with_extension("tmp");
        if fs::write(&tmp, body).is_ok() && fs::rename(&tmp, &path).is_ok() {
            self.counters.spills += 1;
        }
    }

    fn load_spilled(&self, key: &str) -> Option<Arc<str>> {
        let path = self.spill_path(key)?;
        let text = fs::read_to_string(path).ok()?;
        let v = crate::json::Json::parse(&text).ok()?;
        if v.get("schema").and_then(crate::json::Json::as_str) != Some(SPILL_SCHEMA) {
            return None;
        }
        if v.get("key").and_then(crate::json::Json::as_str) != Some(key) {
            return None;
        }
        v.get("result").and_then(crate::json::Json::as_str).map(Arc::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("foray-serve-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn key(n: u8) -> String {
        format!("{:016x}", u64::from(n))
    }

    #[test]
    fn hit_miss_and_counters() {
        let mut c = ResultCache::new(4, None);
        assert!(c.get(&key(1)).is_none());
        c.insert(&key(1), Arc::from("one"));
        assert_eq!(c.get(&key(1)).as_deref(), Some("one"));
        let k = c.counters();
        assert_eq!((k.hits, k.misses, k.insertions), (1, 1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = ResultCache::new(2, None);
        c.insert(&key(1), Arc::from("1"));
        c.insert(&key(2), Arc::from("2"));
        assert!(c.get(&key(1)).is_some()); // refresh 1; 2 is now LRU
        c.insert(&key(3), Arc::from("3"));
        assert!(c.get(&key(2)).is_none(), "LRU entry evicted");
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
        assert_eq!(c.counters().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evictions_spill_to_disk_and_reload_as_disk_hits() {
        let dir = temp_dir("spill");
        let mut c = ResultCache::new(1, Some(dir.clone()));
        c.insert(&key(1), Arc::from("payload one"));
        c.insert(&key(2), Arc::from("payload two")); // evicts + spills 1
        assert_eq!(c.counters().spills, 1);
        assert_eq!(c.get(&key(1)).as_deref(), Some("payload one"), "reloaded from disk");
        let k = c.counters();
        assert_eq!(k.disk_hits, 1);
        assert_eq!(k.hits, 1);
        // Reloading evicted 2 (capacity 1), which spilled it in turn.
        assert_eq!(c.get(&key(2)).as_deref(), Some("payload two"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_capacity_disables_memory_but_spills_inserts() {
        let dir = temp_dir("zerocap");
        let mut c = ResultCache::new(0, Some(dir.clone()));
        c.insert(&key(7), Arc::from("tiny"));
        assert_eq!(c.len(), 0);
        assert_eq!(c.get(&key(7)).as_deref(), Some("tiny"), "served from spill");
        assert_eq!(c.counters().disk_hits, 1);
        let _ = fs::remove_dir_all(&dir);
        let mut bare = ResultCache::new(0, None);
        bare.insert(&key(8), Arc::from("x"));
        assert!(bare.get(&key(8)).is_none());
    }

    #[test]
    fn hostile_keys_never_touch_the_filesystem() {
        let dir = temp_dir("hostile");
        let mut c = ResultCache::new(0, Some(dir.clone()));
        c.insert("../../etc/passwd", Arc::from("nope"));
        c.insert("0123456789abcdeZ", Arc::from("nope"));
        assert_eq!(c.counters().spills, 0);
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_spill_files_are_ignored() {
        let dir = temp_dir("corrupt");
        fs::write(dir.join(format!("{}.json", key(5))), "{not json").unwrap();
        fs::write(
            dir.join(format!("{}.json", key(6))),
            "{\"schema\":\"other/v9\",\"key\":\"x\",\"result\":\"y\"}",
        )
        .unwrap();
        let mut c = ResultCache::new(2, Some(dir.clone()));
        assert!(c.get(&key(5)).is_none());
        assert!(c.get(&key(6)).is_none());
        assert_eq!(c.counters().misses, 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
