//! A minimal JSON value, parser, and writer for the `forayd` line protocol.
//!
//! The workspace builds without network access, so there is no `serde`;
//! this module implements exactly the JSON subset the protocol needs:
//!
//! * values: `null`, booleans, **integers** (i64), strings, arrays,
//!   objects;
//! * objects preserve insertion order (the writer is deterministic);
//! * non-integer numbers are rejected at parse time with a typed error —
//!   nothing in the protocol is a float, and refusing them early keeps
//!   cache keys and golden tests exact.
//!
//! Parsing is a single-pass recursive descent with a depth limit (a
//! malicious `[[[[...` line must not blow the daemon's stack).

use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: u32 = 64;

/// A parsed JSON value (integer-only numbers; see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the protocol has no floats).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input line.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the value"));
        }
        Ok(value)
    }

    /// Looks a key up in an object (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|n| u64::try_from(n).ok())
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace), deterministically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Str(s) => write_json_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes `s` as a quoted, escaped JSON string.
pub fn write_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience: an object from `(key, value)` pairs.
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &str) -> JsonError {
        JsonError { offset: self.pos, reason: reason.to_owned() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("non-integer numbers are not part of the protocol"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<i64>().map(Json::Int).map_err(|_| JsonError {
            offset: start,
            reason: format!("`{text}` is not a valid integer"),
        })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are rejected rather than paired:
                            // the protocol never emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("valid utf-8");
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip() {
        for line in [
            "null",
            "true",
            "false",
            "0",
            "-42",
            "9007199254740993",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"e\"}}",
        ] {
            let v = Json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(v.render(), line, "round trip of {line}");
            // Re-parsing the render is a fixpoint.
            assert_eq!(Json::parse(&v.render()).unwrap(), v);
        }
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let v = Json::parse(" { \"k\" : [ 1 , \"a\\n\\\"b\\u0041\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap(),
            &Json::Arr(vec![Json::Int(1), Json::Str("a\n\"bA".to_owned())])
        );
        // Escapes re-render escaped.
        assert_eq!(Json::Str("a\nb\"".to_owned()).render(), "\"a\\nb\\\"\"");
        assert_eq!(Json::Str("\u{1}".to_owned()).render(), "\"\\u0001\"");
    }

    #[test]
    fn malformed_inputs_get_typed_errors() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.5",
            "1e3",
            "\"unterminated",
            "\"bad \\q escape\"",
            "[1] trailing",
            "nan",
            "+1",
            "00x",
            "\u{1}",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.reason.is_empty(), "{bad:?} -> {err}");
        }
        // Deep nesting is bounded, not a stack overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).unwrap_err().reason.contains("deep"));
    }

    #[test]
    fn accessors_are_typed() {
        let v = Json::parse("{\"s\":\"x\",\"n\":3,\"b\":true,\"neg\":-1}").unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("neg").and_then(Json::as_i64), Some(-1));
        assert_eq!(v.get("neg").and_then(Json::as_u64), None, "negative is not a u64");
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Int(1).get("x"), None, "non-objects have no keys");
    }

    #[test]
    fn unicode_survives_the_round_trip() {
        let v = Json::parse("\"héllo → 世界\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → 世界"));
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }
}
