//! The `forayd` wire protocol: line-delimited JSON requests and responses.
//!
//! One JSON object per line in each direction; the request's `"cmd"` field
//! discriminates. The full grammar lives in `docs/ARCHITECTURE.md`
//! ("Service layer"); in short:
//!
//! ```text
//! {"cmd":"submit","workload":"fftc","scale":2,"kind":"model"}   -> submitted
//! {"cmd":"submit","source":"int a[8]; void main() { ... }"}     -> submitted
//! {"cmd":"submit","trace":"/path/to/file.ftrace"}               -> submitted
//! {"cmd":"wait","job":"j3","timeout_ms":5000}                   -> result
//! {"cmd":"poll","job":"j3"}                                     -> status
//! {"cmd":"stats"}                                               -> stats
//! {"cmd":"ping"}                                                -> pong
//! {"cmd":"shutdown"}                                            -> shutdown
//! ```
//!
//! Every failure is a *typed* error object
//! (`{"ok":false,"error":CODE,"message":...}`) — a malformed line earns an
//! error response, never a dropped connection.

use crate::json::{obj, Json};
use foray::{Engine, SampleSpec};
use std::fmt;

/// What the service computes for a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobKind {
    /// The FORAY model as emitted C text (byte-identical to
    /// `foray-gen model`).
    #[default]
    Model,
    /// A machine-readable `foray-serve-report/v1` JSON summary (model code
    /// plus capture and memory-behaviour counters).
    Report,
    /// A single-workload SPM design-space exploration
    /// (`foray-dse/v1` JSON over the default capacity/energy grids).
    Dse,
}

impl JobKind {
    /// Parses the protocol spelling.
    pub fn parse(name: &str) -> Option<JobKind> {
        match name {
            "model" => Some(JobKind::Model),
            "report" => Some(JobKind::Report),
            "dse" => Some(JobKind::Dse),
            _ => None,
        }
    }

    /// The protocol spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            JobKind::Model => "model",
            JobKind::Report => "report",
            JobKind::Dse => "dse",
        }
    }
}

/// What a job analyzes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobInput {
    /// A corpus workload by name (sized by [`JobSpec::scale`], canonical
    /// inputs installed unless overridden).
    Workload(String),
    /// Inline mini-C source text.
    Source(String),
    /// A recorded `.ftrace` file on the daemon's filesystem.
    Trace(String),
}

/// One analysis request: input, configuration, and scheduling hints.
///
/// The content-addressed cache key is derived from every field of this
/// struct **except** [`JobSpec::priority`] and the worker-count knobs —
/// see [`crate::key`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// What to compute.
    pub kind: JobKind,
    /// What to analyze.
    pub input: JobInput,
    /// Workload size multiplier (workload inputs only).
    pub scale: u32,
    /// Profiling engine.
    pub engine: Engine,
    /// Step 4 filter: minimum executions.
    pub n_exec: u64,
    /// Step 4 filter: minimum distinct locations.
    pub n_loc: u64,
    /// Deterministic sampling policy.
    pub sample: SampleSpec,
    /// `input()` data override (`None`: the workload's canonical inputs,
    /// or empty for inline source).
    pub inputs: Option<Vec<i64>>,
    /// Scheduling priority 0–9 (higher runs first); not key material.
    pub priority: u8,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            kind: JobKind::Model,
            input: JobInput::Workload("fftc".to_owned()),
            scale: 1,
            engine: Engine::default(),
            n_exec: 20,
            n_loc: 10,
            sample: SampleSpec::Full,
            inputs: None,
            priority: 0,
        }
    }
}

impl JobSpec {
    /// Renders the spec as one `submit` request line (no trailing
    /// newline); the inverse of [`parse_request`]. Fields at their
    /// defaults are still written — explicit beats short on a debugging
    /// wire.
    pub fn render_submit(&self) -> String {
        let mut fields = vec![("cmd", Json::Str("submit".into()))];
        match &self.input {
            JobInput::Workload(w) => fields.push(("workload", Json::Str(w.clone()))),
            JobInput::Source(s) => fields.push(("source", Json::Str(s.clone()))),
            JobInput::Trace(t) => fields.push(("trace", Json::Str(t.clone()))),
        }
        fields.push(("kind", Json::Str(self.kind.as_str().into())));
        fields.push(("scale", Json::Int(i64::from(self.scale))));
        fields.push(("engine", Json::Str(self.engine.as_str().into())));
        fields.push(("nexec", Json::Int(self.n_exec as i64)));
        fields.push(("nloc", Json::Int(self.n_loc as i64)));
        fields.push(("sample", Json::Str(self.sample.to_string())));
        if let Some(inputs) = &self.inputs {
            fields.push(("inputs", Json::Arr(inputs.iter().map(|&v| Json::Int(v)).collect())));
        }
        fields.push(("priority", Json::Int(i64::from(self.priority))));
        obj(fields).render()
    }
}

/// Highest accepted [`JobSpec::priority`].
pub const MAX_PRIORITY: u8 = 9;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a job; reply is [`Response::Submitted`].
    Submit(Box<JobSpec>),
    /// Block until the job finishes (bounded by `timeout_ms` if given).
    Wait {
        /// Job id from a submit reply.
        job: String,
        /// Give up (with a `timeout` error) after this many milliseconds.
        timeout_ms: Option<u64>,
    },
    /// Non-blocking job status query.
    Poll {
        /// Job id from a submit reply.
        job: String,
    },
    /// Cache/queue counter snapshot.
    Stats,
    /// Liveness probe.
    Ping,
    /// Graceful shutdown: drain accepted jobs, then exit.
    Shutdown,
}

/// Machine-readable error codes (`"error"` field of a failure response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid protocol JSON.
    BadJson,
    /// The line was JSON but not a valid request.
    BadRequest,
    /// Unknown `"cmd"`.
    UnknownCommand,
    /// No such job id.
    UnknownJob,
    /// The submission queue is full; retry after `retry_after_ms`.
    QueueFull,
    /// The daemon is draining and accepts no new work.
    ShuttingDown,
    /// The job ran and failed (compile/runtime/read error).
    JobFailed,
    /// A bounded `wait` expired before the job finished.
    Timeout,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownCommand => "unknown_command",
            ErrorCode::UnknownJob => "unknown_job",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::JobFailed => "job_failed",
            ErrorCode::Timeout => "timeout",
        }
    }

    /// Parses the wire spelling (client side).
    pub fn parse(s: &str) -> Option<ErrorCode> {
        [
            ErrorCode::BadJson,
            ErrorCode::BadRequest,
            ErrorCode::UnknownCommand,
            ErrorCode::UnknownJob,
            ErrorCode::QueueFull,
            ErrorCode::ShuttingDown,
            ErrorCode::JobFailed,
            ErrorCode::Timeout,
        ]
        .into_iter()
        .find(|c| c.as_str() == s)
    }
}

/// A typed protocol failure, rendered as `{"ok":false,...}` on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// For [`ErrorCode::QueueFull`]: suggested client backoff.
    pub retry_after_ms: Option<u64>,
}

impl ProtoError {
    /// A typed error with no retry hint.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ProtoError {
        ProtoError { code, message: message.into(), retry_after_ms: None }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for ProtoError {}

/// Cache and queue counters (the `stats` reply body).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Jobs accepted (including cache hits and dedup aliases).
    pub submitted: u64,
    /// Jobs answered straight from the cache at submit time.
    pub cache_hits: u64,
    /// Submissions that had to compute (queued for a worker).
    pub cache_misses: u64,
    /// Submissions coalesced onto an already in-flight identical job.
    pub deduped: u64,
    /// Jobs actually computed by a worker (≤ `cache_misses`).
    pub computed: u64,
    /// Jobs whose computation failed.
    pub failed: u64,
    /// Submissions rejected with `queue_full`.
    pub rejected: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: u64,
    /// Jobs currently being computed.
    pub running: u64,
    /// Entries resident in the in-memory cache.
    pub cache_entries: u64,
    /// Entries evicted from memory (spilled to disk when spill is on).
    pub cache_evictions: u64,
    /// Cache hits served by re-loading a spilled entry from disk.
    pub disk_hits: u64,
}

/// A server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The job was accepted (or answered from the cache / coalesced).
    Submitted {
        /// Job id for `wait`/`poll`.
        job: String,
        /// `true` when the answer came straight from the cache.
        hit: bool,
        /// The job's content-addressed cache key (16 hex chars).
        key: String,
    },
    /// Non-blocking status: `queued`, `running`, `done`, or `failed`.
    Status {
        /// The queried job id.
        job: String,
        /// State name.
        state: &'static str,
    },
    /// A finished job's payload.
    Result {
        /// The finished job id.
        job: String,
        /// Whether the payload came from the cache rather than a compute.
        hit: bool,
        /// The result payload (model C text, report JSON, or DSE JSON).
        result: String,
    },
    /// Counter snapshot.
    Stats(StatsSnapshot),
    /// Liveness reply.
    Pong,
    /// Shutdown acknowledged; the daemon drains and exits.
    ShutdownStarted,
    /// A typed failure.
    Error(ProtoError),
}

impl Response {
    /// Renders the reply as one protocol line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Response::Submitted { job, hit, key } => obj([
                ("ok", Json::Bool(true)),
                ("type", Json::Str("submitted".into())),
                ("job", Json::Str(job.clone())),
                ("hit", Json::Bool(*hit)),
                ("key", Json::Str(key.clone())),
            ]),
            Response::Status { job, state } => obj([
                ("ok", Json::Bool(true)),
                ("type", Json::Str("status".into())),
                ("job", Json::Str(job.clone())),
                ("state", Json::Str((*state).into())),
            ]),
            Response::Result { job, hit, result } => obj([
                ("ok", Json::Bool(true)),
                ("type", Json::Str("result".into())),
                ("job", Json::Str(job.clone())),
                ("hit", Json::Bool(*hit)),
                ("result", Json::Str(result.clone())),
            ]),
            Response::Stats(s) => obj([
                ("ok", Json::Bool(true)),
                ("type", Json::Str("stats".into())),
                ("submitted", Json::Int(s.submitted as i64)),
                ("cache_hits", Json::Int(s.cache_hits as i64)),
                ("cache_misses", Json::Int(s.cache_misses as i64)),
                ("deduped", Json::Int(s.deduped as i64)),
                ("computed", Json::Int(s.computed as i64)),
                ("failed", Json::Int(s.failed as i64)),
                ("rejected", Json::Int(s.rejected as i64)),
                ("queue_depth", Json::Int(s.queue_depth as i64)),
                ("running", Json::Int(s.running as i64)),
                ("cache_entries", Json::Int(s.cache_entries as i64)),
                ("cache_evictions", Json::Int(s.cache_evictions as i64)),
                ("disk_hits", Json::Int(s.disk_hits as i64)),
            ]),
            Response::Pong => obj([("ok", Json::Bool(true)), ("type", Json::Str("pong".into()))]),
            Response::ShutdownStarted => {
                obj([("ok", Json::Bool(true)), ("type", Json::Str("shutdown".into()))])
            }
            Response::Error(e) => {
                let mut fields = vec![
                    ("ok", Json::Bool(false)),
                    ("error", Json::Str(e.code.as_str().into())),
                    ("message", Json::Str(e.message.clone())),
                ];
                if let Some(ms) = e.retry_after_ms {
                    fields.push(("retry_after_ms", Json::Int(ms as i64)));
                }
                obj(fields)
            }
        }
        .render()
    }

    /// Parses one reply line (the client side of [`Response::render`]).
    ///
    /// # Errors
    ///
    /// A human-readable message for unparseable or unknown reply shapes.
    pub fn parse(line: &str) -> Result<Response, String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        let ok = v.get("ok").and_then(Json::as_bool).ok_or("reply has no `ok` field")?;
        if !ok {
            let code = v.get("error").and_then(Json::as_str).ok_or("failure without `error`")?;
            let code = ErrorCode::parse(code).ok_or_else(|| format!("unknown error `{code}`"))?;
            return Ok(Response::Error(ProtoError {
                code,
                message: v.get("message").and_then(Json::as_str).unwrap_or_default().to_owned(),
                retry_after_ms: v.get("retry_after_ms").and_then(Json::as_u64),
            }));
        }
        let ty = v.get("type").and_then(Json::as_str).ok_or("reply has no `type` field")?;
        let str_field = |k: &str| {
            v.get(k).and_then(Json::as_str).map(str::to_owned).ok_or(format!("missing `{k}`"))
        };
        match ty {
            "submitted" => Ok(Response::Submitted {
                job: str_field("job")?,
                hit: v.get("hit").and_then(Json::as_bool).unwrap_or(false),
                key: str_field("key")?,
            }),
            "status" => {
                let state = match v.get("state").and_then(Json::as_str) {
                    Some("queued") => "queued",
                    Some("running") => "running",
                    Some("done") => "done",
                    Some("failed") => "failed",
                    other => return Err(format!("unknown state {other:?}")),
                };
                Ok(Response::Status { job: str_field("job")?, state })
            }
            "result" => Ok(Response::Result {
                job: str_field("job")?,
                hit: v.get("hit").and_then(Json::as_bool).unwrap_or(false),
                result: str_field("result")?,
            }),
            "stats" => {
                let n = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
                Ok(Response::Stats(StatsSnapshot {
                    submitted: n("submitted"),
                    cache_hits: n("cache_hits"),
                    cache_misses: n("cache_misses"),
                    deduped: n("deduped"),
                    computed: n("computed"),
                    failed: n("failed"),
                    rejected: n("rejected"),
                    queue_depth: n("queue_depth"),
                    running: n("running"),
                    cache_entries: n("cache_entries"),
                    cache_evictions: n("cache_evictions"),
                    disk_hits: n("disk_hits"),
                }))
            }
            "pong" => Ok(Response::Pong),
            "shutdown" => Ok(Response::ShutdownStarted),
            other => Err(format!("unknown reply type `{other}`")),
        }
    }
}

/// Parses one request line into a [`Request`], with typed errors for every
/// way a line can be wrong (bad JSON, bad shape, unknown command, bad
/// field values).
///
/// # Errors
///
/// [`ProtoError`] with [`ErrorCode::BadJson`], [`ErrorCode::BadRequest`],
/// or [`ErrorCode::UnknownCommand`].
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let v = Json::parse(line).map_err(|e| ProtoError::new(ErrorCode::BadJson, e.to_string()))?;
    if !matches!(v, Json::Obj(_)) {
        return Err(ProtoError::new(ErrorCode::BadRequest, "a request must be a JSON object"));
    }
    let cmd = v
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::new(ErrorCode::BadRequest, "missing string field `cmd`"))?;
    let job_field = |v: &Json| {
        v.get("job")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ProtoError::new(ErrorCode::BadRequest, "missing string field `job`"))
    };
    match cmd {
        "submit" => Ok(Request::Submit(Box::new(parse_job_spec(&v)?))),
        "wait" => Ok(Request::Wait {
            job: job_field(&v)?,
            timeout_ms: match v.get("timeout_ms") {
                None | Some(Json::Null) => None,
                Some(t) => Some(t.as_u64().ok_or_else(|| {
                    ProtoError::new(
                        ErrorCode::BadRequest,
                        "`timeout_ms` must be a non-negative integer",
                    )
                })?),
            },
        }),
        "poll" => Ok(Request::Poll { job: job_field(&v)? }),
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ProtoError::new(
            ErrorCode::UnknownCommand,
            format!("unknown command `{other}` (use submit/wait/poll/stats/ping/shutdown)"),
        )),
    }
}

/// Parses the submit-request body into a [`JobSpec`].
fn parse_job_spec(v: &Json) -> Result<JobSpec, ProtoError> {
    let bad = |msg: String| ProtoError::new(ErrorCode::BadRequest, msg);
    let mut spec = JobSpec::default();
    let workload = v.get("workload").and_then(Json::as_str);
    let source = v.get("source").and_then(Json::as_str);
    let trace = v.get("trace").and_then(Json::as_str);
    spec.input = match (workload, source, trace) {
        (Some(w), None, None) => JobInput::Workload(w.to_owned()),
        (None, Some(s), None) => JobInput::Source(s.to_owned()),
        (None, None, Some(t)) => JobInput::Trace(t.to_owned()),
        (None, None, None) => {
            return Err(bad("submit needs exactly one of `workload`, `source`, `trace`".into()))
        }
        _ => return Err(bad("`workload`, `source`, and `trace` are mutually exclusive".into())),
    };
    if let Some(k) = v.get("kind") {
        let name = k.as_str().ok_or_else(|| bad("`kind` must be a string".into()))?;
        spec.kind = JobKind::parse(name)
            .ok_or_else(|| bad(format!("unknown kind `{name}` (use model/report/dse)")))?;
    }
    if let Some(s) = v.get("scale") {
        let n = s.as_u64().ok_or_else(|| bad("`scale` must be a positive integer".into()))?;
        spec.scale = u32::try_from(n.max(1)).map_err(|_| bad(format!("scale {n} is too large")))?;
    }
    if let Some(e) = v.get("engine") {
        let name = e.as_str().ok_or_else(|| bad("`engine` must be a string".into()))?;
        spec.engine = Engine::parse(name)
            .ok_or_else(|| bad(format!("unknown engine `{name}` (use tree/vm)")))?;
    }
    if let Some(n) = v.get("nexec") {
        spec.n_exec =
            n.as_u64().ok_or_else(|| bad("`nexec` must be a non-negative integer".into()))?;
    }
    if let Some(n) = v.get("nloc") {
        spec.n_loc =
            n.as_u64().ok_or_else(|| bad("`nloc` must be a non-negative integer".into()))?;
    }
    if let Some(s) = v.get("sample") {
        let text = s.as_str().ok_or_else(|| bad("`sample` must be a string".into()))?;
        spec.sample = SampleSpec::parse(text).map_err(|e| bad(format!("bad sample spec: {e}")))?;
    }
    if let Some(i) = v.get("inputs") {
        let Json::Arr(items) = i else { return Err(bad("`inputs` must be an array".into())) };
        let values = items
            .iter()
            .map(|x| x.as_i64().ok_or_else(|| bad("`inputs` entries must be integers".into())))
            .collect::<Result<Vec<i64>, _>>()?;
        spec.inputs = Some(values);
    }
    if let Some(p) = v.get("priority") {
        let n = p.as_u64().ok_or_else(|| bad("`priority` must be 0-9".into()))?;
        if n > u64::from(MAX_PRIORITY) {
            return Err(bad(format!("priority {n} is out of range 0-{MAX_PRIORITY}")));
        }
        spec.priority = n as u8;
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_parses_with_defaults_and_overrides() {
        let r = parse_request("{\"cmd\":\"submit\",\"workload\":\"fftc\"}").unwrap();
        let Request::Submit(spec) = r else { panic!("not a submit: {r:?}") };
        assert_eq!(*spec, JobSpec::default());
        let r = parse_request(
            "{\"cmd\":\"submit\",\"source\":\"void main() { }\",\"kind\":\"report\",\
             \"engine\":\"tree\",\"nexec\":5,\"nloc\":3,\"sample\":\"every:2\",\
             \"inputs\":[1,-2],\"priority\":9,\"scale\":4}",
        )
        .unwrap();
        let Request::Submit(spec) = r else { panic!() };
        assert_eq!(spec.input, JobInput::Source("void main() { }".to_owned()));
        assert_eq!(spec.kind, JobKind::Report);
        assert_eq!(spec.engine, Engine::Tree);
        assert_eq!((spec.n_exec, spec.n_loc), (5, 3));
        assert_eq!(spec.sample, SampleSpec::EveryNth { n: 2 });
        assert_eq!(spec.inputs, Some(vec![1, -2]));
        assert_eq!(spec.priority, 9);
        assert_eq!(spec.scale, 4);
    }

    #[test]
    fn field_order_does_not_matter() {
        let a = parse_request("{\"cmd\":\"submit\",\"workload\":\"fftc\",\"scale\":2}").unwrap();
        let b = parse_request("{\"scale\":2,\"workload\":\"fftc\",\"cmd\":\"submit\"}").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_requests_get_the_right_code() {
        let code = |line: &str| parse_request(line).unwrap_err().code;
        assert_eq!(code("not json at all"), ErrorCode::BadJson);
        assert_eq!(code("[1,2]"), ErrorCode::BadRequest);
        assert_eq!(code("{\"cmd\":\"fly\"}"), ErrorCode::UnknownCommand);
        assert_eq!(code("{\"cmd\":\"submit\"}"), ErrorCode::BadRequest);
        assert_eq!(
            code("{\"cmd\":\"submit\",\"workload\":\"a\",\"source\":\"b\"}"),
            ErrorCode::BadRequest
        );
        assert_eq!(
            code("{\"cmd\":\"submit\",\"workload\":\"a\",\"kind\":\"paint\"}"),
            ErrorCode::BadRequest
        );
        assert_eq!(
            code("{\"cmd\":\"submit\",\"workload\":\"a\",\"priority\":10}"),
            ErrorCode::BadRequest
        );
        assert_eq!(
            code("{\"cmd\":\"submit\",\"workload\":\"a\",\"sample\":\"coin\"}"),
            ErrorCode::BadRequest
        );
        assert_eq!(code("{\"cmd\":\"wait\"}"), ErrorCode::BadRequest);
        assert_eq!(
            code("{\"cmd\":\"wait\",\"job\":\"j1\",\"timeout_ms\":-4}"),
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn responses_round_trip_through_render_and_parse() {
        let replies = [
            Response::Submitted { job: "j1".into(), hit: true, key: "ab12".into() },
            Response::Status { job: "j1".into(), state: "queued" },
            Response::Result { job: "j1".into(), hit: false, result: "for (...)\n".into() },
            Response::Stats(StatsSnapshot { submitted: 3, cache_hits: 1, ..Default::default() }),
            Response::Pong,
            Response::ShutdownStarted,
            Response::Error(ProtoError {
                code: ErrorCode::QueueFull,
                message: "queue is full".into(),
                retry_after_ms: Some(50),
            }),
        ];
        for r in replies {
            let line = r.render();
            assert!(!line.contains('\n'), "one line per reply: {line}");
            assert_eq!(Response::parse(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::BadJson,
            ErrorCode::BadRequest,
            ErrorCode::UnknownCommand,
            ErrorCode::UnknownJob,
            ErrorCode::QueueFull,
            ErrorCode::ShuttingDown,
            ErrorCode::JobFailed,
            ErrorCode::Timeout,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("nope"), None);
    }

    #[test]
    fn render_submit_round_trips() {
        let specs = [
            JobSpec::default(),
            JobSpec {
                kind: JobKind::Dse,
                input: JobInput::Source("void main() { }".into()),
                scale: 3,
                engine: Engine::Tree,
                n_exec: 1,
                n_loc: 2,
                sample: SampleSpec::Warmup { skip: 7 },
                inputs: Some(vec![-1, 0, 9]),
                priority: 4,
            },
            JobSpec {
                kind: JobKind::Report,
                input: JobInput::Trace("/tmp/t.ftrace".into()),
                ..JobSpec::default()
            },
        ];
        for spec in specs {
            let line = spec.render_submit();
            let Request::Submit(back) = parse_request(&line).unwrap() else {
                panic!("not a submit: {line}")
            };
            assert_eq!(*back, spec, "{line}");
        }
    }

    #[test]
    fn simple_commands_parse() {
        assert_eq!(parse_request("{\"cmd\":\"stats\"}").unwrap(), Request::Stats);
        assert_eq!(parse_request("{\"cmd\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(parse_request("{\"cmd\":\"shutdown\"}").unwrap(), Request::Shutdown);
        assert_eq!(
            parse_request("{\"cmd\":\"poll\",\"job\":\"j9\"}").unwrap(),
            Request::Poll { job: "j9".into() }
        );
        assert_eq!(
            parse_request("{\"cmd\":\"wait\",\"job\":\"j9\",\"timeout_ms\":100}").unwrap(),
            Request::Wait { job: "j9".into(), timeout_ms: Some(100) }
        );
    }
}
