//! Content-addressed cache keys for analysis jobs.
//!
//! The key is a stable 64-bit FNV-1a digest (rendered as 16 hex chars) over
//! everything that can change the *bytes* of a job's result, and nothing
//! else:
//!
//! * a schema tag (`foray-serve-key/v1`) so the key space can be versioned;
//! * the job kind (model / report / dse);
//! * the **resolved** program source — a workload name plus scale resolves
//!   to the workload's generated source text, so `workload:fftc, scale:2`
//!   and an inline submission of the identical source share one cache
//!   entry; line endings are canonicalized (`\r\n` → `\n`) first;
//! * for trace inputs, the trace file's **content** digest (never its
//!   path — renaming a file must still hit; editing it must miss);
//! * the profiling engine (tree and VM are byte-identical by construction,
//!   but the guarantee is locked by tests, not proven here, so the engine
//!   stays key material — a deliberate, documented over-approximation);
//! * the Step 4 filter thresholds and the output-relevant analyzer fields
//!   (see `AnalyzerConfig::stable_digest`);
//! * the `input()` data fed to the program.
//!
//! **Deliberately excluded:** worker/shard counts, stream tuning, lookup
//! strategy, and scheduling priority. The shard- and stream-equivalence
//! suites prove those cannot change output bytes; keying on them would
//! only fragment the cache.

use crate::protocol::{JobInput, JobSpec};
use crate::{ErrorCode, ProtoError};
use foray::StableHasher;
use foray_workloads::{by_name, Params};
use std::fs;

/// Version tag mixed into every key; bump when key semantics change.
pub const KEY_SCHEMA: &str = "foray-serve-key/v1";

/// A job's resolved identity: the cache key plus the materials the
/// scheduler needs to actually run it (resolved source and inputs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedJob {
    /// 16-hex-char content-addressed cache key.
    pub key: String,
    /// The job as submitted.
    pub spec: JobSpec,
    /// For workload/source jobs: the canonicalized program text.
    pub source: Option<String>,
    /// The `input()` data to install (resolved from the workload's
    /// canonical inputs unless the submission overrode them).
    pub inputs: Vec<i64>,
}

/// Resolves a [`JobSpec`] to its cache key and run materials.
///
/// This is where submit-time validation happens: unknown workload names
/// and unreadable trace files are rejected here with typed
/// [`ErrorCode::BadRequest`] errors, before anything is queued.
///
/// # Errors
///
/// [`ProtoError`] (`bad_request`) for unknown workloads or unreadable
/// trace files.
pub fn resolve(spec: &JobSpec) -> Result<ResolvedJob, ProtoError> {
    if spec.kind == crate::protocol::JobKind::Dse && matches!(spec.input, JobInput::Trace(_)) {
        return Err(ProtoError::new(
            ErrorCode::BadRequest,
            "dse needs program source: a trace file carries no program to re-run",
        ));
    }
    let mut h = StableHasher::new();
    h.field_str("schema", KEY_SCHEMA);
    h.field_str("kind", spec.kind.as_str());

    let (source, canonical_inputs) = match &spec.input {
        JobInput::Workload(name) => {
            let w = by_name(name, Params { scale: spec.scale }).ok_or_else(|| {
                ProtoError::new(ErrorCode::BadRequest, format!("unknown workload `{name}`"))
            })?;
            (Some(canonicalize(&w.source)), w.inputs)
        }
        JobInput::Source(text) => (Some(canonicalize(text)), Vec::new()),
        JobInput::Trace(path) => {
            let bytes = fs::read(path).map_err(|e| {
                ProtoError::new(ErrorCode::BadRequest, format!("cannot read trace `{path}`: {e}"))
            })?;
            let mut th = StableHasher::new();
            th.update(&bytes);
            h.field_str("input.trace", &th.finish_hex());
            (None, Vec::new())
        }
    };
    if let Some(src) = &source {
        h.field_str("input.source", src);
    }
    let inputs = spec.inputs.clone().unwrap_or(canonical_inputs);
    h.field_i64_list("inputs", &inputs);
    h.field_str("engine", spec.engine.as_str());
    foray::FilterConfig { n_exec: spec.n_exec, n_loc: spec.n_loc }.stable_digest(&mut h);
    analyzer_config_for(spec).stable_digest(&mut h);

    Ok(ResolvedJob { key: h.finish_hex(), spec: spec.clone(), source, inputs })
}

/// The analyzer configuration a job runs with (sampling is the only
/// output-relevant knob the protocol exposes; everything else stays at
/// the crate defaults and the scheduler picks worker counts freely).
pub(crate) fn analyzer_config_for(spec: &JobSpec) -> foray::AnalyzerConfig {
    foray::AnalyzerConfig { sample: spec.sample, ..foray::AnalyzerConfig::default() }
}

/// Normalizes line endings so the same program submitted from different
/// platforms shares one cache entry.
fn canonicalize(source: &str) -> String {
    source.replace("\r\n", "\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::JobKind;
    use foray::{Engine, SampleSpec};

    fn spec(input: JobInput) -> JobSpec {
        JobSpec { input, ..JobSpec::default() }
    }

    #[test]
    fn workload_resolves_to_its_source_and_canonical_inputs() {
        let r = resolve(&spec(JobInput::Workload("fftc".into()))).unwrap();
        let w = by_name("fftc", Params { scale: 1 }).unwrap();
        assert_eq!(r.source.as_deref(), Some(w.source.as_str()));
        assert_eq!(r.inputs, w.inputs);
        // Submitting the workload's source inline (with the same inputs)
        // lands on the same cache entry.
        let mut inline = spec(JobInput::Source(w.source.clone()));
        inline.inputs = Some(w.inputs.clone());
        assert_eq!(resolve(&inline).unwrap().key, r.key);
    }

    #[test]
    fn key_ignores_priority_but_tracks_output_relevant_fields() {
        let base = spec(JobInput::Workload("fftc".into()));
        let key = |s: &JobSpec| resolve(s).unwrap().key;
        let k0 = key(&base);

        let mut p = base.clone();
        p.priority = 9;
        assert_eq!(key(&p), k0, "priority is scheduling, not content");

        let mut scale = base.clone();
        scale.scale = 2;
        assert_ne!(key(&scale), k0, "scale changes the resolved source");

        let mut eng = base.clone();
        eng.engine = Engine::Tree;
        assert_ne!(key(&eng), k0, "engine is (deliberately) key material");

        let mut samp = base.clone();
        samp.sample = SampleSpec::EveryNth { n: 2 };
        assert_ne!(key(&samp), k0);

        let mut filt = base.clone();
        filt.n_exec = 21;
        assert_ne!(key(&filt), k0);

        let mut kind = base.clone();
        kind.kind = JobKind::Report;
        assert_ne!(key(&kind), k0);

        let mut ins = base.clone();
        ins.inputs = Some(vec![1, 2, 3]);
        assert_ne!(key(&ins), k0);
    }

    #[test]
    fn crlf_sources_share_a_cache_entry() {
        let a = resolve(&spec(JobInput::Source("void main() {\n}\n".into()))).unwrap();
        let b = resolve(&spec(JobInput::Source("void main() {\r\n}\r\n".into()))).unwrap();
        assert_eq!(a.key, b.key);
    }

    #[test]
    fn trace_keys_follow_content_not_path() {
        let dir = std::env::temp_dir().join(format!("foray-serve-key-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("a.ftrace");
        let p2 = dir.join("b.ftrace");
        fs::write(&p1, b"identical bytes").unwrap();
        fs::write(&p2, b"identical bytes").unwrap();
        let k1 = resolve(&spec(JobInput::Trace(p1.to_string_lossy().into_owned()))).unwrap().key;
        let k2 = resolve(&spec(JobInput::Trace(p2.to_string_lossy().into_owned()))).unwrap().key;
        assert_eq!(k1, k2, "same bytes, different path: must hit");
        fs::write(&p2, b"different bytes!").unwrap();
        let k3 = resolve(&spec(JobInput::Trace(p2.to_string_lossy().into_owned()))).unwrap().key;
        assert_ne!(k1, k3, "edited file: must miss");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_workload_and_missing_trace_are_typed_errors() {
        let e = resolve(&spec(JobInput::Workload("mp3floatc".into()))).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        let e = resolve(&spec(JobInput::Trace("/nonexistent/x.ftrace".into()))).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest);
        let mut dse_trace = spec(JobInput::Trace("/tmp/x.ftrace".into()));
        dse_trace.kind = JobKind::Dse;
        let e = resolve(&dse_trace).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadRequest, "dse over a trace is rejected before IO");
    }

    /// Golden vector: locks the digest schema. If this changes, bump
    /// [`KEY_SCHEMA`] and update the vector deliberately.
    #[test]
    fn golden_key_vector() {
        let r = resolve(&spec(JobInput::Source("void main() { }".into()))).unwrap();
        assert_eq!(r.key.len(), 16);
        assert!(r.key.chars().all(|c| c.is_ascii_hexdigit()));
        // The literal digest is pinned by tests/serve.rs (golden vector
        // lives with the rest of the service battery); here we lock the
        // structural invariants and determinism.
        assert_eq!(resolve(&spec(JobInput::Source("void main() { }".into()))).unwrap().key, r.key);
    }
}
