//! The `forayd` scheduler: bounded priority queue, worker pool,
//! content-addressed cache, in-flight deduplication, graceful drain.
//!
//! Submission path, in order:
//!
//! 1. **Validate + resolve** — unknown workloads / unreadable traces are
//!    rejected with typed errors before anything is queued; the
//!    content-addressed key is computed ([`crate::key`]).
//! 2. **Cache** — a hit answers instantly with a job that is born `done`.
//! 3. **Dedupe** — a submission whose key is already queued or running is
//!    coalesced onto the in-flight job: same job id back, one compute,
//!    N identical replies.
//! 4. **Backpressure** — a full queue rejects with `queue_full` and a
//!    `retry_after_ms` hint; accepted work is never dropped.
//! 5. **Queue** — jobs run highest [`JobSpec::priority`] first, FIFO
//!    within a priority.
//!
//! Shutdown is a drain: the flag flips (new submits get `shutting_down`),
//! workers finish everything already accepted, then exit. With
//! `workers: 0` nothing runs in the background — tests drive the queue
//! deterministically with [`Server::step_one`].

use crate::cache::ResultCache;
use crate::json::{obj, Json};
use crate::key::{analyzer_config_for, resolve, ResolvedJob};
use crate::protocol::{
    parse_request, ErrorCode, JobInput, JobKind, JobSpec, ProtoError, Request, Response,
    StatsSnapshot,
};
use foray::{ForayGen, ForayModel, MemoryBehavior};
use std::collections::{BinaryHeap, HashMap};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Background compute threads; `0` = none, drive with
    /// [`Server::step_one`] (deterministic test mode).
    pub workers: usize,
    /// Maximum jobs waiting in the queue before submits are rejected
    /// with `queue_full`.
    pub queue_capacity: usize,
    /// In-memory result-cache entries.
    pub cache_entries: usize,
    /// Spill directory for evicted cache entries (`None`: evictions are
    /// dropped).
    pub spill_dir: Option<PathBuf>,
    /// Analysis shard workers per job (`0` = auto; see
    /// [`foray::resolve_shards`]). Not cache-key material: any value
    /// yields byte-identical results.
    pub default_shards: usize,
    /// Backoff hint attached to `queue_full` rejections.
    pub retry_after_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            queue_capacity: 64,
            cache_entries: 128,
            spill_dir: None,
            default_shards: 0,
            retry_after_ms: 100,
        }
    }
}

/// A successful submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submitted {
    /// Job id for `wait` / `poll`.
    pub job: String,
    /// `true` when the result came straight from the cache.
    pub hit: bool,
    /// The job's content-addressed key (16 hex chars).
    pub key: String,
}

#[derive(Debug)]
enum JobState {
    Queued,
    Running,
    Done { hit: bool, result: Arc<str> },
    Failed(String),
}

#[derive(Debug)]
struct JobRecord {
    resolved: ResolvedJob,
    state: JobState,
}

/// Max-heap entry: highest priority first, then FIFO by sequence.
#[derive(Debug, PartialEq, Eq)]
struct QueueEntry {
    priority: u8,
    seq: u64,
    id: u64,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority.cmp(&other.priority).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Default)]
struct Counters {
    submitted: u64,
    cache_hits: u64,
    cache_misses: u64,
    deduped: u64,
    computed: u64,
    failed: u64,
    rejected: u64,
}

struct State {
    queue: BinaryHeap<QueueEntry>,
    jobs: HashMap<u64, JobRecord>,
    in_flight: HashMap<String, u64>,
    cache: ResultCache,
    counters: Counters,
    next_id: u64,
    next_seq: u64,
    running: u64,
    shutting_down: bool,
}

struct Shared {
    cfg: ServeConfig,
    state: Mutex<State>,
    work: Condvar,
    done: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The analysis service: scheduler + cache + worker pool. Listener-free —
/// wire transports live in [`crate::net`]; everything here is callable
/// in-process for tests and benches.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Starts the service and its worker pool.
    pub fn new(cfg: ServeConfig) -> Server {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: BinaryHeap::new(),
                jobs: HashMap::new(),
                in_flight: HashMap::new(),
                cache: ResultCache::new(cfg.cache_entries, cfg.spill_dir.clone()),
                counters: Counters::default(),
                next_id: 0,
                next_seq: 0,
                running: 0,
                shutting_down: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            cfg,
        });
        let workers = (0..shared.cfg.workers)
            .map(|_| {
                let sh = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        Server { shared, workers }
    }

    /// Submits a job: validate, consult the cache, coalesce onto an
    /// in-flight twin, or enqueue.
    ///
    /// # Errors
    ///
    /// Typed [`ProtoError`]: `bad_request` (unknown workload, unreadable
    /// trace, dse-over-trace), `shutting_down`, or `queue_full` (with a
    /// retry hint).
    pub fn submit(&self, spec: &JobSpec) -> Result<Submitted, ProtoError> {
        // Resolution does IO (trace hashing) — keep it outside the lock.
        let resolved = resolve(spec)?;
        let key = resolved.key.clone();
        let mut st = self.shared.lock();
        if st.shutting_down {
            return Err(ProtoError::new(
                ErrorCode::ShuttingDown,
                "the daemon is draining and accepts no new jobs",
            ));
        }
        st.counters.submitted += 1;
        if let Some(result) = st.cache.get(&key) {
            st.counters.cache_hits += 1;
            let id = st.next_id;
            st.next_id += 1;
            st.jobs.insert(id, JobRecord { resolved, state: JobState::Done { hit: true, result } });
            return Ok(Submitted { job: format!("j{id}"), hit: true, key });
        }
        if let Some(&id) = st.in_flight.get(&key) {
            st.counters.deduped += 1;
            return Ok(Submitted { job: format!("j{id}"), hit: false, key });
        }
        if st.queue.len() >= self.shared.cfg.queue_capacity {
            st.counters.rejected += 1;
            return Err(ProtoError {
                code: ErrorCode::QueueFull,
                message: format!("queue is full ({} jobs waiting)", self.shared.cfg.queue_capacity),
                retry_after_ms: Some(self.shared.cfg.retry_after_ms),
            });
        }
        st.counters.cache_misses += 1;
        let id = st.next_id;
        st.next_id += 1;
        let seq = st.next_seq;
        st.next_seq += 1;
        st.jobs.insert(id, JobRecord { resolved, state: JobState::Queued });
        st.in_flight.insert(key.clone(), id);
        st.queue.push(QueueEntry { priority: spec.priority, seq, id });
        drop(st);
        self.shared.work.notify_one();
        Ok(Submitted { job: format!("j{id}"), hit: false, key })
    }

    /// Blocks until `job` finishes; `timeout` bounds the wait.
    ///
    /// # Errors
    ///
    /// `unknown_job`, `job_failed` (with the compute error), or `timeout`.
    pub fn wait(
        &self,
        job: &str,
        timeout: Option<Duration>,
    ) -> Result<(bool, Arc<str>), ProtoError> {
        let id = parse_job_id(job)?;
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut st = self.shared.lock();
        loop {
            let rec = st
                .jobs
                .get(&id)
                .ok_or_else(|| ProtoError::new(ErrorCode::UnknownJob, format!("no job `{job}`")))?;
            match &rec.state {
                JobState::Done { hit, result } => return Ok((*hit, Arc::clone(result))),
                JobState::Failed(msg) => {
                    return Err(ProtoError::new(ErrorCode::JobFailed, msg.clone()))
                }
                JobState::Queued | JobState::Running => {}
            }
            st = match deadline {
                None => {
                    self.shared.done.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner)
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(ProtoError::new(
                            ErrorCode::Timeout,
                            format!("job `{job}` did not finish in time"),
                        ));
                    }
                    self.shared
                        .done
                        .wait_timeout(st, d - now)
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .0
                }
            };
        }
    }

    /// Non-blocking state query: `queued`, `running`, `done`, or `failed`.
    ///
    /// # Errors
    ///
    /// `unknown_job`.
    pub fn poll(&self, job: &str) -> Result<&'static str, ProtoError> {
        let id = parse_job_id(job)?;
        let st = self.shared.lock();
        let rec = st
            .jobs
            .get(&id)
            .ok_or_else(|| ProtoError::new(ErrorCode::UnknownJob, format!("no job `{job}`")))?;
        Ok(match rec.state {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Failed(_) => "failed",
        })
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        let st = self.shared.lock();
        let cc = st.cache.counters();
        StatsSnapshot {
            submitted: st.counters.submitted,
            cache_hits: st.counters.cache_hits,
            cache_misses: st.counters.cache_misses,
            deduped: st.counters.deduped,
            computed: st.counters.computed,
            failed: st.counters.failed,
            rejected: st.counters.rejected,
            queue_depth: st.queue.len() as u64,
            running: st.running,
            cache_entries: st.cache.len() as u64,
            cache_evictions: cc.evictions,
            disk_hits: cc.disk_hits,
        }
    }

    /// Runs at most one queued job on the calling thread. Returns whether
    /// a job ran. This is the `workers: 0` test/drain hook: combined with
    /// a bounded queue it makes backpressure and ordering deterministic.
    pub fn step_one(&self) -> bool {
        let claimed = {
            let mut st = self.shared.lock();
            claim_next(&mut st)
        };
        match claimed {
            Some((id, resolved)) => {
                run_claimed(&self.shared, id, &resolved);
                true
            }
            None => false,
        }
    }

    /// Blocks until every accepted job has finished (queue empty, nothing
    /// running). With `workers: 0` the drain runs inline on this thread.
    /// Call [`Server::begin_shutdown`] first if new submissions should be
    /// fenced out while draining.
    pub fn drain_wait(&self) {
        if self.shared.cfg.workers == 0 {
            while self.step_one() {}
            return;
        }
        let mut st = self.shared.lock();
        while !st.queue.is_empty() || st.running > 0 {
            st = self.shared.done.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Flips the drain flag: new submits are rejected, accepted jobs keep
    /// running. Idempotent.
    pub fn begin_shutdown(&self) {
        let mut st = self.shared.lock();
        st.shutting_down = true;
        drop(st);
        self.shared.work.notify_all();
    }

    /// Graceful drain: reject new work, finish everything accepted
    /// (inline when `workers: 0`), join the pool. Idempotent.
    pub fn shutdown(&mut self) {
        self.begin_shutdown();
        if self.shared.cfg.workers == 0 {
            while self.step_one() {}
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Serves one protocol line: parse, dispatch, and map every failure to
    /// a typed error response. This is the whole per-line server side —
    /// transports ([`crate::net`]) only frame lines and move bytes.
    ///
    /// Returns the response plus whether the daemon should begin draining
    /// (a `shutdown` command was acknowledged).
    pub fn handle_line(&self, line: &str) -> (Response, bool) {
        let req = match parse_request(line) {
            Ok(r) => r,
            Err(e) => return (Response::Error(e), false),
        };
        match req {
            Request::Submit(spec) => match self.submit(&spec) {
                Ok(s) => (Response::Submitted { job: s.job, hit: s.hit, key: s.key }, false),
                Err(e) => (Response::Error(e), false),
            },
            Request::Wait { job, timeout_ms } => {
                match self.wait(&job, timeout_ms.map(Duration::from_millis)) {
                    Ok((hit, result)) => {
                        (Response::Result { job, hit, result: result.to_string() }, false)
                    }
                    Err(e) => (Response::Error(e), false),
                }
            }
            Request::Poll { job } => match self.poll(&job) {
                Ok(state) => (Response::Status { job, state }, false),
                Err(e) => (Response::Error(e), false),
            },
            Request::Stats => (Response::Stats(self.stats()), false),
            Request::Ping => (Response::Pong, false),
            Request::Shutdown => {
                self.begin_shutdown();
                (Response::ShutdownStarted, true)
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn parse_job_id(job: &str) -> Result<u64, ProtoError> {
    job.strip_prefix('j')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| ProtoError::new(ErrorCode::UnknownJob, format!("malformed job id `{job}`")))
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let claimed = {
            let mut st = shared.lock();
            loop {
                if let Some(c) = claim_next(&mut st) {
                    break c;
                }
                if st.shutting_down {
                    return;
                }
                st = shared.work.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        run_claimed(shared, claimed.0, &claimed.1);
    }
}

/// Pops the highest-priority job and marks it running — one atomic step
/// under the lock, so a drain check never sees a popped-but-unmarked job.
fn claim_next(st: &mut State) -> Option<(u64, ResolvedJob)> {
    let id = st.queue.pop()?.id;
    let rec = st.jobs.get_mut(&id).expect("queued job has a record");
    rec.state = JobState::Running;
    st.running += 1;
    Some((id, rec.resolved.clone()))
}

/// Computes a claimed job unlocked, then publishes the result (into the
/// cache on success) and wakes waiters.
fn run_claimed(shared: &Arc<Shared>, id: u64, resolved: &ResolvedJob) {
    let outcome = compute(resolved, &shared.cfg);
    let mut st = shared.lock();
    st.running -= 1;
    st.in_flight.remove(&resolved.key);
    match outcome {
        Ok(text) => {
            let result: Arc<str> = Arc::from(text);
            st.cache.insert(&resolved.key, Arc::clone(&result));
            st.counters.computed += 1;
            if let Some(rec) = st.jobs.get_mut(&id) {
                rec.state = JobState::Done { hit: false, result };
            }
        }
        Err(msg) => {
            st.counters.failed += 1;
            if let Some(rec) = st.jobs.get_mut(&id) {
                rec.state = JobState::Failed(msg);
            }
        }
    }
    drop(st);
    shared.done.notify_all();
}

/// The actual analysis. Runs with the lock released; any worker count
/// yields byte-identical payloads (the determinism the cache relies on).
fn compute(resolved: &ResolvedJob, cfg: &ServeConfig) -> Result<String, String> {
    let spec = &resolved.spec;
    let filter = foray::FilterConfig { n_exec: spec.n_exec, n_loc: spec.n_loc };
    let mut acfg = analyzer_config_for(spec);
    acfg.shards = cfg.default_shards;
    match spec.kind {
        JobKind::Model | JobKind::Report => {
            let (analysis, model, code) = match &spec.input {
                JobInput::Trace(path) => {
                    let results = foray::analyze_trace_files(&[path.as_str()], 1, &acfg);
                    let analysis = results
                        .into_iter()
                        .next()
                        .expect("one path in, one result out")
                        .map_err(|e| format!("trace `{path}`: {e}"))?;
                    let model = ForayModel::extract(&analysis, &filter);
                    let code = foray::codegen::emit(&model);
                    (analysis, model, code)
                }
                JobInput::Workload(_) | JobInput::Source(_) => {
                    let source = resolved.source.as_deref().expect("resolved program source");
                    let out = ForayGen::new()
                        .filter(filter)
                        .analyzer(acfg)
                        .sharded(true)
                        .engine(spec.engine)
                        .inputs(resolved.inputs.clone())
                        .run_source(source)
                        .map_err(|e| e.to_string())?;
                    (out.analysis, out.model, out.code)
                }
            };
            match spec.kind {
                JobKind::Model => Ok(code),
                JobKind::Report => Ok(render_report(resolved, &analysis, &model, &code)),
                JobKind::Dse => unreachable!("outer match"),
            }
        }
        JobKind::Dse => {
            let source = resolved.source.as_deref().expect("dse-over-trace rejected at resolve");
            let name = match &spec.input {
                JobInput::Workload(w) => w.as_str(),
                _ => "inline",
            };
            let pipeline = ForayGen::new()
                .filter(filter)
                .analyzer(acfg)
                .sharded(true)
                .engine(spec.engine)
                .inputs(resolved.inputs.clone());
            let job = foray::BatchJob::new(name, source).pipeline(pipeline);
            let result = foray_spm::SpmDesignSpace::new()
                .capacities(&[256, 512, 1024, 2048, 4096, 8192])
                .preset_models()
                .workloads([job])
                .explore(1)
                .map_err(|e| e.to_string())?;
            Ok(result.to_json())
        }
    }
}

/// Renders the `report` payload: `foray-serve-report/v1`, one compact
/// JSON object with the Table III memory-behaviour counters plus the
/// emitted model code.
fn render_report(
    resolved: &ResolvedJob,
    analysis: &foray::Analysis,
    model: &ForayModel,
    code: &str,
) -> String {
    let mb = MemoryBehavior::compute(analysis, model);
    let name = match &resolved.spec.input {
        JobInput::Workload(w) => w.clone(),
        JobInput::Source(_) => "inline".to_owned(),
        JobInput::Trace(p) => p.clone(),
    };
    let n = |v: u64| Json::Int(v as i64);
    obj([
        ("schema", Json::Str("foray-serve-report/v1".into())),
        ("name", Json::Str(name)),
        ("key", Json::Str(resolved.key.clone())),
        ("total_refs", n(mb.total_refs)),
        ("total_accesses", n(mb.total_accesses)),
        ("total_footprint", n(mb.total_footprint)),
        ("model_refs", n(mb.model_refs)),
        ("model_accesses", n(mb.model_accesses)),
        ("model_footprint", n(mb.model_footprint)),
        ("lib_refs", n(mb.lib_refs)),
        ("lib_accesses", n(mb.lib_accesses)),
        ("lib_footprint", n(mb.lib_footprint)),
        ("other_footprint", n(mb.other_footprint)),
        ("model_loops", n(model.loops.len() as u64)),
        ("code", Json::Str(code.to_owned())),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOP: &str = "int a[256]; void main() { int i; for (i = 0; i < 256; i++) { a[i] = i; } }";

    fn spec(source: &str) -> JobSpec {
        JobSpec { input: JobInput::Source(source.to_owned()), ..JobSpec::default() }
    }

    fn manual_server() -> Server {
        Server::new(ServeConfig { workers: 0, ..ServeConfig::default() })
    }

    #[test]
    fn submit_step_wait_roundtrip_and_cache_hit() {
        let srv = manual_server();
        let s1 = srv.submit(&spec(LOOP)).unwrap();
        assert!(!s1.hit);
        assert_eq!(srv.poll(&s1.job).unwrap(), "queued");
        assert!(srv.step_one());
        assert_eq!(srv.poll(&s1.job).unwrap(), "done");
        let (hit, cold) = srv.wait(&s1.job, None).unwrap();
        assert!(!hit);
        assert!(cold.contains("for ("), "model code expected, got: {cold}");

        let s2 = srv.submit(&spec(LOOP)).unwrap();
        assert!(s2.hit, "resubmission is a cache hit");
        assert_eq!(s2.key, s1.key);
        let (hit, warm) = srv.wait(&s2.job, None).unwrap();
        assert!(hit);
        assert_eq!(*warm, *cold, "cached bytes identical to cold bytes");

        let st = srv.stats();
        assert_eq!((st.submitted, st.cache_hits, st.computed), (2, 1, 1));
    }

    #[test]
    fn dedupe_coalesces_identical_pending_jobs() {
        let srv = manual_server();
        let a = srv.submit(&spec(LOOP)).unwrap();
        let b = srv.submit(&spec(LOOP)).unwrap();
        assert_eq!(a.job, b.job, "same key while queued: same job id");
        assert_eq!(srv.stats().deduped, 1);
        assert!(srv.step_one());
        assert!(!srv.step_one(), "one queue entry for both submissions");
        assert_eq!(srv.stats().computed, 1);
    }

    #[test]
    fn priority_orders_the_queue_fifo_within_level() {
        let srv = manual_server();
        let mk = |src: &str, priority: u8| {
            let mut s = spec(src);
            s.priority = priority;
            srv.submit(&s).unwrap().job
        };
        let low1 = mk("int x[64]; void main() { x[0] = 1; }", 0);
        let hi = mk("int y[64]; void main() { y[0] = 2; }", 5);
        let low2 = mk("int z[64]; void main() { z[0] = 3; }", 0);
        assert!(srv.step_one());
        assert_eq!(srv.poll(&hi).unwrap(), "done", "high priority first");
        assert!(srv.step_one());
        assert_eq!(srv.poll(&low1).unwrap(), "done", "FIFO within a level");
        assert_eq!(srv.poll(&low2).unwrap(), "queued");
        assert!(srv.step_one());
    }

    #[test]
    fn queue_full_is_a_typed_retryable_rejection() {
        let mut srv = Server::new(ServeConfig {
            workers: 0,
            queue_capacity: 1,
            retry_after_ms: 77,
            ..ServeConfig::default()
        });
        srv.submit(&spec(LOOP)).unwrap();
        let e = srv.submit(&spec("int b[9]; void main() { b[1] = 2; }")).unwrap_err();
        assert_eq!(e.code, ErrorCode::QueueFull);
        assert_eq!(e.retry_after_ms, Some(77));
        assert_eq!(srv.stats().rejected, 1);
        // Draining the queue makes room again.
        assert!(srv.step_one());
        srv.submit(&spec("int b[9]; void main() { b[1] = 2; }")).unwrap();
        srv.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_work_but_drains_accepted_jobs() {
        let mut srv = manual_server();
        let s = srv.submit(&spec(LOOP)).unwrap();
        srv.begin_shutdown();
        let e = srv.submit(&spec("void main() { }")).unwrap_err();
        assert_eq!(e.code, ErrorCode::ShuttingDown);
        srv.shutdown();
        assert_eq!(srv.poll(&s.job).unwrap(), "done", "accepted job survived the drain");
    }

    #[test]
    fn failed_jobs_report_job_failed_and_are_not_cached() {
        let srv = manual_server();
        let s = srv.submit(&spec("void main() { undeclared = 3; }")).unwrap();
        assert!(srv.step_one());
        let e = srv.wait(&s.job, None).unwrap_err();
        assert_eq!(e.code, ErrorCode::JobFailed);
        assert_eq!(srv.poll(&s.job).unwrap(), "failed");
        let again = srv.submit(&spec("void main() { undeclared = 3; }")).unwrap();
        assert!(!again.hit, "failures are never cached");
        assert_eq!(srv.stats().failed, 1);
        assert!(srv.step_one());
    }

    #[test]
    fn wait_times_out_and_unknown_jobs_are_typed() {
        let srv = manual_server();
        let s = srv.submit(&spec(LOOP)).unwrap();
        let e = srv.wait(&s.job, Some(Duration::from_millis(10))).unwrap_err();
        assert_eq!(e.code, ErrorCode::Timeout);
        assert_eq!(srv.wait("j999", None).unwrap_err().code, ErrorCode::UnknownJob);
        assert_eq!(srv.poll("bogus").unwrap_err().code, ErrorCode::UnknownJob);
        assert!(srv.step_one());
    }

    #[test]
    fn background_workers_compute_without_stepping() {
        let mut srv = Server::new(ServeConfig { workers: 2, ..ServeConfig::default() });
        let s = srv.submit(&spec(LOOP)).unwrap();
        let (hit, result) = srv.wait(&s.job, Some(Duration::from_secs(30))).unwrap();
        assert!(!hit);
        assert!(result.contains("for ("));
        srv.shutdown();
    }

    #[test]
    fn handle_line_maps_every_failure_to_a_typed_response() {
        let srv = manual_server();
        let (r, _) = srv.handle_line("garbage");
        assert!(matches!(r, Response::Error(e) if e.code == ErrorCode::BadJson));
        let (r, _) = srv.handle_line("{\"cmd\":\"submit\",\"workload\":\"nope\"}");
        assert!(matches!(r, Response::Error(e) if e.code == ErrorCode::BadRequest));
        let (r, _) = srv.handle_line("{\"cmd\":\"ping\"}");
        assert_eq!(r, Response::Pong);
        let (r, sd) = srv.handle_line("{\"cmd\":\"shutdown\"}");
        assert_eq!(r, Response::ShutdownStarted);
        assert!(sd);
    }
}
