//! Wire transports for the daemon: Unix-domain and TCP listeners, plus a
//! line-oriented client.
//!
//! Transports only frame lines and move bytes — every protocol decision
//! (parsing, typed errors, shutdown) lives in
//! [`Server::handle_line`](crate::Server::handle_line). One thread per
//! connection; a blocking `wait` therefore never stalls other clients.
//! A malformed line earns an error response and the connection stays
//! open; only EOF or a transport error closes it.

use crate::protocol::{ProtoError, Response};
use crate::Server;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// Where the daemon listens (and the client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeAddr {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP `host:port`.
    Tcp(String),
}

impl fmt::Display for ServeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeAddr::Unix(p) => write!(f, "unix:{}", p.display()),
            ServeAddr::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

enum AnyListener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// Runs the accept loop until a client sends `shutdown`, then drains the
/// queue gracefully and returns. Blocks the calling thread for the
/// daemon's whole life.
///
/// # Errors
///
/// Bind/accept failures. Per-connection IO errors only end that
/// connection.
pub fn serve(server: Server, addr: &ServeAddr) -> io::Result<()> {
    let listener = match addr {
        ServeAddr::Unix(path) => {
            // A previous daemon's socket file would make bind fail.
            let _ = std::fs::remove_file(path);
            AnyListener::Unix(UnixListener::bind(path)?)
        }
        ServeAddr::Tcp(hostport) => AnyListener::Tcp(TcpListener::bind(hostport.as_str())?),
    };
    // For the self-connect poke (and client reconnects), resolve the
    // bound address — TCP may have been asked for port 0.
    let bound = match (&listener, addr) {
        (AnyListener::Tcp(l), _) => ServeAddr::Tcp(l.local_addr()?.to_string()),
        (_, a) => a.clone(),
    };
    let stop = Arc::new(AtomicBool::new(false));
    let server = Arc::new(server);
    while !stop.load(Ordering::SeqCst) {
        let stream: Box<dyn Conn> = match &listener {
            AnyListener::Unix(l) => Box::new(l.accept()?.0),
            AnyListener::Tcp(l) => Box::new(l.accept()?.0),
        };
        if stop.load(Ordering::SeqCst) {
            break; // the poke connection itself
        }
        let srv = Arc::clone(&server);
        let stop_flag = Arc::clone(&stop);
        let poke_addr = bound.clone();
        // Connection threads are detached: an idle client must not be
        // able to hold the daemon's exit hostage. They die with the
        // process (or at EOF when their client hangs up).
        thread::spawn(move || {
            if drive_connection(&srv, stream.as_ref()) {
                stop_flag.store(true, Ordering::SeqCst);
                poke(&poke_addr);
            }
        });
    }
    // `handle_line` already flipped the drain flag when it acknowledged
    // the shutdown command; wait for every accepted job to finish.
    server.begin_shutdown();
    server.drain_wait();
    if let ServeAddr::Unix(path) = addr {
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

/// A bidirectional byte stream we can split into reader + writer.
trait Conn: Send {
    fn split(&self) -> io::Result<(Box<dyn Read>, Box<dyn Write>)>;
}

impl Conn for UnixStream {
    fn split(&self) -> io::Result<(Box<dyn Read>, Box<dyn Write>)> {
        Ok((Box::new(self.try_clone()?), Box::new(self.try_clone()?)))
    }
}

impl Conn for TcpStream {
    fn split(&self) -> io::Result<(Box<dyn Read>, Box<dyn Write>)> {
        Ok((Box::new(self.try_clone()?), Box::new(self.try_clone()?)))
    }
}

/// Serves one connection; returns `true` when the client asked for
/// shutdown.
fn drive_connection(server: &Server, stream: &dyn Conn) -> bool {
    let Ok((read, mut write)) = stream.split() else { return false };
    for line in BufReader::new(read).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = server.handle_line(&line);
        let mut payload = response.render();
        payload.push('\n');
        if write.write_all(payload.as_bytes()).and_then(|()| write.flush()).is_err() {
            break;
        }
        if shutdown {
            return true;
        }
    }
    false
}

/// Wakes a blocked `accept` so the loop can observe the stop flag.
fn poke(addr: &ServeAddr) {
    match addr {
        ServeAddr::Unix(p) => drop(UnixStream::connect(p)),
        ServeAddr::Tcp(a) => drop(TcpStream::connect(a.as_str())),
    }
}

/// A blocking line-protocol client.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &ServeAddr) -> io::Result<Client> {
        let (reader, writer): (Box<dyn Read + Send>, Box<dyn Write + Send>) = match addr {
            ServeAddr::Unix(p) => {
                let s = UnixStream::connect(p)?;
                (Box::new(s.try_clone()?), Box::new(s))
            }
            ServeAddr::Tcp(a) => {
                let s = TcpStream::connect(a.as_str())?;
                (Box::new(s.try_clone()?), Box::new(s))
            }
        };
        Ok(Client { reader: BufReader::new(reader), writer })
    }

    /// Sends one raw request line and reads one reply.
    ///
    /// # Errors
    ///
    /// Transport failures; an unparseable reply maps to
    /// [`io::ErrorKind::InvalidData`].
    pub fn request(&mut self, line: &str) -> io::Result<Response> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the stream"));
        }
        Response::parse(reply.trim_end()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Submits a job.
    ///
    /// # Errors
    ///
    /// Transport failures (protocol failures come back as
    /// [`Response::Error`]).
    pub fn submit(&mut self, spec: &crate::JobSpec) -> io::Result<Response> {
        self.request(&spec.render_submit())
    }

    /// Waits for a job, optionally bounded.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn wait(&mut self, job: &str, timeout_ms: Option<u64>) -> io::Result<Response> {
        let mut fields = vec![
            ("cmd", crate::json::Json::Str("wait".into())),
            ("job", crate::json::Json::Str(job.to_owned())),
        ];
        if let Some(t) = timeout_ms {
            fields.push(("timeout_ms", crate::json::Json::Int(t as i64)));
        }
        self.request(&crate::json::obj(fields).render())
    }

    /// Polls a job's state.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn poll(&mut self, job: &str) -> io::Result<Response> {
        self.request(
            &crate::json::obj([
                ("cmd", crate::json::Json::Str("poll".into())),
                ("job", crate::json::Json::Str(job.to_owned())),
            ])
            .render(),
        )
    }

    /// Fetches the counter snapshot.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn stats(&mut self) -> io::Result<Response> {
        self.request("{\"cmd\":\"stats\"}")
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn ping(&mut self) -> io::Result<Response> {
        self.request("{\"cmd\":\"ping\"}")
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.request("{\"cmd\":\"shutdown\"}")
    }

    /// Submit-and-wait convenience: returns the payload string of a
    /// finished job, surfacing protocol failures as [`ProtoError`].
    ///
    /// # Errors
    ///
    /// Transport failures (outer) or typed protocol failures (inner).
    pub fn run(&mut self, spec: &crate::JobSpec) -> io::Result<Result<(bool, String), ProtoError>> {
        let job = match self.submit(spec)? {
            Response::Submitted { job, .. } => job,
            Response::Error(e) => return Ok(Err(e)),
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected submit reply: {other:?}"),
                ))
            }
        };
        match self.wait(&job, None)? {
            Response::Result { hit, result, .. } => Ok(Ok((hit, result))),
            Response::Error(e) => Ok(Err(e)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected wait reply: {other:?}"),
            )),
        }
    }
}
