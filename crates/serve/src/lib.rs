//! # foray-serve — `forayd`, the long-running FORAY-GEN analysis service
//!
//! Re-running `foray-gen` per invocation pays compile + profile + analyze
//! every time, even for a workload analyzed seconds ago. `forayd` keeps
//! the pipeline warm behind a socket: clients submit jobs over a
//! line-delimited JSON protocol and identical work is answered from a
//! **content-addressed cache** — sound because the analysis is
//! byte-deterministic for any worker count (locked by the shard/stream
//! equivalence suites), so a result is fully determined by program
//! content + output-relevant configuration.
//!
//! The pieces:
//!
//! * [`json`] — a minimal, dependency-free JSON parser/writer
//!   (integer-only, insertion-ordered, deterministic rendering);
//! * [`protocol`] — request/response types with **typed** error codes
//!   (`bad_json`, `queue_full`, `shutting_down`, ...): a malformed line
//!   earns an error reply, never a dropped connection;
//! * [`key`] — the cache-key digest: what a result *depends on*, and
//!   nothing else (worker counts and priorities are deliberately
//!   excluded);
//! * [`cache`] — bounded in-memory LRU with optional on-disk spill;
//! * [`server`] — the scheduler: bounded priority queue with
//!   reject-with-retry-after backpressure, in-flight deduplication
//!   (N identical submissions, one compute), graceful drain shutdown;
//! * [`net`] — Unix/TCP listeners and a blocking [`Client`].
//!
//! # Examples
//!
//! In-process, no sockets:
//!
//! ```
//! use foray_serve::{JobInput, JobSpec, ServeConfig, Server};
//!
//! let srv = Server::new(ServeConfig { workers: 0, ..ServeConfig::default() });
//! let spec = JobSpec {
//!     input: JobInput::Source(
//!         "int a[64]; void main() { int i; for (i = 0; i < 64; i++) { a[i] = i; } }".into(),
//!     ),
//!     ..JobSpec::default()
//! };
//! let cold = srv.submit(&spec).unwrap();
//! assert!(!cold.hit);
//! srv.step_one(); // workers: 0 — drive the queue by hand
//! let (_, bytes) = srv.wait(&cold.job, None).unwrap();
//! let warm = srv.submit(&spec).unwrap();
//! assert!(warm.hit, "same content, same key: served from cache");
//! let (_, cached) = srv.wait(&warm.job, None).unwrap();
//! assert_eq!(bytes, cached);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod json;
pub mod key;
pub mod net;
pub mod protocol;
pub mod server;

pub use cache::{CacheCounters, ResultCache};
pub use key::{resolve, ResolvedJob, KEY_SCHEMA};
pub use net::{serve, Client, ServeAddr};
pub use protocol::{
    parse_request, ErrorCode, JobInput, JobKind, JobSpec, ProtoError, Request, Response,
    StatsSnapshot, MAX_PRIORITY,
};
pub use server::{ServeConfig, Server, Submitted};
