//! The static FORAY-form detector.
//!
//! This is the reproduction's stand-in for "existing static approaches"
//! (\[5\]\[6\]\[7\] in the paper): compile-time analyses that require memory
//! accesses to appear as **array references with affine index expressions
//! inside canonical `for` loops**. Everything else — `while`/`do` loops,
//! pointer walks, accesses whose index hides behind a pointer or a
//! data-dependent variable — is out of reach, which is exactly the gap
//! FORAY-GEN closes. Table II's "% not in FORAY form in the original
//! program" compares this detector against the dynamic extraction.

use crate::affine_ast::{eval_affine, IterEnv};
use minic::{BinOp, Expr, LoopId, Program, SiteId, Stmt};
use std::collections::HashSet;

/// What the static detector could prove.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StaticAnalysis {
    /// Loops in canonical counted-`for` form with constant bounds.
    pub canonical_loops: HashSet<LoopId>,
    /// Array-access sites with index expressions affine in the enclosing
    /// canonical iterators (and nested only inside canonical loops).
    pub affine_sites: HashSet<SiteId>,
    /// All loops in the program.
    pub total_loops: u32,
    /// All array/pointer access sites in the program (`a[i]`, `*p`).
    pub total_access_sites: u32,
}

impl StaticAnalysis {
    /// Affine sites as simulator instruction addresses, for joining with
    /// trace-derived data.
    pub fn affine_instrs(&self) -> HashSet<minic_trace::InstrAddr> {
        self.affine_sites.iter().map(|s| minic_trace::layout::user_instr(s.0)).collect()
    }
}

/// Runs the detector over a checked program.
///
/// Canonical loop shape (the scope the paper grants static techniques):
///
/// ```text
/// for (iv = c0; iv < c1; iv += c2) body     // also <=, >, >=, ++, --, -=
/// ```
///
/// with integer-constant `c0`, `c1`, non-zero constant `c2`, and `iv` not
/// reassigned inside `body`. An access site qualifies if it is a direct
/// subscript of a *named array* with an affine index over in-scope
/// canonical iterators, and no non-canonical loop intervenes in its nest.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), minic::Error> {
/// let mut prog = minic::parse(
///     "int a[64]; char *p;
///      void main() {
///          int i;
///          for (i = 0; i < 64; i++) { a[i] = i; }   // static: yes
///          while (i > 0) { i--; *p++ = 0; }          // static: no
///      }")?;
/// minic::check(&mut prog)?;
/// let r = foray_baseline::analyze_program(&prog);
/// assert_eq!(r.canonical_loops.len(), 1);
/// assert_eq!(r.affine_sites.len(), 1);
/// assert_eq!(r.total_loops, 2);
/// # Ok(())
/// # }
/// ```
pub fn analyze_program(prog: &Program) -> StaticAnalysis {
    let mut out = StaticAnalysis::default();
    prog.visit_stmts(&mut |s| {
        if s.loop_id().is_some() {
            out.total_loops += 1;
        }
    });
    prog.visit_exprs(&mut |e| {
        if matches!(e, Expr::Index { .. } | Expr::Deref { .. }) {
            out.total_access_sites += 1;
        }
    });
    let arrays: HashSet<&str> =
        prog.globals.iter().filter(|g| g.array_len.is_some()).map(|g| g.name.as_str()).collect();
    for f in &prog.functions {
        let mut env = IterEnv::new();
        // `all_canonical` tracks whether every enclosing loop is canonical;
        // a site inside a `while` is unreachable for static techniques even
        // if its inner `for` is pristine.
        walk_block(&f.body.stmts, &mut env, true, &arrays, &mut out);
    }
    out
}

fn walk_block(
    stmts: &[Stmt],
    env: &mut IterEnv,
    all_canonical: bool,
    arrays: &HashSet<&str>,
    out: &mut StaticAnalysis,
) {
    for s in stmts {
        walk_stmt(s, env, all_canonical, arrays, out);
    }
}

fn walk_stmt(
    stmt: &Stmt,
    env: &mut IterEnv,
    all_canonical: bool,
    arrays: &HashSet<&str>,
    out: &mut StaticAnalysis,
) {
    match stmt {
        Stmt::For { id, init, cond, step, body } => {
            let canonical = canonical_iterator(init.as_deref(), cond.as_ref(), step.as_deref())
                .filter(|iv| !body_reassigns(body.stmts.as_slice(), iv));
            match canonical {
                Some(iv) if all_canonical => {
                    out.canonical_loops.insert(*id);
                    env.push(&iv);
                    scan_exprs_in_loop_header(init.as_deref(), cond.as_ref(), step.as_deref());
                    walk_block(&body.stmts, env, true, arrays, out);
                    env.pop();
                }
                Some(iv) => {
                    // Canonical shape, but buried under a non-canonical
                    // loop: the loop itself still counts as FORAY-form,
                    // its references do not.
                    out.canonical_loops.insert(*id);
                    env.push(&iv);
                    walk_block(&body.stmts, env, false, arrays, out);
                    env.pop();
                }
                None => {
                    walk_block(&body.stmts, env, false, arrays, out);
                }
            }
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
            walk_block(&body.stmts, env, false, arrays, out);
        }
        Stmt::If { then_blk, else_blk, .. } => {
            // Conditionally-executed accesses are not statically
            // predictable iteration-for-iteration; classical techniques
            // treat the loop body as straight-line code, so we keep
            // scanning but references under `if` stay analyzable only in
            // the techniques' optimistic reading. We choose the
            // conservative reading: they do not qualify.
            walk_block(&then_blk.stmts, env, false, arrays, out);
            if let Some(e) = else_blk {
                walk_block(&e.stmts, env, false, arrays, out);
            }
        }
        Stmt::Block(b) => walk_block(&b.stmts, env, all_canonical, arrays, out),
        Stmt::Assign { target, value, .. } => {
            if all_canonical {
                scan_expr(target, env, arrays, out);
            }
            let _ = value;
            if all_canonical {
                scan_expr(value, env, arrays, out);
            }
        }
        Stmt::Expr(e) | Stmt::Return(Some(e)) if all_canonical => {
            scan_expr(e, env, arrays, out);
        }
        Stmt::LocalDecl { init: Some(e), .. } if all_canonical => {
            scan_expr(e, env, arrays, out);
        }
        _ => {}
    }
}

fn scan_exprs_in_loop_header(_init: Option<&Stmt>, _cond: Option<&Expr>, _step: Option<&Stmt>) {
    // Loop-header expressions touch only the iterator and constants in the
    // canonical shape; nothing to record.
}

/// Records every qualifying array subscript in `e`.
fn scan_expr(e: &Expr, env: &IterEnv, arrays: &HashSet<&str>, out: &mut StaticAnalysis) {
    minic::ast::visit_expr(e, &mut |node| {
        if let Expr::Index { base, index, site, .. } = node {
            let is_named_array = matches!(
                base.as_ref(),
                Expr::Var { name, .. } if arrays.contains(name.as_str())
            );
            if is_named_array && env.depth() > 0 {
                if let Some(form) = eval_affine(index, env) {
                    if form.has_iterator() {
                        out.affine_sites.insert(*site);
                    }
                }
            }
        }
    });
}

/// Extracts the iterator variable if the loop header is canonical.
fn canonical_iterator(
    init: Option<&Stmt>,
    cond: Option<&Expr>,
    step: Option<&Stmt>,
) -> Option<String> {
    let iv = match init? {
        Stmt::LocalDecl { name, init: Some(Expr::IntLit(_)), array_len: None, .. } => name.clone(),
        Stmt::Assign {
            target: Expr::Var { name, .. },
            op: minic::AssignOp::Set,
            value: Expr::IntLit(_),
        } => name.clone(),
        _ => return None,
    };
    // Condition: iv <op> constant.
    match cond? {
        Expr::Binary { op: BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, lhs, rhs } => {
            let lhs_is_iv = matches!(lhs.as_ref(), Expr::Var { name, .. } if *name == iv);
            let rhs_is_const = matches!(rhs.as_ref(), Expr::IntLit(_));
            if !(lhs_is_iv && rhs_is_const) {
                return None;
            }
        }
        _ => return None,
    }
    // Step: iv++ / iv-- / iv += c / iv -= c / iv = iv + c.
    let step_ok = match step? {
        Stmt::Expr(Expr::IncDec { target, .. }) => {
            matches!(target.as_ref(), Expr::Var { name, .. } if *name == iv)
        }
        Stmt::Assign { target: Expr::Var { name, .. }, op, value } => {
            *name == iv
                && match op {
                    minic::AssignOp::Add | minic::AssignOp::Sub => {
                        matches!(value, Expr::IntLit(c) if *c != 0)
                    }
                    minic::AssignOp::Set => matches!(
                        value,
                        Expr::Binary { op: BinOp::Add | BinOp::Sub, lhs, rhs }
                            if matches!(lhs.as_ref(), Expr::Var { name: n, .. } if *n == iv)
                                && matches!(rhs.as_ref(), Expr::IntLit(c) if *c != 0)
                    ),
                    _ => false,
                }
        }
        _ => false,
    };
    step_ok.then_some(iv)
}

/// Whether the body writes to the iterator (which breaks canonicity).
fn body_reassigns(stmts: &[Stmt], iv: &str) -> bool {
    let mut bad = false;
    for s in stmts {
        walk_for_reassign(s, iv, &mut bad);
    }
    bad
}

fn walk_for_reassign(stmt: &Stmt, iv: &str, bad: &mut bool) {
    let check_expr = |e: &Expr, bad: &mut bool| {
        minic::ast::visit_expr(e, &mut |n| {
            if let Expr::IncDec { target, .. } = n {
                if matches!(target.as_ref(), Expr::Var { name, .. } if name == iv) {
                    *bad = true;
                }
            }
        });
    };
    match stmt {
        Stmt::Assign { target, value, .. } => {
            if matches!(target, Expr::Var { name, .. } if name == iv) {
                *bad = true;
            }
            check_expr(target, bad);
            check_expr(value, bad);
        }
        Stmt::Expr(e) | Stmt::Return(Some(e)) => check_expr(e, bad),
        Stmt::LocalDecl { name, init, .. } => {
            if name == iv {
                // Shadowing declaration: inner uses refer to the new
                // variable; conservatively treat as reassignment.
                *bad = true;
            }
            if let Some(e) = init {
                check_expr(e, bad);
            }
        }
        Stmt::If { cond, then_blk, else_blk } => {
            check_expr(cond, bad);
            for s in &then_blk.stmts {
                walk_for_reassign(s, iv, bad);
            }
            if let Some(e) = else_blk {
                for s in &e.stmts {
                    walk_for_reassign(s, iv, bad);
                }
            }
        }
        Stmt::While { cond, body, .. } | Stmt::DoWhile { cond, body, .. } => {
            check_expr(cond, bad);
            for s in &body.stmts {
                walk_for_reassign(s, iv, bad);
            }
        }
        Stmt::For { init, cond, step, body, .. } => {
            if let Some(s) = init {
                walk_for_reassign(s, iv, bad);
            }
            if let Some(c) = cond {
                check_expr(c, bad);
            }
            if let Some(s) = step {
                walk_for_reassign(s, iv, bad);
            }
            for s in &body.stmts {
                walk_for_reassign(s, iv, bad);
            }
        }
        Stmt::Block(b) => {
            for s in &b.stmts {
                walk_for_reassign(s, iv, bad);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_src(src: &str) -> StaticAnalysis {
        let mut prog = minic::parse(src).unwrap();
        minic::check(&mut prog).unwrap();
        analyze_program(&prog)
    }

    #[test]
    fn canonical_nest_fully_recognized() {
        let r = analyze_src(
            "int a[1024];
             void main() {
               int i; int j;
               for (i = 0; i < 16; i++) {
                 for (j = 0; j < 64; j++) { a[64*i + j] = 0; }
               }
             }",
        );
        assert_eq!(r.canonical_loops.len(), 2);
        assert_eq!(r.affine_sites.len(), 1);
        assert_eq!(r.total_loops, 2);
    }

    #[test]
    fn while_and_pointer_walk_are_invisible() {
        // The paper's Fig 1 flavour.
        let r = analyze_src(
            "char q[1000]; char *p;
             void main() {
               int n; n = 0; p = q;
               while (n < 100) { *p++ = n; n++; }
             }",
        );
        assert!(r.canonical_loops.is_empty());
        assert!(r.affine_sites.is_empty());
        assert_eq!(r.total_loops, 1);
    }

    #[test]
    fn for_inside_while_is_canonical_but_refs_are_not() {
        let r = analyze_src(
            "int a[100];
             void main() {
               int n; int i; n = 0;
               while (n < 2) {
                 for (i = 0; i < 50; i++) { a[i + n] = 0; }
                 n++;
               }
             }",
        );
        assert_eq!(r.canonical_loops.len(), 1);
        // a[i + n]: n is not a canonical iterator anyway, and the nest is
        // tainted by the while.
        assert!(r.affine_sites.is_empty());
    }

    #[test]
    fn declared_iterator_form() {
        let r =
            analyze_src("int a[64]; void main() { for (int i = 0; i < 64; i += 2) { a[i] = 0; } }");
        assert_eq!(r.canonical_loops.len(), 1);
        assert_eq!(r.affine_sites.len(), 1);
    }

    #[test]
    fn iterator_reassignment_breaks_canonicity() {
        let r = analyze_src(
            "int a[64];
             void main() { int i; for (i = 0; i < 64; i++) { a[i] = 0; i = i + 1; } }",
        );
        assert!(r.canonical_loops.is_empty());
        assert!(r.affine_sites.is_empty());
    }

    #[test]
    fn data_dependent_bound_is_not_canonical() {
        let r = analyze_src(
            "int a[64];
             void main() { int i; int n; n = input(0); for (i = 0; i < n; i++) { a[i] = 0; } }",
        );
        assert!(r.canonical_loops.is_empty());
    }

    #[test]
    fn pointer_subscript_is_not_a_named_array() {
        let r = analyze_src(
            "int a[64]; int *p;
             void main() { int i; p = a; for (i = 0; i < 64; i++) { p[i] = 0; } }",
        );
        assert_eq!(r.canonical_loops.len(), 1);
        // p[i] is a pointer subscript: static techniques without points-to
        // analysis cannot bound it.
        assert!(r.affine_sites.is_empty());
    }

    #[test]
    fn conditional_references_are_conservative() {
        let r = analyze_src(
            "int a[64];
             void main() { int i; for (i = 0; i < 64; i++) { if (i % 2) { a[i] = 0; } } }",
        );
        assert_eq!(r.canonical_loops.len(), 1);
        assert!(r.affine_sites.is_empty());
    }

    #[test]
    fn nonunit_and_downward_steps() {
        let r = analyze_src(
            "int a[64]; int b[64];
             void main() {
               int i;
               for (i = 63; i >= 0; i--) { a[i] = 0; }
               for (i = 0; i < 64; i = i + 4) { b[i] = 0; }
             }",
        );
        assert_eq!(r.canonical_loops.len(), 2);
        assert_eq!(r.affine_sites.len(), 2);
    }

    #[test]
    fn constant_index_does_not_count() {
        let r =
            analyze_src("int a[64]; void main() { int i; for (i = 0; i < 64; i++) { a[5] = i; } }");
        assert_eq!(r.canonical_loops.len(), 1);
        assert!(r.affine_sites.is_empty(), "constant index has no reuse over iterators");
    }

    #[test]
    fn instr_addr_join() {
        let r =
            analyze_src("int a[64]; void main() { int i; for (i = 0; i < 64; i++) { a[i] = 0; } }");
        let instrs = r.affine_instrs();
        assert_eq!(instrs.len(), 1);
        let site = *r.affine_sites.iter().next().unwrap();
        assert!(instrs.contains(&minic_trace::layout::user_instr(site.0)));
    }
}
