//! # foray-baseline — the static FORAY-form detector
//!
//! The FORAY-GEN paper measures its benefit against "existing static
//! approaches" (its refs \[5\]\[6\]\[7\]): scratch-pad-memory optimizers whose
//! compile-time analysis only sees **array references with affine index
//! expressions inside canonical `for` loops**. This crate implements that
//! static scope over `minic` ASTs, providing the denominator for Table II
//! and for the paper's headline "two times increase in the number of
//! analyzable memory references".
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), minic::Error> {
//! let mut prog = minic::parse(
//!     "int a[64]; char q[100]; char *p;
//!      void main() {
//!          int i; int n;
//!          for (i = 0; i < 64; i++) { a[i] = i; }   // visible statically
//!          n = 0; p = q;
//!          while (n < 100) { *p++ = n; n++; }        // invisible statically
//!      }")?;
//! minic::check(&mut prog)?;
//! let result = foray_baseline::analyze_program(&prog);
//! assert_eq!(result.canonical_loops.len(), 1);
//! assert_eq!(result.total_loops, 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod affine_ast;
pub mod detect;

pub use affine_ast::{eval_affine, AffForm, IterEnv};
pub use detect::{analyze_program, StaticAnalysis};
