//! Symbolic affine forms over loop-iterator variables.
//!
//! The static baseline models an index expression as
//! `c0 + c1*iv1 + c2*iv2 + ...` where each `iv` is a *canonical* loop
//! iterator in scope. Anything outside this langage — products of
//! iterators, data-dependent variables, pointer chases — evaluates to
//! `None`, which is precisely what makes the paper's "existing static
//! approaches" blind to so much real code.

use minic::{BinOp, Expr, UnOp};
use std::collections::HashMap;

/// An affine form: constant plus integer-weighted iterator terms
/// (keyed by iterator variable name).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AffForm {
    /// Constant term.
    pub konst: i64,
    /// Iterator coefficients (no zero entries).
    pub terms: HashMap<String, i64>,
}

impl AffForm {
    /// A pure constant.
    pub fn constant(v: i64) -> AffForm {
        AffForm { konst: v, terms: HashMap::new() }
    }

    /// A bare iterator.
    pub fn iterator(name: &str) -> AffForm {
        AffForm { konst: 0, terms: [(name.to_owned(), 1)].into_iter().collect() }
    }

    /// Whether the form has no iterator terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Whether the form uses at least one iterator.
    pub fn has_iterator(&self) -> bool {
        !self.terms.is_empty()
    }

    fn add_scaled(&mut self, other: &AffForm, scale: i64) {
        self.konst += scale * other.konst;
        for (k, v) in &other.terms {
            let e = self.terms.entry(k.clone()).or_insert(0);
            *e += scale * v;
        }
        self.terms.retain(|_, v| *v != 0);
    }
}

/// The set of iterator names currently in scope (innermost scopes pushed
/// last; shadowing removes outer iterators of the same name).
#[derive(Debug, Clone, Default)]
pub struct IterEnv {
    stack: Vec<String>,
}

impl IterEnv {
    /// Creates an empty environment.
    pub fn new() -> Self {
        IterEnv::default()
    }

    /// Enters a loop with iterator `name`.
    pub fn push(&mut self, name: &str) {
        self.stack.push(name.to_owned());
    }

    /// Leaves the innermost loop.
    pub fn pop(&mut self) {
        self.stack.pop();
    }

    /// Whether `name` is an in-scope iterator.
    pub fn contains(&self, name: &str) -> bool {
        self.stack.iter().any(|s| s == name)
    }

    /// Number of enclosing canonical loops.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

/// Evaluates an expression to an affine form over the in-scope iterators,
/// if it lies in the affine language.
///
/// # Examples
///
/// ```
/// use foray_baseline::affine_ast::{eval_affine, AffForm, IterEnv};
///
/// # fn main() -> Result<(), minic::Error> {
/// let prog = minic::parse("int a[64]; void main() { int i; a[2*i + 3] = 0; }")?;
/// let mut env = IterEnv::new();
/// env.push("i");
/// // Dig out the index expression of `a[...]`.
/// let minic::Stmt::Assign { target: minic::Expr::Index { index, .. }, .. } =
///     &prog.functions[0].body.stmts[1]
/// else { unreachable!() };
/// let form = eval_affine(index, &env).expect("affine");
/// assert_eq!(form.konst, 3);
/// assert_eq!(form.terms["i"], 2);
/// # Ok(())
/// # }
/// ```
pub fn eval_affine(expr: &Expr, env: &IterEnv) -> Option<AffForm> {
    match expr {
        Expr::IntLit(v) => Some(AffForm::constant(*v)),
        Expr::Var { name, .. } => {
            if env.contains(name) {
                Some(AffForm::iterator(name))
            } else {
                None
            }
        }
        Expr::Unary { op: UnOp::Neg, expr } => {
            let inner = eval_affine(expr, env)?;
            let mut out = AffForm::constant(0);
            out.add_scaled(&inner, -1);
            Some(out)
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_affine(lhs, env)?;
            let r = eval_affine(rhs, env)?;
            match op {
                BinOp::Add => {
                    let mut out = l;
                    out.add_scaled(&r, 1);
                    Some(out)
                }
                BinOp::Sub => {
                    let mut out = l;
                    out.add_scaled(&r, -1);
                    Some(out)
                }
                BinOp::Mul => {
                    // One side must be constant.
                    if l.is_constant() {
                        let mut out = AffForm::constant(0);
                        out.add_scaled(&r, l.konst);
                        Some(out)
                    } else if r.is_constant() {
                        let mut out = AffForm::constant(0);
                        out.add_scaled(&l, r.konst);
                        Some(out)
                    } else {
                        None
                    }
                }
                // Division/remainder/shifts of constants fold; with
                // iterators they leave the affine language.
                BinOp::Div if l.is_constant() && r.is_constant() && r.konst != 0 => {
                    Some(AffForm::constant(l.konst / r.konst))
                }
                BinOp::Rem if l.is_constant() && r.is_constant() && r.konst != 0 => {
                    Some(AffForm::constant(l.konst % r.konst))
                }
                BinOp::Shl if l.is_constant() && r.is_constant() => {
                    Some(AffForm::constant(l.konst.wrapping_shl((r.konst & 63) as u32)))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(src: &str) -> Expr {
        let prog = minic::parse(src).unwrap();
        let mut found = None;
        prog.visit_exprs(&mut |e| {
            if let Expr::Index { index, .. } = e {
                if found.is_none() {
                    found = Some((**index).clone());
                }
            }
        });
        found.expect("index expression")
    }

    fn env(names: &[&str]) -> IterEnv {
        let mut e = IterEnv::new();
        for n in names {
            e.push(n);
        }
        e
    }

    #[test]
    fn recognizes_affine_combinations() {
        let e = index_of("int a[64]; void main() { int i; int j; a[4*i + 64*j + 7] = 0; }");
        let form = eval_affine(&e, &env(&["i", "j"])).unwrap();
        assert_eq!(form.konst, 7);
        assert_eq!(form.terms["i"], 4);
        assert_eq!(form.terms["j"], 64);
    }

    #[test]
    fn folds_constant_subexpressions() {
        let e = index_of("int a[64]; void main() { int i; a[i * (3 * 4) + 10 / 2] = 0; }");
        let form = eval_affine(&e, &env(&["i"])).unwrap();
        assert_eq!(form.terms["i"], 12);
        assert_eq!(form.konst, 5);
    }

    #[test]
    fn cancellation_removes_terms() {
        let e = index_of("int a[64]; void main() { int i; a[i - i + 2] = 0; }");
        let form = eval_affine(&e, &env(&["i"])).unwrap();
        assert!(form.is_constant());
        assert_eq!(form.konst, 2);
    }

    #[test]
    fn rejects_nonlinear_and_unknown() {
        let quad = index_of("int a[64]; void main() { int i; a[i * i] = 0; }");
        assert!(eval_affine(&quad, &env(&["i"])).is_none());
        let unknown = index_of("int a[64]; int x; void main() { int i; a[i + x] = 0; }");
        assert!(eval_affine(&unknown, &env(&["i"])).is_none());
        let not_in_scope = index_of("int a[64]; void main() { int i; a[i] = 0; }");
        assert!(eval_affine(&not_in_scope, &env(&[])).is_none());
    }

    #[test]
    fn negation() {
        let e = index_of("int a[64]; void main() { int i; a[-i + 63] = 0; }");
        let form = eval_affine(&e, &env(&["i"])).unwrap();
        assert_eq!(form.terms["i"], -1);
        assert_eq!(form.konst, 63);
    }

    #[test]
    fn division_by_iterator_rejected() {
        let e = index_of("int a[64]; void main() { int i; a[64 / (i + 1)] = 0; }");
        assert!(eval_affine(&e, &env(&["i"])).is_none());
    }
}
