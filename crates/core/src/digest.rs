//! Stable, cache-key-grade digests over analysis configuration.
//!
//! The `forayd` service caches analysis results content-addressed: the same
//! (program, configuration) pair must map to the same key across processes,
//! platforms, and releases, and any configuration change that can alter the
//! *output bytes* must map to a different key. Rust's `std::hash::Hash` is
//! explicitly unstable across releases, so the cache key needs its own
//! hasher with a frozen algorithm — this module provides it.
//!
//! [`StableHasher`] is 64-bit [FNV-1a](http://www.isthe.com/chongo/tech/comp/fnv/)
//! over a *self-delimiting* field encoding: every field is written as a
//! length-prefixed labelled unit, so `("ab", "c")` and `("a", "bc")` can
//! never collide by concatenation and schema drift (a reordered or renamed
//! field) changes the digest loudly instead of silently.
//!
//! Which configuration fields participate is a semantic decision, not a
//! mechanical one: fields that **cannot** change the output bytes are
//! deliberately excluded. The shard/worker count and streaming block tuning
//! never enter a digest, because the equivalence suites prove the analysis
//! is byte-identical for any worker count — that determinism guarantee is
//! exactly what makes a content-addressed cache sound (see
//! `docs/ARCHITECTURE.md`, "Service layer").
//!
//! # Examples
//!
//! ```
//! use foray::digest::StableHasher;
//!
//! let mut h = StableHasher::new();
//! h.field_str("workload", "fftc");
//! h.field_u64("scale", 2);
//! let a = h.finish_hex();
//!
//! // Same fields, same order, same digest — in any process, forever.
//! let mut h = StableHasher::new();
//! h.field_str("workload", "fftc");
//! h.field_u64("scale", 2);
//! assert_eq!(h.finish_hex(), a);
//!
//! // A changed value (or field name) is a different digest.
//! let mut h = StableHasher::new();
//! h.field_str("workload", "fftc");
//! h.field_u64("scale", 3);
//! assert_ne!(h.finish_hex(), a);
//! ```

use crate::analyzer::AnalyzerConfig;
use crate::model::FilterConfig;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A stable 64-bit field hasher (FNV-1a over length-prefixed labelled
/// fields). See the module docs for the encoding contract.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// Creates a hasher at the FNV-1a offset basis.
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    /// Feeds raw bytes (no framing — prefer the `field_*` methods).
    pub fn update(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.state ^= u64::from(*b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Writes one length-prefixed unit: `len(bytes) as u64 LE ++ bytes`.
    fn unit(&mut self, bytes: &[u8]) {
        self.update(&(bytes.len() as u64).to_le_bytes());
        self.update(bytes);
    }

    /// Writes a labelled string field.
    pub fn field_str(&mut self, label: &str, value: &str) {
        self.unit(label.as_bytes());
        self.unit(value.as_bytes());
    }

    /// Writes a labelled byte-string field (e.g. file contents).
    pub fn field_bytes(&mut self, label: &str, value: &[u8]) {
        self.unit(label.as_bytes());
        self.unit(value);
    }

    /// Writes a labelled unsigned-integer field.
    pub fn field_u64(&mut self, label: &str, value: u64) {
        self.unit(label.as_bytes());
        self.unit(&value.to_le_bytes());
    }

    /// Writes a labelled signed-integer field.
    pub fn field_i64(&mut self, label: &str, value: i64) {
        self.unit(label.as_bytes());
        self.unit(&value.to_le_bytes());
    }

    /// Writes a labelled boolean field.
    pub fn field_bool(&mut self, label: &str, value: bool) {
        self.field_u64(label, u64::from(value));
    }

    /// Writes a labelled list of signed integers (length included, so an
    /// empty list is distinct from an absent field).
    pub fn field_i64_list(&mut self, label: &str, values: &[i64]) {
        self.unit(label.as_bytes());
        self.update(&(values.len() as u64).to_le_bytes());
        for v in values {
            self.update(&v.to_le_bytes());
        }
    }

    /// The 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// The digest as 16 lowercase hex characters — the cache-key spelling.
    pub fn finish_hex(&self) -> String {
        format!("{:016x}", self.state)
    }
}

impl AnalyzerConfig {
    /// Feeds every analyzer-configuration field **that can change the
    /// analysis output bytes** into `h`:
    ///
    /// * `track_footprint` — footprint counters feed the Step 4 filter;
    /// * `sample` — the deterministic sampling policy (hashed as its
    ///   canonical `--sample` spelling, which round-trips through
    ///   [`minic_trace::SampleSpec::parse`]).
    ///
    /// `shards`, `stream`, and `lookup` are excluded on purpose: worker
    /// count, block tuning, and lookup strategy are proven not to change
    /// the output (`tests/shard_equiv.rs`, `tests/stream_equiv.rs`), so
    /// keying on them would only fragment a result cache.
    pub fn stable_digest(&self, h: &mut StableHasher) {
        h.field_bool("analyzer.track_footprint", self.track_footprint);
        h.field_str("analyzer.sample", &self.sample.to_string());
    }
}

impl FilterConfig {
    /// Feeds the Step 4 purge thresholds into `h`. Both change which
    /// references survive into the model, so both are key material.
    pub fn stable_digest(&self, h: &mut StableHasher) {
        h.field_u64("filter.n_exec", self.n_exec);
        h.field_u64("filter.n_loc", self.n_loc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic_trace::SampleSpec;

    #[test]
    fn digests_are_stable_across_hashers() {
        let run = || {
            let mut h = StableHasher::new();
            h.field_str("a", "x");
            h.field_u64("b", 7);
            h.field_i64_list("c", &[1, -2, 3]);
            h.finish()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn framing_prevents_concatenation_collisions() {
        let mut a = StableHasher::new();
        a.field_str("k", "ab");
        a.field_str("k", "c");
        let mut b = StableHasher::new();
        b.field_str("k", "a");
        b.field_str("k", "bc");
        assert_ne!(a.finish(), b.finish());
        // Field names are part of the material too.
        let mut c = StableHasher::new();
        c.field_str("k1", "v");
        let mut d = StableHasher::new();
        d.field_str("k2", "v");
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn empty_list_differs_from_absent_field() {
        let mut a = StableHasher::new();
        a.field_i64_list("inputs", &[]);
        let b = StableHasher::new();
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn analyzer_digest_tracks_output_relevant_fields_only() {
        let base = AnalyzerConfig::default();
        let hex = |c: &AnalyzerConfig| {
            let mut h = StableHasher::new();
            c.stable_digest(&mut h);
            h.finish_hex()
        };
        // Worker count and stream tuning are determinism-covered: no
        // cache fragmentation.
        assert_eq!(hex(&base), hex(&AnalyzerConfig { shards: 16, ..base.clone() }));
        assert_eq!(
            hex(&base),
            hex(&AnalyzerConfig {
                stream: crate::StreamConfig {
                    block_records: 1,
                    channel_blocks: 9,
                    ..crate::StreamConfig::default()
                },
                ..base.clone()
            })
        );
        // Sampling changes which accesses the analyzer sees: must miss.
        assert_ne!(
            hex(&base),
            hex(&AnalyzerConfig { sample: SampleSpec::EveryNth { n: 2 }, ..base.clone() })
        );
        assert_ne!(hex(&base), hex(&AnalyzerConfig { track_footprint: false, ..base }));
    }

    #[test]
    fn filter_digest_covers_both_thresholds() {
        let hex = |f: FilterConfig| {
            let mut h = StableHasher::new();
            f.stable_digest(&mut h);
            h.finish_hex()
        };
        let base = FilterConfig::default();
        assert_ne!(hex(base), hex(FilterConfig { n_exec: 21, ..base }));
        assert_ne!(hex(base), hex(FilterConfig { n_loc: 11, ..base }));
        assert_eq!(hex(base), hex(FilterConfig::default()));
    }

    #[test]
    fn known_vector_locks_the_algorithm() {
        // FNV-1a of the empty input is the offset basis; this pins both
        // the constant and the hex spelling the cache uses on disk.
        assert_eq!(StableHasher::new().finish_hex(), "cbf29ce484222325");
        let mut h = StableHasher::new();
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
    }
}
