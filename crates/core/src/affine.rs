//! Affine index-expression inference — Algorithm 3 of the paper.
//!
//! For each static memory reference (identified by instruction address ×
//! loop-tree position), the analyzer incrementally fits
//!
//! ```text
//! index = CONST + C1*iter1 + C2*iter2 + … + CN*iterN      (iter1 innermost)
//! ```
//!
//! against the observed access addresses. Coefficients start `UNKNOWN`; when
//! exactly one unknown-coefficient iterator changed between consecutive
//! executions, its coefficient is solved from the address delta. When more
//! than one changed simultaneously the reference is marked non-analyzable
//! (the paper reports such references are rare). When the fitted expression
//! mispredicts, the constant term is re-based and the *partial window* `M`
//! shrinks so the expression only spans the innermost iterators whose
//! behaviour is predictable — the paper's partial affine index expressions
//! (its Fig. 7 scenarios: stack-reallocated local arrays and data-dependent
//! offsets).
//!
//! ## Two deliberate deviations from the paper's pseudo-code
//!
//! * Step 3 prints `ADJ = Σ IT_i·C_i`; deriving from the affine model gives
//!   `ADJ = Σ C_i·(IT_i − ITP_i)`, which is what reproduces the paper's own
//!   Fig. 4 result (`C2 = 103`, `CONST = 2147440948`). We implement the
//!   derived form.
//! * A solved coefficient must be integral; a non-integral quotient marks
//!   the reference non-analyzable (the paper is silent on this case).
//!
//! ## A faithful quirk
//!
//! A reference first observed at a non-zero iterator vector (e.g. inside
//! `if (i == 5)`) gets its constant re-based on the next execution, which
//! the paper's Step 6 also counts as a misprediction — collapsing `M` and
//! usually excluding the reference. We preserve that behaviour; see
//! `rebase_collapses_window_for_late_first_observation` below.

use crate::footprint::Footprint;

/// A coefficient: `None` is the paper's `UNKNOWN`.
pub type Coeff = Option<i64>;

/// Incremental affine model of one static memory reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineState {
    /// Loop nest level `N` at the reference's tree position.
    n: u32,
    /// Constant term `CONST`.
    konst: i64,
    /// Coefficients `C1..CN`, innermost first.
    coeffs: Vec<Coeff>,
    /// Iterator values at the previous execution (`ITP1..ITPN`).
    itp: Vec<i64>,
    /// Partial window `M`: iterators `1..=M` participate in the expression.
    m: u32,
    /// `S` vector: `true` once the iterator was unchanged during a
    /// misprediction.
    s: Vec<bool>,
    /// Previous access address (`INDP`).
    indp: i64,
    /// Set when the reference cannot be described (Step 4 of Algorithm 3).
    non_analyzable: bool,
    /// Executions observed.
    execs: u64,
    /// Mispredictions (Step 6 firings).
    mispredictions: u64,
    /// Distinct addresses touched (footprint), if tracking is enabled.
    footprint: Option<Footprint>,
}

impl AffineState {
    /// Creates the state at the first execution of a reference with nest
    /// level `n`, accessing address `addr` under iterator values `iters`
    /// (innermost first, length `n`).
    ///
    /// # Panics
    ///
    /// Panics if `iters.len() != n`.
    pub fn first(n: u32, iters: &[i64], addr: u32, track_footprint: bool) -> Self {
        assert_eq!(iters.len(), n as usize, "iterator vector must match nest level");
        let mut footprint = track_footprint.then(Footprint::new);
        if let Some(fp) = footprint.as_mut() {
            fp.insert(addr);
        }
        AffineState {
            n,
            konst: addr as i64,
            coeffs: vec![None; n as usize],
            itp: iters.to_vec(),
            m: n,
            s: vec![false; n as usize],
            indp: addr as i64,
            non_analyzable: false,
            execs: 1,
            mispredictions: 0,
            footprint,
        }
    }

    /// Feeds the next execution (Steps 2–6 of Algorithm 3).
    ///
    /// (Index-based loops below mirror the paper's `i = 1..N` subscripts
    /// over four parallel arrays; iterator chains would obscure that.)
    ///
    /// # Panics
    ///
    /// Panics if `iters.len()` differs from the nest level given at
    /// construction.
    #[allow(clippy::needless_range_loop)]
    pub fn observe(&mut self, iters: &[i64], addr: u32) {
        assert_eq!(iters.len(), self.n as usize, "iterator vector must match nest level");
        self.execs += 1;
        if let Some(fp) = self.footprint.as_mut() {
            fp.insert(addr);
        }
        if self.non_analyzable {
            self.itp.copy_from_slice(iters);
            self.indp = addr as i64;
            return;
        }
        let ind = addr as i64;

        // Step 2 fused with an incremental Step 5: one pass counts the
        // unknown-coefficient iterators that changed (`h`, Step 2) while
        // accumulating the known-coefficient prediction delta. Invariant:
        // whenever the reference is analyzable, the previous Step 5/6 left
        // `KONST + Σ_known C_i·ITP_i == INDP` (a correct prediction ends
        // there by definition; a misprediction re-bases KONST to restore
        // it), so the paper's `INDC = KONST + Σ C_i·IT_i` equals
        // `INDP + Σ_known C_i·(IT_i − ITP_i)` exactly.
        let mut h = 0u32;
        let mut k = usize::MAX;
        let mut dpred = 0i64;
        for i in 0..self.n as usize {
            let d = iters[i] - self.itp[i];
            if d != 0 {
                match self.coeffs[i] {
                    Some(c) => dpred += c * d,
                    None => {
                        h += 1;
                        k = i;
                    }
                }
            }
        }

        match h {
            0 => {
                // No unknowns changed: predict incrementally (Step 5) and
                // re-base on a miss (Step 6). This is the per-access hot
                // path; everything below runs at most once per coefficient.
                let indc = self.indp + dpred;
                if indc != ind {
                    self.mispredict(iters, ind, indc);
                }
            }
            1 => {
                // Step 3: solve C_k from the delta; `dpred` already holds
                // the compensation term ADJ (changed iterators with known
                // coefficients — unknowns contribute nothing to it).
                let num = ind - dpred - self.indp;
                let den = iters[k] - self.itp[k];
                debug_assert_ne!(den, 0);
                if num % den == 0 {
                    self.coeffs[k] = Some(num / den);
                    // Step 5 in full: the just-solved coefficient was not
                    // part of the invariant sum, so the incremental form
                    // does not apply on this execution.
                    let mut indc = self.konst;
                    for i in 0..self.n as usize {
                        if let Some(c) = self.coeffs[i] {
                            indc += c * iters[i];
                        }
                    }
                    if indc != ind {
                        self.mispredict(iters, ind, indc);
                    }
                } else {
                    self.non_analyzable = true;
                }
            }
            _ => {
                // Step 4: several unknowns changed at once — give up.
                self.non_analyzable = true;
            }
        }

        self.itp.copy_from_slice(iters);
        self.indp = ind;
    }

    /// Step 6: re-base CONST and shrink the partial window to the
    /// iterators that changed in *every* misprediction so far.
    #[cold]
    fn mispredict(&mut self, iters: &[i64], ind: i64, indc: i64) {
        self.mispredictions += 1;
        for (i, (&it, &itp)) in iters.iter().zip(&self.itp).enumerate().take(self.n as usize) {
            if it == itp {
                self.s[i] = true;
            }
        }
        self.konst += ind - indc;
        let mut m = 0u32;
        for i in 0..self.n as usize {
            if !self.s[i] {
                m = i as u32; // M = i-1 with 1-based i.
            }
        }
        self.m = m;
    }

    /// Nest level `N`.
    pub fn nest_level(&self) -> u32 {
        self.n
    }

    /// Constant term of the (possibly partial) expression.
    pub fn constant(&self) -> i64 {
        self.konst
    }

    /// Coefficients `C1..CN`, innermost first (`None` = never observed
    /// changing independently; behaviourally 0 over the profiled run).
    pub fn coefficients(&self) -> &[Coeff] {
        &self.coeffs
    }

    /// Partial window `M`: the expression is valid over iterators `1..=M`.
    /// `M == N` means the expression is a full affine function.
    pub fn window(&self) -> u32 {
        self.m
    }

    /// Whether the expression covers the whole nest.
    pub fn is_full(&self) -> bool {
        self.m == self.n
    }

    /// Whether the reference was marked non-analyzable.
    pub fn is_non_analyzable(&self) -> bool {
        self.non_analyzable
    }

    /// Executions observed (the paper's `Nexec` filter input).
    pub fn executions(&self) -> u64 {
        self.execs
    }

    /// Mispredictions encountered (Step 6 firings).
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Distinct addresses touched (the paper's `Nloc` filter input), if
    /// tracking was enabled.
    pub fn footprint(&self) -> Option<u64> {
        self.footprint.as_ref().map(Footprint::len)
    }

    /// The footprint address set itself, if tracking was enabled (used to
    /// union footprints per reference class for Table III).
    pub fn footprint_addrs(&self) -> Option<&Footprint> {
        self.footprint.as_ref()
    }

    /// Whether the expression, restricted to its window, involves at least
    /// one iterator with a known non-zero coefficient — Step 4 of
    /// Algorithm 1's "includes at least one iterator" condition.
    pub fn has_iterator(&self) -> bool {
        self.coeffs[..self.m as usize].iter().any(|c| matches!(c, Some(v) if *v != 0))
    }

    /// Evaluates the fitted expression at an iterator vector (unknown
    /// coefficients contribute nothing, like the paper's Step 5).
    pub fn predict(&self, iters: &[i64]) -> i64 {
        let mut v = self.konst;
        for (i, c) in self.coeffs.iter().enumerate() {
            if let Some(c) = c {
                v += c * iters[i];
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a state through `(iters, addr)` observations.
    fn drive(n: u32, obs: &[(&[i64], u32)]) -> AffineState {
        let mut st = AffineState::first(n, obs[0].0, obs[0].1, true);
        for (iters, addr) in &obs[1..] {
            st.observe(iters, *addr);
        }
        st
    }

    #[test]
    fn figure4_exact_reproduction() {
        // The paper's worked example: addresses 0x7fff5934..36 in entry one
        // of the inner loop, 0x7fff599b..9d in entry two. Expected model:
        // A[2147440948 + 1*i_inner + 103*i_outer].
        let st = drive(
            2,
            &[
                (&[0, 0], 0x7fff5934),
                (&[1, 0], 0x7fff5935),
                (&[2, 0], 0x7fff5936),
                (&[0, 1], 0x7fff599b),
                (&[1, 1], 0x7fff599c),
                (&[2, 1], 0x7fff599d),
            ],
        );
        assert!(!st.is_non_analyzable());
        assert_eq!(st.constant(), 2147440948);
        assert_eq!(st.coefficients(), &[Some(1), Some(103)]);
        assert!(st.is_full());
        assert_eq!(st.window(), 2);
        assert_eq!(st.executions(), 6);
        assert_eq!(st.mispredictions(), 0);
        assert_eq!(st.footprint(), Some(6));
        assert!(st.has_iterator());
    }

    #[test]
    fn single_loop_unit_stride() {
        let obs: Vec<(Vec<i64>, u32)> = (0..10).map(|i| (vec![i], 0x1000 + 4 * i as u32)).collect();
        let refs: Vec<(&[i64], u32)> = obs.iter().map(|(v, a)| (v.as_slice(), *a)).collect();
        let st = drive(1, &refs);
        assert_eq!(st.constant(), 0x1000);
        assert_eq!(st.coefficients(), &[Some(4)]);
        assert_eq!(st.predict(&[7]), 0x1000 + 28);
    }

    #[test]
    fn constant_reference_has_no_iterator() {
        let st = drive(1, &[(&[0], 0x500), (&[1], 0x500), (&[2], 0x500)]);
        assert!(!st.is_non_analyzable());
        // Coefficient solved as 0 — known, but not a usable iterator.
        assert_eq!(st.coefficients(), &[Some(0)]);
        assert!(!st.has_iterator());
    }

    #[test]
    fn data_dependent_offset_yields_partial_window() {
        // Fig 7, second case: inner loop i walks stride 4; each outer entry
        // x jumps by a data-dependent offset. The window must shrink to the
        // inner iterator only.
        let mut obs: Vec<(Vec<i64>, u32)> = Vec::new();
        let bases = [0x1000u32, 0x1790, 0x2004]; // irregular bases
        for (x, base) in bases.iter().enumerate() {
            for i in 0..5i64 {
                obs.push((vec![i, x as i64], base + 4 * i as u32));
            }
        }
        let refs: Vec<(&[i64], u32)> = obs.iter().map(|(v, a)| (v.as_slice(), *a)).collect();
        let st = drive(2, &refs);
        assert!(!st.is_non_analyzable());
        assert_eq!(st.window(), 1, "only the innermost iterator is predictable");
        assert!(!st.is_full());
        assert_eq!(st.coefficients()[0], Some(4));
        assert!(st.has_iterator());
        // The first base jump is absorbed by solving C2; only the second
        // jump contradicts it and fires Step 6.
        assert_eq!(st.mispredictions(), 1);
    }

    #[test]
    fn simultaneous_unknown_changes_are_non_analyzable() {
        // Both iterators change between the first two executions while both
        // coefficients are unknown (H = 2).
        let st = drive(2, &[(&[0, 0], 0x100), (&[1, 1], 0x200)]);
        assert!(st.is_non_analyzable());
    }

    #[test]
    fn non_integral_coefficient_is_non_analyzable() {
        // Delta 3 over iterator delta 2.
        let st = drive(1, &[(&[0], 100), (&[2], 103)]);
        assert!(st.is_non_analyzable());
    }

    #[test]
    fn random_walk_is_rejected_or_windowless() {
        // Same iterator vector, different addresses: pure data dependence.
        let st = drive(1, &[(&[0], 100), (&[0], 250), (&[0], 90)]);
        // No iterator changed, so coefficients stay unknown; mispredictions
        // collapse the window to zero.
        assert_eq!(st.window(), 0);
        assert!(!st.has_iterator());
    }

    #[test]
    fn rebase_collapses_window_for_late_first_observation() {
        // Documented faithful quirk: first seen at iter 5, regular stride 4.
        let st = drive(1, &[(&[5], 0x1000), (&[6], 0x1004), (&[7], 0x1008)]);
        // C solved exactly, one rebase misprediction, window collapsed.
        assert_eq!(st.coefficients(), &[Some(4)]);
        assert_eq!(st.mispredictions(), 1);
        assert_eq!(st.window(), 0);
    }

    #[test]
    fn negative_stride() {
        let obs: Vec<(Vec<i64>, u32)> = (0..8).map(|i| (vec![i], 0x2000 - 8 * i as u32)).collect();
        let refs: Vec<(&[i64], u32)> = obs.iter().map(|(v, a)| (v.as_slice(), *a)).collect();
        let st = drive(1, &refs);
        assert_eq!(st.coefficients(), &[Some(-8)]);
        assert!(st.is_full());
    }

    #[test]
    fn three_level_nest() {
        // A[i + 16*j + 256*k] over a 4×4×4 space, element size 4.
        let mut obs: Vec<(Vec<i64>, u32)> = Vec::new();
        for k in 0..4i64 {
            for j in 0..4i64 {
                for i in 0..4i64 {
                    obs.push((vec![i, j, k], (0x8000 + 4 * (i + 16 * j + 256 * k)) as u32));
                }
            }
        }
        let refs: Vec<(&[i64], u32)> = obs.iter().map(|(v, a)| (v.as_slice(), *a)).collect();
        let st = drive(3, &refs);
        assert_eq!(st.coefficients(), &[Some(4), Some(64), Some(1024)]);
        assert!(st.is_full());
        assert_eq!(st.mispredictions(), 0);
        assert_eq!(st.footprint(), Some(64));
    }

    #[test]
    fn footprint_tracking_optional() {
        let mut st = AffineState::first(1, &[0], 0x100, false);
        st.observe(&[1], 0x104);
        assert_eq!(st.footprint(), None);
        assert_eq!(st.executions(), 2);
    }

    #[test]
    fn iterator_reset_between_entries_is_handled() {
        // Inner loop re-entered: iterator drops 2 → 0 while the outer
        // iterator advances; the outer coefficient absorbs the jump
        // (exactly Fig 4's C2 = 103 situation, smaller numbers).
        let st = drive(
            2,
            &[
                (&[0, 0], 100),
                (&[1, 0], 101),
                (&[2, 0], 102),
                (&[0, 1], 110), // delta = +8 while inner fell by 2: C2 = 10
                (&[1, 1], 111),
                (&[2, 1], 112),
            ],
        );
        assert_eq!(st.coefficients(), &[Some(1), Some(10)]);
        assert_eq!(st.constant(), 100);
        assert!(st.is_full());
    }
}
