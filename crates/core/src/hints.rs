//! Function-inlining hints (paper, Section 4, "Inter-function
//! optimizations").
//!
//! The FORAY model has no function hierarchy — callees appear inlined at
//! each calling context. When the same static loop materializes at more than
//! one loop-tree position, its enclosing function is exercised under
//! different access patterns, and the paper suggests duplicating
//! (specializing) that function so each pattern can be optimized separately
//! (its Fig. 9 example).

use crate::looptree::{LoopTree, NodeId};
use minic::{LoopId, Program, Stmt};
use std::collections::HashMap;

/// One inlining hint: a loop observed in several calling contexts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlineHint {
    /// The function containing the loop (from the source program).
    pub function: String,
    /// The static loop.
    pub loop_id: LoopId,
    /// Tree positions where the loop materialized (one per context).
    pub contexts: Vec<NodeId>,
    /// Human-readable context paths like `main/L0 > foo/L2`.
    pub context_paths: Vec<String>,
}

/// Maps each loop id to the name of the function whose body contains it.
pub fn loop_owners(prog: &Program) -> HashMap<LoopId, String> {
    let mut owners = HashMap::new();
    for f in &prog.functions {
        let mut collect = |s: &Stmt| {
            if let Some(id) = s.loop_id() {
                owners.insert(id, f.name.clone());
            }
        };
        for s in &f.body.stmts {
            visit(s, &mut collect);
        }
    }
    owners
}

fn visit(stmt: &Stmt, f: &mut impl FnMut(&Stmt)) {
    f(stmt);
    match stmt {
        Stmt::If { then_blk, else_blk, .. } => {
            for s in &then_blk.stmts {
                visit(s, f);
            }
            if let Some(e) = else_blk {
                for s in &e.stmts {
                    visit(s, f);
                }
            }
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
            for s in &body.stmts {
                visit(s, f);
            }
        }
        Stmt::For { init, step, body, .. } => {
            if let Some(s) = init {
                visit(s, f);
            }
            if let Some(s) = step {
                visit(s, f);
            }
            for s in &body.stmts {
                visit(s, f);
            }
        }
        Stmt::Block(b) => {
            for s in &b.stmts {
                visit(s, f);
            }
        }
        _ => {}
    }
}

/// Derives inlining hints: loops of non-`main` functions that appear at
/// more than one loop-tree position.
///
/// # Examples
///
/// See `examples/inline_hints.rs`, which reproduces the paper's Fig. 9.
pub fn inline_hints(prog: &Program, tree: &LoopTree) -> Vec<InlineHint> {
    let owners = loop_owners(prog);
    let mut by_loop: HashMap<LoopId, Vec<NodeId>> = HashMap::new();
    for (nid, node) in tree.iter() {
        if let Some(l) = node.loop_id {
            by_loop.entry(l).or_default().push(nid);
        }
    }
    let mut hints: Vec<InlineHint> = by_loop
        .into_iter()
        .filter(|(_, nodes)| nodes.len() > 1)
        .filter_map(|(loop_id, mut nodes)| {
            nodes.sort_unstable();
            let function = owners.get(&loop_id)?.clone();
            // A multi-context loop in main itself would mean recursion into
            // main — not an inlining opportunity.
            if function == "main" {
                return None;
            }
            let context_paths = nodes.iter().map(|n| path_string(tree, *n)).collect();
            Some(InlineHint { function, loop_id, contexts: nodes, context_paths })
        })
        .collect();
    hints.sort_by_key(|h| h.loop_id);
    hints
}

fn path_string(tree: &LoopTree, node: NodeId) -> String {
    let mut ids = tree.loop_path(node);
    ids.reverse(); // outermost first
    if ids.is_empty() {
        "top".to_owned()
    } else {
        ids.iter().map(|l| l.to_string()).collect::<Vec<_>>().join(" > ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::CheckpointKind::{BodyBegin as BB, BodyEnd as BE, LoopBegin as LB};

    fn figure9_program() -> Program {
        // Fig 9: foo's loop called from two loops in main.
        let mut prog = minic::parse(
            "int A[1000];
             int foo(int offset) {
               int ret; int i;
               for (i = 0; i < 10; i++) { ret += A[i + offset]; }
               return ret;
             }
             void main() {
               int x; int y; int tmp;
               for (x = 0; x < 10; x++) { tmp += foo(10 * x); }
               for (y = 0; y < 20; y++) { tmp += foo(2 * y); }
             }",
        )
        .unwrap();
        minic::check(&mut prog).unwrap();
        prog
    }

    #[test]
    fn loop_owner_mapping() {
        let prog = figure9_program();
        let owners = loop_owners(&prog);
        assert_eq!(owners[&LoopId(0)], "foo");
        assert_eq!(owners[&LoopId(1)], "main");
        assert_eq!(owners[&LoopId(2)], "main");
    }

    #[test]
    fn figure9_yields_hint() {
        let prog = figure9_program();
        // Simulate the tree shape: foo's loop (0) under main's loops 1 and 2.
        let mut tree = LoopTree::new();
        for outer in [1u32, 2] {
            tree.on_checkpoint(LoopId(outer), LB);
            tree.on_checkpoint(LoopId(outer), BB);
            tree.on_checkpoint(LoopId(0), LB);
            tree.on_checkpoint(LoopId(0), BB);
            tree.on_checkpoint(LoopId(0), BE);
            tree.on_checkpoint(LoopId(outer), BE);
        }
        let hints = inline_hints(&prog, &tree);
        assert_eq!(hints.len(), 1);
        assert_eq!(hints[0].function, "foo");
        assert_eq!(hints[0].loop_id, LoopId(0));
        assert_eq!(hints[0].contexts.len(), 2);
        assert_eq!(hints[0].context_paths, vec!["L1 > L0", "L2 > L0"]);
    }

    #[test]
    fn single_context_loops_yield_no_hint() {
        let prog = figure9_program();
        let mut tree = LoopTree::new();
        tree.on_checkpoint(LoopId(1), LB);
        tree.on_checkpoint(LoopId(1), BB);
        tree.on_checkpoint(LoopId(0), LB);
        assert!(inline_hints(&prog, &tree).is_empty());
    }

    #[test]
    fn main_loops_never_hint() {
        let mut prog = minic::parse("void main() { int i; for (i = 0; i < 3; i++) { } }").unwrap();
        minic::check(&mut prog).unwrap();
        let mut tree = LoopTree::new();
        // Artificially duplicate main's loop in two contexts.
        tree.on_checkpoint(LoopId(0), LB);
        tree.on_checkpoint(LoopId(0), BB);
        tree.on_checkpoint(LoopId(0), LB); // self-nested (degenerate)
        assert!(inline_hints(&prog, &tree).is_empty());
    }
}
