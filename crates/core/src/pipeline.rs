//! Algorithm 1 end to end: annotate → profile → analyze → purge → emit.
//!
//! [`ForayGen`] orchestrates the whole flow over the `minic` frontend and
//! the `minic-sim` profiler, running the analyzer *online* as the trace sink
//! (the paper's constant-space mode — no trace is materialized unless asked
//! for).

use crate::analyzer::{Analysis, Analyzer, AnalyzerConfig};
use crate::codegen;
use crate::hints::{inline_hints, InlineHint};
use crate::model::{FilterConfig, ForayModel};
use crate::shard::{self, ShardedAnalyzer};
use minic::Program;
use minic_sim::{Engine, RuntimeError, SimConfig, SimOutcome};
use minic_trace::{TeeSink, TraceSink, TraceStats};
use std::fmt;

/// How [`ForayGen`] parallelizes the analysis half of a profiling run.
///
/// Every mode produces a byte-identical [`Analysis`]; they differ only in
/// memory shape and wall-clock (see `docs/ARCHITECTURE.md`, "Streaming &
/// backpressure").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardMode {
    /// The sequential online analyzer rides the simulation directly — the
    /// paper's constant-space mode.
    #[default]
    Off,
    /// K shard workers consume routed record blocks over bounded channels
    /// *while the VM executes* — parallel and still constant-space
    /// (O(shards × block) buffered records).
    Streaming,
    /// Route the whole stream into per-shard buffers, fan workers out at
    /// the end — O(trace) memory; kept for A/B comparison against
    /// `Streaming` (see the `fused_exec` bench).
    Buffered,
}

/// Pipeline failure: either the frontend rejected the program or the
/// profiling run faulted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// Lex/parse/semantic failure.
    Frontend(minic::Error),
    /// Runtime failure during profiling.
    Runtime(RuntimeError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Frontend(e) => write!(f, "frontend: {e}"),
            PipelineError::Runtime(e) => write!(f, "profiling run: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Frontend(e) => Some(e),
            PipelineError::Runtime(e) => Some(e),
        }
    }
}

impl From<minic::Error> for PipelineError {
    fn from(e: minic::Error) -> Self {
        PipelineError::Frontend(e)
    }
}

impl From<RuntimeError> for PipelineError {
    fn from(e: RuntimeError) -> Self {
        PipelineError::Runtime(e)
    }
}

/// Everything FORAY-GEN produces for one program.
#[derive(Debug, Clone)]
pub struct ForayGenOutput {
    /// The instrumented program that was profiled.
    pub program: Program,
    /// Raw analysis (loop tree + fitted references).
    pub analysis: Analysis,
    /// The extracted FORAY model.
    pub model: ForayModel,
    /// The model rendered as C text (Fig. 2 / 4(d) style).
    pub code: String,
    /// Simulator outcome (printed values, counters).
    pub sim: SimOutcome,
    /// Whole-trace statistics (Table III totals).
    pub trace_stats: TraceStats,
    /// Function-inlining hints (Section 4).
    pub hints: Vec<InlineHint>,
}

/// Builder for the FORAY-GEN flow.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), foray::PipelineError> {
/// let out = foray::ForayGen::new().run_source(
///     "char q[10000]; char *ptr;
///      void main() {
///          int i; int t1 = 98;
///          ptr = q;
///          while (t1 < 100) {
///              t1++;
///              ptr += 100;
///              for (i = 40; i > 37; i--) { *ptr++ = i * i % 256; }
///          }
///      }",
/// )?;
/// // 2 outer × 3 inner writes, byte-strided inner, 103-strided outer —
/// // but only 6 executions over 6 locations, so the default Nexec=20
/// // filter drops it; Fig 4 uses the unfiltered view.
/// assert_eq!(out.model.ref_count(), 0);
/// let relaxed = foray::ForayGen::new().filter(foray::FilterConfig { n_exec: 6, n_loc: 6 });
/// let out = relaxed.run_source(
///     "char q[10000]; char *ptr;
///      void main() {
///          int i; int t1 = 98;
///          ptr = q;
///          while (t1 < 100) {
///              t1++;
///              ptr += 100;
///              for (i = 40; i > 37; i--) { *ptr++ = i * i % 256; }
///          }
///      }",
/// )?;
/// assert_eq!(out.model.ref_count(), 1);
/// assert!(out.code.contains("103*"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ForayGen {
    filter: FilterConfig,
    analyzer: AnalyzerConfig,
    sim: SimConfig,
    inputs: Vec<i64>,
    sharding: ShardMode,
}

impl ForayGen {
    /// Creates a pipeline with paper-default settings (`Nexec=20`,
    /// `Nloc=10`).
    pub fn new() -> Self {
        ForayGen::default()
    }

    /// Sets the Step 4 filter thresholds.
    pub fn filter(mut self, filter: FilterConfig) -> Self {
        self.filter = filter;
        self
    }

    /// Sets the analyzer configuration.
    pub fn analyzer(mut self, config: AnalyzerConfig) -> Self {
        self.analyzer = config;
        self
    }

    /// Turns parallel analysis on ([`ShardMode::Streaming`]: K shard
    /// workers fed over bounded channels while the VM runs; K from the
    /// analyzer configuration's `shards`, `0` = auto) or off
    /// ([`ShardMode::Off`]). The result is identical to the sequential
    /// path in either case.
    pub fn sharded(mut self, on: bool) -> Self {
        self.sharding = if on { ShardMode::Streaming } else { ShardMode::Off };
        self
    }

    /// Selects the parallel-analysis mode explicitly (the buffered legacy
    /// path stays reachable for A/B benchmarking).
    pub fn shard_mode(mut self, mode: ShardMode) -> Self {
        self.sharding = mode;
        self
    }

    /// Sets the simulator configuration.
    pub fn sim(mut self, config: SimConfig) -> Self {
        self.sim = config;
        self
    }

    /// Selects the profiling engine (default: the compiled bytecode VM).
    /// Both engines emit byte-identical traces; [`Engine::Tree`] keeps the
    /// tree-walking oracle available for ablation (`--engine tree` in the
    /// CLI).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.sim.engine = engine;
        self
    }

    /// Sets the input data visible to the program's `input()` builtin.
    pub fn inputs(mut self, inputs: impl Into<Vec<i64>>) -> Self {
        self.inputs = inputs.into();
        self
    }

    /// Runs the full flow on source text (Step 1 annotation included).
    ///
    /// # Errors
    ///
    /// [`PipelineError::Frontend`] if the source does not compile;
    /// [`PipelineError::Runtime`] if profiling faults.
    pub fn run_source(&self, src: &str) -> Result<ForayGenOutput, PipelineError> {
        let prog = minic::frontend(src)?;
        self.run_instrumented(prog)
    }

    /// Runs the flow on an already checked program, instrumenting it if
    /// needed.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Runtime`] if profiling faults.
    pub fn run_program(&self, mut prog: Program) -> Result<ForayGenOutput, PipelineError> {
        if !minic::is_instrumented(&prog) {
            minic::instrument(&mut prog);
        }
        self.run_instrumented(prog)
    }

    /// Profiles the program with `analyzer` (and trace statistics) riding
    /// the simulation as sinks.
    fn profile<A: TraceSink>(
        &self,
        prog: &Program,
        analyzer: A,
    ) -> Result<(A, SimOutcome, TraceStats), PipelineError> {
        let mut sink = TeeSink::new(analyzer, TraceStats::new());
        let sim = minic_sim::run_with_sink(prog, &self.sim, &self.inputs, &mut sink)?;
        let (analyzer, trace_stats) = sink.into_inner();
        Ok((analyzer, sim, trace_stats))
    }

    /// Profiles the program once and analyzes it per the sharding mode.
    /// All three modes funnel the simulation through the same
    /// [`Self::profile`] helper — they differ only in which sink rides it
    /// and when workers run.
    fn profile_analysis(
        &self,
        prog: &Program,
    ) -> Result<(Analysis, SimOutcome, TraceStats), PipelineError> {
        match self.sharding {
            ShardMode::Off => {
                let (a, sim, ts) =
                    self.profile(prog, Analyzer::with_config(self.analyzer.clone()))?;
                Ok((a.into_analysis(), sim, ts))
            }
            ShardMode::Buffered => {
                let (a, sim, ts) =
                    self.profile(prog, ShardedAnalyzer::with_config(self.analyzer.clone()))?;
                Ok((a.into_analysis(), sim, ts))
            }
            ShardMode::Streaming => {
                // Workers analyze routed blocks while the VM is still
                // executing; the producer closure is the profiling run
                // itself, with the block router as its sink.
                let (analysis, (sim, ts), _stats) =
                    shard::analyze_streaming_with(&self.analyzer, |sink| {
                        let (_, sim, ts) = self.profile(prog, sink)?;
                        Ok::<_, PipelineError>((sim, ts))
                    })?;
                Ok((analysis, sim, ts))
            }
        }
    }

    fn run_instrumented(&self, prog: Program) -> Result<ForayGenOutput, PipelineError> {
        let (analysis, sim, trace_stats) = self.profile_analysis(&prog)?;
        let model = ForayModel::extract(&analysis, &self.filter);
        let code = codegen::emit(&model);
        let hints = inline_hints(&prog, analysis.tree());
        Ok(ForayGenOutput { program: prog, analysis, model, code, sim, trace_stats, hints })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG4: &str = "char q[10000]; char *ptr;
        void main() {
            int i; int t1 = 98;
            ptr = q;
            while (t1 < 100) {
                t1++;
                ptr += 100;
                for (i = 40; i > 37; i--) { *ptr++ = i * i % 256; }
            }
        }";

    #[test]
    fn figure4_full_pipeline() {
        let out =
            ForayGen::new().filter(FilterConfig { n_exec: 6, n_loc: 6 }).run_source(FIG4).unwrap();
        assert_eq!(out.model.ref_count(), 1);
        let r = &out.model.refs[0];
        // Byte-strided inner loop, 103-byte outer stride: exactly the
        // paper's coefficients (the constant differs — our address space).
        assert_eq!(r.terms.len(), 2);
        assert_eq!(r.terms[0].coeff, 1);
        assert_eq!(r.terms[1].coeff, 103);
        assert!(!r.is_partial());
        // Trip counts 3 (inner) and 2 (outer), as in Fig 4(d).
        let loops: Vec<u64> = r.node_path.iter().map(|n| out.model.loops[n].trip).collect();
        assert_eq!(loops, vec![3, 2]);
        // Code shape (loop ids 0/1 → iterator names i0/i3).
        assert!(out.code.contains("for (int i0=0; i0<2; i0++)"), "{}", out.code);
        assert!(out.code.contains("for (int i3=0; i3<3; i3++)"), "{}", out.code);
        assert!(out.code.contains("+ 1*i3 + 103*i0]"), "{}", out.code);
        assert!(out.hints.is_empty());
    }

    #[test]
    fn figure9_pipeline_produces_hint() {
        let out = ForayGen::new()
            .run_source(
                "int A[1000];
                 int foo(int offset) {
                   int ret; int i;
                   ret = 0;
                   for (i = 0; i < 10; i++) { ret += A[i + offset]; }
                   return ret;
                 }
                 void main() {
                   int x; int y; int tmp;
                   tmp = 0;
                   for (x = 0; x < 10; x++) { tmp += foo(10 * x); }
                   for (y = 0; y < 20; y++) { tmp += foo(2 * y); }
                 }",
            )
            .unwrap();
        assert_eq!(out.hints.len(), 1);
        assert_eq!(out.hints[0].function, "foo");
        assert_eq!(out.hints[0].contexts.len(), 2);
        // foo's A[i+offset] is fully affine in each context (offset is
        // itself affine in the outer iterator): 2 model refs, full windows.
        let full_refs: Vec<_> = out.model.refs.iter().filter(|r| !r.is_partial()).collect();
        assert_eq!(full_refs.len(), 2);
    }

    #[test]
    fn data_dependent_offset_yields_partial_ref() {
        // Fig 7 second case: offsets from input data are unpredictable.
        let out = ForayGen::new()
            .inputs(vec![0, 700, 160, 2400, 1000, 40, 3333, 90, 2048, 512])
            .filter(FilterConfig { n_exec: 20, n_loc: 10 })
            .run_source(
                "int A[4000];
                 int foo(int offset) {
                   int ret; int i;
                   ret = 0;
                   for (i = 0; i < 10; i++) { ret += A[i + offset]; }
                   return ret;
                 }
                 void main() {
                   int x; int tmp;
                   tmp = 0;
                   for (x = 0; x < 10; x++) { tmp += foo(input(x)); }
                 }",
            )
            .unwrap();
        let partials: Vec<_> = out.model.refs.iter().filter(|r| r.is_partial()).collect();
        assert_eq!(partials.len(), 1, "model: {:#?}", out.model.refs);
        let r = partials[0];
        assert_eq!(r.window, 1);
        assert_eq!(r.nest, 2);
        assert_eq!(r.terms.len(), 1);
        assert_eq!(r.terms[0].coeff, 4); // int elements
    }

    #[test]
    fn frontend_errors_propagate() {
        assert!(matches!(
            ForayGen::new().run_source("void main() {"),
            Err(PipelineError::Frontend(_))
        ));
        let tight = ForayGen::new().sim(SimConfig { max_steps: 10_000, ..SimConfig::default() });
        assert!(matches!(
            tight.run_source("void main() { while (1) { } }"),
            Err(PipelineError::Runtime(RuntimeError::StepLimitExceeded))
        ));
    }

    #[test]
    fn online_and_offline_agree() {
        // Collect a trace, analyze offline, compare with the online result.
        let prog = minic::frontend(FIG4).unwrap();
        let (_, records) = minic_sim::run(&prog, &SimConfig::default(), &[]).unwrap();
        let offline = crate::analyzer::analyze(&records);
        let online = ForayGen::new().run_source(FIG4).unwrap();
        assert_eq!(offline.refs().len(), online.analysis.refs().len());
        assert_eq!(offline.accesses(), online.analysis.accesses());
        for (a, b) in offline.refs().iter().zip(online.analysis.refs()) {
            assert_eq!(a.state, b.state);
        }
    }

    #[test]
    fn sharded_pipeline_matches_sequential() {
        let seq = ForayGen::new().run_source(FIG4).unwrap();
        for mode in [ShardMode::Streaming, ShardMode::Buffered] {
            let sharded = ForayGen::new()
                .shard_mode(mode)
                .analyzer(AnalyzerConfig { shards: 3, ..AnalyzerConfig::default() })
                .run_source(FIG4)
                .unwrap();
            assert_eq!(seq.analysis, sharded.analysis, "{mode:?}");
            assert_eq!(seq.code, sharded.code, "{mode:?}");
            assert_eq!(seq.trace_stats, sharded.trace_stats, "{mode:?}");
        }
        // `sharded(true)` selects the streaming mode.
        assert_eq!(ForayGen::new().sharded(true).run_source(FIG4).unwrap().analysis, seq.analysis);
    }

    #[test]
    fn sampled_pipeline_is_identical_across_modes() {
        use minic_trace::SampleSpec;
        let config = AnalyzerConfig {
            shards: 2,
            sample: SampleSpec::EveryNth { n: 2 },
            ..AnalyzerConfig::default()
        };
        let seq = ForayGen::new().analyzer(config.clone()).run_source(FIG4).unwrap();
        // Sampling halves the analyzed accesses but not the trace itself.
        assert!(seq.analysis.accesses() < seq.trace_stats.accesses);
        for mode in [ShardMode::Streaming, ShardMode::Buffered] {
            let out =
                ForayGen::new().analyzer(config.clone()).shard_mode(mode).run_source(FIG4).unwrap();
            assert_eq!(out.analysis, seq.analysis, "{mode:?}");
            assert_eq!(out.trace_stats, seq.trace_stats, "{mode:?}");
        }
    }

    #[test]
    fn tree_engine_ablation_matches_the_vm_default() {
        let vm = ForayGen::new().run_source(FIG4).unwrap();
        let tree = ForayGen::new().engine(Engine::Tree).run_source(FIG4).unwrap();
        assert_eq!(vm.analysis, tree.analysis);
        assert_eq!(vm.code, tree.code);
        assert_eq!(vm.trace_stats, tree.trace_stats);
        assert_eq!(vm.sim.accesses, tree.sim.accesses);
    }

    #[test]
    fn trace_stats_match_sim_counters() {
        let out = ForayGen::new().run_source(FIG4).unwrap();
        assert_eq!(out.trace_stats.accesses, out.sim.accesses);
        assert_eq!(out.trace_stats.checkpoints, out.sim.checkpoints);
    }
}
