//! # foray — FORAY-GEN: automatic generation of affine functions
//!
//! A from-scratch reproduction of *FORAY-GEN: Automatic Generation of Affine
//! Functions for Memory Optimizations* (Ilya Issenin and Nikil Dutt,
//! DATE 2005). FORAY-GEN extracts, from an arbitrary C-like program, a
//! **FORAY model**: a program of pure `for` loops and array references whose
//! index expressions are affine functions of the loop iterators — the form
//! that static scratch-pad-memory (SPM) optimizers can analyze.
//!
//! The flow (the paper's Algorithm 1):
//!
//! 1. **Annotate** — `minic::instrument` brackets every loop with
//!    checkpoints;
//! 2. **Profile** — `minic-sim` executes the program, streaming memory
//!    accesses and checkpoints;
//! 3. **Analyze** — [`looptree`] rebuilds the loop structure (Algorithm 2)
//!    while [`affine`] fits a full or partial affine index expression per
//!    reference (Algorithm 3);
//! 4. **Purge** — [`FilterConfig`] drops references that are irregular,
//!    rarely executed, or touch few locations (Step 4);
//! 5. **Emit** — [`codegen`] renders the surviving references as the FORAY
//!    model C text of the paper's Fig. 2 / 4(d). [`hints`] additionally
//!    reports function-inlining opportunities (Fig. 9).
//!
//! # Examples
//!
//! The paper's Fig. 4 program, end to end:
//!
//! ```
//! # fn main() -> Result<(), foray::PipelineError> {
//! let out = foray::ForayGen::new()
//!     .filter(foray::FilterConfig { n_exec: 6, n_loc: 6 })
//!     .run_source(
//!         "char q[10000]; char *ptr;
//!          void main() {
//!              int i; int t1 = 98;
//!              ptr = q;
//!              while (t1 < 100) {
//!                  t1++;
//!                  ptr += 100;
//!                  for (i = 40; i > 37; i--) { *ptr++ = i * i % 256; }
//!              }
//!          }",
//!     )?;
//! // The pointer walk was recovered as an affine array reference:
//! // A…[base + 1*i_inner + 103*i_outer], trips 3 and 2.
//! let r = &out.model.refs[0];
//! assert_eq!(r.terms[0].coeff, 1);
//! assert_eq!(r.terms[1].coeff, 103);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod affine;
pub mod analyzer;
pub mod batch;
pub mod codegen;
pub mod digest;
pub mod fasthash;
pub mod footprint;
pub mod hints;
pub mod looptree;
pub mod model;
pub mod pipeline;
pub mod report;
pub mod shard;
pub mod srcmap;

pub use affine::AffineState;
pub use analyzer::{
    analyze, analyze_source, analyze_source_with, analyze_with, Analysis, Analyzer, AnalyzerConfig,
    LookupStrategy, RefClass, RefRecord, StreamConfig,
};
pub use batch::{analyze_batch, analyze_trace_files, map_ordered, BatchJob};
pub use digest::StableHasher;
pub use hints::InlineHint;
pub use looptree::{LoopTree, NodeId, ROOT};
pub use minic_sim::Engine;
pub use minic_trace::SampleSpec;
pub use model::{AffineTerm, FilterConfig, ForayModel, ModelDiff, ModelLoop, ModelRef};
pub use pipeline::{ForayGen, ForayGenOutput, PipelineError, ShardMode};
pub use report::{CaptureComparison, LoopBreakdown, LoopKind, MemoryBehavior};
pub use shard::{
    analyze_sharded, analyze_sharded_source, analyze_sharded_with, analyze_streaming,
    analyze_streaming_produce, analyze_streaming_source, analyze_streaming_with,
    parse_thread_override, resolve_shards, RecordProducer, ShardedAnalyzer, StreamStats,
};
