//! Fast, non-cryptographic hashing for internal hot-path containers.
//!
//! The analyzer inserts into per-reference footprint sets on *every*
//! access (Algorithm 3 runs per record), and `std`'s default SipHash —
//! built to resist adversarial collisions in long-lived user-facing maps —
//! costs more than the rest of Step 2–6 combined on small integer keys.
//! These containers are internal, bounded by the program being analyzed,
//! and never keyed on untrusted input, so a multiplicative hash (the
//! Firefox `FxHasher` construction) is the right trade.
//!
//! Swapping a `HashSet`/`HashMap` hasher never changes analysis output:
//! the containers are consumed only through order-independent operations
//! (`len`, membership, unioning), a property the equivalence suites lock.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// The 64-bit `FxHasher` multiplier (golden-ratio derived).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// Multiplicative word-at-a-time hasher. Not collision-resistant against
/// adversaries — internal keys only (see the module docs).
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
        // Length-mix so `[1, 0]` and `[1]` differ.
        self.add(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// [`BuildHasher`] for [`FastHasher`] (stateless, so every map/set with
/// this build hasher hashes identically).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FastBuild;

impl BuildHasher for FastBuild {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher::default()
    }
}

/// A `HashSet` keyed with [`FastHasher`].
pub type FastSet<T> = HashSet<T, FastBuild>;

/// A `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, FastBuild>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_map_behave_like_std() {
        let mut s: FastSet<u32> = FastSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(&7));
        assert_eq!(s.len(), 1);

        let mut m: FastMap<(u32, u32), u32> = FastMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m.get(&(1, 2)), Some(&3));
        assert_eq!(m.get(&(2, 1)), None);
    }

    #[test]
    fn small_integer_keys_spread() {
        // Sanity: sequential small keys must not collapse onto one bucket
        // pattern (the failure mode of a plain identity hash).
        let hashes: Vec<u64> = (0u32..64)
            .map(|k| {
                let mut h = FastBuild.build_hasher();
                h.write_u32(k);
                h.finish()
            })
            .collect();
        let mut uniq = hashes.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), hashes.len());
        // High bits vary too (hashbrown uses the top bits for control).
        let tops: FastSet<u8> = hashes.iter().map(|h| (h >> 57) as u8).collect();
        assert!(tops.len() > 16, "top-bit spread too weak: {}", tops.len());
    }

    #[test]
    fn byte_writes_are_length_mixed() {
        let h1 = {
            let mut h = FastBuild.build_hasher();
            h.write(&[1, 0]);
            h.finish()
        };
        let h2 = {
            let mut h = FastBuild.build_hasher();
            h.write(&[1]);
            h.finish()
        };
        assert_ne!(h1, h2);
    }
}
