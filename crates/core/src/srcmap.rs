//! Source back-annotation support — the tooling assist for Phase III of
//! the paper's flow (Fig. 3), where the designer manually maps the
//! optimized FORAY model back onto the legacy source.
//!
//! FORAY model references are named by instruction address (`A4002a0`);
//! this module recovers, for each address, the source location of the
//! access site and — where the syntax permits — the variable being
//! accessed, so a report can say `A400020 = q at 9:13` instead of leaving
//! the designer to grep.

use minic::ast::visit_expr;
use minic::{Expr, Loc, Program, SiteId, Stmt};
use minic_trace::{layout, InstrAddr};
use std::collections::HashMap;

/// What is known about one access site in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteInfo {
    /// The site id (instruction address = `CODE_BASE + 4*site`).
    pub site: SiteId,
    /// Source location of the access expression.
    pub loc: Loc,
    /// Enclosing function.
    pub function: String,
    /// Base variable, if the access is a direct subscript or a dereference
    /// of a named pointer (`q[i]` → `q`, `*ptr` → `ptr`).
    pub base: Option<String>,
    /// A short rendering of the access expression.
    pub text: String,
}

/// Maps every access site of a program to its source info.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), minic::Error> {
/// let prog = minic::frontend("char q[10]; char *p; void main() { p = q; *p++ = 1; }")?;
/// let map = foray::srcmap::site_map(&prog);
/// let deref = map.values().find(|s| s.base.as_deref() == Some("p")).unwrap();
/// assert_eq!(deref.function, "main");
/// # Ok(())
/// # }
/// ```
pub fn site_map(prog: &Program) -> HashMap<InstrAddr, SiteInfo> {
    let mut map = HashMap::new();
    for f in &prog.functions {
        let mut on_expr = |e: &Expr| {
            let (site, loc, base) = match e {
                Expr::Var { name, site, loc } => (*site, *loc, Some(name.clone())),
                Expr::Index { base, site, loc, .. } => {
                    let b = match base.as_ref() {
                        Expr::Var { name, .. } => Some(name.clone()),
                        _ => None,
                    };
                    (*site, *loc, b)
                }
                Expr::Deref { ptr, site, loc } => {
                    let b = base_of_pointer(ptr);
                    (*site, *loc, b)
                }
                _ => return,
            };
            map.insert(
                layout::user_instr(site.0),
                SiteInfo {
                    site,
                    loc,
                    function: f.name.clone(),
                    base,
                    text: minic::pretty::expr(e),
                },
            );
        };
        visit_fn_exprs(f, &mut on_expr);
    }
    map
}

/// Digs the named pointer out of `*ptr`, `*ptr++`, `*(p + n)`, ...
fn base_of_pointer(e: &Expr) -> Option<String> {
    match e {
        Expr::Var { name, .. } => Some(name.clone()),
        Expr::IncDec { target, .. } => base_of_pointer(target),
        Expr::Binary { lhs, .. } => base_of_pointer(lhs),
        Expr::AddrOf { lvalue, .. } => name_of(lvalue),
        _ => None,
    }
}

fn name_of(e: &Expr) -> Option<String> {
    match e {
        Expr::Var { name, .. } => Some(name.clone()),
        Expr::Index { base, .. } => name_of(base),
        _ => None,
    }
}

fn visit_fn_exprs(f: &minic::Function, on_expr: &mut impl FnMut(&Expr)) {
    fn stmt_walk(s: &Stmt, on_expr: &mut impl FnMut(&Expr)) {
        match s {
            Stmt::LocalDecl { init: Some(e), .. } => visit_expr(e, on_expr),
            Stmt::Assign { target, value, .. } => {
                visit_expr(target, on_expr);
                visit_expr(value, on_expr);
            }
            Stmt::Expr(e) | Stmt::Return(Some(e)) => visit_expr(e, on_expr),
            Stmt::If { cond, then_blk, else_blk } => {
                visit_expr(cond, on_expr);
                for s in &then_blk.stmts {
                    stmt_walk(s, on_expr);
                }
                if let Some(b) = else_blk {
                    for s in &b.stmts {
                        stmt_walk(s, on_expr);
                    }
                }
            }
            Stmt::While { cond, body, .. } | Stmt::DoWhile { cond, body, .. } => {
                visit_expr(cond, on_expr);
                for s in &body.stmts {
                    stmt_walk(s, on_expr);
                }
            }
            Stmt::For { init, cond, step, body, .. } => {
                if let Some(s) = init {
                    stmt_walk(s, on_expr);
                }
                if let Some(c) = cond {
                    visit_expr(c, on_expr);
                }
                if let Some(s) = step {
                    stmt_walk(s, on_expr);
                }
                for s in &body.stmts {
                    stmt_walk(s, on_expr);
                }
            }
            Stmt::Block(b) => {
                for s in &b.stmts {
                    stmt_walk(s, on_expr);
                }
            }
            _ => {}
        }
    }
    for s in &f.body.stmts {
        stmt_walk(s, on_expr);
    }
}

/// A back-annotation line for one model reference: where in the source the
/// optimized access lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// The model's array name (`A4002a0`).
    pub array: String,
    /// Source info of the underlying site (absent for synthetic traffic).
    pub site: Option<SiteInfo>,
}

/// Produces back-annotations for every reference of a model.
pub fn annotate(model: &crate::ForayModel, prog: &Program) -> Vec<Annotation> {
    let map = site_map(prog);
    model
        .refs
        .iter()
        .map(|r| Annotation { array: r.array_name(), site: map.get(&r.instr).cloned() })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FilterConfig, ForayGen};

    #[test]
    fn maps_fig4_reference_to_the_pointer_walk() {
        let src = "char q[10000];
char *ptr;
void main() {
    int i; int t1 = 98;
    ptr = q;
    while (t1 < 100) {
        t1++;
        ptr += 100;
        for (i = 40; i > 37; i--) { *ptr++ = i * i % 256; }
    }
}";
        let out =
            ForayGen::new().filter(FilterConfig { n_exec: 6, n_loc: 6 }).run_source(src).unwrap();
        let notes = annotate(&out.model, &out.program);
        assert_eq!(notes.len(), 1);
        let site = notes[0].site.as_ref().expect("site resolves");
        assert_eq!(site.function, "main");
        assert_eq!(site.base.as_deref(), Some("ptr"));
        assert_eq!(site.loc.line, 9);
        assert_eq!(site.text, "*ptr++");
    }

    #[test]
    fn direct_subscripts_resolve_their_array() {
        let out = ForayGen::new()
            .run_source(
                "int table[64]; void main() { int i; int r;
                 for (i = 0; i < 64; i++) { r += table[i]; } print_int(r); }",
            )
            .unwrap();
        let notes = annotate(&out.model, &out.program);
        let t = notes
            .iter()
            .find(|n| n.site.as_ref().and_then(|s| s.base.as_deref()) == Some("table"))
            .expect("table site found");
        assert!(t.site.as_ref().unwrap().text.contains("table["));
    }

    #[test]
    fn synthetic_traffic_has_no_source_site() {
        // Library references carry library instruction addresses that map
        // to no source site.
        let map_input = site_map(&minic::frontend("void main() { print_int(input(0)); }").unwrap());
        assert!(!map_input.contains_key(&layout::library_instr(0, 0)));
    }

    #[test]
    fn site_map_covers_every_access_expression() {
        let prog = minic::frontend(
            "int a[4]; int *p; int g;
             void main() { int i; p = a; g = a[1] + *p + p[2]; i = g; }",
        )
        .unwrap();
        let map = site_map(&prog);
        // a (decay), a[1], p (read), *p, p (read), p[2], g write, g read...
        // At minimum the three memory-shaped expressions are present.
        let texts: Vec<&str> = map.values().map(|s| s.text.as_str()).collect();
        assert!(texts.contains(&"a[1]"), "{texts:?}");
        assert!(texts.contains(&"*p"), "{texts:?}");
        assert!(texts.contains(&"p[2]"), "{texts:?}");
    }
}
