//! Paged-bitmap address sets for footprint tracking.
//!
//! Algorithm 3 tracks each reference's *footprint* — the count of distinct
//! addresses it touches — which naively costs one hash-set insert per
//! access, the single largest line item on the analyzer hot path. Real
//! reference footprints are extremely local (affine references walk
//! arrays), so this set stores membership as 64-address bitmap pages keyed
//! by `addr >> 6`, with the most recent page cached inline: a strided
//! reference pays a register `OR` per access and only touches the page
//! store on a *page transition*. The store itself exploits the same
//! locality twice over: pages near the reference's first flushed page live
//! in a dense `Vec<u64>` span (a transition is two indexed loads), and
//! only pages beyond `DENSE_SPAN` fall back to a hash map.
//!
//! The representation is observationally identical to a `HashSet<u32>`:
//! only cardinality ([`Footprint::len`]), membership, unioning, and
//! (order-insensitive) equality are exposed, so swapping it in cannot
//! change analysis output bytes.

use crate::fasthash::FastMap;

/// Widest page span (in 64-address pages) the dense vector may cover —
/// 64 Ki addresses, an 8 KiB bitmap when fully grown. References that
/// stray farther from their anchor spill to the hash map.
const DENSE_SPAN: usize = 1024;

/// Extra downward slack (in pages) taken when the span re-anchors below
/// `base`, so descending walks prepend in chunks instead of per page.
const DOWN_SLACK: usize = 64;

/// A set of `u32` addresses as 64-bit bitmap pages with a one-page inline
/// cache (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct Footprint {
    /// First page of the dense span (meaningful once `dense` is
    /// non-empty; anchored by the first page flush).
    base: u32,
    /// Bitmaps for pages `base .. base + dense.len()`. An entry may be a
    /// stale *subset* of the true page (the rest lives in `cur_bits` or
    /// arrived in `spill` before a re-anchor); every reader ORs sources.
    dense: Vec<u64>,
    /// Pages outside the dense span. Monotone under insert, so a stale
    /// entry is always a subset of the dense/cached bits for that page.
    spill: FastMap<u32, u64>,
    /// Cached page index (bits live in `cur_bits`, a superset of any
    /// stored entry for the same page).
    cur_page: u32,
    /// Cached page bitmap.
    cur_bits: u64,
    /// Exact cardinality, maintained on insert.
    len: u64,
}

impl Footprint {
    /// Creates an empty set.
    pub fn new() -> Footprint {
        Footprint::default()
    }

    /// Inserts an address. O(1); touches the page store only on a page
    /// transition.
    #[inline]
    pub fn insert(&mut self, addr: u32) {
        let page = addr >> 6;
        if page != self.cur_page {
            self.switch_page(page);
        }
        let mask = 1u64 << (addr & 63);
        if self.cur_bits & mask == 0 {
            self.cur_bits |= mask;
            self.len += 1;
        }
    }

    /// Flushes the cached page and loads `page` into the cache.
    #[cold]
    fn switch_page(&mut self, page: u32) {
        if self.cur_bits != 0 {
            let cur = self.cur_page;
            let bits = self.cur_bits;
            *self.slot(cur) = bits;
        }
        self.cur_page = page;
        self.cur_bits = self.load(page);
    }

    /// The store location for `page`, growing or re-anchoring the dense
    /// span when the page is within `DENSE_SPAN` of it.
    fn slot(&mut self, page: u32) -> &mut u64 {
        if self.dense.is_empty() {
            // First flush anchors the span.
            self.base = page;
            self.dense.resize(8.min(DENSE_SPAN), 0);
            return &mut self.dense[0];
        }
        if page >= self.base {
            let idx = (page - self.base) as usize;
            if idx < self.dense.len() {
                return &mut self.dense[idx];
            }
            if idx < DENSE_SPAN {
                let want = (idx + 1).next_power_of_two().min(DENSE_SPAN);
                self.dense.resize(want, 0);
                return &mut self.dense[idx];
            }
        } else {
            let shift = (self.base - page) as usize;
            if shift + self.dense.len() <= DENSE_SPAN {
                // Re-anchor downward with slack so a descending walk
                // prepends in chunks, not per page.
                let slack =
                    (DENSE_SPAN - shift - self.dense.len()).min(DOWN_SLACK).min(page as usize);
                let grow = shift + slack;
                self.dense.splice(0..0, std::iter::repeat_n(0, grow));
                self.base -= grow as u32;
                return &mut self.dense[slack];
            }
        }
        self.spill.entry(page).or_insert(0)
    }

    /// The full stored bitmap for `page` (dense ∪ spill; the cache is the
    /// caller's concern).
    fn load(&self, page: u32) -> u64 {
        let mut bits = 0;
        if page >= self.base {
            if let Some(&d) = self.dense.get((page - self.base) as usize) {
                bits = d;
            }
        }
        if !self.spill.is_empty() {
            if let Some(&s) = self.spill.get(&page) {
                bits |= s;
            }
        }
        bits
    }

    /// Number of distinct addresses inserted.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    pub fn contains(&self, addr: u32) -> bool {
        let page = addr >> 6;
        let bits = if page == self.cur_page { self.cur_bits } else { self.load(page) };
        bits & (1u64 << (addr & 63)) != 0
    }

    /// The canonical page map: every source ORed in, empty pages dropped.
    fn merged(&self) -> FastMap<u32, u64> {
        let mut m = FastMap::default();
        self.union_into(&mut m);
        m
    }

    /// Iterates all member addresses (unordered across pages).
    pub fn iter(&self) -> impl Iterator<Item = u32> {
        self.merged().into_iter().flat_map(|(page, bits)| {
            (0u32..64).filter(move |b| bits & (1u64 << b) != 0).map(move |b| (page << 6) | b)
        })
    }

    /// ORs this set's pages into a page-map accumulator — the bulk union
    /// the Table III report rows build per reference class.
    pub fn union_into(&self, acc: &mut FastMap<u32, u64>) {
        for (i, &bits) in self.dense.iter().enumerate() {
            if bits != 0 {
                *acc.entry(self.base + i as u32).or_insert(0) |= bits;
            }
        }
        for (&page, &bits) in &self.spill {
            if bits != 0 {
                *acc.entry(page).or_insert(0) |= bits;
            }
        }
        if self.cur_bits != 0 {
            *acc.entry(self.cur_page).or_insert(0) |= self.cur_bits;
        }
    }

    /// Cardinality of a [`Self::union_into`] accumulator.
    pub fn union_len(acc: &FastMap<u32, u64>) -> u64 {
        acc.values().map(|bits| u64::from(bits.count_ones())).sum()
    }
}

impl PartialEq for Footprint {
    fn eq(&self, other: &Footprint) -> bool {
        // Cache states may differ between observationally equal sets
        // (different last-touched pages), so compare canonical forms.
        self.len == other.len && self.merged() == other.merged()
    }
}

impl Eq for Footprint {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_len_contains_roundtrip() {
        let mut fp = Footprint::new();
        for addr in [0u32, 1, 63, 64, 1 << 20, u32::MAX, 0, 64] {
            fp.insert(addr);
        }
        assert_eq!(fp.len(), 6, "duplicates are not recounted");
        for addr in [0u32, 1, 63, 64, 1 << 20, u32::MAX] {
            assert!(fp.contains(addr), "{addr:#x} must be a member");
        }
        assert!(!fp.contains(2));
        assert!(!fp.contains(65));
        let mut got: Vec<u32> = fp.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 63, 64, 1 << 20, u32::MAX]);
    }

    #[test]
    fn page_zero_is_a_real_page() {
        // The cache starts at page 0 with no bits; inserting to another
        // page first must not materialize a phantom page-0 entry.
        let mut fp = Footprint::new();
        fp.insert(1000);
        assert_eq!(fp.iter().count(), 1);
        assert!(!fp.contains(0));

        let mut direct = Footprint::new();
        direct.insert(1000);
        assert_eq!(fp, direct);
    }

    #[test]
    fn equality_ignores_cache_state() {
        // Same members, different insertion order => different cached
        // pages, equal sets.
        let mut a = Footprint::new();
        let mut b = Footprint::new();
        for addr in [10u32, 1000, 10] {
            a.insert(addr);
        }
        for addr in [1000u32, 10, 1000] {
            b.insert(addr);
        }
        assert_eq!(a, b);
        b.insert(11);
        assert_ne!(a, b);
    }

    #[test]
    fn union_matches_per_set_members() {
        let mut a = Footprint::new();
        let mut b = Footprint::new();
        for addr in 0u32..100 {
            a.insert(addr * 4);
            b.insert(addr * 4 + 200);
        }
        let mut acc = FastMap::default();
        a.union_into(&mut acc);
        b.union_into(&mut acc);
        let mut want: Vec<u32> = a.iter().chain(b.iter()).collect();
        want.sort_unstable();
        want.dedup();
        assert_eq!(Footprint::union_len(&acc), want.len() as u64);
    }

    #[test]
    fn spilled_and_reanchored_pages_agree_with_a_hash_set() {
        // Far jumps force spill entries, descending runs force downward
        // re-anchors, and revisits hit pages that live in both stores
        // (spill entries going stale as subsets of later dense bits).
        let mut fp = Footprint::new();
        let mut reference = std::collections::HashSet::new();
        let mut ins = |fp: &mut Footprint, addr: u32| {
            fp.insert(addr);
            reference.insert(addr);
        };
        for i in 0..200u32 {
            ins(&mut fp, 0x4000_0000 + i * 64); // anchor region, ascending
            ins(&mut fp, 0x7fff_0000u32.wrapping_sub(i * 64)); // spill, descending
            ins(&mut fp, 0x4000_0000u32.wrapping_sub(i * 96)); // below anchor
        }
        for i in 0..200u32 {
            ins(&mut fp, 0x7fff_0000u32.wrapping_sub(i * 64)); // revisit spill
        }
        assert_eq!(fp.len(), reference.len() as u64);
        let mut got: Vec<u32> = fp.iter().collect();
        got.sort_unstable();
        let mut want: Vec<u32> = reference.iter().copied().collect();
        want.sort_unstable();
        assert_eq!(got, want);
        for &addr in &want {
            assert!(fp.contains(addr), "{addr:#x} must be a member");
        }
        let mut acc = FastMap::default();
        fp.union_into(&mut acc);
        assert_eq!(Footprint::union_len(&acc), want.len() as u64);
    }

    #[test]
    fn matches_a_reference_hash_set() {
        // Pseudo-random walk: paged bitmaps must agree with a plain set.
        let mut fp = Footprint::new();
        let mut reference = std::collections::HashSet::new();
        let mut x = 0x1234_5678u32;
        for _ in 0..10_000 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let addr = x % 50_000;
            fp.insert(addr);
            reference.insert(addr);
        }
        assert_eq!(fp.len(), reference.len() as u64);
        let mut got: Vec<u32> = fp.iter().collect();
        got.sort_unstable();
        let mut want: Vec<u32> = reference.into_iter().collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
