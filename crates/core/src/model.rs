//! The FORAY model: filtering (Step 4 of Algorithm 1) and the extracted
//! intermediate representation.
//!
//! A FORAY model is "another C program consisting of any combination of
//! `for` loops and array references, with all array index expressions being
//! affine functions of outer loop iterators" (paper, Section 3). Here the
//! model is an IR — loops with trip counts plus references with affine
//! expressions — which [`crate::codegen`] renders as C text in the style of
//! the paper's Fig. 2/4(d).

use crate::analyzer::{Analysis, RefClass, RefRecord};
use crate::looptree::NodeId;
use minic::LoopId;
use minic_trace::InstrAddr;
use std::collections::{BTreeMap, HashMap};

/// Step 4's purge heuristic. A reference stays only if its (partial) affine
/// expression uses at least one iterator, it executed at least `n_exec`
/// times, and it touched at least `n_loc` distinct locations. The paper used
/// 20 and 10 "to eliminate small arrays that can fit in the scratch pad
/// completely ... and to eliminate references which do not exhibit a lot of
/// reuse".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterConfig {
    /// Minimum executions (`Nexec`).
    pub n_exec: u64,
    /// Minimum distinct locations (`Nloc`).
    pub n_loc: u64,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig { n_exec: 20, n_loc: 10 }
    }
}

impl FilterConfig {
    /// Whether a reference survives the purge. Library and frame traffic
    /// never does (the paper's FORAY model captures source-level user
    /// references only).
    pub fn keeps(&self, r: &RefRecord) -> bool {
        r.class == RefClass::User
            && !r.state.is_non_analyzable()
            && r.state.has_iterator()
            && r.state.executions() >= self.n_exec
            && r.state.footprint().is_none_or(|fp| fp >= self.n_loc)
    }
}

/// One loop of the model: a node of the reconstructed tree with its trip
/// count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelLoop {
    /// Tree node.
    pub node: NodeId,
    /// Static loop id.
    pub loop_id: LoopId,
    /// Emitted trip count (the largest per-entry iteration count observed).
    pub trip: u64,
    /// Nesting depth in the tree (1 = outermost).
    pub depth: u32,
    /// Parent loop node, if any (`None` for top-level nests).
    pub parent: Option<NodeId>,
}

/// One affine term `coeff * iter(level)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineTerm {
    /// Iterator level, 1 = innermost (the paper's `iter1`).
    pub level: u32,
    /// The loop that iterator belongs to.
    pub loop_id: LoopId,
    /// Integer coefficient (non-zero).
    pub coeff: i64,
}

/// One array reference of the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelRef {
    /// Instruction address; also names the array (`A4002a0` style).
    pub instr: InstrAddr,
    /// Tree position.
    pub node: NodeId,
    /// Constant term. For partial expressions this is the most recent
    /// re-based value — valid within one activation of the outer context.
    pub constant: i64,
    /// Non-zero affine terms within the window, innermost first.
    pub terms: Vec<AffineTerm>,
    /// Partial window `M` (`M == nest` for full expressions).
    pub window: u32,
    /// Nest depth `N`.
    pub nest: u32,
    /// Loop ids enclosing the reference, innermost first.
    pub loop_path: Vec<LoopId>,
    /// Tree nodes enclosing the reference, innermost first.
    pub node_path: Vec<NodeId>,
    /// Executions observed.
    pub execs: u64,
    /// Distinct addresses touched (0 if tracking was disabled).
    pub footprint: u64,
    /// Loads.
    pub reads: u64,
    /// Stores.
    pub writes: u64,
}

impl ModelRef {
    /// `A{instr:x}` — the array name used in emitted code (Fig. 4(d)).
    pub fn array_name(&self) -> String {
        format!("A{:x}", self.instr)
    }

    /// Whether the expression is partial (`M < N`).
    pub fn is_partial(&self) -> bool {
        self.window < self.nest
    }
}

/// The extracted FORAY model.
#[derive(Debug, Clone, Default)]
pub struct ForayModel {
    /// Surviving references, in first-observation order.
    pub refs: Vec<ModelRef>,
    /// Loops hosting those references (every node on a surviving
    /// reference's path), keyed by node.
    pub loops: BTreeMap<NodeId, ModelLoop>,
}

impl ForayModel {
    /// Extracts the model from an analysis (Step 4 + model construction).
    ///
    /// # Examples
    ///
    /// ```
    /// use foray::{analyze, FilterConfig, ForayModel};
    /// use minic::CheckpointKind::*;
    /// use minic_trace::{AccessKind, Record};
    ///
    /// let mut trace = vec![Record::checkpoint(0, LoopBegin)];
    /// for i in 0..32u32 {
    ///     trace.push(Record::checkpoint(0, BodyBegin));
    ///     trace.push(Record::access(0x400000, 0x1000_0000 + 4 * i, AccessKind::Read));
    ///     trace.push(Record::checkpoint(0, BodyEnd));
    /// }
    /// let model = ForayModel::extract(&analyze(&trace), &FilterConfig::default());
    /// assert_eq!(model.refs.len(), 1);
    /// assert_eq!(model.refs[0].terms[0].coeff, 4);
    /// ```
    pub fn extract(analysis: &Analysis, filter: &FilterConfig) -> ForayModel {
        let mut model = ForayModel::default();
        let tree = analysis.tree();
        for r in analysis.refs() {
            if !filter.keeps(r) {
                continue;
            }
            let node_path = tree.node_path(r.node);
            let loop_path = tree.loop_path(r.node);
            let terms = r
                .state
                .coefficients()
                .iter()
                .take(r.state.window() as usize)
                .enumerate()
                .filter_map(|(i, c)| match c {
                    Some(c) if *c != 0 => {
                        Some(AffineTerm { level: i as u32 + 1, loop_id: loop_path[i], coeff: *c })
                    }
                    _ => None,
                })
                .collect();
            model.refs.push(ModelRef {
                instr: r.instr,
                node: r.node,
                constant: r.state.constant(),
                terms,
                window: r.state.window(),
                nest: r.state.nest_level(),
                loop_path,
                node_path: node_path.clone(),
                execs: r.state.executions(),
                footprint: r.state.footprint().unwrap_or(0),
                reads: r.reads,
                writes: r.writes,
            });
            // Register every loop on the path.
            for nid in node_path {
                let n = tree.node(nid);
                model.loops.entry(nid).or_insert_with(|| ModelLoop {
                    node: nid,
                    loop_id: n.loop_id.expect("path nodes are loops"),
                    trip: n.max_trip,
                    depth: n.depth,
                    parent: {
                        let mut p = n.parent;
                        // Nearest ancestor that is itself a loop.
                        loop {
                            match p {
                                Some(pid) if tree.node(pid).loop_id.is_some() => break Some(pid),
                                Some(pid) => p = tree.node(pid).parent,
                                None => break None,
                            }
                        }
                    },
                });
            }
        }
        model
    }

    /// Distinct static loop ids in the model (Table II's loop count uses
    /// nodes; this is the static view).
    pub fn distinct_loop_ids(&self) -> Vec<LoopId> {
        let mut v: Vec<LoopId> = self.loops.values().map(|l| l.loop_id).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of loop nodes ("inlined" view, as the paper counts).
    pub fn loop_count(&self) -> usize {
        self.loops.len()
    }

    /// Number of references.
    pub fn ref_count(&self) -> usize {
        self.refs.len()
    }

    /// Total accesses covered by the model.
    pub fn covered_accesses(&self) -> u64 {
        self.refs.iter().map(|r| r.execs).sum()
    }

    /// Compares two models of the *same program* (e.g. profiled under
    /// different inputs), keying references by `(instruction, static loop
    /// path)` — stable across runs, unlike tree node ids.
    pub fn diff(&self, other: &ForayModel) -> ModelDiff {
        let key = |r: &ModelRef| (r.instr, r.loop_path.clone());
        let left: HashMap<_, &ModelRef> = self.refs.iter().map(|r| (key(r), r)).collect();
        let right: HashMap<_, &ModelRef> = other.refs.iter().map(|r| (key(r), r)).collect();
        let mut diff = ModelDiff::default();
        for (k, l) in &left {
            match right.get(k) {
                None => diff.only_left += 1,
                Some(r) => {
                    let same_terms = l.terms == r.terms && l.window == r.window;
                    if same_terms && l.constant == r.constant {
                        diff.matching += 1;
                    } else if same_terms {
                        diff.constant_only += 1;
                    } else {
                        diff.changed += 1;
                    }
                }
            }
        }
        diff.only_right = right.keys().filter(|k| !left.contains_key(*k)).count() as u64;
        diff
    }
}

/// Result of [`ForayModel::diff`]: how stable the model is across inputs
/// (the paper's stated future work).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelDiff {
    /// References identical in both models.
    pub matching: u64,
    /// Same affine terms, different constant (e.g. different allocation
    /// base) — still the same buffering decision.
    pub constant_only: u64,
    /// Different coefficients or window.
    pub changed: u64,
    /// Present only in the left model.
    pub only_left: u64,
    /// Present only in the right model.
    pub only_right: u64,
}

impl ModelDiff {
    /// Fraction of the union that matches up to the constant term.
    pub fn stability(&self) -> f64 {
        let total =
            self.matching + self.constant_only + self.changed + self.only_left + self.only_right;
        if total == 0 {
            1.0
        } else {
            (self.matching + self.constant_only) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use minic::CheckpointKind::{BodyBegin as BB, BodyEnd as BE, LoopBegin as LB};
    use minic_trace::{AccessKind, Record};

    fn strided_loop_trace(instr: u32, base: u32, stride: u32, n: u32) -> Vec<Record> {
        let mut t = vec![Record::checkpoint(0, LB)];
        for i in 0..n {
            t.push(Record::checkpoint(0, BB));
            t.push(Record::access(instr, base + stride * i, AccessKind::Read));
            t.push(Record::checkpoint(0, BE));
        }
        t
    }

    #[test]
    fn extraction_keeps_strided_reference() {
        let analysis = analyze(&strided_loop_trace(0x400000, 0x1000_0000, 4, 64));
        let model = ForayModel::extract(&analysis, &FilterConfig::default());
        assert_eq!(model.ref_count(), 1);
        assert_eq!(model.loop_count(), 1);
        let r = &model.refs[0];
        assert_eq!(r.array_name(), "A400000");
        assert_eq!(r.constant, 0x1000_0000);
        assert_eq!(r.terms.len(), 1);
        assert_eq!(r.terms[0].coeff, 4);
        assert!(!r.is_partial());
        assert_eq!(model.loops.values().next().unwrap().trip, 64);
        assert_eq!(model.covered_accesses(), 64);
    }

    #[test]
    fn filter_drops_short_and_narrow_references() {
        // Only 8 executions: below Nexec=20.
        let analysis = analyze(&strided_loop_trace(0x400000, 0x1000_0000, 4, 8));
        let model = ForayModel::extract(&analysis, &FilterConfig::default());
        assert_eq!(model.ref_count(), 0);
        // 64 executions over 4 locations: below Nloc=10.
        let mut t = vec![Record::checkpoint(0, LB)];
        for i in 0..64u32 {
            t.push(Record::checkpoint(0, BB));
            t.push(Record::access(0x400000, 0x1000_0000 + 4 * (i % 4), AccessKind::Read));
            t.push(Record::checkpoint(0, BE));
        }
        // (i % 4) is not affine, so this is rejected even before Nloc; use a
        // tiny loop re-entered many times instead.
        let mut t2 = Vec::new();
        for _ in 0..16 {
            t2.push(Record::checkpoint(0, LB));
            for i in 0..4u32 {
                t2.push(Record::checkpoint(0, BB));
                t2.push(Record::access(0x400000, 0x1000_0000 + 4 * i, AccessKind::Read));
                t2.push(Record::checkpoint(0, BE));
            }
        }
        let model2 = ForayModel::extract(&analyze(&t2), &FilterConfig::default());
        assert_eq!(model2.ref_count(), 0, "4 locations < Nloc");
        let relaxed = FilterConfig { n_exec: 20, n_loc: 2 };
        let model3 = ForayModel::extract(&analyze(&t2), &relaxed);
        assert_eq!(model3.ref_count(), 1);
        let _ = t;
    }

    #[test]
    fn custom_thresholds() {
        let analysis = analyze(&strided_loop_trace(0x400000, 0x1000_0000, 4, 8));
        let model = ForayModel::extract(&analysis, &FilterConfig { n_exec: 4, n_loc: 4 });
        assert_eq!(model.ref_count(), 1);
    }

    #[test]
    fn nested_loops_register_parent_chain() {
        let mut t = vec![Record::checkpoint(0, LB)];
        for j in 0..4u32 {
            t.push(Record::checkpoint(0, BB));
            t.push(Record::checkpoint(1, LB));
            for i in 0..8u32 {
                t.push(Record::checkpoint(1, BB));
                t.push(Record::access(0x400000, 0x1000 + 4 * i + 32 * j, AccessKind::Write));
                t.push(Record::checkpoint(1, BE));
            }
            t.push(Record::checkpoint(0, BE));
        }
        let model = ForayModel::extract(&analyze(&t), &FilterConfig { n_exec: 16, n_loc: 10 });
        assert_eq!(model.ref_count(), 1);
        assert_eq!(model.loop_count(), 2);
        let r = &model.refs[0];
        assert_eq!(r.loop_path, vec![minic::LoopId(1), minic::LoopId(0)]);
        // Inner loop's parent is the outer loop node.
        let inner = model.loops.get(&r.node_path[0]).unwrap();
        let outer = model.loops.get(&r.node_path[1]).unwrap();
        assert_eq!(inner.parent, Some(outer.node));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.trip, 8);
        assert_eq!(outer.trip, 4);
    }

    #[test]
    fn diff_detects_stability_and_change() {
        let a = ForayModel::extract(
            &analyze(&strided_loop_trace(0x400000, 0x1000_0000, 4, 64)),
            &FilterConfig::default(),
        );
        // Same shape, different base: constant-only difference.
        let b = ForayModel::extract(
            &analyze(&strided_loop_trace(0x400000, 0x2000_0000, 4, 64)),
            &FilterConfig::default(),
        );
        let d = a.diff(&b);
        assert_eq!(d.constant_only, 1);
        assert_eq!(d.stability(), 1.0);
        // Different stride: changed.
        let c = ForayModel::extract(
            &analyze(&strided_loop_trace(0x400000, 0x1000_0000, 8, 64)),
            &FilterConfig::default(),
        );
        let d2 = a.diff(&c);
        assert_eq!(d2.changed, 1);
        assert_eq!(d2.stability(), 0.0);
        // Disjoint instr: only_left/only_right.
        let e = ForayModel::extract(
            &analyze(&strided_loop_trace(0x400004, 0x1000_0000, 4, 64)),
            &FilterConfig::default(),
        );
        let d3 = a.diff(&e);
        assert_eq!((d3.only_left, d3.only_right), (1, 1));
    }

    #[test]
    fn zero_coefficient_terms_are_dropped() {
        // Outer loop contributes stride 0 (same row rescanned).
        let mut t = Vec::new();
        t.push(Record::checkpoint(0, LB));
        for _j in 0..4u32 {
            t.push(Record::checkpoint(0, BB));
            t.push(Record::checkpoint(1, LB));
            for i in 0..16u32 {
                t.push(Record::checkpoint(1, BB));
                t.push(Record::access(0x400000, 0x1000 + 4 * i, AccessKind::Read));
                t.push(Record::checkpoint(1, BE));
            }
            t.push(Record::checkpoint(0, BE));
        }
        let model = ForayModel::extract(&analyze(&t), &FilterConfig::default());
        assert_eq!(model.ref_count(), 1);
        let r = &model.refs[0];
        // Only the inner term survives; the outer coefficient is 0.
        assert_eq!(r.terms.len(), 1);
        assert_eq!(r.terms[0].level, 1);
    }
}
