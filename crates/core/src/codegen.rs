//! Rendering a [`ForayModel`] as C text in the style of the paper's
//! Fig. 2 / Fig. 4(d):
//!
//! ```text
//! for (int i12=0; i12<2; i12++)
//!     for (int i15=0; i15<3; i15++)
//!         A4002a0[2147440948 + 1*i15 + 103*i12]; // wr x6
//! ```
//!
//! Loop iterators are named `i<n>` after the loop's *loop-begin checkpoint
//! number* (`3 * loop_id`), matching how the paper derives `i12`/`i15` from
//! its checkpoint ids.

use crate::looptree::NodeId;
use crate::model::{ForayModel, ModelRef};
use minic::{checkpoint_number, CheckpointKind, LoopId};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Iterator variable name for a loop (`i{loop-begin checkpoint}`).
pub fn iter_name(loop_id: LoopId) -> String {
    format!("i{}", checkpoint_number(loop_id, CheckpointKind::LoopBegin))
}

/// Renders the affine index expression of one reference
/// (`const + c1*i_inner + ...`, innermost term first, like the paper).
pub fn index_expr(r: &ModelRef) -> String {
    let mut s = r.constant.to_string();
    for t in &r.terms {
        if t.coeff >= 0 {
            let _ = write!(s, " + {}*{}", t.coeff, iter_name(t.loop_id));
        } else {
            let _ = write!(s, " - {}*{}", -t.coeff, iter_name(t.loop_id));
        }
    }
    s
}

/// Renders the whole model as C-like text.
///
/// # Examples
///
/// ```
/// use minic::CheckpointKind::*;
/// use minic_trace::{AccessKind, Record};
///
/// let mut trace = vec![Record::checkpoint(0, LoopBegin)];
/// for i in 0..32u32 {
///     trace.push(Record::checkpoint(0, BodyBegin));
///     trace.push(Record::access(0x400000, 0x1000 + 4 * i, AccessKind::Write));
///     trace.push(Record::checkpoint(0, BodyEnd));
/// }
/// let analysis = foray::analyze(&trace);
/// let model = foray::ForayModel::extract(&analysis, &foray::FilterConfig::default());
/// let code = foray::codegen::emit(&model);
/// assert!(code.contains("for (int i0=0; i0<32; i0++)"));
/// assert!(code.contains("A400000[4096 + 4*i0]"));
/// ```
pub fn emit(model: &ForayModel) -> String {
    let mut out = String::new();
    // Children of each emitted loop node; None key = top-level nests.
    let mut children: BTreeMap<Option<NodeId>, Vec<NodeId>> = BTreeMap::new();
    for l in model.loops.values() {
        children.entry(l.parent).or_default().push(l.node);
    }
    for v in children.values_mut() {
        v.sort_unstable();
    }
    // References grouped by their innermost loop node (or none).
    let mut refs_at: BTreeMap<Option<NodeId>, Vec<&ModelRef>> = BTreeMap::new();
    for r in &model.refs {
        refs_at.entry(r.node_path.first().copied()).or_default().push(r);
    }
    // Top-level references (outside every loop) cannot survive the filter
    // (no iterator), but guard anyway.
    if let Some(rs) = refs_at.get(&None) {
        for r in rs {
            emit_ref(&mut out, 0, r);
        }
    }
    if let Some(tops) = children.get(&None) {
        for &n in tops {
            emit_loop(&mut out, model, &children, &refs_at, n, 0);
        }
    }
    out
}

fn emit_loop(
    out: &mut String,
    model: &ForayModel,
    children: &BTreeMap<Option<NodeId>, Vec<NodeId>>,
    refs_at: &BTreeMap<Option<NodeId>, Vec<&ModelRef>>,
    node: NodeId,
    indent: usize,
) {
    let l = &model.loops[&node];
    let name = iter_name(l.loop_id);
    indent_to(out, indent);
    let _ = writeln!(out, "for (int {name}=0; {name}<{}; {name}++)", l.trip);
    if let Some(rs) = refs_at.get(&Some(node)) {
        for r in rs {
            emit_ref(out, indent + 1, r);
        }
    }
    if let Some(kids) = children.get(&Some(node)) {
        for &k in kids {
            emit_loop(out, model, children, refs_at, k, indent + 1);
        }
    }
}

fn emit_ref(out: &mut String, indent: usize, r: &ModelRef) {
    indent_to(out, indent);
    let rw = match (r.reads > 0, r.writes > 0) {
        (true, true) => "rd+wr",
        (true, false) => "rd",
        (false, true) => "wr",
        (false, false) => "-",
    };
    let partial = if r.is_partial() {
        format!(" /* partial: const varies with outer {} loop(s) */", r.nest - r.window)
    } else {
        String::new()
    };
    let _ =
        writeln!(out, "{}[{}]; // {} x{}{}", r.array_name(), index_expr(r), rw, r.execs, partial);
}

fn indent_to(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("    ");
    }
}

/// Renders the model as an **executable** mini-C program.
///
/// The paper's FORAY model "is another C program"; this emitter makes ours
/// literally runnable: each reference becomes a `char` array sized to its
/// affine span (indices re-based so the minimum offset is 0), reads
/// accumulate into a sink, writes store the iterator sum. Re-profiling the
/// emitted program with FORAY-GEN reproduces the model's affine terms — a
/// fixpoint that `tests/fixpoint.rs` asserts.
///
/// Partial references are emitted with their current constant (their outer
/// variation is data-dependent by definition), so the fixpoint holds for
/// full references and for the inner window of partial ones.
///
/// # Examples
///
/// ```
/// use minic::CheckpointKind::*;
/// use minic_trace::{AccessKind, Record};
///
/// let mut trace = vec![Record::checkpoint(0, LoopBegin)];
/// for i in 0..32u32 {
///     trace.push(Record::checkpoint(0, BodyBegin));
///     trace.push(Record::access(0x400000, 0x1000 + 4 * i, AccessKind::Write));
///     trace.push(Record::checkpoint(0, BodyEnd));
/// }
/// let analysis = foray::analyze(&trace);
/// let model = foray::ForayModel::extract(&analysis, &foray::FilterConfig::default());
/// let src = foray::codegen::emit_minic(&model);
/// assert!(minic::frontend(&src).is_ok(), "{src}");
/// ```
pub fn emit_minic(model: &ForayModel) -> String {
    let mut out = String::new();
    // A reference name can repeat when the same instruction appears in
    // several inlined contexts (Fig. 9); suffix the context node to keep
    // the emitted globals unique.
    let mut counts: HashMap<String, usize> = HashMap::new();
    for r in &model.refs {
        *counts.entry(r.array_name()).or_default() += 1;
    }
    let unique_name = |r: &ModelRef| {
        let base = r.array_name();
        if counts[&base] > 1 {
            format!("{base}_c{}", r.node.0)
        } else {
            base
        }
    };
    // Array declarations: one char array per reference, span-sized.
    for r in &model.refs {
        let (size, _) = span_and_min(r, model);
        let _ = writeln!(out, "char {}[{}];", unique_name(r), size.max(1));
    }
    let _ = writeln!(out, "int foray_sink;");
    out.push('\n');
    let _ = writeln!(out, "void main() {{");

    let mut children: BTreeMap<Option<NodeId>, Vec<NodeId>> = BTreeMap::new();
    for l in model.loops.values() {
        children.entry(l.parent).or_default().push(l.node);
    }
    for v in children.values_mut() {
        v.sort_unstable();
    }
    let mut refs_at: BTreeMap<Option<NodeId>, Vec<&ModelRef>> = BTreeMap::new();
    for r in &model.refs {
        refs_at.entry(r.node_path.first().copied()).or_default().push(r);
    }
    if let Some(tops) = children.get(&None) {
        for &n in tops {
            emit_minic_loop(&mut out, model, &children, &refs_at, &counts, n, 1);
        }
    }
    let _ = writeln!(out, "    print_int(foray_sink);");
    let _ = writeln!(out, "}}");
    out
}

/// Byte span of the reference over its window, and the minimum value of
/// the windowed affine part (for re-basing to 0).
fn span_and_min(r: &ModelRef, model: &ForayModel) -> (u64, i64) {
    let mut span: u64 = 0;
    let mut min: i64 = 0;
    for t in &r.terms {
        let trip = r
            .node_path
            .get(t.level as usize - 1)
            .and_then(|n| model.loops.get(n))
            .map(|l| l.trip.max(1))
            .unwrap_or(1);
        span += t.coeff.unsigned_abs() * (trip - 1);
        if t.coeff < 0 {
            min += t.coeff * (trip as i64 - 1);
        }
    }
    (span + 1, min)
}

fn emit_minic_loop(
    out: &mut String,
    model: &ForayModel,
    children: &BTreeMap<Option<NodeId>, Vec<NodeId>>,
    refs_at: &BTreeMap<Option<NodeId>, Vec<&ModelRef>>,
    counts: &HashMap<String, usize>,
    node: NodeId,
    indent: usize,
) {
    let unique_name = |r: &ModelRef| {
        let base = r.array_name();
        if counts[&base] > 1 {
            format!("{base}_c{}", r.node.0)
        } else {
            base
        }
    };
    let l = &model.loops[&node];
    let name = iter_name(l.loop_id);
    indent_to(out, indent);
    let _ = writeln!(out, "for (int {name}=0; {name}<{}; {name}++) {{", l.trip);
    if let Some(rs) = refs_at.get(&Some(node)) {
        for r in rs {
            let (_, min) = span_and_min(r, model);
            let mut expr = (-min).to_string();
            let mut iter_sum = String::from("0");
            for t in &r.terms {
                let n = iter_name(t.loop_id);
                if t.coeff >= 0 {
                    let _ = write!(expr, " + {}*{}", t.coeff, n);
                } else {
                    let _ = write!(expr, " - {}*{}", -t.coeff, n);
                }
                let _ = write!(iter_sum, " + {n}");
            }
            indent_to(out, indent + 1);
            if r.writes > 0 {
                let _ = writeln!(out, "{}[{}] = {};", unique_name(r), expr, iter_sum);
            } else {
                let _ = writeln!(out, "foray_sink += {}[{}];", unique_name(r), expr);
            }
        }
    }
    if let Some(kids) = children.get(&Some(node)) {
        for &k in kids {
            emit_minic_loop(out, model, children, refs_at, counts, k, indent + 1);
        }
    }
    indent_to(out, indent);
    out.push_str("}\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use crate::model::FilterConfig;
    use minic::CheckpointKind::{BodyBegin as BB, BodyEnd as BE, LoopBegin as LB};
    use minic_trace::{AccessKind, Record};

    #[test]
    fn figure4_output_shape() {
        // Loops 4 (while) and 5 (for) so iterator names are i12 / i15,
        // matching the paper's Fig 4(d) verbatim.
        let mut t = vec![Record::checkpoint(4, LB)];
        for outer in 0..2u32 {
            t.push(Record::checkpoint(4, BB));
            t.push(Record::checkpoint(5, LB));
            for inner in 0..3u32 {
                t.push(Record::checkpoint(5, BB));
                t.push(Record::access(
                    0x4002a0,
                    0x7fff5934 + inner + 103 * outer,
                    AccessKind::Write,
                ));
                t.push(Record::checkpoint(5, BE));
            }
            t.push(Record::checkpoint(4, BE));
        }
        let model = ForayModel::extract(&analyze(&t), &FilterConfig { n_exec: 6, n_loc: 6 });
        let code = emit(&model);
        assert!(code.contains("for (int i12=0; i12<2; i12++)"), "{code}");
        assert!(code.contains("for (int i15=0; i15<3; i15++)"), "{code}");
        assert!(code.contains("A4002a0[2147440948 + 1*i15 + 103*i12]"), "{code}");
    }

    #[test]
    fn negative_coefficients_render_with_minus() {
        let mut t = vec![Record::checkpoint(0, LB)];
        for i in 0..32u32 {
            t.push(Record::checkpoint(0, BB));
            t.push(Record::access(0x400000, 0x2000 - 4 * i, AccessKind::Read));
            t.push(Record::checkpoint(0, BE));
        }
        let model = ForayModel::extract(&analyze(&t), &FilterConfig::default());
        let code = emit(&model);
        assert!(code.contains("A400000[8192 - 4*i0]"), "{code}");
    }

    #[test]
    fn partial_reference_is_annotated() {
        // Irregular outer jumps: window shrinks to the inner iterator.
        let mut t = Vec::new();
        t.push(Record::checkpoint(0, LB));
        for (x, base) in [0x1000u32, 0x1790, 0x2004, 0x3500].iter().enumerate() {
            t.push(Record::checkpoint(0, BB));
            t.push(Record::checkpoint(1, LB));
            for i in 0..8u32 {
                t.push(Record::checkpoint(1, BB));
                t.push(Record::access(0x400000, base + 4 * i, AccessKind::Read));
                t.push(Record::checkpoint(1, BE));
            }
            t.push(Record::checkpoint(0, BE));
            let _ = x;
        }
        let model = ForayModel::extract(&analyze(&t), &FilterConfig::default());
        assert_eq!(model.ref_count(), 1);
        assert!(model.refs[0].is_partial());
        let code = emit(&model);
        assert!(code.contains("partial"), "{code}");
        // The inner loop still renders around it.
        assert!(code.contains("for (int i3=0; i3<8; i3++)"), "{code}");
    }

    #[test]
    fn two_sibling_nests() {
        let mut t = Vec::new();
        for (loop_id, instr) in [(0u32, 0x400000u32), (1, 0x400004)] {
            t.push(Record::checkpoint(loop_id, LB));
            for i in 0..32u32 {
                t.push(Record::checkpoint(loop_id, BB));
                t.push(Record::access(instr, 0x1000 + 4 * i, AccessKind::Read));
                t.push(Record::checkpoint(loop_id, BE));
            }
        }
        let model = ForayModel::extract(&analyze(&t), &FilterConfig::default());
        let code = emit(&model);
        assert!(code.contains("for (int i0=0; i0<32; i0++)"));
        assert!(code.contains("for (int i3=0; i3<32; i3++)"));
        assert!(code.contains("A400000"));
        assert!(code.contains("A400004"));
    }

    #[test]
    fn empty_model_renders_empty() {
        let model = ForayModel::default();
        assert_eq!(emit(&model), "");
    }
}
