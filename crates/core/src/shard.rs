//! Sharded parallel analysis: the analyzer scale-out.
//!
//! Algorithm 3's per-reference state depends only on (a) the accesses of
//! that reference's own `(node, instruction)` key, in stream order, and
//! (b) the loop-tree walker position, which is driven by checkpoints alone.
//! The analysis is therefore embarrassingly parallel across references:
//! partition the access stream by instruction address into K shards, give
//! every shard the full checkpoint stream, run K independent sequential
//! [`Analyzer`]s, and merge.
//!
//! The merge restores **bit-for-bit equivalence** with the sequential
//! analysis:
//!
//! * every shard replays every checkpoint, so all shards reconstruct the
//!   *same* loop tree (same [`crate::looptree::NodeId`] assignment, same
//!   entry/trip statistics) — any shard's tree is the sequential tree;
//! * each reference's [`RefRecord`] is built from exactly the accesses the
//!   sequential analyzer would feed it, in the same order, under the same
//!   iterator values;
//! * each reference is tagged with the global ordinal of its first access,
//!   and the merged reference list is sorted by that ordinal — recovering
//!   the sequential first-observation order regardless of thread
//!   scheduling.
//!
//! Workers run on [`std::thread::scope`] and report results over an mpsc
//! channel; determinism never depends on completion order.

use crate::analyzer::{Analysis, Analyzer, AnalyzerConfig, RefRecord};
use crate::looptree::LoopTree;
use minic_trace::{shard_of, Record, RecordSource, ShardBuffer, ShardingSink, TraceSink};
use std::sync::mpsc;

/// Resolves a requested shard/worker count: `0` means auto-detect — the
/// `FORAY_TEST_THREADS` environment override if set (the CI knob for
/// exercising the sharded path under constrained parallelism), otherwise
/// [`std::thread::available_parallelism`].
pub fn resolve_shards(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Some(n) = std::env::var("FORAY_TEST_THREADS").ok().and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// One shard worker's output: its (complete) loop tree, its references
/// tagged with their first-observation global ordinal, and its access
/// count.
struct ShardResult {
    tree: LoopTree,
    tagged: Vec<(u64, RefRecord)>,
    accesses: u64,
}

/// Wraps a sequential [`Analyzer`], stamping each newly discovered
/// reference with the global ordinal of the access that created it.
struct ShardRun {
    analyzer: Analyzer,
    first_seen: Vec<u64>,
}

impl ShardRun {
    fn new(config: &AnalyzerConfig) -> ShardRun {
        ShardRun { analyzer: Analyzer::with_config(config.clone()), first_seen: Vec::new() }
    }

    fn checkpoint(&mut self, rec: &Record) {
        self.analyzer.record(rec);
    }

    fn access(&mut self, rec: &Record, global_seq: u64) {
        let before = self.analyzer.ref_count();
        self.analyzer.record(rec);
        if self.analyzer.ref_count() > before {
            self.first_seen.push(global_seq);
        }
    }

    fn finish(self) -> ShardResult {
        let (tree, refs, accesses) = self.analyzer.into_analysis().into_parts();
        debug_assert_eq!(refs.len(), self.first_seen.len());
        let tagged = self.first_seen.into_iter().zip(refs).collect();
        ShardResult { tree, tagged, accesses }
    }
}

/// Replays a routed per-shard buffer (online mode).
fn run_shard_buffer(buf: &ShardBuffer, config: &AnalyzerConfig) -> ShardResult {
    let mut run = ShardRun::new(config);
    let mut seqs = buf.access_seqs.iter();
    for rec in &buf.records {
        match rec {
            Record::Checkpoint { .. } => run.checkpoint(rec),
            Record::Access(_) => {
                let seq = *seqs.next().expect("one ordinal per routed access");
                run.access(rec, seq);
            }
        }
    }
    run.finish()
}

/// Scans the shared full slice, filtering to one shard (offline mode —
/// zero-copy: no routing buffers, every worker reads the same slice).
fn run_shard_slice(
    records: &[Record],
    shard: usize,
    shards: usize,
    config: &AnalyzerConfig,
) -> ShardResult {
    let mut run = ShardRun::new(config);
    let mut seq = 0u64;
    for rec in records {
        match rec {
            Record::Checkpoint { .. } => run.checkpoint(rec),
            Record::Access(a) => {
                let s = seq;
                seq += 1;
                if shard_of(a.instr, shards) == shard {
                    run.access(rec, s);
                }
            }
        }
    }
    run.finish()
}

/// Merges shard results into the sequential-equivalent [`Analysis`].
fn merge(results: Vec<ShardResult>) -> Analysis {
    let mut accesses = 0u64;
    let mut tagged: Vec<(u64, RefRecord)> = Vec::new();
    let mut tree: Option<LoopTree> = None;
    for r in results {
        accesses += r.accesses;
        tagged.extend(r.tagged);
        match &tree {
            None => tree = Some(r.tree),
            Some(t) => debug_assert!(*t == r.tree, "shards must reconstruct identical trees"),
        }
    }
    // First-observation ordinals are globally unique (each access creates
    // at most one reference), so this order is total and deterministic.
    tagged.sort_unstable_by_key(|(seq, _)| *seq);
    let refs = tagged.into_iter().map(|(_, r)| r).collect();
    Analysis::from_parts(tree.unwrap_or_default(), refs, accesses)
}

/// Fans shard workers out over scoped threads, collecting over a channel.
fn run_workers<F>(shards: usize, worker: F) -> Vec<ShardResult>
where
    F: Fn(usize) -> ShardResult + Sync,
{
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<ShardResult>();
        for shard in 0..shards {
            let tx = tx.clone();
            let worker = &worker;
            scope.spawn(move || {
                // A panic in `worker` drops `tx`; the scope re-raises it.
                let _ = tx.send(worker(shard));
            });
        }
        drop(tx);
        rx.iter().collect()
    })
}

/// Parallel drop-in for the sequential [`Analyzer`]: collect the record
/// stream (it is a [`TraceSink`], so it can ride a profiling run), then
/// analyze the shards on worker threads at [`Self::into_analysis`] time.
///
/// The result is *identical* to what [`crate::analyze`] produces on the
/// same stream — same reference order, same loop tree, same footprints and
/// access counts (see `tests/shard_equiv.rs`).
///
/// # Examples
///
/// ```
/// use minic::CheckpointKind::*;
/// use minic_trace::{AccessKind, Record, TraceSink};
///
/// let mut sharded = foray::ShardedAnalyzer::new();
/// let trace = vec![
///     Record::checkpoint(0, LoopBegin),
///     Record::checkpoint(0, BodyBegin),
///     Record::access(0x400000, 0x1000_0000, AccessKind::Read),
///     Record::checkpoint(0, BodyEnd),
///     Record::checkpoint(0, BodyBegin),
///     Record::access(0x400000, 0x1000_0004, AccessKind::Read),
///     Record::checkpoint(0, BodyEnd),
/// ];
/// for r in &trace {
///     sharded.record(r);
/// }
/// let analysis = sharded.into_analysis();
/// assert_eq!(analysis, foray::analyze(&trace));
/// ```
#[derive(Debug)]
pub struct ShardedAnalyzer {
    config: AnalyzerConfig,
    sink: ShardingSink,
}

impl Default for ShardedAnalyzer {
    fn default() -> Self {
        ShardedAnalyzer::new()
    }
}

impl ShardedAnalyzer {
    /// Creates a sharded analyzer with the default configuration
    /// (auto-detected shard count).
    pub fn new() -> Self {
        ShardedAnalyzer::with_config(AnalyzerConfig::default())
    }

    /// Creates a sharded analyzer with an explicit configuration;
    /// `config.shards == 0` auto-detects (see [`resolve_shards`]).
    pub fn with_config(config: AnalyzerConfig) -> Self {
        let shards = resolve_shards(config.shards);
        ShardedAnalyzer { config, sink: ShardingSink::new(shards) }
    }

    /// The shard count workers will fan out to.
    pub fn shard_count(&self) -> usize {
        self.sink.shard_count()
    }

    /// Feeds a whole pre-recorded trace (offline mode).
    pub fn consume<'a>(&mut self, records: impl IntoIterator<Item = &'a Record>) {
        for r in records {
            self.record(r);
        }
    }

    /// Runs the shard workers and merges their results.
    pub fn into_analysis(self) -> Analysis {
        let buffers = self.sink.into_shards();
        let config = &self.config;
        let results = run_workers(buffers.len(), |shard| run_shard_buffer(&buffers[shard], config));
        merge(results)
    }
}

impl TraceSink for ShardedAnalyzer {
    fn record(&mut self, rec: &Record) {
        self.sink.record(rec);
    }
}

/// Analyzes a complete record slice across `shards` parallel workers
/// (`0` = auto), producing a result identical to [`crate::analyze`].
///
/// Unlike the sink-driven [`ShardedAnalyzer`], this path is zero-copy:
/// every worker scans the shared slice and filters to its own accesses.
///
/// # Examples
///
/// ```
/// use minic_trace::{AccessKind, Record};
///
/// let trace = vec![Record::access(0x400000, 0x1000_0000, AccessKind::Read)];
/// assert_eq!(foray::analyze_sharded(&trace, 4), foray::analyze(&trace));
/// ```
pub fn analyze_sharded(records: &[Record], shards: usize) -> Analysis {
    analyze_sharded_with(records, AnalyzerConfig { shards, ..AnalyzerConfig::default() })
}

/// [`analyze_sharded`] with an explicit configuration.
pub fn analyze_sharded_with(records: &[Record], config: AnalyzerConfig) -> Analysis {
    let shards = resolve_shards(config.shards);
    let results = run_workers(shards, |shard| run_shard_slice(records, shard, shards, &config));
    merge(results)
}

/// Sharded analysis of any [`RecordSource`] (`config.shards == 0` = auto) —
/// e.g. a `foray-trace/v1` file opened with
/// [`minic_trace::TraceFile::open`]. The result is identical to
/// [`crate::analyze`] on the equivalent record slice.
///
/// The source is routed once through a [`ShardingSink`] (single pass, so
/// unseekable streaming sources work too), then the shard workers fan out.
///
/// # Errors
///
/// Propagates the source's first decode/read failure.
pub fn analyze_sharded_source<Src: RecordSource>(
    source: Src,
    config: AnalyzerConfig,
) -> Result<Analysis, Src::Error> {
    let mut sharded = ShardedAnalyzer::with_config(config);
    source.stream_into(&mut sharded)?;
    Ok(sharded.into_analysis())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use minic::CheckpointKind::{BodyBegin as BB, BodyEnd as BE, LoopBegin as LB};
    use minic_trace::AccessKind;

    /// A two-level nest touching several distinct instructions per body, so
    /// shards split meaningfully.
    fn multi_ref_trace() -> Vec<Record> {
        let mut t = vec![Record::checkpoint(0, LB)];
        for i in 0..4u32 {
            t.push(Record::checkpoint(0, BB));
            t.push(Record::checkpoint(1, LB));
            for j in 0..3u32 {
                t.push(Record::checkpoint(1, BB));
                for instr in [0x40_0000u32, 0x40_0008, 0x40_0010, 0x41_0000, 0x42_0040] {
                    let addr = 0x1000_0000 + instr / 16 + 4 * j + 64 * i;
                    t.push(Record::access(instr, addr, AccessKind::Read));
                }
                t.push(Record::checkpoint(1, BE));
            }
            t.push(Record::checkpoint(0, BE));
        }
        t
    }

    #[test]
    fn slice_mode_equals_sequential_for_various_k() {
        let trace = multi_ref_trace();
        let sequential = analyze(&trace);
        for k in [1, 2, 3, 7, 16] {
            let sharded = analyze_sharded(&trace, k);
            assert_eq!(sharded, sequential, "K={k}");
        }
    }

    #[test]
    fn sink_mode_equals_sequential() {
        let trace = multi_ref_trace();
        let sequential = analyze(&trace);
        for k in [1, 2, 5] {
            let mut sharded = ShardedAnalyzer::with_config(AnalyzerConfig {
                shards: k,
                ..AnalyzerConfig::default()
            });
            sharded.consume(&trace);
            assert_eq!(sharded.shard_count(), k);
            assert_eq!(sharded.into_analysis(), sequential, "K={k}");
        }
    }

    #[test]
    fn empty_stream_yields_empty_analysis() {
        let analysis = analyze_sharded(&[], 4);
        assert_eq!(analysis.refs().len(), 0);
        assert_eq!(analysis.accesses(), 0);
        assert!(analysis.tree().is_empty());
    }

    #[test]
    fn more_shards_than_references_is_fine() {
        let trace = vec![Record::access(0x40_0000, 0x1000_0000, AccessKind::Read)];
        let analysis = analyze_sharded(&trace, 32);
        assert_eq!(analysis, analyze(&trace));
    }

    #[test]
    fn resolve_shards_prefers_explicit_request() {
        assert_eq!(resolve_shards(3), 3);
        assert!(resolve_shards(0) >= 1);
    }

    #[test]
    fn checkpoint_only_stream_keeps_the_tree() {
        let trace =
            vec![Record::checkpoint(0, LB), Record::checkpoint(0, BB), Record::checkpoint(0, BE)];
        let analysis = analyze_sharded(&trace, 3);
        assert_eq!(analysis, analyze(&trace));
        assert_eq!(analysis.tree().len(), 2);
    }
}
