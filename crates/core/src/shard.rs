//! Sharded parallel analysis: the analyzer scale-out.
//!
//! Algorithm 3's per-reference state depends only on (a) the accesses of
//! that reference's own `(node, instruction)` key, in stream order, and
//! (b) the loop-tree walker position, which is driven by checkpoints alone.
//! The analysis is therefore embarrassingly parallel across references:
//! partition the access stream by instruction address into K shards, give
//! every shard the full checkpoint stream, run K independent sequential
//! [`Analyzer`]s, and merge.
//!
//! The merge restores **bit-for-bit equivalence** with the sequential
//! analysis:
//!
//! * every shard replays every checkpoint, so all shards reconstruct the
//!   *same* loop tree (same [`crate::looptree::NodeId`] assignment, same
//!   entry/trip statistics) — any shard's tree is the sequential tree;
//! * each reference's [`RefRecord`] is built from exactly the accesses the
//!   sequential analyzer would feed it, in the same order, under the same
//!   iterator values;
//! * each reference is tagged with the global ordinal of its first access,
//!   and the merged reference list is sorted by that ordinal — recovering
//!   the sequential first-observation order regardless of thread
//!   scheduling.
//!
//! Workers run on [`std::thread::scope`] and report results over an mpsc
//! channel; determinism never depends on completion order.
//!
//! Two parallel modes share that contract:
//!
//! * **buffered** ([`ShardedAnalyzer`], [`analyze_sharded`]) — collect the
//!   whole stream, fan out at the end: O(trace) memory, zero-copy replay;
//! * **streaming** ([`analyze_streaming_with`]) — route bounded blocks to
//!   workers over backpressured channels *while the producer is still
//!   running*: O(shards × block) memory, the fused profile-and-analyze
//!   pipeline the paper's constant-space claim needs at scale.

use crate::analyzer::{Analysis, Analyzer, AnalyzerConfig, RefRecord};
use crate::looptree::LoopTree;
use minic_trace::{
    shard_of, BlockRouter, Record, RecordSource, ShardBuffer, ShardingSink, TraceSink,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;

/// Parses a `FORAY_TEST_THREADS`-style worker-count override.
///
/// # Errors
///
/// A human-readable message when the value cannot name a worker count
/// (non-numeric, or zero — zero means "auto" only as the *absence* of the
/// variable, never as its value).
///
/// # Examples
///
/// ```
/// assert_eq!(foray::parse_thread_override("4"), Ok(4));
/// assert!(foray::parse_thread_override("0").is_err());
/// assert!(foray::parse_thread_override("many").is_err());
/// ```
pub fn parse_thread_override(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(0) => {
            Err(format!("`{value}` requests zero workers (use >= 1, or unset to auto-detect)"))
        }
        Ok(n) => Ok(n),
        Err(_) => Err(format!("`{value}` is not a worker count")),
    }
}

/// Resolves a requested shard/worker count: `0` means auto-detect — the
/// `FORAY_TEST_THREADS` environment override if set (the CI knob for
/// exercising the sharded path under constrained parallelism), otherwise
/// [`std::thread::available_parallelism`].
///
/// An unusable `FORAY_TEST_THREADS` value (garbage, or `0`) is *not*
/// silently ignored: it falls back to available parallelism with a
/// once-per-process warning on stderr, so CI matrix typos surface instead
/// of quietly running at the wrong width.
pub fn resolve_shards(requested: usize) -> usize {
    resolve_shards_capped(requested, usize::MAX)
}

/// Ceiling applied to *auto-detected* worker counts on the streaming
/// sharded path (see [`resolve_stream_shards`]).
///
/// Every checkpoint is broadcast to every shard, so routed volume — and
/// the checkpoint replay work — grows linearly with K while one producer
/// feeds all workers. Past a handful of shards the pipeline only gets
/// slower (the `fused_exec` bench documents the pathology), so an
/// unqualified "use the whole machine" default is wrong on many-core
/// hosts. An explicit `--jobs`/`shards` request, or a `FORAY_TEST_THREADS`
/// override, is always honored verbatim.
pub const STREAM_AUTO_SHARD_CAP: usize = 4;

/// [`resolve_shards`] for the streaming pipeline: identical resolution
/// order (explicit request, then the `FORAY_TEST_THREADS` override, then
/// available parallelism), but the auto-detected value is capped at
/// [`STREAM_AUTO_SHARD_CAP`] so service and CLI defaults do not degrade on
/// many-core hosts. Explicit requests and env overrides are never capped.
///
/// # Examples
///
/// ```
/// // Explicit requests pass through uncapped.
/// assert_eq!(foray::resolve_stream_shards(7), 7);
/// assert_eq!(foray::resolve_stream_shards(64), 64);
/// ```
pub fn resolve_stream_shards(requested: usize) -> usize {
    resolve_shards_capped(requested, STREAM_AUTO_SHARD_CAP)
}

/// Shared resolution: explicit request > env override > capped
/// auto-detection. Only the final auto-detected fallback is capped —
/// both explicit paths express caller intent and pass through verbatim.
fn resolve_shards_capped(requested: usize, auto_cap: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("FORAY_TEST_THREADS") {
        match parse_thread_override(&v) {
            Ok(n) => return n,
            Err(msg) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: ignoring FORAY_TEST_THREADS: {msg}; \
                         using available parallelism"
                    );
                });
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(auto_cap).max(1)
}

/// One shard worker's output: its (complete) loop tree, its references
/// tagged with their first-observation global ordinal, and its access
/// count.
struct ShardResult {
    tree: LoopTree,
    tagged: Vec<(u64, RefRecord)>,
    accesses: u64,
}

/// Wraps a sequential [`Analyzer`], stamping each newly discovered
/// reference with the global ordinal of the access that created it.
struct ShardRun {
    analyzer: Analyzer,
    first_seen: Vec<u64>,
}

impl ShardRun {
    fn new(config: &AnalyzerConfig) -> ShardRun {
        ShardRun { analyzer: Analyzer::with_config(config.clone()), first_seen: Vec::new() }
    }

    fn checkpoint(&mut self, rec: &Record) {
        self.analyzer.record(rec);
    }

    fn access(&mut self, rec: &Record, global_seq: u64) {
        let before = self.analyzer.ref_count();
        self.analyzer.record(rec);
        if self.analyzer.ref_count() > before {
            self.first_seen.push(global_seq);
        }
    }

    fn finish(self) -> ShardResult {
        let (tree, refs, accesses) = self.analyzer.into_analysis().into_parts();
        debug_assert_eq!(refs.len(), self.first_seen.len());
        let tagged = self.first_seen.into_iter().zip(refs).collect();
        ShardResult { tree, tagged, accesses }
    }
}

/// Replays one routed buffer (a whole shard's stream, or one streamed
/// block of it) into a [`ShardRun`].
fn replay_block(run: &mut ShardRun, buf: &ShardBuffer) {
    let mut seqs = buf.access_seqs.iter();
    for rec in &buf.records {
        match rec {
            Record::Checkpoint { .. } => run.checkpoint(rec),
            Record::Access(_) => {
                let seq = *seqs.next().expect("one ordinal per routed access");
                run.access(rec, seq);
            }
        }
    }
}

/// Replays a routed per-shard buffer (online buffered mode).
fn run_shard_buffer(buf: &ShardBuffer, config: &AnalyzerConfig) -> ShardResult {
    let mut run = ShardRun::new(config);
    replay_block(&mut run, buf);
    run.finish()
}

/// Scans the shared full slice, filtering to one shard (offline mode —
/// zero-copy: no routing buffers, every worker reads the same slice).
fn run_shard_slice(
    records: &[Record],
    shard: usize,
    shards: usize,
    config: &AnalyzerConfig,
) -> ShardResult {
    let mut run = ShardRun::new(config);
    let mut seq = 0u64;
    for rec in records {
        match rec {
            Record::Checkpoint { .. } => run.checkpoint(rec),
            Record::Access(a) => {
                let s = seq;
                seq += 1;
                if shard_of(a.instr, shards) == shard {
                    run.access(rec, s);
                }
            }
        }
    }
    run.finish()
}

/// Merges shard results into the sequential-equivalent [`Analysis`].
fn merge(results: Vec<ShardResult>) -> Analysis {
    let mut accesses = 0u64;
    let mut tagged: Vec<(u64, RefRecord)> = Vec::new();
    let mut tree: Option<LoopTree> = None;
    for r in results {
        accesses += r.accesses;
        tagged.extend(r.tagged);
        match &tree {
            None => tree = Some(r.tree),
            Some(t) => debug_assert!(*t == r.tree, "shards must reconstruct identical trees"),
        }
    }
    // First-observation ordinals are globally unique (each access creates
    // at most one reference), so this order is total and deterministic.
    tagged.sort_unstable_by_key(|(seq, _)| *seq);
    let refs = tagged.into_iter().map(|(_, r)| r).collect();
    Analysis::from_parts(tree.unwrap_or_default(), refs, accesses)
}

/// Fans shard workers out over scoped threads, collecting over a channel.
fn run_workers<F>(shards: usize, worker: F) -> Vec<ShardResult>
where
    F: Fn(usize) -> ShardResult + Sync,
{
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<ShardResult>();
        for shard in 0..shards {
            let tx = tx.clone();
            let worker = &worker;
            scope.spawn(move || {
                // A panic in `worker` drops `tx`; the scope re-raises it.
                let _ = tx.send(worker(shard));
            });
        }
        drop(tx);
        rx.iter().collect()
    })
}

/// Parallel drop-in for the sequential [`Analyzer`]: collect the record
/// stream (it is a [`TraceSink`], so it can ride a profiling run), then
/// analyze the shards on worker threads at [`Self::into_analysis`] time.
///
/// The result is *identical* to what [`crate::analyze`] produces on the
/// same stream — same reference order, same loop tree, same footprints and
/// access counts (see `tests/shard_equiv.rs`).
///
/// # Examples
///
/// ```
/// use minic::CheckpointKind::*;
/// use minic_trace::{AccessKind, Record, TraceSink};
///
/// let mut sharded = foray::ShardedAnalyzer::new();
/// let trace = vec![
///     Record::checkpoint(0, LoopBegin),
///     Record::checkpoint(0, BodyBegin),
///     Record::access(0x400000, 0x1000_0000, AccessKind::Read),
///     Record::checkpoint(0, BodyEnd),
///     Record::checkpoint(0, BodyBegin),
///     Record::access(0x400000, 0x1000_0004, AccessKind::Read),
///     Record::checkpoint(0, BodyEnd),
/// ];
/// for r in &trace {
///     sharded.record(r);
/// }
/// let analysis = sharded.into_analysis();
/// assert_eq!(analysis, foray::analyze(&trace));
/// ```
#[derive(Debug)]
pub struct ShardedAnalyzer {
    config: AnalyzerConfig,
    sink: ShardingSink,
}

impl Default for ShardedAnalyzer {
    fn default() -> Self {
        ShardedAnalyzer::new()
    }
}

impl ShardedAnalyzer {
    /// Creates a sharded analyzer with the default configuration
    /// (auto-detected shard count).
    pub fn new() -> Self {
        ShardedAnalyzer::with_config(AnalyzerConfig::default())
    }

    /// Creates a sharded analyzer with an explicit configuration;
    /// `config.shards == 0` auto-detects (see [`resolve_shards`]).
    pub fn with_config(config: AnalyzerConfig) -> Self {
        let shards = resolve_shards(config.shards);
        ShardedAnalyzer { config, sink: ShardingSink::new(shards) }
    }

    /// The shard count workers will fan out to.
    pub fn shard_count(&self) -> usize {
        self.sink.shard_count()
    }

    /// Feeds a whole pre-recorded trace (offline mode).
    pub fn consume<'a>(&mut self, records: impl IntoIterator<Item = &'a Record>) {
        for r in records {
            self.record(r);
        }
    }

    /// Runs the shard workers and merges their results.
    pub fn into_analysis(self) -> Analysis {
        let buffers = self.sink.into_shards();
        let config = &self.config;
        let results = run_workers(buffers.len(), |shard| run_shard_buffer(&buffers[shard], config));
        merge(results)
    }
}

impl TraceSink for ShardedAnalyzer {
    fn record(&mut self, rec: &Record) {
        self.sink.record(rec);
    }
}

/// Analyzes a complete record slice across `shards` parallel workers
/// (`0` = auto), producing a result identical to [`crate::analyze`].
///
/// Unlike the sink-driven [`ShardedAnalyzer`], this path is zero-copy:
/// every worker scans the shared slice and filters to its own accesses.
///
/// # Examples
///
/// ```
/// use minic_trace::{AccessKind, Record};
///
/// let trace = vec![Record::access(0x400000, 0x1000_0000, AccessKind::Read)];
/// assert_eq!(foray::analyze_sharded(&trace, 4), foray::analyze(&trace));
/// ```
pub fn analyze_sharded(records: &[Record], shards: usize) -> Analysis {
    analyze_sharded_with(records, AnalyzerConfig { shards, ..AnalyzerConfig::default() })
}

/// [`analyze_sharded`] with an explicit configuration.
pub fn analyze_sharded_with(records: &[Record], config: AnalyzerConfig) -> Analysis {
    let shards = resolve_shards(config.shards);
    let results = run_workers(shards, |shard| run_shard_slice(records, shard, shards, &config));
    merge(results)
}

/// Sharded analysis of any [`RecordSource`] (`config.shards == 0` = auto) —
/// e.g. a `foray-trace/v1` file opened with
/// [`minic_trace::TraceFile::open`]. The result is identical to
/// [`crate::analyze`] on the equivalent record slice.
///
/// The source is routed once through a [`ShardingSink`] (single pass, so
/// unseekable streaming sources work too), then the shard workers fan out.
///
/// # Errors
///
/// Propagates the source's first decode/read failure.
pub fn analyze_sharded_source<Src: RecordSource>(
    source: Src,
    config: AnalyzerConfig,
) -> Result<Analysis, Src::Error> {
    let mut sharded = ShardedAnalyzer::with_config(config);
    source.stream_into(&mut sharded)?;
    Ok(sharded.into_analysis())
}

/// What the streaming pipeline observed: throughput counters plus the
/// buffered-record high-water mark against its configured ceiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Worker count the pipeline ran with (after [`resolve_shards`]).
    pub shards: usize,
    /// Total records routed (accesses + checkpoints, each counted once).
    pub records: u64,
    /// Total accesses routed (the global ordinal counter).
    pub accesses: u64,
    /// High-water mark of records buffered anywhere in the pipeline:
    /// router stubs + blocks in channels + blocks being replayed.
    pub peak_buffered_records: u64,
    /// The configured ceiling
    /// ([`crate::StreamConfig::max_buffered_records`]); always >=
    /// `peak_buffered_records` — the regression test in
    /// `tests/stream_equiv.rs` holds this line.
    pub max_buffered_records: u64,
}

/// Pipelined sharded analysis: `produce` pushes records into the sink it
/// is handed, and K worker threads analyze routed blocks **concurrently
/// with production** — this is the fused profile-and-analyze mode, where
/// `produce` is a VM run and the trace never exists as a whole.
///
/// Memory is bounded by `config.stream` (see
/// [`crate::StreamConfig::max_buffered_records`]): full blocks are handed
/// over *bounded* channels, so when a worker lags the producer blocks on
/// the hand-off instead of queueing without limit. The result is
/// byte-identical to sequential [`crate::analyze`] on the same stream for
/// any worker count — same routing/merge contract as the buffered path
/// (checkpoint broadcast, ordinal-sorted merge), per-block instead of
/// per-trace.
///
/// Returns the merged analysis, `produce`'s own result, and the
/// pipeline's [`StreamStats`].
///
/// # Errors
///
/// Propagates `produce`'s error; workers for the records routed before the
/// failure are shut down cleanly first.
///
/// # Examples
///
/// ```
/// use minic_trace::{AccessKind, Record, TraceSink};
///
/// let trace = vec![
///     Record::checkpoint(0, minic::CheckpointKind::LoopBegin),
///     Record::checkpoint(0, minic::CheckpointKind::BodyBegin),
///     Record::access(0x400000, 0x1000_0000, AccessKind::Read),
///     Record::checkpoint(0, minic::CheckpointKind::BodyEnd),
/// ];
/// let config = foray::AnalyzerConfig { shards: 2, ..Default::default() };
/// let (analysis, n, stats) = foray::shard::analyze_streaming_with(&config, |sink| {
///     for r in &trace {
///         sink.record(r);
///     }
///     Ok::<_, std::convert::Infallible>(trace.len())
/// })
/// .unwrap();
/// assert_eq!(analysis, foray::analyze(&trace));
/// assert_eq!(n, 4);
/// assert!(stats.peak_buffered_records <= stats.max_buffered_records);
/// ```
pub fn analyze_streaming_with<R, E>(
    config: &AnalyzerConfig,
    produce: impl FnOnce(&mut dyn TraceSink) -> Result<R, E>,
) -> Result<(Analysis, R, StreamStats), E> {
    let shards = resolve_stream_shards(config.shards);
    let block_records = config.stream.block_records.max(1);
    let channel_blocks = config.stream.channel_blocks.max(1);
    // Records in flight past the router: sitting in a channel or being
    // replayed by a worker. The producer adds on hand-off, the worker
    // subtracts after replay, so `peak_live` + the router's own pending
    // peak bounds everything ever buffered at once.
    let live = AtomicU64::new(0);
    let peak_live = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let (done_tx, done_rx) = mpsc::channel::<ShardResult>();
        let mut senders = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (block_tx, block_rx) = mpsc::sync_channel::<ShardBuffer>(channel_blocks);
            senders.push(block_tx);
            let done = done_tx.clone();
            let live = &live;
            scope.spawn(move || {
                let mut run = ShardRun::new(config);
                while let Ok(block) = block_rx.recv() {
                    let n = block.records.len() as u64;
                    replay_block(&mut run, &block);
                    live.fetch_sub(n, Ordering::Relaxed);
                }
                // Producer dropped its sender: stream over, report in.
                // A panic above drops `done`; the scope re-raises it.
                let _ = done.send(run.finish());
            });
        }
        drop(done_tx);
        let (live, peak_live) = (&live, &peak_live);
        let mut router = BlockRouter::new(shards, block_records, move |shard, block| {
            let n = block.records.len() as u64;
            let now = live.fetch_add(n, Ordering::Relaxed) + n;
            peak_live.fetch_max(now, Ordering::Relaxed);
            // Backpressure: blocks here while the worker's channel is full.
            let _ = senders[shard].send(block);
        });
        let produced = produce(&mut router);
        router.finish();
        let stats = StreamStats {
            shards,
            records: router.records(),
            accesses: router.accesses(),
            peak_buffered_records: router.peak_buffered_records() as u64
                + peak_live.load(Ordering::Relaxed),
            max_buffered_records: (shards as u64)
                * (block_records as u64)
                * (channel_blocks as u64 + 3),
        };
        // Dropping the router drops the block senders; workers drain,
        // finish, and report regardless of whether `produce` succeeded.
        drop(router);
        let results: Vec<ShardResult> = done_rx.iter().collect();
        let value = produced?;
        Ok((merge(results), value, stats))
    })
}

/// Streaming analysis of any [`RecordSource`] in bounded memory
/// (`config.shards == 0` = auto) — the single-pass alternative to
/// [`analyze_sharded_source`] for traces too large to buffer.
///
/// # Errors
///
/// Propagates the source's first decode/read failure.
pub fn analyze_streaming_source<Src: RecordSource>(
    source: Src,
    config: AnalyzerConfig,
) -> Result<Analysis, Src::Error> {
    let (analysis, _, _) = analyze_streaming_with(&config, |sink| source.stream_into(sink))?;
    Ok(analysis)
}

/// Streaming analysis of a record slice across `shards` workers (`0` =
/// auto), producing a result identical to [`crate::analyze`].
///
/// # Examples
///
/// ```
/// use minic_trace::{AccessKind, Record};
///
/// let trace = vec![Record::access(0x400000, 0x1000_0000, AccessKind::Read)];
/// assert_eq!(foray::analyze_streaming(&trace, 4), foray::analyze(&trace));
/// ```
pub fn analyze_streaming(records: &[Record], shards: usize) -> Analysis {
    let config = AnalyzerConfig { shards, ..AnalyzerConfig::default() };
    match analyze_streaming_source(records, config) {
        Ok(analysis) => analysis,
        Err(infallible) => match infallible {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use minic::CheckpointKind::{BodyBegin as BB, BodyEnd as BE, LoopBegin as LB};
    use minic_trace::AccessKind;

    /// A two-level nest touching several distinct instructions per body, so
    /// shards split meaningfully.
    fn multi_ref_trace() -> Vec<Record> {
        let mut t = vec![Record::checkpoint(0, LB)];
        for i in 0..4u32 {
            t.push(Record::checkpoint(0, BB));
            t.push(Record::checkpoint(1, LB));
            for j in 0..3u32 {
                t.push(Record::checkpoint(1, BB));
                for instr in [0x40_0000u32, 0x40_0008, 0x40_0010, 0x41_0000, 0x42_0040] {
                    let addr = 0x1000_0000 + instr / 16 + 4 * j + 64 * i;
                    t.push(Record::access(instr, addr, AccessKind::Read));
                }
                t.push(Record::checkpoint(1, BE));
            }
            t.push(Record::checkpoint(0, BE));
        }
        t
    }

    #[test]
    fn slice_mode_equals_sequential_for_various_k() {
        let trace = multi_ref_trace();
        let sequential = analyze(&trace);
        for k in [1, 2, 3, 7, 16] {
            let sharded = analyze_sharded(&trace, k);
            assert_eq!(sharded, sequential, "K={k}");
        }
    }

    #[test]
    fn sink_mode_equals_sequential() {
        let trace = multi_ref_trace();
        let sequential = analyze(&trace);
        for k in [1, 2, 5] {
            let mut sharded = ShardedAnalyzer::with_config(AnalyzerConfig {
                shards: k,
                ..AnalyzerConfig::default()
            });
            sharded.consume(&trace);
            assert_eq!(sharded.shard_count(), k);
            assert_eq!(sharded.into_analysis(), sequential, "K={k}");
        }
    }

    #[test]
    fn empty_stream_yields_empty_analysis() {
        let analysis = analyze_sharded(&[], 4);
        assert_eq!(analysis.refs().len(), 0);
        assert_eq!(analysis.accesses(), 0);
        assert!(analysis.tree().is_empty());
    }

    #[test]
    fn more_shards_than_references_is_fine() {
        let trace = vec![Record::access(0x40_0000, 0x1000_0000, AccessKind::Read)];
        let analysis = analyze_sharded(&trace, 32);
        assert_eq!(analysis, analyze(&trace));
    }

    #[test]
    fn resolve_shards_prefers_explicit_request() {
        assert_eq!(resolve_shards(3), 3);
        assert!(resolve_shards(0) >= 1);
    }

    #[test]
    fn stream_auto_k_is_capped_but_explicit_requests_are_not() {
        // Explicit requests pass through uncapped, however large.
        for k in [1usize, 2, STREAM_AUTO_SHARD_CAP + 3, 64] {
            assert_eq!(resolve_stream_shards(k), k);
        }
        // Auto-detection is capped at STREAM_AUTO_SHARD_CAP unless a
        // FORAY_TEST_THREADS override (always honored verbatim) asks for
        // more — compute the admissible ceiling from the live environment
        // so this test is valid under the CI thread matrix too.
        let auto = resolve_stream_shards(0);
        let override_k =
            std::env::var("FORAY_TEST_THREADS").ok().and_then(|v| parse_thread_override(&v).ok());
        match override_k {
            Some(n) => assert_eq!(auto, n, "env override is never capped"),
            None => assert!(
                (1..=STREAM_AUTO_SHARD_CAP).contains(&auto),
                "auto-K {auto} escaped the cap {STREAM_AUTO_SHARD_CAP}"
            ),
        }
        // The capped resolver never widens a request beyond the plain one.
        assert!(resolve_stream_shards(0) <= resolve_shards(0).max(STREAM_AUTO_SHARD_CAP));
    }

    #[test]
    fn thread_override_parses_strictly() {
        assert_eq!(parse_thread_override("4"), Ok(4));
        assert_eq!(parse_thread_override(" 2 "), Ok(2), "whitespace is tolerated");
        for bad in ["0", "", "banana", "-1", "1.5"] {
            let err = parse_thread_override(bad).unwrap_err();
            assert!(err.contains(&format!("`{bad}`")), "error names the value: {err}");
        }
    }

    #[test]
    fn streaming_equals_sequential_across_k_and_block_sizes() {
        use crate::analyzer::StreamConfig;
        let trace = multi_ref_trace();
        let sequential = analyze(&trace);
        for k in [1usize, 2, 3, 7] {
            for block_records in [1usize, 4, 64, 10_000] {
                let config = AnalyzerConfig {
                    shards: k,
                    stream: StreamConfig { block_records, channel_blocks: 2 },
                    ..AnalyzerConfig::default()
                };
                let (analysis, n, stats) = analyze_streaming_with(&config, |sink| {
                    for r in &trace {
                        sink.record(r);
                    }
                    Ok::<_, std::convert::Infallible>(trace.len())
                })
                .unwrap();
                assert_eq!(analysis, sequential, "K={k} block={block_records}");
                assert_eq!(n, trace.len());
                assert_eq!(stats.shards, k);
                assert_eq!(stats.accesses, sequential.accesses());
                assert!(
                    stats.peak_buffered_records <= stats.max_buffered_records,
                    "K={k} block={block_records}: peak {} over bound {}",
                    stats.peak_buffered_records,
                    stats.max_buffered_records
                );
            }
        }
    }

    #[test]
    fn streaming_propagates_producer_errors() {
        let result = analyze_streaming_with(&AnalyzerConfig::default(), |sink| {
            sink.record(&Record::access(0x40_0000, 0x1000_0000, AccessKind::Read));
            Err::<(), &str>("simulated producer failure")
        });
        assert_eq!(result.err(), Some("simulated producer failure"));
    }

    #[test]
    fn streaming_empty_stream_yields_empty_analysis() {
        let analysis = analyze_streaming(&[], 4);
        assert_eq!(analysis.refs().len(), 0);
        assert_eq!(analysis.accesses(), 0);
    }

    #[test]
    fn checkpoint_only_stream_keeps_the_tree() {
        let trace =
            vec![Record::checkpoint(0, LB), Record::checkpoint(0, BB), Record::checkpoint(0, BE)];
        let analysis = analyze_sharded(&trace, 3);
        assert_eq!(analysis, analyze(&trace));
        assert_eq!(analysis.tree().len(), 2);
    }
}
