//! Sharded parallel analysis: the analyzer scale-out.
//!
//! Algorithm 3's per-reference state depends only on (a) the accesses of
//! that reference's own `(node, instruction)` key, in stream order, and
//! (b) the loop-tree walker position, which is driven by checkpoints alone.
//! The analysis is therefore embarrassingly parallel across references:
//! partition the access stream by instruction address into K shards, give
//! every shard its checkpoint *context*, run K independent sequential
//! [`Analyzer`]s, and merge.
//!
//! The buffered path delivers that context the simple way — every shard
//! buffer contains every checkpoint. The streaming path compacts it: the
//! router keeps one shared context log ([`minic_trace::BlockRouter`]),
//! iteration boundaries collapse into [`minic_trace::BlockItem::IterRun`]
//! run-lengths replayed in bulk by [`Analyzer::body_run`], and each worker
//! receives exactly the context its own accesses need — per-shard work is
//! O(own accesses + loop transitions), not O(trace), so adding workers no
//! longer adds broadcast cost.
//!
//! The merge restores **bit-for-bit equivalence** with the sequential
//! analysis:
//!
//! * every shard sees the full checkpoint context (expanded from
//!   run-lengths where compacted), so all shards reconstruct the *same*
//!   loop tree (same [`crate::looptree::NodeId`] assignment, same
//!   entry/trip statistics) — any shard's tree is the sequential tree;
//! * each reference's [`RefRecord`] is built from exactly the accesses the
//!   sequential analyzer would feed it, in the same order, under the same
//!   iterator values;
//! * each reference is tagged with the global ordinal of its first access,
//!   and the merged reference list is sorted by that ordinal — recovering
//!   the sequential first-observation order regardless of thread
//!   scheduling.
//!
//! Workers run on [`std::thread::scope`] and report results over an mpsc
//! channel; determinism never depends on completion order.
//!
//! Two parallel modes share that contract:
//!
//! * **buffered** ([`ShardedAnalyzer`], [`analyze_sharded`]) — collect the
//!   whole stream, fan out at the end: O(trace) memory, zero-copy replay;
//! * **streaming** ([`analyze_streaming_with`]) — route bounded blocks to
//!   workers over backpressured channels *while the producer is still
//!   running*: O(shards × block) memory, the fused profile-and-analyze
//!   pipeline the paper's constant-space claim needs at scale.

use crate::analyzer::{Analysis, Analyzer, AnalyzerConfig, RefRecord};
use crate::looptree::LoopTree;
use minic::{CheckpointKind, LoopId};
use minic_trace::{
    shard_of, Access, BlockItem, BlockRouter, Record, RecordSource, ShardBlock, ShardBuffer,
    ShardingSink, TraceSink,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;

/// Parses a `FORAY_TEST_THREADS`-style worker-count override.
///
/// # Errors
///
/// A human-readable message when the value cannot name a worker count
/// (non-numeric, or zero — zero means "auto" only as the *absence* of the
/// variable, never as its value).
///
/// # Examples
///
/// ```
/// assert_eq!(foray::parse_thread_override("4"), Ok(4));
/// assert!(foray::parse_thread_override("0").is_err());
/// assert!(foray::parse_thread_override("many").is_err());
/// ```
pub fn parse_thread_override(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(0) => {
            Err(format!("`{value}` requests zero workers (use >= 1, or unset to auto-detect)"))
        }
        Ok(n) => Ok(n),
        Err(_) => Err(format!("`{value}` is not a worker count")),
    }
}

/// Resolves a requested shard/worker count: `0` means auto-detect — the
/// `FORAY_TEST_THREADS` environment override if set (the CI knob for
/// exercising the sharded path under constrained parallelism), otherwise
/// [`std::thread::available_parallelism`].
///
/// An unusable `FORAY_TEST_THREADS` value (garbage, or `0`) is *not*
/// silently ignored: it falls back to available parallelism with a
/// once-per-process warning on stderr, so CI matrix typos surface instead
/// of quietly running at the wrong width.
pub fn resolve_shards(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    let auto = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(1);
    if let Ok(v) = std::env::var("FORAY_TEST_THREADS") {
        match parse_thread_override(&v) {
            Ok(n) => return n,
            Err(msg) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: ignoring FORAY_TEST_THREADS={v:?}: {msg}; \
                         falling back to K={auto} (available parallelism)"
                    );
                });
            }
        }
    }
    auto
}

/// One shard worker's output: its (complete) loop tree, its references
/// tagged with their first-observation global ordinal, and its access
/// count.
struct ShardResult {
    tree: LoopTree,
    tagged: Vec<(u64, RefRecord)>,
    accesses: u64,
}

/// Wraps a sequential [`Analyzer`], stamping each newly discovered
/// reference with the global ordinal of the access that created it.
struct ShardRun {
    analyzer: Analyzer,
    first_seen: Vec<u64>,
}

impl ShardRun {
    fn new(config: &AnalyzerConfig) -> ShardRun {
        ShardRun { analyzer: Analyzer::with_config(config.clone()), first_seen: Vec::new() }
    }

    fn checkpoint(&mut self, loop_id: LoopId, kind: CheckpointKind) {
        self.analyzer.on_checkpoint(loop_id, kind);
    }

    #[inline]
    fn access(&mut self, a: &Access, global_seq: u64) {
        if self.analyzer.on_access(a) {
            self.first_seen.push(global_seq);
        }
    }

    /// Applies a compacted iteration run (`runs` BodyBegin/BodyEnd pairs
    /// in bulk); creates no references, so ordinal tracking is untouched.
    fn body_run(&mut self, loop_id: LoopId, runs: u32) {
        self.analyzer.body_run(loop_id, runs);
    }

    fn finish(self) -> ShardResult {
        let (tree, refs, accesses) = self.analyzer.into_analysis().into_parts();
        debug_assert_eq!(refs.len(), self.first_seen.len());
        let tagged = self.first_seen.into_iter().zip(refs).collect();
        ShardResult { tree, tagged, accesses }
    }
}

/// Replays one broadcast-routed buffer (a whole shard's stream from the
/// buffered [`ShardingSink`] path) into a [`ShardRun`].
fn replay_buffer(run: &mut ShardRun, buf: &ShardBuffer) {
    let mut seqs = buf.access_seqs.iter();
    for rec in &buf.records {
        match rec {
            Record::Checkpoint { loop_id, kind } => run.checkpoint(*loop_id, *kind),
            Record::Access(a) => {
                let seq = *seqs.next().expect("one ordinal per routed access");
                run.access(a, seq);
            }
        }
    }
}

/// Replays one compacted streamed block: accesses carry their global
/// ordinals, checkpoints are context deltas, and [`BlockItem::IterRun`]
/// applies whole iteration runs in one call.
fn replay_block(run: &mut ShardRun, block: &ShardBlock) {
    let mut seqs = block.access_seqs.iter();
    for item in &block.items {
        match item {
            BlockItem::Access(a) => {
                let seq = *seqs.next().expect("one ordinal per routed access");
                run.access(a, seq);
            }
            BlockItem::Checkpoint { loop_id, kind } => run.checkpoint(*loop_id, *kind),
            BlockItem::IterRun { loop_id, runs } => run.body_run(*loop_id, *runs),
        }
    }
}

/// Replays a routed per-shard buffer (online buffered mode).
fn run_shard_buffer(buf: &ShardBuffer, config: &AnalyzerConfig) -> ShardResult {
    let mut run = ShardRun::new(config);
    replay_buffer(&mut run, buf);
    run.finish()
}

/// Scans the shared full slice, filtering to one shard (offline mode —
/// zero-copy: no routing buffers, every worker reads the same slice).
fn run_shard_slice(
    records: &[Record],
    shard: usize,
    shards: usize,
    config: &AnalyzerConfig,
) -> ShardResult {
    let mut run = ShardRun::new(config);
    let mut seq = 0u64;
    for rec in records {
        match rec {
            Record::Checkpoint { loop_id, kind } => run.checkpoint(*loop_id, *kind),
            Record::Access(a) => {
                let s = seq;
                seq += 1;
                if shard_of(a.instr, shards) == shard {
                    run.access(a, s);
                }
            }
        }
    }
    run.finish()
}

/// Merges shard results into the sequential-equivalent [`Analysis`].
fn merge(results: Vec<ShardResult>) -> Analysis {
    let mut accesses = 0u64;
    let mut tagged: Vec<(u64, RefRecord)> = Vec::new();
    let mut tree: Option<LoopTree> = None;
    for r in results {
        accesses += r.accesses;
        tagged.extend(r.tagged);
        match &tree {
            None => tree = Some(r.tree),
            Some(t) => debug_assert!(*t == r.tree, "shards must reconstruct identical trees"),
        }
    }
    // First-observation ordinals are globally unique (each access creates
    // at most one reference), so this order is total and deterministic.
    tagged.sort_unstable_by_key(|(seq, _)| *seq);
    let refs = tagged.into_iter().map(|(_, r)| r).collect();
    Analysis::from_parts(tree.unwrap_or_default(), refs, accesses)
}

/// Fans shard workers out over scoped threads, collecting over a channel.
fn run_workers<F>(shards: usize, worker: F) -> Vec<ShardResult>
where
    F: Fn(usize) -> ShardResult + Sync,
{
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<ShardResult>();
        for shard in 0..shards {
            let tx = tx.clone();
            let worker = &worker;
            scope.spawn(move || {
                // A panic in `worker` drops `tx`; the scope re-raises it.
                let _ = tx.send(worker(shard));
            });
        }
        drop(tx);
        rx.iter().collect()
    })
}

/// Parallel drop-in for the sequential [`Analyzer`]: collect the record
/// stream (it is a [`TraceSink`], so it can ride a profiling run), then
/// analyze the shards on worker threads at [`Self::into_analysis`] time.
///
/// The result is *identical* to what [`crate::analyze`] produces on the
/// same stream — same reference order, same loop tree, same footprints and
/// access counts (see `tests/shard_equiv.rs`).
///
/// # Examples
///
/// ```
/// use minic::CheckpointKind::*;
/// use minic_trace::{AccessKind, Record, TraceSink};
///
/// let mut sharded = foray::ShardedAnalyzer::new();
/// let trace = vec![
///     Record::checkpoint(0, LoopBegin),
///     Record::checkpoint(0, BodyBegin),
///     Record::access(0x400000, 0x1000_0000, AccessKind::Read),
///     Record::checkpoint(0, BodyEnd),
///     Record::checkpoint(0, BodyBegin),
///     Record::access(0x400000, 0x1000_0004, AccessKind::Read),
///     Record::checkpoint(0, BodyEnd),
/// ];
/// for r in &trace {
///     sharded.record(r);
/// }
/// let analysis = sharded.into_analysis();
/// assert_eq!(analysis, foray::analyze(&trace));
/// ```
#[derive(Debug)]
pub struct ShardedAnalyzer {
    config: AnalyzerConfig,
    sink: ShardingSink,
}

impl Default for ShardedAnalyzer {
    fn default() -> Self {
        ShardedAnalyzer::new()
    }
}

impl ShardedAnalyzer {
    /// Creates a sharded analyzer with the default configuration
    /// (auto-detected shard count).
    pub fn new() -> Self {
        ShardedAnalyzer::with_config(AnalyzerConfig::default())
    }

    /// Creates a sharded analyzer with an explicit configuration;
    /// `config.shards == 0` auto-detects (see [`resolve_shards`]).
    pub fn with_config(config: AnalyzerConfig) -> Self {
        let shards = resolve_shards(config.shards);
        ShardedAnalyzer { config, sink: ShardingSink::new(shards) }
    }

    /// The shard count workers will fan out to.
    pub fn shard_count(&self) -> usize {
        self.sink.shard_count()
    }

    /// Feeds a whole pre-recorded trace (offline mode).
    pub fn consume<'a>(&mut self, records: impl IntoIterator<Item = &'a Record>) {
        for r in records {
            self.record(r);
        }
    }

    /// Runs the shard workers and merges their results.
    pub fn into_analysis(self) -> Analysis {
        let buffers = self.sink.into_shards();
        let config = &self.config;
        let results = run_workers(buffers.len(), |shard| run_shard_buffer(&buffers[shard], config));
        merge(results)
    }
}

impl TraceSink for ShardedAnalyzer {
    fn record(&mut self, rec: &Record) {
        self.sink.record(rec);
    }
}

/// Analyzes a complete record slice across `shards` parallel workers
/// (`0` = auto), producing a result identical to [`crate::analyze`].
///
/// Unlike the sink-driven [`ShardedAnalyzer`], this path is zero-copy:
/// every worker scans the shared slice and filters to its own accesses.
///
/// # Examples
///
/// ```
/// use minic_trace::{AccessKind, Record};
///
/// let trace = vec![Record::access(0x400000, 0x1000_0000, AccessKind::Read)];
/// assert_eq!(foray::analyze_sharded(&trace, 4), foray::analyze(&trace));
/// ```
pub fn analyze_sharded(records: &[Record], shards: usize) -> Analysis {
    analyze_sharded_with(records, AnalyzerConfig { shards, ..AnalyzerConfig::default() })
}

/// [`analyze_sharded`] with an explicit configuration.
pub fn analyze_sharded_with(records: &[Record], config: AnalyzerConfig) -> Analysis {
    let shards = resolve_shards(config.shards);
    let results = run_workers(shards, |shard| run_shard_slice(records, shard, shards, &config));
    merge(results)
}

/// Sharded analysis of any [`RecordSource`] (`config.shards == 0` = auto) —
/// e.g. a `foray-trace/v1` file opened with
/// [`minic_trace::TraceFile::open`]. The result is identical to
/// [`crate::analyze`] on the equivalent record slice.
///
/// The source is routed once through a [`ShardingSink`] (single pass, so
/// unseekable streaming sources work too), then the shard workers fan out.
///
/// # Errors
///
/// Propagates the source's first decode/read failure.
pub fn analyze_sharded_source<Src: RecordSource>(
    source: Src,
    config: AnalyzerConfig,
) -> Result<Analysis, Src::Error> {
    let mut sharded = ShardedAnalyzer::with_config(config);
    source.stream_into(&mut sharded)?;
    Ok(sharded.into_analysis())
}

/// What the streaming pipeline observed: throughput counters plus the
/// buffered-record high-water mark against its configured ceiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Worker count the pipeline ran with (after [`resolve_shards`]).
    pub shards: usize,
    /// Total records routed (accesses + checkpoints, each counted once).
    pub records: u64,
    /// Total accesses routed (the global ordinal counter).
    pub accesses: u64,
    /// High-water mark of records buffered anywhere in the pipeline:
    /// router stubs + blocks in channels + blocks being replayed.
    pub peak_buffered_records: u64,
    /// The configured ceiling
    /// ([`crate::StreamConfig::max_buffered_records`]); always >=
    /// `peak_buffered_records` — the regression test in
    /// `tests/stream_equiv.rs` holds this line.
    pub max_buffered_records: u64,
}

/// Pipelined sharded analysis: `produce` pushes records into the sink it
/// is handed, and K worker threads analyze routed blocks **concurrently
/// with production** — this is the fused profile-and-analyze mode, where
/// `produce` is a VM run and the trace never exists as a whole.
///
/// Memory is bounded by `config.stream` (see
/// [`crate::StreamConfig::max_buffered_records`]): full blocks are handed
/// over *bounded* channels, so when a worker lags the producer blocks on
/// the hand-off instead of queueing without limit. The result is
/// byte-identical to sequential [`crate::analyze`] on the same stream for
/// any worker count — same merge contract as the buffered path
/// (ordinal-sorted, identical trees), but checkpoints travel as compacted
/// per-block context deltas instead of a K-way broadcast, so per-shard
/// work stays O(own accesses + loop transitions) at any K.
///
/// Returns the merged analysis, `produce`'s own result, and the
/// pipeline's [`StreamStats`].
///
/// # Errors
///
/// Propagates `produce`'s error; workers for the records routed before the
/// failure are shut down cleanly first.
///
/// # Examples
///
/// ```
/// use minic_trace::{AccessKind, Record, TraceSink};
///
/// let trace = vec![
///     Record::checkpoint(0, minic::CheckpointKind::LoopBegin),
///     Record::checkpoint(0, minic::CheckpointKind::BodyBegin),
///     Record::access(0x400000, 0x1000_0000, AccessKind::Read),
///     Record::checkpoint(0, minic::CheckpointKind::BodyEnd),
/// ];
/// let config = foray::AnalyzerConfig { shards: 2, ..Default::default() };
/// let (analysis, n, stats) = foray::shard::analyze_streaming_with(&config, |sink| {
///     for r in &trace {
///         sink.record(r);
///     }
///     Ok::<_, std::convert::Infallible>(trace.len())
/// })
/// .unwrap();
/// assert_eq!(analysis, foray::analyze(&trace));
/// assert_eq!(n, 4);
/// assert!(stats.peak_buffered_records <= stats.max_buffered_records);
/// ```
pub fn analyze_streaming_with<R, E>(
    config: &AnalyzerConfig,
    produce: impl FnOnce(&mut dyn TraceSink) -> Result<R, E>,
) -> Result<(Analysis, R, StreamStats), E> {
    struct FnProducer<F>(F);
    impl<R, E, F: FnOnce(&mut dyn TraceSink) -> Result<R, E>> RecordProducer for FnProducer<F> {
        type Out = R;
        type Err = E;
        fn produce<S: TraceSink>(self, sink: &mut S) -> Result<R, E> {
            (self.0)(sink)
        }
    }
    analyze_streaming_produce(config, FnProducer(produce))
}

/// A source of the record stream for [`analyze_streaming_produce`],
/// generic over the sink type so the per-record sink calls dispatch
/// statically under every schedule. The closure-based
/// [`analyze_streaming_with`] is the ergonomic entry; it pays one virtual
/// call per record, which is measurable at VM record rates — throughput
/// callers (the VM benches, [`analyze_streaming_source`]) implement this
/// trait instead.
pub trait RecordProducer {
    /// The producer's own result (e.g. the simulator outcome).
    type Out;
    /// The producer's error type.
    type Err;
    /// Streams every record into `sink`, returning the producer's result.
    fn produce<S: TraceSink>(self, sink: &mut S) -> Result<Self::Out, Self::Err>;
}

/// [`analyze_streaming_with`], statically dispatched: the scheduler picks
/// the sink type (inline or threaded hand-off) and hands it to `producer`
/// as a concrete `&mut S`.
///
/// # Errors
///
/// Propagates the producer's error; workers for the records routed before
/// the failure are shut down cleanly first.
pub fn analyze_streaming_produce<P: RecordProducer>(
    config: &AnalyzerConfig,
    producer: P,
) -> Result<(Analysis, P::Out, StreamStats), P::Err> {
    let shards = resolve_shards(config.shards);
    let parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if parallelism == 1 && !config.stream.force_worker_threads {
        return analyze_streaming_inline(config, shards, producer);
    }
    let block_records = config.stream.block_records.max(1);
    let channel_blocks = config.stream.channel_blocks.max(1);
    // Items in flight past the router: sitting in a channel or being
    // replayed by a worker. The producer adds on hand-off, the worker
    // subtracts after replay, so `peak_live` + the router's own pending
    // peak bounds everything ever buffered at once.
    let live = AtomicU64::new(0);
    let peak_live = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let (done_tx, done_rx) = mpsc::channel::<ShardResult>();
        let mut senders = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (block_tx, block_rx) = mpsc::sync_channel::<ShardBlock>(channel_blocks);
            senders.push(block_tx);
            let done = done_tx.clone();
            let live = &live;
            scope.spawn(move || {
                let mut run = ShardRun::new(config);
                while let Ok(block) = block_rx.recv() {
                    let n = block.items.len() as u64;
                    replay_block(&mut run, &block);
                    live.fetch_sub(n, Ordering::Relaxed);
                }
                // Producer dropped its sender: stream over, report in.
                // A panic above drops `done`; the scope re-raises it.
                let _ = done.send(run.finish());
            });
        }
        drop(done_tx);
        let (live, peak_live) = (&live, &peak_live);
        let mut router = BlockRouter::new(shards, block_records, move |shard, block| {
            let n = block.items.len() as u64;
            let now = live.fetch_add(n, Ordering::Relaxed) + n;
            peak_live.fetch_max(now, Ordering::Relaxed);
            // Backpressure: blocks here while the worker's channel is full.
            let _ = senders[shard].send(block);
        });
        let produced = producer.produce(&mut router);
        router.finish();
        let stats = StreamStats {
            shards,
            records: router.records(),
            accesses: router.accesses(),
            peak_buffered_records: router.peak_buffered_records() as u64
                + peak_live.load(Ordering::Relaxed),
            max_buffered_records: config.stream.max_buffered_records(shards),
        };
        // Dropping the router drops the block senders; workers drain,
        // finish, and report regardless of whether `produce` succeeded.
        drop(router);
        let results: Vec<ShardResult> = done_rx.iter().collect();
        let value = produced?;
        Ok((merge(results), value, stats))
    })
}

/// The producing thread's sink in the inline schedule: the plain
/// sequential analyzer plus stream accounting. Nothing is buffered.
struct InlineSink {
    analyzer: Analyzer,
    records: u64,
    accesses: u64,
}

impl TraceSink for InlineSink {
    fn record(&mut self, rec: &Record) {
        self.records += 1;
        if matches!(rec, Record::Access(_)) {
            self.accesses += 1;
        }
        self.analyzer.record(rec);
    }
}

/// The single-hardware-thread schedule of [`analyze_streaming_with`]: the
/// sequential analyzer, applied record-by-record on the producing thread.
///
/// Sharding exists to put K analyzer threads to work, and its whole
/// correctness story — locked by the equivalence suites for every K and
/// both schedules — is that the ordinal merge reproduces the sequential
/// analysis byte-for-byte. On one core, worker threads could only
/// time-slice the producer, so routing, per-shard context replay, and the
/// final merge would buy pure overhead; the optimal schedule is the
/// sequential analyzer itself, which by that same invariant returns the
/// identical bytes while buffering nothing at all.
fn analyze_streaming_inline<P: RecordProducer>(
    config: &AnalyzerConfig,
    shards: usize,
    producer: P,
) -> Result<(Analysis, P::Out, StreamStats), P::Err> {
    let mut sink =
        InlineSink { analyzer: Analyzer::with_config(config.clone()), records: 0, accesses: 0 };
    let produced = producer.produce(&mut sink);
    sink.finish();
    let stats = StreamStats {
        shards,
        records: sink.records,
        accesses: sink.accesses,
        peak_buffered_records: 0,
        max_buffered_records: config.stream.max_buffered_records(shards),
    };
    let value = produced?;
    Ok((sink.analyzer.into_analysis(), value, stats))
}

/// Streaming analysis of any [`RecordSource`] in bounded memory
/// (`config.shards == 0` = auto) — the single-pass alternative to
/// [`analyze_sharded_source`] for traces too large to buffer.
///
/// # Errors
///
/// Propagates the source's first decode/read failure.
pub fn analyze_streaming_source<Src: RecordSource>(
    source: Src,
    config: AnalyzerConfig,
) -> Result<Analysis, Src::Error> {
    struct SourceProducer<Src>(Src);
    impl<Src: RecordSource> RecordProducer for SourceProducer<Src> {
        type Out = u64;
        type Err = Src::Error;
        fn produce<S: TraceSink>(self, sink: &mut S) -> Result<u64, Src::Error> {
            self.0.stream_into(sink)
        }
    }
    let (analysis, _, _) = analyze_streaming_produce(&config, SourceProducer(source))?;
    Ok(analysis)
}

/// Streaming analysis of a record slice across `shards` workers (`0` =
/// auto), producing a result identical to [`crate::analyze`].
///
/// # Examples
///
/// ```
/// use minic_trace::{AccessKind, Record};
///
/// let trace = vec![Record::access(0x400000, 0x1000_0000, AccessKind::Read)];
/// assert_eq!(foray::analyze_streaming(&trace, 4), foray::analyze(&trace));
/// ```
pub fn analyze_streaming(records: &[Record], shards: usize) -> Analysis {
    let config = AnalyzerConfig { shards, ..AnalyzerConfig::default() };
    match analyze_streaming_source(records, config) {
        Ok(analysis) => analysis,
        Err(infallible) => match infallible {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use minic::CheckpointKind::{BodyBegin as BB, BodyEnd as BE, LoopBegin as LB};
    use minic_trace::AccessKind;

    /// A two-level nest touching several distinct instructions per body, so
    /// shards split meaningfully.
    fn multi_ref_trace() -> Vec<Record> {
        let mut t = vec![Record::checkpoint(0, LB)];
        for i in 0..4u32 {
            t.push(Record::checkpoint(0, BB));
            t.push(Record::checkpoint(1, LB));
            for j in 0..3u32 {
                t.push(Record::checkpoint(1, BB));
                for instr in [0x40_0000u32, 0x40_0008, 0x40_0010, 0x41_0000, 0x42_0040] {
                    let addr = 0x1000_0000 + instr / 16 + 4 * j + 64 * i;
                    t.push(Record::access(instr, addr, AccessKind::Read));
                }
                t.push(Record::checkpoint(1, BE));
            }
            t.push(Record::checkpoint(0, BE));
        }
        t
    }

    #[test]
    fn slice_mode_equals_sequential_for_various_k() {
        let trace = multi_ref_trace();
        let sequential = analyze(&trace);
        for k in [1, 2, 3, 7, 16] {
            let sharded = analyze_sharded(&trace, k);
            assert_eq!(sharded, sequential, "K={k}");
        }
    }

    #[test]
    fn sink_mode_equals_sequential() {
        let trace = multi_ref_trace();
        let sequential = analyze(&trace);
        for k in [1, 2, 5] {
            let mut sharded = ShardedAnalyzer::with_config(AnalyzerConfig {
                shards: k,
                ..AnalyzerConfig::default()
            });
            sharded.consume(&trace);
            assert_eq!(sharded.shard_count(), k);
            assert_eq!(sharded.into_analysis(), sequential, "K={k}");
        }
    }

    #[test]
    fn empty_stream_yields_empty_analysis() {
        let analysis = analyze_sharded(&[], 4);
        assert_eq!(analysis.refs().len(), 0);
        assert_eq!(analysis.accesses(), 0);
        assert!(analysis.tree().is_empty());
    }

    #[test]
    fn more_shards_than_references_is_fine() {
        let trace = vec![Record::access(0x40_0000, 0x1000_0000, AccessKind::Read)];
        let analysis = analyze_sharded(&trace, 32);
        assert_eq!(analysis, analyze(&trace));
    }

    #[test]
    fn resolve_shards_prefers_explicit_request() {
        assert_eq!(resolve_shards(3), 3);
        assert!(resolve_shards(0) >= 1);
    }

    #[test]
    fn auto_k_is_uncapped_and_tracks_the_environment() {
        // Explicit requests pass through verbatim, however large — and so
        // does auto-detection: with compacted checkpoint routing there is
        // no broadcast pathology left to cap against.
        for k in [1usize, 2, 7, 64] {
            assert_eq!(resolve_shards(k), k);
        }
        let auto = resolve_shards(0);
        let override_k =
            std::env::var("FORAY_TEST_THREADS").ok().and_then(|v| parse_thread_override(&v).ok());
        match override_k {
            Some(n) => assert_eq!(auto, n, "env override is honored verbatim"),
            None => {
                let avail =
                    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(1);
                assert_eq!(auto, avail, "auto-K is the machine's full parallelism");
            }
        }
    }

    #[test]
    fn thread_override_parses_strictly() {
        assert_eq!(parse_thread_override("4"), Ok(4));
        assert_eq!(parse_thread_override(" 2 "), Ok(2), "whitespace is tolerated");
        for bad in ["0", "", "banana", "-1", "1.5"] {
            let err = parse_thread_override(bad).unwrap_err();
            assert!(err.contains(&format!("`{bad}`")), "error names the value: {err}");
        }
    }

    #[test]
    fn streaming_equals_sequential_across_k_and_block_sizes() {
        use crate::analyzer::StreamConfig;
        let trace = multi_ref_trace();
        let sequential = analyze(&trace);
        for k in [1usize, 2, 3, 7] {
            for (block_records, force_worker_threads) in
                [(1usize, false), (4, true), (64, false), (64, true), (10_000, true)]
            {
                let config = AnalyzerConfig {
                    shards: k,
                    stream: StreamConfig { block_records, channel_blocks: 2, force_worker_threads },
                    ..AnalyzerConfig::default()
                };
                let (analysis, n, stats) = analyze_streaming_with(&config, |sink| {
                    for r in &trace {
                        sink.record(r);
                    }
                    Ok::<_, std::convert::Infallible>(trace.len())
                })
                .unwrap();
                assert_eq!(analysis, sequential, "K={k} block={block_records}");
                assert_eq!(n, trace.len());
                assert_eq!(stats.shards, k);
                assert_eq!(stats.accesses, sequential.accesses());
                assert!(
                    stats.peak_buffered_records <= stats.max_buffered_records,
                    "K={k} block={block_records}: peak {} over bound {}",
                    stats.peak_buffered_records,
                    stats.max_buffered_records
                );
            }
        }
    }

    #[test]
    fn streaming_propagates_producer_errors() {
        let result = analyze_streaming_with(&AnalyzerConfig::default(), |sink| {
            sink.record(&Record::access(0x40_0000, 0x1000_0000, AccessKind::Read));
            Err::<(), &str>("simulated producer failure")
        });
        assert_eq!(result.err(), Some("simulated producer failure"));
    }

    #[test]
    fn streaming_empty_stream_yields_empty_analysis() {
        let analysis = analyze_streaming(&[], 4);
        assert_eq!(analysis.refs().len(), 0);
        assert_eq!(analysis.accesses(), 0);
    }

    #[test]
    fn checkpoint_only_stream_keeps_the_tree() {
        let trace =
            vec![Record::checkpoint(0, LB), Record::checkpoint(0, BB), Record::checkpoint(0, BE)];
        let analysis = analyze_sharded(&trace, 3);
        assert_eq!(analysis, analyze(&trace));
        assert_eq!(analysis.tree().len(), 2);
    }
}
