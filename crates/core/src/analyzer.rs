//! The streaming trace analyzer: Algorithm 2 + Algorithm 3 fused behind a
//! [`TraceSink`].
//!
//! Because the analyzer consumes each record exactly once, in order, it can
//! run *during* profiling (plug it into the simulator as the sink) with
//! space independent of trace length — the property the paper highlights at
//! the end of Section 4. Offline analysis of a stored trace uses the same
//! type via [`Analyzer::consume`].

use crate::affine::AffineState;
use crate::fasthash::FastMap;
use crate::looptree::{LoopTree, NodeId};
use minic::{CheckpointKind, LoopId};
use minic_trace::{
    layout, Access, AccessKind, InstrAddr, Record, RecordSource, SampleSpec, SampleState, TraceSink,
};
use std::collections::HashMap;

/// How the analyzer finds the reference record for an incoming access.
///
/// The paper argues average-constant complexity "if we use hash tables for
/// the searches"; we go one step further: the simulator's instruction
/// addresses are *dense* (user sites at `CODE_BASE + 4·site`, library and
/// frame sites likewise stride-packed), so [`LookupStrategy::Dense`] — the
/// default — replaces the hash with a bounds-checked array index plus a
/// last-instruction memo. [`LookupStrategy::Hash`] (the paper's choice) and
/// [`LookupStrategy::Linear`] remain for the `lookup_ablation` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LookupStrategy {
    /// Instruction-indexed side tables (dense synthetic address ranges)
    /// with a spill hash for unaligned or out-of-range addresses.
    #[default]
    Dense,
    /// Hash map keyed by `(node, instruction)` — the paper's choice.
    Hash,
    /// Linear scan of the current node's reference list.
    Linear,
}

/// Per-range slot cap for the dense tables (256 Ki slots ≈ 2 MiB fully
/// grown); instruction addresses mapping past the cap fall back to the
/// spill hash, so arbitrary `u32` addresses stay correct, just slower.
const DENSE_SLOTS_CAP: usize = 1 << 18;

/// One dense-table slot: the loop-tree context that most recently resolved
/// this instruction, and its reference index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DenseSlot {
    node: NodeId,
    index: u32,
}

/// `NodeId(u32::MAX)` cannot occur in a real tree (the arena would need
/// 2^32 nodes), so it marks an empty slot.
const EMPTY_SLOT: DenseSlot = DenseSlot { node: NodeId(u32::MAX), index: u32::MAX };

/// Which dense range an instruction address falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DenseRange {
    Lib,
    User,
    Frame,
}

/// Maps a 4-aligned synthetic instruction address to its dense range and
/// slot; `None` routes to the spill hash.
#[inline]
fn dense_slot(instr: u32) -> Option<(DenseRange, usize)> {
    if instr & 3 != 0 {
        return None;
    }
    let (range, base) = if (layout::CODE_BASE..layout::FRAME_CODE_BASE).contains(&instr) {
        (DenseRange::User, layout::CODE_BASE)
    } else if (layout::LIB_CODE_BASE..layout::LIB_CODE_END).contains(&instr) {
        (DenseRange::Lib, layout::LIB_CODE_BASE)
    } else if (layout::FRAME_CODE_BASE..layout::GLOBAL_BASE).contains(&instr) {
        (DenseRange::Frame, layout::FRAME_CODE_BASE)
    } else {
        return None;
    };
    let slot = ((instr - base) >> 2) as usize;
    (slot < DENSE_SLOTS_CAP).then_some((range, slot))
}

/// The dense dispatch tables: one lazily-grown slot array per synthetic
/// instruction range, and a spill hash for everything else — unaligned
/// addresses, addresses outside every range, and *additional* loop-tree
/// contexts of an instruction whose slot is already taken (the multi-hit
/// path promotes the requested context back into the slot, so the common
/// context always costs one array index).
#[derive(Debug, Clone, Default)]
struct DenseTables {
    lib: Vec<DenseSlot>,
    user: Vec<DenseSlot>,
    frame: Vec<DenseSlot>,
    spill: FastMap<(u32, NodeId), u32>,
}

impl DenseTables {
    fn table_mut(&mut self, range: DenseRange) -> &mut Vec<DenseSlot> {
        match range {
            DenseRange::Lib => &mut self.lib,
            DenseRange::User => &mut self.user,
            DenseRange::Frame => &mut self.frame,
        }
    }

    /// Finds the reference index for `(instr, node)`, if one was inserted.
    #[inline]
    fn get(&mut self, instr: u32, node: NodeId) -> Option<u32> {
        match dense_slot(instr) {
            Some((range, slot)) => {
                let table = self.table_mut(range);
                if slot >= table.len() {
                    return None;
                }
                let e = table[slot];
                if e.node == node {
                    return Some(e.index);
                }
                if e == EMPTY_SLOT {
                    return None;
                }
                // Same instruction, different loop-tree context: consult
                // the spill and swap the contexts so the one in use stays
                // on the fast path (move-to-front).
                let index = self.spill.remove(&(instr, node))?;
                self.spill.insert((instr, e.node), e.index);
                self.table_mut(range)[slot] = DenseSlot { node, index };
                Some(index)
            }
            None => self.spill.get(&(instr, node)).copied(),
        }
    }

    /// Records a newly created reference. Each `(instr, node)` pair lives
    /// in exactly one place: its range slot if free, else the spill.
    fn insert(&mut self, instr: u32, node: NodeId, index: u32) {
        match dense_slot(instr) {
            Some((range, slot)) => {
                let table = self.table_mut(range);
                if slot >= table.len() {
                    table.resize(slot + 1, EMPTY_SLOT);
                }
                if table[slot] == EMPTY_SLOT {
                    table[slot] = DenseSlot { node, index };
                } else {
                    self.spill.insert((instr, node), index);
                }
            }
            None => {
                self.spill.insert((instr, node), index);
            }
        }
    }
}

/// The last resolved access: hot loops hammer one instruction from one
/// tree position, so this answers most lookups with two compares.
#[derive(Debug, Clone, Copy)]
struct LastMemo {
    instr: u32,
    node: NodeId,
    index: u32,
}

impl Default for LastMemo {
    fn default() -> Self {
        // `u32::MAX` is unaligned, so it can never equal a dense-range
        // instruction, and `NodeId(u32::MAX)` never names a real node —
        // the memo starts inert without an `Option` on the hot path.
        LastMemo { instr: u32::MAX, node: NodeId(u32::MAX), index: u32::MAX }
    }
}

/// Tuning for the pipelined streaming sharded path
/// ([`crate::shard::analyze_streaming_with`]): how many items one routed
/// block carries and how many blocks each worker's bounded channel holds.
///
/// Peak buffered memory is
/// `(shards x (channel_blocks + 3) + 1) x block_records` items — per
/// shard: a staging stub, a block awaiting hand-off, the channel
/// occupancy, and the block being replayed; plus one block's worth of
/// entries in the shared compacted context log — independent of trace
/// length. When a worker lags, its channel fills and the producer blocks
/// on the next hand-off: natural backpressure instead of unbounded
/// queueing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Items per routed block (larger amortizes channel overhead,
    /// smaller tightens the memory cap and latency).
    pub block_records: usize,
    /// Bounded-channel capacity per worker, in blocks.
    pub channel_blocks: usize,
    /// Spawn worker threads even when the machine exposes a single
    /// hardware thread. By default a single-context machine gets the
    /// inline schedule — the sequential analyzer applied on the producing
    /// thread, byte-identical by the ordinal-merge invariant (worker
    /// threads could only time-slice the one core, so routing and
    /// hand-off would buy pure overhead). The equivalence tests force
    /// threads to keep the hand-off path covered everywhere.
    pub force_worker_threads: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig { block_records: 4096, channel_blocks: 2, force_worker_threads: false }
    }
}

impl StreamConfig {
    /// The worst-case number of record-sized items buffered anywhere in
    /// the streaming pipeline for `shards` workers (see the type docs for
    /// the terms).
    pub fn max_buffered_records(&self, shards: usize) -> u64 {
        ((shards as u64) * (self.channel_blocks.max(1) as u64 + 3) + 1)
            * (self.block_records.max(1) as u64)
    }
}

/// Analyzer configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzerConfig {
    /// Track each reference's distinct-address footprint (needed by the
    /// Step 4 filter and Table III; disable only for throughput benching).
    pub track_footprint: bool,
    /// Reference lookup strategy.
    pub lookup: LookupStrategy,
    /// Shard count for [`crate::shard::ShardedAnalyzer`]; `0` means
    /// auto-detect (the `FORAY_TEST_THREADS` env override, else available
    /// parallelism). The sequential [`Analyzer`] ignores this field.
    pub shards: usize,
    /// Deterministic access-sampling policy (default: analyze every
    /// access). Per-reference state means the sampled analysis is
    /// byte-identical for any shard count; see [`minic_trace::sample`].
    pub sample: SampleSpec,
    /// Streaming-pipeline tuning (block size, channel depth); only the
    /// streaming sharded path reads this.
    pub stream: StreamConfig,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            track_footprint: true,
            lookup: LookupStrategy::Dense,
            shards: 0,
            sample: SampleSpec::Full,
            stream: StreamConfig::default(),
        }
    }
}

/// Classification of a static reference by its instruction-address range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefClass {
    /// An access site in user source code.
    User,
    /// System-library traffic (`malloc`, `memset`, I/O, ...) — Table III's
    /// middle column; never part of the FORAY model.
    Library,
    /// Compiler-generated argument-passing / spill traffic — user code, but
    /// invisible in the source; the paper notes Step 4 filters it.
    Frame,
}

impl RefClass {
    fn of(instr: InstrAddr) -> RefClass {
        if layout::is_library_instr(instr) {
            RefClass::Library
        } else if (layout::FRAME_CODE_BASE..layout::GLOBAL_BASE).contains(&instr.0) {
            RefClass::Frame
        } else {
            RefClass::User
        }
    }
}

/// One static memory reference: an instruction address at a loop-tree
/// position, with its fitted affine state and access counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefRecord {
    /// Instruction address identifying the source-level site.
    pub instr: InstrAddr,
    /// Loop-tree position (references of the same instruction in different
    /// calling contexts are distinct, i.e. "inlined").
    pub node: NodeId,
    /// Fitted affine model.
    pub state: AffineState,
    /// Loads observed.
    pub reads: u64,
    /// Stores observed.
    pub writes: u64,
    /// User / library / frame classification.
    pub class: RefClass,
}

/// Streaming analyzer state.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    tree: LoopTree,
    refs: Vec<RefRecord>,
    dense: DenseTables,
    memo: LastMemo,
    by_key: HashMap<(NodeId, InstrAddr), usize>,
    by_node: HashMap<NodeId, Vec<usize>>,
    config: AnalyzerConfig,
    sample: SampleState,
    iters_buf: Vec<i64>,
    /// Whether `iters_buf` holds the current node's iterator vector. The
    /// walker only moves — and iterators only change — at checkpoints, so
    /// the vector is computed once per checkpoint interval instead of once
    /// per access.
    iters_valid: bool,
    accesses: u64,
}

impl Analyzer {
    /// Creates an analyzer with the default configuration.
    pub fn new() -> Self {
        Analyzer::default()
    }

    /// Creates an analyzer with an explicit configuration.
    pub fn with_config(config: AnalyzerConfig) -> Self {
        let sample = SampleState::new(config.sample);
        Analyzer { config, sample, ..Analyzer::default() }
    }

    /// Feeds a whole pre-recorded trace (offline mode).
    pub fn consume<'a>(&mut self, records: impl IntoIterator<Item = &'a Record>) {
        for r in records {
            self.record(r);
        }
    }

    /// Finishes analysis, yielding the immutable results.
    pub fn into_analysis(self) -> Analysis {
        Analysis { tree: self.tree, refs: self.refs, accesses: self.accesses }
    }

    /// References discovered so far (the sharded driver watches this to
    /// stamp each reference's first-observation ordinal).
    pub fn ref_count(&self) -> usize {
        self.refs.len()
    }

    /// Applies `runs` empty body iterations of `loop_id` in one step —
    /// the analyzer-side consumer of [`minic_trace::BlockItem::IterRun`],
    /// byte-identical to feeding the expanded `(BodyBegin; BodyEnd)`
    /// checkpoint pairs (see [`LoopTree::on_body_run`]).
    pub fn body_run(&mut self, loop_id: LoopId, runs: u32) {
        let before = self.tree.current();
        self.tree.on_body_run(loop_id, runs);
        // The run only mutates the iterated loop's own node, and the walker
        // finishes at that node's *parent* — so when the walker ends where
        // it started, no node on the current path changed and the cached
        // iterator vector is still exact. (The self-nested climb case moves
        // the walker, which forces the recompute.)
        if self.tree.current() != before {
            self.iters_valid = false;
        }
    }

    /// Applies one checkpoint without going through a [`Record`] — the
    /// streaming shard replay calls this and [`Self::on_access`] directly.
    pub(crate) fn on_checkpoint(&mut self, loop_id: LoopId, kind: CheckpointKind) {
        self.tree.on_checkpoint(loop_id, kind);
        self.iters_valid = false;
    }

    /// Applies one access; returns whether it created a new reference (the
    /// sharded driver stamps first-observation ordinals off this signal
    /// without re-reading the reference count around every access).
    pub(crate) fn on_access(&mut self, a: &Access) -> bool {
        // Sampling lives here, not in a wrapping sink, so every path —
        // sequential, buffered sharded, streaming sharded — makes the same
        // per-reference decisions (rejected accesses create no reference,
        // keeping the sharded first-observation ordinals aligned too).
        if !self.sample.accept(a) {
            return false;
        }
        self.accesses += 1;
        let node = self.tree.current();
        if !self.iters_valid {
            self.iters_buf.clear();
            collect_iters(&self.tree, node, &mut self.iters_buf);
            self.iters_valid = true;
        }
        let idx = match self.config.lookup {
            LookupStrategy::Dense => {
                if self.memo.instr == a.instr.0 && self.memo.node == node {
                    Some(self.memo.index as usize)
                } else {
                    let found = self.dense.get(a.instr.0, node);
                    if let Some(index) = found {
                        self.memo = LastMemo { instr: a.instr.0, node, index };
                    }
                    found.map(|i| i as usize)
                }
            }
            LookupStrategy::Hash => self.by_key.get(&(node, a.instr)).copied(),
            LookupStrategy::Linear => self
                .by_node
                .get(&node)
                .and_then(|v| v.iter().copied().find(|&i| self.refs[i].instr == a.instr)),
        };
        match idx {
            Some(i) => {
                let rec = &mut self.refs[i];
                rec.state.observe(&self.iters_buf, a.addr.0);
                match a.kind {
                    AccessKind::Read => rec.reads += 1,
                    AccessKind::Write => rec.writes += 1,
                }
                false
            }
            None => {
                let depth = self.tree.node(node).depth;
                let state = AffineState::first(
                    depth,
                    &self.iters_buf,
                    a.addr.0,
                    self.config.track_footprint,
                );
                let (mut reads, mut writes) = (0, 0);
                match a.kind {
                    AccessKind::Read => reads = 1,
                    AccessKind::Write => writes = 1,
                }
                let i = self.refs.len();
                self.refs.push(RefRecord {
                    instr: a.instr,
                    node,
                    state,
                    reads,
                    writes,
                    class: RefClass::of(a.instr),
                });
                match self.config.lookup {
                    LookupStrategy::Dense => {
                        self.dense.insert(a.instr.0, node, i as u32);
                        self.memo = LastMemo { instr: a.instr.0, node, index: i as u32 };
                    }
                    LookupStrategy::Hash => {
                        self.by_key.insert((node, a.instr), i);
                    }
                    LookupStrategy::Linear => {
                        self.by_node.entry(node).or_default().push(i);
                    }
                }
                true
            }
        }
    }
}

fn collect_iters(tree: &LoopTree, node: NodeId, buf: &mut Vec<i64>) {
    // Innermost first, matching `LoopTree::iterators` without allocating.
    let mut cur = Some(node);
    while let Some(nid) = cur {
        let n = tree.node(nid);
        if n.loop_id.is_some() {
            buf.push(n.iter);
        }
        cur = n.parent;
    }
}

impl TraceSink for Analyzer {
    fn record(&mut self, rec: &Record) {
        match rec {
            Record::Checkpoint { loop_id, kind } => self.on_checkpoint(*loop_id, *kind),
            Record::Access(a) => {
                self.on_access(a);
            }
        }
    }
}

/// Immutable analysis results: the reconstructed loop tree and every
/// reference with its fitted affine state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    tree: LoopTree,
    refs: Vec<RefRecord>,
    accesses: u64,
}

impl Analysis {
    /// Assembles an analysis from merged shard results (see
    /// [`crate::shard`]).
    pub(crate) fn from_parts(tree: LoopTree, refs: Vec<RefRecord>, accesses: u64) -> Analysis {
        Analysis { tree, refs, accesses }
    }

    /// Decomposes the analysis for the shard merge.
    pub(crate) fn into_parts(self) -> (LoopTree, Vec<RefRecord>, u64) {
        (self.tree, self.refs, self.accesses)
    }

    /// The reconstructed loop tree.
    pub fn tree(&self) -> &LoopTree {
        &self.tree
    }

    /// All references, in first-observation order.
    pub fn refs(&self) -> &[RefRecord] {
        &self.refs
    }

    /// Total accesses analyzed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// References of a given class.
    pub fn refs_of(&self, class: RefClass) -> impl Iterator<Item = &RefRecord> {
        self.refs.iter().filter(move |r| r.class == class)
    }
}

/// Analyzes a complete record slice in one call (offline convenience).
///
/// # Examples
///
/// ```
/// use minic::CheckpointKind::*;
/// use minic_trace::{AccessKind, Record};
///
/// let trace = vec![
///     Record::checkpoint(0, LoopBegin),
///     Record::checkpoint(0, BodyBegin),
///     Record::access(0x400000, 0x1000_0000, AccessKind::Read),
///     Record::checkpoint(0, BodyEnd),
///     Record::checkpoint(0, BodyBegin),
///     Record::access(0x400000, 0x1000_0004, AccessKind::Read),
///     Record::checkpoint(0, BodyEnd),
/// ];
/// let analysis = foray::analyze(&trace);
/// assert_eq!(analysis.refs().len(), 1);
/// assert_eq!(analysis.refs()[0].state.coefficients(), &[Some(4)]);
/// ```
pub fn analyze(records: &[Record]) -> Analysis {
    analyze_with(records, AnalyzerConfig::default())
}

/// [`analyze`] with an explicit configuration.
pub fn analyze_with(records: &[Record], config: AnalyzerConfig) -> Analysis {
    let mut analyzer = Analyzer::with_config(config);
    analyzer.consume(records);
    analyzer.into_analysis()
}

/// Analyzes any [`RecordSource`] — a slice, a zero-copy byte decoder, or a
/// trace file — producing the same result [`analyze`] gives on the
/// equivalent record slice.
///
/// # Errors
///
/// Propagates the source's first decode/read failure.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), minic_trace::ReadError> {
/// use minic_trace::{file, AccessKind, Record};
///
/// let trace = vec![
///     Record::checkpoint(0, minic::CheckpointKind::LoopBegin),
///     Record::checkpoint(0, minic::CheckpointKind::BodyBegin),
///     Record::access(0x400000, 0x1000_0000, AccessKind::Read),
///     Record::checkpoint(0, minic::CheckpointKind::BodyEnd),
/// ];
/// let mut bytes = Vec::new();
/// file::write_to(&mut bytes, &trace).unwrap();
/// let file = file::TraceFile::from_bytes(bytes)?;
/// let analysis = foray::analyze_source(&file)?;
/// assert_eq!(analysis, foray::analyze(&trace));
/// # Ok(())
/// # }
/// ```
pub fn analyze_source<Src: RecordSource>(source: Src) -> Result<Analysis, Src::Error> {
    analyze_source_with(source, AnalyzerConfig::default())
}

/// [`analyze_source`] with an explicit configuration.
///
/// # Errors
///
/// Propagates the source's first decode/read failure.
pub fn analyze_source_with<Src: RecordSource>(
    source: Src,
    config: AnalyzerConfig,
) -> Result<Analysis, Src::Error> {
    let mut analyzer = Analyzer::with_config(config);
    source.stream_into(&mut analyzer)?;
    Ok(analyzer.into_analysis())
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::CheckpointKind::{BodyBegin as BB, BodyEnd as BE, LoopBegin as LB};

    /// The paper's Fig 4(c) trace, verbatim (checkpoint ids 12..17 are the
    /// flat `3*loop + kind` encodings for loops 4 and 5).
    fn figure4_trace() -> Vec<Record> {
        let mut t = Vec::new();
        let acc = |addr: u32| Record::access(0x4002a0, addr, AccessKind::Write);
        t.push(Record::checkpoint(4, LB)); // Checkpoint: 12
        for (body, addrs) in [
            (0, [0x7fff5934u32, 0x7fff5935, 0x7fff5936]),
            (1, [0x7fff599b, 0x7fff599c, 0x7fff599d]),
        ] {
            let _ = body;
            t.push(Record::checkpoint(4, BB)); // 13
            t.push(Record::checkpoint(5, LB)); // 15
            for a in addrs {
                t.push(Record::checkpoint(5, BB)); // 16
                t.push(acc(a));
                t.push(Record::checkpoint(5, BE)); // 14
            }
            t.push(Record::checkpoint(4, BE)); // 17
        }
        t
    }

    #[test]
    fn figure4_end_to_end() {
        let analysis = analyze(&figure4_trace());
        assert_eq!(analysis.refs().len(), 1);
        let r = &analysis.refs()[0];
        assert_eq!(r.instr, InstrAddr(0x4002a0));
        assert_eq!(r.state.constant(), 2147440948);
        assert_eq!(r.state.coefficients(), &[Some(1), Some(103)]);
        assert!(r.state.is_full());
        assert_eq!(r.writes, 6);
        assert_eq!(r.reads, 0);
        assert_eq!(r.class, RefClass::User);
        assert_eq!(analysis.accesses(), 6);
    }

    #[test]
    fn all_lookup_strategies_agree() {
        let trace = figure4_trace();
        let dense = analyze_with(&trace, AnalyzerConfig::default());
        for lookup in [LookupStrategy::Hash, LookupStrategy::Linear] {
            let other =
                analyze_with(&trace, AnalyzerConfig { lookup, ..AnalyzerConfig::default() });
            assert_eq!(dense, other, "{lookup:?} diverged from Dense");
        }
    }

    /// Unaligned and out-of-range instruction addresses can never use a
    /// dense slot; the spill hash must keep them exactly equivalent to the
    /// plain hash strategy.
    #[test]
    fn dense_spill_handles_arbitrary_instruction_addresses() {
        let mut t = vec![Record::checkpoint(0, LB)];
        for i in 0..6u32 {
            t.push(Record::checkpoint(0, BB));
            for instr in [0x400001u32, 0x400002, 0x1234_5677, u32::MAX, 0] {
                t.push(Record::access(instr, 0x1000 + 8 * i, AccessKind::Read));
            }
            t.push(Record::checkpoint(0, BE));
        }
        let dense = analyze_with(&t, AnalyzerConfig::default());
        let hash = analyze_with(
            &t,
            AnalyzerConfig { lookup: LookupStrategy::Hash, ..AnalyzerConfig::default() },
        );
        assert_eq!(dense, hash);
        assert_eq!(dense.refs().len(), 5);
    }

    /// One instruction alternating between two loop-tree contexts per
    /// iteration exercises the dense slot's promote/demote path on every
    /// other access.
    #[test]
    fn dense_multi_context_promotion_stays_identical() {
        let mut t = Vec::new();
        for round in 0..4u32 {
            for outer in [0u32, 1] {
                t.push(Record::checkpoint(outer, LB));
                t.push(Record::checkpoint(outer, BB));
                t.push(Record::checkpoint(9, LB));
                t.push(Record::checkpoint(9, BB));
                t.push(Record::access(0x400010, 0x1000 + 4 * round, AccessKind::Read));
                t.push(Record::checkpoint(9, BE));
                t.push(Record::checkpoint(outer, BE));
            }
        }
        let dense = analyze_with(&t, AnalyzerConfig::default());
        let hash = analyze_with(
            &t,
            AnalyzerConfig { lookup: LookupStrategy::Hash, ..AnalyzerConfig::default() },
        );
        assert_eq!(dense, hash);
        assert_eq!(dense.refs().len(), 2, "one reference per inlined context");
    }

    #[test]
    fn same_instr_in_two_contexts_is_two_references() {
        // Loop 9 under loop 0 and under loop 1; instr 0x400010 inside.
        let mut t = Vec::new();
        for outer in [0u32, 1] {
            t.push(Record::checkpoint(outer, LB));
            t.push(Record::checkpoint(outer, BB));
            t.push(Record::checkpoint(9, LB));
            for i in 0..3u32 {
                t.push(Record::checkpoint(9, BB));
                t.push(Record::access(0x400010, 0x1000 + 4 * i, AccessKind::Read));
                t.push(Record::checkpoint(9, BE));
            }
            t.push(Record::checkpoint(outer, BE));
        }
        let analysis = analyze(&t);
        assert_eq!(analysis.refs().len(), 2, "one reference per inlined context");
        for r in analysis.refs() {
            assert_eq!(r.state.coefficients()[0], Some(4));
        }
    }

    #[test]
    fn library_and_frame_classification() {
        let t = vec![
            Record::access(layout::LIB_CODE_BASE, 0x4000_0000, AccessKind::Write),
            Record::access(layout::FRAME_CODE_BASE, 0x7fff_0000, AccessKind::Write),
            Record::access(layout::CODE_BASE, 0x1000_0000, AccessKind::Read),
        ];
        let analysis = analyze(&t);
        let classes: Vec<RefClass> = analysis.refs().iter().map(|r| r.class).collect();
        assert_eq!(classes, vec![RefClass::Library, RefClass::Frame, RefClass::User]);
        assert_eq!(analysis.refs_of(RefClass::Library).count(), 1);
    }

    #[test]
    fn top_level_accesses_attach_to_root() {
        let t = vec![Record::access(0x400000, 0x1000_0000, AccessKind::Read)];
        let analysis = analyze(&t);
        assert_eq!(analysis.refs()[0].state.nest_level(), 0);
        assert!(!analysis.refs()[0].state.has_iterator());
    }
}
