//! Batch execution: fan many full FORAY-GEN jobs across a shared thread
//! pool.
//!
//! The sharded analyzer ([`crate::shard`]) parallelizes *within* one trace;
//! this module parallelizes *across* programs — the shape of the bench
//! suite (workload corpus × tables) and of design-space exploration sweeps.
//! Jobs are pulled from a shared atomic cursor by `N` scoped worker
//! threads, and results are returned **in job order** regardless of which
//! worker finished first, so batch output is deterministic.

use crate::analyzer::{analyze_source_with, Analysis, AnalyzerConfig};
use crate::pipeline::{ForayGen, ForayGenOutput, PipelineError};
use crate::shard::resolve_shards;
use minic_trace::{ReadError, TraceFile};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// One unit of batch work: a source program plus the pipeline to run it
/// through (filter thresholds, inputs, analyzer configuration — including
/// sharded analysis, if the pipeline asks for it).
#[derive(Debug, Clone, Default)]
pub struct BatchJob {
    /// Label for reports (workload name, file name, ...).
    pub name: String,
    /// mini-C source text.
    pub source: String,
    /// The configured pipeline to run the source through.
    pub pipeline: ForayGen,
}

impl BatchJob {
    /// Creates a job with a default pipeline.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> BatchJob {
        BatchJob { name: name.into(), source: source.into(), pipeline: ForayGen::new() }
    }

    /// Replaces the pipeline configuration.
    pub fn pipeline(mut self, pipeline: ForayGen) -> BatchJob {
        self.pipeline = pipeline;
        self
    }
}

/// Applies `f` to every item across `workers` threads (`0` = auto-detect,
/// see [`resolve_shards`]), returning one result per item **in item
/// order** regardless of which worker finished first.
///
/// This is the shared pool under [`analyze_batch`] and
/// `foray_spm`'s design-space exploration: items are pulled from an atomic
/// cursor by scoped workers, so any `Fn(index, &item)` fan-out inherits the
/// same determinism guarantee. `f` receives the item's index alongside the
/// item so callers can label work without capturing extra state.
///
/// # Examples
///
/// ```
/// let squares = foray::map_ordered(&[1u32, 2, 3, 4], 2, |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn map_ordered<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = resolve_shards(workers).min(items.len());
    if workers == 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                if tx.send((i, f(i, item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, result) in rx {
            slots[i] = Some(result);
        }
    });
    slots.into_iter().map(|s| s.expect("every item produces exactly one result")).collect()
}

/// Runs every job across `workers` threads (`0` = auto-detect, see
/// [`resolve_shards`]), returning one result per job **in job order**.
///
/// # Examples
///
/// ```
/// use foray::BatchJob;
///
/// let jobs = vec![
///     BatchJob::new("a", "int x[64]; void main() { int i; for (i = 0; i < 64; i++) { x[i] = i; } }"),
///     BatchJob::new("b", "void main() {"), // does not compile
/// ];
/// let results = foray::analyze_batch(&jobs, 2);
/// assert!(results[0].is_ok());
/// assert!(matches!(results[1], Err(foray::PipelineError::Frontend(_))));
/// ```
pub fn analyze_batch(
    jobs: &[BatchJob],
    workers: usize,
) -> Vec<Result<ForayGenOutput, PipelineError>> {
    map_ordered(jobs, workers, |_, job| job.pipeline.run_source(&job.source))
}

/// Analyzes many pre-recorded `foray-trace/v1` files across `workers`
/// threads (`0` = auto-detect), one result per path **in path order**.
///
/// This is the batch companion of [`crate::analyze_source`]: each file is
/// opened with [`minic_trace::TraceFile::open`] and analyzed with a
/// sequential analyzer under `config` (parallelism comes from the fan-out
/// across files; set `config.shards` and use
/// [`crate::shard::analyze_sharded_source`] instead to parallelize within
/// one huge trace). Per-file failures stay in their slot.
///
/// # Examples
///
/// ```no_run
/// let paths = ["a.ftrace", "b.ftrace"];
/// let results = foray::analyze_trace_files(&paths, 0, &foray::AnalyzerConfig::default());
/// assert_eq!(results.len(), 2);
/// ```
pub fn analyze_trace_files<P: AsRef<Path> + Sync>(
    paths: &[P],
    workers: usize,
    config: &AnalyzerConfig,
) -> Vec<Result<Analysis, ReadError>> {
    map_ordered(paths, workers, |_, path| {
        let file = TraceFile::open(path)?;
        analyze_source_with(&file, config.clone())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "int a[128]; void main() { int i; for (i = 0; i < 128; i++) { a[i] = i; } }";

    fn jobs(n: usize) -> Vec<BatchJob> {
        (0..n).map(|i| BatchJob::new(format!("job{i}"), GOOD)).collect()
    }

    #[test]
    fn results_arrive_in_job_order() {
        let js = jobs(9);
        let results = analyze_batch(&js, 4);
        assert_eq!(results.len(), 9);
        for r in &results {
            let out = r.as_ref().expect("job runs");
            assert_eq!(out.model.ref_count(), 1);
        }
    }

    #[test]
    fn errors_stay_in_their_slot() {
        let mut js = jobs(4);
        js[2].source = "void main() {".to_owned();
        let results = analyze_batch(&js, 2);
        assert!(results[0].is_ok() && results[1].is_ok() && results[3].is_ok());
        assert!(matches!(results[2], Err(PipelineError::Frontend(_))));
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(analyze_batch(&[], 4).is_empty());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let js = jobs(2);
        let results = analyze_batch(&js, 16);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(Result::is_ok));
    }

    #[test]
    fn map_ordered_is_deterministic_and_ordered() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for workers in [1usize, 2, 5, 0] {
            assert_eq!(map_ordered(&items, workers, |_, &x| x * 3 + 1), expected);
        }
        assert!(map_ordered(&[] as &[u64], 4, |_, &x| x).is_empty());
    }

    #[test]
    fn map_ordered_passes_the_item_index() {
        let items = ["a", "b", "c"];
        let got = map_ordered(&items, 2, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn batch_agrees_with_direct_runs() {
        let js = jobs(3);
        let batch = analyze_batch(&js, 3);
        for (job, res) in js.iter().zip(&batch) {
            let direct = job.pipeline.run_source(&job.source).unwrap();
            let out = res.as_ref().unwrap();
            assert_eq!(out.analysis, direct.analysis);
            assert_eq!(out.code, direct.code);
        }
    }
}
