//! Experiment counters: the raw data behind the paper's Tables I–III.
//!
//! * Table I — program size and the executed-loop kind mix;
//! * Table II — loops/references captured in the FORAY model, and how many
//!   of them a purely static analyzer also finds (the complement is the
//!   paper's "% not in FORAY form in the original program");
//! * Table III — the three-way split of references / accesses / footprint
//!   between the FORAY model, system-library code, and everything else.

use crate::analyzer::{Analysis, RefClass};
use crate::fasthash::FastMap;
use crate::footprint::Footprint;
use crate::model::ForayModel;
use minic::{LoopId, Program, Stmt};
use std::collections::{HashMap, HashSet};

/// Loop kind, for Table I's breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopKind {
    /// `for` loop.
    For,
    /// `while` loop.
    While,
    /// `do … while` loop.
    Do,
}

/// Maps every static loop id to its kind.
pub fn loop_kinds(prog: &Program) -> HashMap<LoopId, LoopKind> {
    let mut kinds = HashMap::new();
    prog.visit_stmts(&mut |s| match s {
        Stmt::For { id, .. } => {
            kinds.insert(*id, LoopKind::For);
        }
        Stmt::While { id, .. } => {
            kinds.insert(*id, LoopKind::While);
        }
        Stmt::DoWhile { id, .. } => {
            kinds.insert(*id, LoopKind::Do);
        }
        _ => {}
    });
    kinds
}

/// Table I row: benchmark complexity and executed-loop distribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopBreakdown {
    /// Physical source lines.
    pub lines: usize,
    /// Distinct static loops executed during profiling.
    pub total_loops: usize,
    /// ... of which `for` loops.
    pub for_loops: usize,
    /// ... of which `while` loops.
    pub while_loops: usize,
    /// ... of which `do` loops.
    pub do_loops: usize,
}

impl LoopBreakdown {
    /// Builds the row from the source text, program, and analysis.
    pub fn compute(src: &str, prog: &Program, analysis: &Analysis) -> LoopBreakdown {
        let kinds = loop_kinds(prog);
        let executed = analysis.tree().distinct_loop_ids();
        let mut row = LoopBreakdown {
            lines: minic::count_lines(src).total,
            total_loops: executed.len(),
            ..LoopBreakdown::default()
        };
        for id in executed {
            match kinds.get(&id) {
                Some(LoopKind::For) => row.for_loops += 1,
                Some(LoopKind::While) => row.while_loops += 1,
                Some(LoopKind::Do) => row.do_loops += 1,
                None => {}
            }
        }
        row
    }

    /// Percentage of executed loops of a kind (0–100).
    pub fn pct(count: usize, total: usize) -> f64 {
        if total == 0 {
            0.0
        } else {
            100.0 * count as f64 / total as f64
        }
    }
}

/// Table III row: memory behaviour split between FORAY model, system
/// library, and other.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryBehavior {
    /// Distinct references overall (user + library + frame, per inlined
    /// context, as the paper counts).
    pub total_refs: u64,
    /// Accesses overall.
    pub total_accesses: u64,
    /// Distinct addresses overall.
    pub total_footprint: u64,
    /// References captured by the FORAY model.
    pub model_refs: u64,
    /// Accesses covered by the model.
    pub model_accesses: u64,
    /// Distinct addresses covered by the model.
    pub model_footprint: u64,
    /// System-library references.
    pub lib_refs: u64,
    /// System-library accesses.
    pub lib_accesses: u64,
    /// System-library footprint.
    pub lib_footprint: u64,
    /// Footprint of everything else (non-model user + frame traffic).
    pub other_footprint: u64,
}

impl MemoryBehavior {
    /// Computes the row. Footprints require the analyzer to have tracked
    /// per-reference address sets (the default).
    pub fn compute(analysis: &Analysis, model: &ForayModel) -> MemoryBehavior {
        let model_keys: HashSet<(minic_trace::InstrAddr, crate::looptree::NodeId)> =
            model.refs.iter().map(|r| (r.instr, r.node)).collect();
        let mut row = MemoryBehavior {
            total_refs: analysis.refs().len() as u64,
            total_accesses: analysis.accesses(),
            model_refs: model.refs.len() as u64,
            model_accesses: model.covered_accesses(),
            ..MemoryBehavior::default()
        };
        // Footprints union as bitmap-page maps (see [`Footprint`]); the
        // counts pop out as per-page popcounts.
        let mut total_fp: FastMap<u32, u64> = FastMap::default();
        let mut model_fp: FastMap<u32, u64> = FastMap::default();
        let mut lib_fp: FastMap<u32, u64> = FastMap::default();
        let mut other_fp: FastMap<u32, u64> = FastMap::default();
        for r in analysis.refs() {
            let execs = r.state.executions();
            if r.class == RefClass::Library {
                row.lib_refs += 1;
                row.lib_accesses += execs;
            }
            if let Some(addrs) = r.state.footprint_addrs() {
                addrs.union_into(&mut total_fp);
                if model_keys.contains(&(r.instr, r.node)) {
                    addrs.union_into(&mut model_fp);
                } else if r.class == RefClass::Library {
                    addrs.union_into(&mut lib_fp);
                } else {
                    addrs.union_into(&mut other_fp);
                }
            }
        }
        row.total_footprint = Footprint::union_len(&total_fp);
        row.model_footprint = Footprint::union_len(&model_fp);
        row.lib_footprint = Footprint::union_len(&lib_fp);
        row.other_footprint = Footprint::union_len(&other_fp);
        row
    }

    /// Percentage helper (0–100).
    pub fn pct(part: u64, whole: u64) -> f64 {
        if whole == 0 {
            0.0
        } else {
            100.0 * part as f64 / whole as f64
        }
    }
}

/// Table II row: dynamic (FORAY-GEN) capture vs static reach.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureComparison {
    /// Loop nodes in the FORAY model (the paper's inlined counting).
    pub model_loops: u64,
    /// References in the FORAY model.
    pub model_refs: u64,
    /// Of the model loops, how many a static analyzer also proves to be in
    /// FORAY form (by static loop id).
    pub static_loops: u64,
    /// Of the model references, how many are statically analyzable.
    pub static_refs: u64,
}

impl CaptureComparison {
    /// Builds the comparison given the statically-analyzable loop ids and
    /// site-derived instruction addresses (see `foray-baseline`).
    pub fn compute(
        model: &ForayModel,
        static_loop_ids: &HashSet<LoopId>,
        static_instrs: &HashSet<minic_trace::InstrAddr>,
    ) -> CaptureComparison {
        let mut c = CaptureComparison {
            model_loops: model.loop_count() as u64,
            model_refs: model.ref_count() as u64,
            ..CaptureComparison::default()
        };
        for l in model.loops.values() {
            if static_loop_ids.contains(&l.loop_id) {
                c.static_loops += 1;
            }
        }
        for r in &model.refs {
            // A model reference is statically reached only if its whole
            // enclosing nest is statically analyzable too.
            if static_instrs.contains(&r.instr)
                && r.loop_path.iter().all(|l| static_loop_ids.contains(l))
            {
                c.static_refs += 1;
            }
        }
        c
    }

    /// "% of loops not in FORAY form in the original program".
    pub fn pct_loops_not_static(&self) -> f64 {
        MemoryBehavior::pct(self.model_loops - self.static_loops, self.model_loops)
    }

    /// "% of references not in FORAY form in the original program".
    pub fn pct_refs_not_static(&self) -> f64 {
        MemoryBehavior::pct(self.model_refs - self.static_refs, self.model_refs)
    }

    /// The headline multiplier: dynamically analyzable references vs
    /// statically analyzable ones (∞-free: returns `None` when no reference
    /// is statically analyzable).
    pub fn gain(&self) -> Option<f64> {
        if self.static_refs == 0 {
            None
        } else {
            Some(self.model_refs as f64 / self.static_refs as f64)
        }
    }
}

/// Renders an aligned text table: header row, dashed separator, then data
/// rows — first column left-aligned, the rest right-aligned.
///
/// The one table style of the whole suite: `foray-bench`'s paper tables
/// and `foray_spm`'s design-space-exploration reports both render through
/// it.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let pad = widths[i].saturating_sub(cell.len());
            if i == 0 {
                out.push_str(cell);
                out.push_str(&" ".repeat(pad));
            } else {
                out.push_str(&" ".repeat(pad));
                out.push_str(cell);
            }
        }
        out.push('\n');
    };
    line(&mut out, &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use crate::model::FilterConfig;
    use minic::CheckpointKind::{BodyBegin as BB, BodyEnd as BE, LoopBegin as LB};
    use minic_trace::{layout, AccessKind, InstrAddr, Record};

    #[test]
    fn loop_kinds_from_source() {
        let mut prog = minic::parse(
            "void main() { int i; while (0) { } do { } while (0);
               for (i = 0; i < 3; i++) { } }",
        )
        .unwrap();
        minic::check(&mut prog).unwrap();
        let kinds = loop_kinds(&prog);
        assert_eq!(kinds[&LoopId(0)], LoopKind::While);
        assert_eq!(kinds[&LoopId(1)], LoopKind::Do);
        assert_eq!(kinds[&LoopId(2)], LoopKind::For);
    }

    #[test]
    fn loop_breakdown_counts_executed_only() {
        let src = "void main() { int i; if (0) { while (1) { } }
                    for (i = 0; i < 2; i++) { } }";
        let mut prog = minic::parse(src).unwrap();
        minic::check(&mut prog).unwrap();
        // Executed trace touches only the for loop (id 1).
        let t =
            vec![Record::checkpoint(1, LB), Record::checkpoint(1, BB), Record::checkpoint(1, BE)];
        let analysis = analyze(&t);
        let row = LoopBreakdown::compute(src, &prog, &analysis);
        assert_eq!(row.total_loops, 1);
        assert_eq!(row.for_loops, 1);
        assert_eq!(row.while_loops, 0);
        assert_eq!(row.lines, 2);
    }

    fn mixed_trace() -> Vec<Record> {
        let mut t = vec![Record::checkpoint(0, LB)];
        for i in 0..32u32 {
            t.push(Record::checkpoint(0, BB));
            // Model-worthy strided user access.
            t.push(Record::access(layout::CODE_BASE, 0x1000_0000 + 4 * i, AccessKind::Read));
            // Library access, cycling over 4 addresses.
            t.push(Record::access(
                layout::LIB_CODE_BASE,
                layout::LIB_DATA_BASE + 4 * (i % 4),
                AccessKind::Write,
            ));
            // Narrow user access (always the same address): filtered out.
            t.push(Record::access(layout::CODE_BASE + 4, 0x1100_0000, AccessKind::Write));
            t.push(Record::checkpoint(0, BE));
        }
        t
    }

    #[test]
    fn memory_behavior_three_way_split() {
        let analysis = analyze(&mixed_trace());
        let model = ForayModel::extract(&analysis, &FilterConfig::default());
        let row = MemoryBehavior::compute(&analysis, &model);
        assert_eq!(row.total_refs, 3);
        assert_eq!(row.total_accesses, 96);
        assert_eq!(row.model_refs, 1);
        assert_eq!(row.model_accesses, 32);
        assert_eq!(row.lib_refs, 1);
        assert_eq!(row.lib_accesses, 32);
        assert_eq!(row.total_footprint, 32 + 4 + 1);
        assert_eq!(row.model_footprint, 32);
        assert_eq!(row.lib_footprint, 4);
        assert_eq!(row.other_footprint, 1);
        assert!((MemoryBehavior::pct(row.model_accesses, row.total_accesses) - 33.33).abs() < 0.1);
    }

    #[test]
    fn capture_comparison_and_gain() {
        let analysis = analyze(&mixed_trace());
        let model = ForayModel::extract(&analysis, &FilterConfig::default());
        // Static analysis found nothing → gain undefined, 100% not static.
        let c = CaptureComparison::compute(&model, &HashSet::new(), &HashSet::new());
        assert_eq!(c.model_refs, 1);
        assert_eq!(c.static_refs, 0);
        assert_eq!(c.pct_refs_not_static(), 100.0);
        assert_eq!(c.gain(), None);
        // Static analysis finds the loop and the site → gain 1.0.
        let loops: HashSet<LoopId> = [LoopId(0)].into_iter().collect();
        let instrs: HashSet<InstrAddr> = [InstrAddr(layout::CODE_BASE)].into_iter().collect();
        let c2 = CaptureComparison::compute(&model, &loops, &instrs);
        assert_eq!(c2.static_refs, 1);
        assert_eq!(c2.gain(), Some(1.0));
        assert_eq!(c2.pct_loops_not_static(), 0.0);
    }

    #[test]
    fn pct_helpers() {
        assert_eq!(LoopBreakdown::pct(1, 4), 25.0);
        assert_eq!(LoopBreakdown::pct(0, 0), 0.0);
        assert_eq!(MemoryBehavior::pct(2, 8), 25.0);
        assert_eq!(MemoryBehavior::pct(2, 0), 0.0);
    }
}
