//! Loop-tree reconstruction from the checkpoint stream — Algorithm 2 of the
//! paper.
//!
//! The trace is consumed strictly in order; each checkpoint moves a *current
//! node* pointer through a tree of loop nodes:
//!
//! * **loop-begin** descends into (creating if necessary) the child of the
//!   current node for that loop id, and starts a new *entry* whose iteration
//!   counter is reset;
//! * **body-begin** pops the pointer up to the named ancestor and increments
//!   its iteration counter;
//! * **body-end** pops the pointer up to the named ancestor.
//!
//! Because descent happens wherever the pointer currently is, a function
//! called from two different places grows two separate subtrees for the same
//! static loop — the paper's "functions appear to be inlined" property
//! (Section 4), which also powers the inlining hints.

use minic::{CheckpointKind, LoopId};

/// Index of a node in the [`LoopTree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// The root node (not a loop; holds top-level references).
pub const ROOT: NodeId = NodeId(0);

/// One loop node (or the root) of the reconstructed structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Parent node; `None` for the root.
    pub parent: Option<NodeId>,
    /// The static loop this node instantiates; `None` for the root.
    pub loop_id: Option<LoopId>,
    /// Loop nesting depth (root = 0).
    pub depth: u32,
    /// Current iteration counter (−1 between loop-begin and the first
    /// body-begin of an entry).
    pub iter: i64,
    /// Number of times the loop was entered.
    pub entries: u64,
    /// Total body iterations across all entries.
    pub total_iters: u64,
    /// Largest per-entry iteration count observed.
    pub max_trip: u64,
    // Distinct child loop ids per node are few (sibling loops in one
    // body), and `child()` runs on every checkpoint — a linear scan over
    // an inline vector beats hashing. Insertion order is deterministic
    // (first instantiation order), so derived equality stays meaningful.
    children: Vec<(LoopId, NodeId)>,
}

impl Node {
    fn new(parent: Option<NodeId>, loop_id: Option<LoopId>, depth: u32) -> Self {
        Node {
            parent,
            loop_id,
            depth,
            iter: -1,
            entries: 0,
            total_iters: 0,
            max_trip: 0,
            children: Vec::new(),
        }
    }

    /// Child node for a loop id, if present.
    pub fn child(&self, id: LoopId) -> Option<NodeId> {
        self.children.iter().find(|(k, _)| *k == id).map(|(_, v)| *v)
    }

    /// Iterates over `(loop id, node)` children in first-instantiation
    /// order.
    pub fn children(&self) -> impl Iterator<Item = (LoopId, NodeId)> + '_ {
        self.children.iter().copied()
    }

    /// Mean iterations per entry (0 if never entered).
    pub fn mean_trip(&self) -> f64 {
        if self.entries == 0 {
            0.0
        } else {
            self.total_iters as f64 / self.entries as f64
        }
    }
}

/// The reconstructed loop tree and the walking pointer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopTree {
    nodes: Vec<Node>,
    current: NodeId,
}

impl Default for LoopTree {
    fn default() -> Self {
        LoopTree::new()
    }
}

impl LoopTree {
    /// Creates a tree containing only the root.
    pub fn new() -> Self {
        LoopTree { nodes: vec![Node::new(None, None, 0)], current: ROOT }
    }

    /// The node the walker is currently at (where the next memory access
    /// will be attributed).
    pub fn current(&self) -> NodeId {
        self.current
    }

    /// Borrows a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this tree.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Number of nodes, root included.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree holds only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// All nodes in creation order (root first).
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Current values of the loop iterators enclosing `id`, **innermost
    /// first** (the paper's `IT1..ITN` for a reference attached at `id`).
    pub fn iterators(&self, id: NodeId) -> Vec<i64> {
        let mut out = Vec::new();
        let mut cur = Some(id);
        while let Some(nid) = cur {
            let node = self.node(nid);
            if node.loop_id.is_some() {
                out.push(node.iter);
            }
            cur = node.parent;
        }
        out
    }

    /// The chain of loop ids from `id` up to the root, innermost first.
    pub fn loop_path(&self, id: NodeId) -> Vec<LoopId> {
        let mut out = Vec::new();
        let mut cur = Some(id);
        while let Some(nid) = cur {
            let node = self.node(nid);
            if let Some(l) = node.loop_id {
                out.push(l);
            }
            cur = node.parent;
        }
        out
    }

    /// Nodes on the path from `id` to the root that are loops, innermost
    /// first.
    pub fn node_path(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = Some(id);
        while let Some(nid) = cur {
            let node = self.node(nid);
            if node.loop_id.is_some() {
                out.push(nid);
            }
            cur = node.parent;
        }
        out
    }

    /// Processes one checkpoint (Algorithm 2, step 3).
    ///
    /// Pointer protocol — derived from replaying the paper's Fig. 4(c)
    /// stream against its Fig. 4(d) result:
    ///
    /// * *loop-begin* moves **down** into the loop's node (creating it under
    ///   the current node on first sight) and starts a fresh entry;
    /// * *body-begin* moves down into the loop node if the walker sits at
    ///   its parent (the normal between-iterations position) and bumps the
    ///   iteration counter;
    /// * *body-end* moves **up** to the loop node's parent — so once a loop
    ///   exits, a following sibling loop attaches at the correct level.
    ///
    /// Accesses between body-end and the next body-begin (loop conditions,
    /// `for` steps) therefore attribute to the parent, which matches where
    /// the paper's annotator places its checkpoints.
    pub fn on_checkpoint(&mut self, loop_id: LoopId, kind: CheckpointKind) {
        match kind {
            CheckpointKind::LoopBegin => {
                let child = self.child_or_create(self.current, loop_id);
                let node = &mut self.nodes[child.0 as usize];
                node.iter = -1;
                node.entries += 1;
                self.current = child;
            }
            CheckpointKind::BodyBegin => {
                let target = self.find_for_body(loop_id);
                let node = &mut self.nodes[target.0 as usize];
                node.iter += 1;
                node.total_iters += 1;
                let trip = (node.iter + 1) as u64;
                if trip > node.max_trip {
                    node.max_trip = trip;
                }
                self.current = target;
            }
            CheckpointKind::BodyEnd => {
                // Walk up to the loop node (inclusive), then step to its
                // parent. A body-end for a loop not on the path is ignored.
                let mut cur = Some(self.current);
                while let Some(nid) = cur {
                    if self.node(nid).loop_id == Some(loop_id) {
                        self.current = self.node(nid).parent.unwrap_or(ROOT);
                        return;
                    }
                    cur = self.node(nid).parent;
                }
            }
        }
    }

    /// Applies `runs` consecutive empty body iterations of `loop_id` — the
    /// exact effect of replaying `(BodyBegin; BodyEnd) × runs`, which is
    /// how the sharded streaming router delivers iteration spans a shard
    /// had no accesses in ([`minic_trace::BlockItem::IterRun`]).
    ///
    /// The common case is O(1): after the first `BodyBegin` lands on a
    /// node whose *parent* is not an instance of the same loop, every
    /// remaining pair provably re-targets that same node (`BodyEnd` parks
    /// the walker at the parent, whose unique `child(loop_id)` the next
    /// `BodyBegin` re-finds), so the remaining iterations collapse into
    /// one counter update. When the parent *is* the same loop — the
    /// self-nested chains recursion produces — consecutive pairs climb the
    /// chain, so the pairs are replayed one by one to stay byte-identical
    /// to the sequential walk.
    pub fn on_body_run(&mut self, loop_id: LoopId, runs: u32) {
        let mut left = runs;
        while left > 0 {
            self.on_checkpoint(loop_id, CheckpointKind::BodyBegin);
            let target = self.current;
            let fast = match self.node(target).parent {
                None => true,
                Some(p) => self.node(p).loop_id != Some(loop_id),
            };
            if fast && left > 1 {
                let extra = u64::from(left - 1);
                let node = &mut self.nodes[target.0 as usize];
                node.iter += extra as i64;
                node.total_iters += extra;
                let trip = (node.iter + 1) as u64;
                if trip > node.max_trip {
                    node.max_trip = trip;
                }
                left = 1;
            }
            self.on_checkpoint(loop_id, CheckpointKind::BodyEnd);
            left -= 1;
        }
    }

    fn child_or_create(&mut self, parent: NodeId, loop_id: LoopId) -> NodeId {
        match self.node(parent).child(loop_id) {
            Some(c) => c,
            None => {
                let id = NodeId(self.nodes.len() as u32);
                let depth = self.node(parent).depth + 1;
                self.nodes.push(Node::new(Some(parent), Some(loop_id), depth));
                self.nodes[parent.0 as usize].children.push((loop_id, id));
                id
            }
        }
    }

    /// Locates the node a body-begin refers to: the current node itself, a
    /// child of the current node, or (for robustness against malformed
    /// streams) the nearest ancestor satisfying either — otherwise a fresh
    /// child of the current node.
    fn find_for_body(&mut self, loop_id: LoopId) -> NodeId {
        let mut cur = Some(self.current);
        while let Some(nid) = cur {
            let node = self.node(nid);
            if node.loop_id == Some(loop_id) {
                return nid;
            }
            if let Some(c) = node.child(loop_id) {
                return c;
            }
            cur = node.parent;
        }
        let id = self.child_or_create(self.current, loop_id);
        self.nodes[id.0 as usize].entries += 1;
        id
    }

    /// Distinct static loop ids instantiated anywhere in the tree.
    pub fn distinct_loop_ids(&self) -> Vec<LoopId> {
        let mut ids: Vec<LoopId> = self.nodes.iter().filter_map(|n| n.loop_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Renders the tree as indented text, one line per loop node with its
    /// entry/iteration statistics — a debugging view of Algorithm 2's
    /// output.
    ///
    /// ```text
    /// root
    ///   L0 entries=1 trips<=2 total=2
    ///     L1 entries=2 trips<=3 total=6
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(ROOT, 0, &mut out);
        out
    }

    fn render_node(&self, id: NodeId, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        for _ in 0..depth {
            out.push_str("  ");
        }
        let node = self.node(id);
        match node.loop_id {
            None => out.push_str("root"),
            Some(l) => {
                let _ = write!(
                    out,
                    "{l} entries={} trips<={} total={}",
                    node.entries, node.max_trip, node.total_iters
                );
            }
        }
        out.push('\n');
        let mut kids: Vec<(LoopId, NodeId)> = node.children().collect();
        kids.sort_unstable();
        for (_, child) in kids {
            self.render_node(child, depth + 1, out);
        }
    }

    /// Loop ids that appear at more than one tree position — the raw signal
    /// behind the paper's inlining hints.
    pub fn multi_context_loops(&self) -> Vec<(LoopId, usize)> {
        let mut counts: std::collections::HashMap<LoopId, usize> = std::collections::HashMap::new();
        for n in &self.nodes {
            if let Some(l) = n.loop_id {
                *counts.entry(l).or_default() += 1;
            }
        }
        let mut out: Vec<(LoopId, usize)> = counts.into_iter().filter(|(_, c)| *c > 1).collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use CheckpointKind::{BodyBegin as BB, BodyEnd as BE, LoopBegin as LB};

    fn feed(tree: &mut LoopTree, events: &[(u32, CheckpointKind)]) {
        for (id, kind) in events {
            tree.on_checkpoint(LoopId(*id), *kind);
        }
    }

    #[test]
    fn figure4_structure() {
        // The checkpoint stream of the paper's Fig 4(c): while loop (id 4 in
        // their numbering; we use 0) with 2 iterations, each entering the
        // for loop (id 1) for 3 iterations.
        let mut tree = LoopTree::new();
        for _ in 0..1 {
            feed(&mut tree, &[(0, LB)]);
            for _ in 0..2 {
                feed(&mut tree, &[(0, BB), (1, LB)]);
                for _ in 0..3 {
                    feed(&mut tree, &[(1, BB), (1, BE)]);
                }
                feed(&mut tree, &[(0, BE)]);
            }
        }
        assert_eq!(tree.len(), 3); // root + while + for
        let while_node = tree.node(ROOT).child(LoopId(0)).unwrap();
        let for_node = tree.node(while_node).child(LoopId(1)).unwrap();
        assert_eq!(tree.node(while_node).entries, 1);
        assert_eq!(tree.node(while_node).max_trip, 2);
        assert_eq!(tree.node(for_node).entries, 2);
        assert_eq!(tree.node(for_node).max_trip, 3);
        assert_eq!(tree.node(for_node).total_iters, 6);
        assert_eq!(tree.node(for_node).depth, 2);
    }

    #[test]
    fn iterators_innermost_first() {
        let mut tree = LoopTree::new();
        feed(&mut tree, &[(0, LB), (0, BB), (1, LB), (1, BB), (1, BB)]);
        let cur = tree.current();
        // inner iter = 1 (second body), outer iter = 0.
        assert_eq!(tree.iterators(cur), vec![1, 0]);
        assert_eq!(tree.loop_path(cur), vec![LoopId(1), LoopId(0)]);
    }

    #[test]
    fn iterator_resets_on_reentry() {
        let mut tree = LoopTree::new();
        feed(&mut tree, &[(0, LB), (0, BB), (1, LB), (1, BB), (1, BB), (1, BE)]);
        feed(&mut tree, &[(0, BB), (1, LB), (1, BB)]);
        let cur = tree.current();
        assert_eq!(tree.iterators(cur), vec![0, 1]);
    }

    #[test]
    fn same_loop_in_two_contexts_gets_two_nodes() {
        // foo's loop (id 2) runs under loop 0 and loop 1 — two subtrees.
        let mut tree = LoopTree::new();
        feed(
            &mut tree,
            &[
                (0, LB),
                (0, BB),
                (2, LB),
                (2, BB),
                (2, BE),
                (0, BE),
                (1, LB),
                (1, BB),
                (2, LB),
                (2, BB),
                (2, BE),
                (1, BE),
            ],
        );
        assert_eq!(tree.len(), 5); // root, 0, 1, and two instances of 2
        assert_eq!(tree.multi_context_loops(), vec![(LoopId(2), 2)]);
        assert_eq!(tree.distinct_loop_ids(), vec![LoopId(0), LoopId(1), LoopId(2)]);
    }

    #[test]
    fn body_end_pops_from_nested_exit() {
        // Inner loop exits without its own trailing record; outer body-end
        // must pop from the inner node past the outer loop to its parent.
        let mut tree = LoopTree::new();
        feed(&mut tree, &[(0, LB), (0, BB), (1, LB), (1, BB), (0, BE)]);
        assert_eq!(tree.node(tree.current()).loop_id, None, "back at the root");
        // Next iteration descends again; a sibling loop then attaches under
        // loop 0, not under loop 1.
        feed(&mut tree, &[(0, BB), (3, LB)]);
        let n3 = tree.current();
        let parent = tree.node(n3).parent.unwrap();
        assert_eq!(tree.node(parent).loop_id, Some(LoopId(0)));
    }

    #[test]
    fn sibling_loops_attach_at_the_same_level() {
        // After a loop fully exits, the next top-level loop must become a
        // sibling, not a child (regression for the body-end → parent rule).
        let mut tree = LoopTree::new();
        feed(&mut tree, &[(0, LB), (0, BB), (0, BE), (1, LB), (1, BB), (1, BE)]);
        assert!(tree.node(ROOT).child(LoopId(0)).is_some());
        assert!(tree.node(ROOT).child(LoopId(1)).is_some());
        assert_eq!(tree.len(), 3);
    }

    #[test]
    fn reentry_does_not_self_nest() {
        // A loop entered twice in a row re-uses its node (regression: with
        // body-end leaving the walker inside the node, the second entry
        // would nest the loop under itself).
        let mut tree = LoopTree::new();
        for _ in 0..3 {
            feed(&mut tree, &[(0, LB), (0, BB), (0, BE)]);
        }
        assert_eq!(tree.len(), 2);
        let n = tree.node(ROOT).child(LoopId(0)).unwrap();
        assert_eq!(tree.node(n).entries, 3);
    }

    #[test]
    fn malformed_stream_recovers() {
        let mut tree = LoopTree::new();
        // BodyBegin with no prior LoopBegin anywhere on the path.
        feed(&mut tree, &[(7, BB)]);
        assert_eq!(tree.node(tree.current()).loop_id, Some(LoopId(7)));
        assert_eq!(tree.node(tree.current()).iter, 0);
    }

    #[test]
    fn render_shows_structure_and_stats() {
        let mut tree = LoopTree::new();
        feed(&mut tree, &[(0, LB)]);
        for _ in 0..2 {
            feed(&mut tree, &[(0, BB), (1, LB)]);
            for _ in 0..3 {
                feed(&mut tree, &[(1, BB), (1, BE)]);
            }
            feed(&mut tree, &[(0, BE)]);
        }
        let text = tree.render();
        assert_eq!(
            text,
            "root\n  L0 entries=1 trips<=2 total=2\n    L1 entries=2 trips<=3 total=6\n"
        );
    }

    #[test]
    fn deep_nest_paths() {
        let mut tree = LoopTree::new();
        for l in 0..8u32 {
            feed(&mut tree, &[(l, LB), (l, BB)]);
        }
        let cur = tree.current();
        assert_eq!(tree.node(cur).depth, 8);
        assert_eq!(tree.loop_path(cur).len(), 8);
        assert_eq!(tree.iterators(cur), vec![0; 8]);
        // Unwind completely.
        for l in (0..8u32).rev() {
            feed(&mut tree, &[(l, BE)]);
        }
        assert_eq!(tree.current(), ROOT);
    }

    /// `on_body_run(l, n)` must be indistinguishable from replaying the
    /// `(BodyBegin; BodyEnd) × n` pairs one at a time, from any walker
    /// position — including the self-nested same-loop-id chains where
    /// consecutive pairs climb the tree.
    #[test]
    fn body_run_equals_expanded_pairs() {
        // Prefix streams putting the walker in assorted positions: fresh
        // tree, inside a plain nest, between iterations, mid-body, and on
        // a self-nested chain (loop 5 under loop 5 under loop 5).
        let prefixes: &[&[(u32, CheckpointKind)]] = &[
            &[],
            &[(0, LB)],
            &[(0, LB), (0, BB)],
            &[(0, LB), (0, BB), (1, LB), (1, BB), (1, BE)],
            &[(5, LB), (5, BB), (5, LB), (5, BB), (5, LB), (5, BB)],
            &[(5, BB), (5, BB), (5, BE)],
        ];
        for prefix in prefixes {
            for loop_id in [0u32, 1, 5, 9] {
                for runs in [1u32, 2, 3, 7, 100] {
                    let mut bulk = LoopTree::new();
                    feed(&mut bulk, prefix);
                    bulk.on_body_run(LoopId(loop_id), runs);

                    let mut pairs = LoopTree::new();
                    feed(&mut pairs, prefix);
                    for _ in 0..runs {
                        pairs.on_checkpoint(LoopId(loop_id), BB);
                        pairs.on_checkpoint(LoopId(loop_id), BE);
                    }
                    assert_eq!(bulk, pairs, "prefix={prefix:?} loop={loop_id} runs={runs}");
                    assert_eq!(bulk.current(), pairs.current());
                }
            }
        }
    }

    #[test]
    fn body_run_zero_is_a_no_op() {
        let mut tree = LoopTree::new();
        feed(&mut tree, &[(0, LB), (0, BB)]);
        let before = tree.clone();
        tree.on_body_run(LoopId(0), 0);
        assert_eq!(tree, before);
    }

    #[test]
    fn accessors() {
        let mut tree = LoopTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.iterators(ROOT), Vec::<i64>::new());
        feed(&mut tree, &[(0, LB)]);
        assert!(!tree.is_empty());
        assert_eq!(tree.iter().count(), 2);
        // Between loop-begin and the first body-begin the iterator reads -1.
        assert_eq!(tree.iterators(tree.current()), vec![-1]);
        assert_eq!((tree.node(tree.current()).mean_trip() * 10.0) as i64, 0);
    }
}
