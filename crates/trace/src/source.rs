//! The [`RecordSource`] abstraction: anything that can replay a record
//! stream into a [`TraceSink`].
//!
//! [`TraceSink`] is the *push* half of the trace contract (the simulator
//! pushes records during profiling); `RecordSource` is the *pull* half —
//! in-memory slices, zero-copy byte decoders, and on-disk trace files all
//! replay through the same interface, so every consumer built on
//! `TraceSink` (the sequential analyzer, the sharded analyzer, statistics,
//! tees, writers) works identically on any of them.
//!
//! Sources are consumed by value: replaying advances the underlying
//! decoder, and a second replay needs a fresh source (cheap for slices and
//! for [`TraceFile::records`](crate::file::TraceFile::records)).
//!
//! [`FileRecords`](crate::file::FileRecords) is also the *seekable* source:
//! [`TraceFile::records_from_loop`](crate::file::TraceFile::records_from_loop)
//! returns one positioned mid-file by the v2 checkpoint index, so an
//! analysis scoped to one loop nest streams only the trace suffix.

use crate::file::{ReadError, TraceFile};
use crate::record::Record;
use crate::sink::TraceSink;
use std::convert::Infallible;

/// A replayable stream of trace records.
///
/// # Examples
///
/// A slice, raw bytes, and a trace file all drive the same sink:
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use minic_trace::{binary, file, AccessKind, CountingSink, Record, RecordSource};
///
/// let recs = vec![Record::access(0x400000, 0x1000_0000, AccessKind::Read)];
///
/// let mut counter = CountingSink::new();
/// recs.as_slice().stream_into(&mut counter)?; // Error = Infallible
/// assert_eq!(counter.total(), 1);
///
/// let bytes = binary::to_bytes(&recs);
/// let mut counter = CountingSink::new();
/// binary::RecordReader::new(&bytes).stream_into(&mut counter)?;
/// assert_eq!(counter.total(), 1);
///
/// let mut framed = Vec::new();
/// file::write_to(&mut framed, &recs)?;
/// let file = file::TraceFile::from_bytes(framed)?;
/// let mut counter = CountingSink::new();
/// (&file).stream_into(&mut counter)?;
/// assert_eq!(counter.total(), 1);
/// # Ok(())
/// # }
/// ```
pub trait RecordSource {
    /// The replay failure type ([`Infallible`] for in-memory slices).
    type Error;

    /// Replays every record into `sink` in stream order, calling
    /// [`TraceSink::finish`] at the end, and returns the record count.
    ///
    /// # Errors
    ///
    /// Stops at the source's first decode/read failure; records already
    /// replayed stay consumed by the sink.
    fn stream_into<S: TraceSink + ?Sized>(self, sink: &mut S) -> Result<u64, Self::Error>;
}

/// Drains a fallible record iterator into a sink — the shared body of the
/// decoder-backed [`RecordSource`] impls. Public so new sources outside
/// this crate can reuse it.
pub fn drain_iter<E, S>(
    iter: impl Iterator<Item = Result<Record, E>>,
    sink: &mut S,
) -> Result<u64, E>
where
    S: TraceSink + ?Sized,
{
    let mut n = 0u64;
    for rec in iter {
        sink.record(&rec?);
        n += 1;
    }
    sink.finish();
    Ok(n)
}

/// Drains a *fused* fallible iterator through its `fold` — the bulk path
/// for the file-backed sources, whose `fold` overrides decode a whole
/// block per iterator step with the sink inlined, instead of paying a
/// `next()` call per record. Only sound for iterators that yield nothing
/// after their first `Err` (both file readers fuse), since `fold` cannot
/// stop early.
fn drain_fold<E, S>(iter: impl Iterator<Item = Result<Record, E>>, sink: &mut S) -> Result<u64, E>
where
    S: TraceSink + ?Sized,
{
    // `try_fold` cannot be overridden on stable, so the readers override
    // `fold`; switching this to `try_fold` would silently fall back to
    // the per-record `next()` path.
    #[allow(clippy::manual_try_fold)]
    let n = iter.fold(Ok(0u64), |acc: Result<u64, E>, rec| {
        let n = acc?;
        sink.record(&rec?);
        Ok(n + 1)
    })?;
    sink.finish();
    Ok(n)
}

/// The zero-copy in-place byte decoder is a source.
impl RecordSource for crate::binary::RecordReader<'_> {
    type Error = crate::binary::DecodeError;

    fn stream_into<S: TraceSink + ?Sized>(self, sink: &mut S) -> Result<u64, Self::Error> {
        drain_iter(self, sink)
    }
}

/// The constant-memory streaming file reader is a source.
impl<R: std::io::Read> RecordSource for crate::file::TraceReader<R> {
    type Error = ReadError;

    fn stream_into<S: TraceSink + ?Sized>(self, sink: &mut S) -> Result<u64, Self::Error> {
        drain_fold(self, sink)
    }
}

/// A zero-copy walk of an opened trace file is a source.
impl RecordSource for crate::file::FileRecords<'_> {
    type Error = ReadError;

    fn stream_into<S: TraceSink + ?Sized>(self, sink: &mut S) -> Result<u64, Self::Error> {
        drain_fold(self, sink)
    }
}

impl RecordSource for &[Record] {
    type Error = Infallible;

    fn stream_into<S: TraceSink + ?Sized>(self, sink: &mut S) -> Result<u64, Infallible> {
        for rec in self {
            sink.record(rec);
        }
        sink.finish();
        Ok(self.len() as u64)
    }
}

/// Replays [`TraceFile::records`]; the borrow lets one opened file be
/// replayed many times (e.g. sequential and sharded analyses of the same
/// trace).
impl RecordSource for &TraceFile {
    type Error = ReadError;

    fn stream_into<S: TraceSink + ?Sized>(self, sink: &mut S) -> Result<u64, ReadError> {
        self.records().stream_into(sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::RecordReader;
    use crate::file;
    use crate::record::AccessKind;
    use crate::sink::{CountingSink, VecSink};
    use minic::CheckpointKind;

    fn sample() -> Vec<Record> {
        vec![
            Record::checkpoint(0, CheckpointKind::LoopBegin),
            Record::checkpoint(0, CheckpointKind::BodyBegin),
            Record::access(0x400000, 0x10000000, AccessKind::Read),
            Record::checkpoint(0, CheckpointKind::BodyEnd),
        ]
    }

    #[test]
    fn slice_source_replays_in_order() {
        let recs = sample();
        let mut sink = VecSink::new();
        let n = recs.as_slice().stream_into(&mut sink).unwrap();
        assert_eq!(n, 4);
        assert_eq!(sink.into_records(), recs);
    }

    #[test]
    fn decoder_and_file_sources_agree_with_the_slice() {
        let recs = sample();
        let bytes = crate::binary::to_bytes(&recs);
        let mut a = VecSink::new();
        RecordReader::new(&bytes).stream_into(&mut a).unwrap();
        assert_eq!(a.records, recs);

        let mut framed = Vec::new();
        file::write_to(&mut framed, &recs).unwrap();
        let tf = file::TraceFile::from_bytes(framed.clone()).unwrap();
        let mut b = VecSink::new();
        let n = (&tf).stream_into(&mut b).unwrap();
        assert_eq!((n, b.records), (4, recs.clone()));

        let mut c = CountingSink::new();
        file::TraceReader::new(framed.as_slice()).unwrap().stream_into(&mut c).unwrap();
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn errors_propagate_from_the_source() {
        let mut bytes = crate::binary::to_bytes(&sample());
        bytes.push(0xff);
        let mut sink = CountingSink::new();
        let err = RecordReader::new(&bytes).stream_into(&mut sink).unwrap_err();
        assert_eq!(err.offset, (bytes.len() - 1) as u64);
        // Records before the corruption were still delivered.
        assert_eq!(sink.total(), 4);
    }
}
