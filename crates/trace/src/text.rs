//! Paper-compatible text trace format.
//!
//! Mirrors Fig. 4(c) of the paper:
//!
//! ```text
//! Checkpoint: 12
//! Instr: 4002a0 addr: 7fff5934 wr
//! ```
//!
//! Checkpoint numbers use the flat encoding of
//! [`minic::checkpoint_number`] (`3*loop + kind`), so the format is
//! self-describing and needs no side table.

use crate::record::{Access, AccessKind, InstrAddr, MemAddr, Record};
use crate::sink::TraceSink;
use minic::{checkpoint_from_number, checkpoint_number};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Formats one record as a text line (without trailing newline).
pub fn format_record(rec: &Record) -> String {
    match rec {
        Record::Checkpoint { loop_id, kind } => {
            format!("Checkpoint: {}", checkpoint_number(*loop_id, *kind))
        }
        Record::Access(a) => {
            format!("Instr: {:x} addr: {:x} {}", a.instr, a.addr, a.kind.code())
        }
    }
}

/// Error parsing a text trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: u64,
    /// Description.
    pub msg: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseTraceError {}

/// Parses one text line into a record. Blank lines yield `Ok(None)`.
pub fn parse_line(line: &str, lineno: u64) -> Result<Option<Record>, ParseTraceError> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(None);
    }
    let err = |msg: String| ParseTraceError { line: lineno, msg };
    if let Some(rest) = line.strip_prefix("Checkpoint:") {
        let n: u32 = rest
            .trim()
            .parse()
            .map_err(|_| err(format!("bad checkpoint number `{}`", rest.trim())))?;
        let (loop_id, kind) = checkpoint_from_number(n);
        return Ok(Some(Record::Checkpoint { loop_id, kind }));
    }
    if let Some(rest) = line.strip_prefix("Instr:") {
        let mut parts = rest.split_whitespace();
        let instr = parts.next().ok_or_else(|| err("missing instr address".into()))?;
        let addr_kw = parts.next().ok_or_else(|| err("missing `addr:`".into()))?;
        if addr_kw != "addr:" {
            return Err(err(format!("expected `addr:`, found `{addr_kw}`")));
        }
        let addr = parts.next().ok_or_else(|| err("missing access address".into()))?;
        let rw = parts.next().ok_or_else(|| err("missing rd/wr flag".into()))?;
        let instr = u32::from_str_radix(instr, 16)
            .map_err(|_| err(format!("bad instr address `{instr}`")))?;
        let addr = u32::from_str_radix(addr, 16)
            .map_err(|_| err(format!("bad access address `{addr}`")))?;
        let kind = match rw {
            "rd" => AccessKind::Read,
            "wr" => AccessKind::Write,
            other => return Err(err(format!("bad rd/wr flag `{other}`"))),
        };
        return Ok(Some(Record::Access(Access {
            instr: InstrAddr(instr),
            addr: MemAddr(addr),
            kind,
        })));
    }
    Err(err(format!("unrecognized line `{line}`")))
}

/// Writes records as text lines to any [`Write`] (a `&mut` reference works
/// too, so the writer can be reused afterwards).
#[derive(Debug)]
pub struct TextWriter<W: Write> {
    out: W,
    error: Option<io::Error>,
}

impl<W: Write> TextWriter<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        TextWriter { out, error: None }
    }

    /// Returns the first I/O error encountered while writing, if any.
    /// Sinks cannot propagate errors through [`TraceSink::record`], so
    /// failures are latched here.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> TraceSink for TextWriter<W> {
    fn record(&mut self, rec: &Record) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.out, "{}", format_record(rec)) {
            self.error = Some(e);
        }
    }

    fn finish(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// Renders a full trace to a string.
pub fn to_text(records: &[Record]) -> String {
    let mut s = String::new();
    for r in records {
        s.push_str(&format_record(r));
        s.push('\n');
    }
    s
}

/// Parses a full text trace.
///
/// # Errors
///
/// Returns the first malformed line.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), minic_trace::ParseTraceError> {
/// let recs = minic_trace::text::from_text("Checkpoint: 12\nInstr: 4002a0 addr: 7fff5934 wr\n")?;
/// assert_eq!(recs.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn from_text(text: &str) -> Result<Vec<Record>, ParseTraceError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if let Some(rec) = parse_line(line, i as u64 + 1)? {
            out.push(rec);
        }
    }
    Ok(out)
}

/// Streams records out of a buffered reader, parsing lazily.
#[derive(Debug)]
pub struct TextReader<R: BufRead> {
    input: R,
    lineno: u64,
    buf: String,
}

impl<R: BufRead> TextReader<R> {
    /// Wraps a buffered reader.
    pub fn new(input: R) -> Self {
        TextReader { input, lineno: 0, buf: String::new() }
    }
}

impl<R: BufRead> Iterator for TextReader<R> {
    type Item = Result<Record, ParseTraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            self.lineno += 1;
            match self.input.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => match parse_line(&self.buf, self.lineno) {
                    Ok(Some(rec)) => return Some(Ok(rec)),
                    Ok(None) => continue,
                    Err(e) => return Some(Err(e)),
                },
                Err(e) => {
                    return Some(Err(ParseTraceError {
                        line: self.lineno,
                        msg: format!("i/o error: {e}"),
                    }));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::CheckpointKind;

    fn sample() -> Vec<Record> {
        vec![
            Record::checkpoint(4, CheckpointKind::LoopBegin),
            Record::checkpoint(4, CheckpointKind::BodyBegin),
            Record::access(0x4002a0, 0x7fff5934, AccessKind::Write),
            Record::access(0x4002a4, 0x10000010, AccessKind::Read),
            Record::checkpoint(4, CheckpointKind::BodyEnd),
        ]
    }

    #[test]
    fn matches_paper_format() {
        let rec = Record::access(0x4002a0, 0x7fff5934, AccessKind::Write);
        assert_eq!(format_record(&rec), "Instr: 4002a0 addr: 7fff5934 wr");
        // Loop 4, LoopBegin → 3*4+0 = 12, matching Fig 4's "Checkpoint: 12".
        let rec = Record::checkpoint(4, CheckpointKind::LoopBegin);
        assert_eq!(format_record(&rec), "Checkpoint: 12");
    }

    #[test]
    fn round_trip() {
        let recs = sample();
        let text = to_text(&recs);
        assert_eq!(from_text(&text).unwrap(), recs);
    }

    #[test]
    fn streaming_reader_round_trip() {
        let recs = sample();
        let text = to_text(&recs);
        let reader = TextReader::new(text.as_bytes());
        let parsed: Result<Vec<_>, _> = reader.collect();
        assert_eq!(parsed.unwrap(), recs);
    }

    #[test]
    fn writer_sink_round_trip() {
        let mut buf = Vec::new();
        {
            let mut w = TextWriter::new(&mut buf);
            for r in sample() {
                w.record(&r);
            }
            w.finish();
            assert!(w.io_error().is_none());
        }
        let parsed = from_text(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed, sample());
    }

    #[test]
    fn blank_lines_skipped() {
        let recs = from_text("\nCheckpoint: 0\n\n").unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn reports_malformed_lines() {
        assert!(from_text("Checkpoint: x").is_err());
        assert!(from_text("Instr: zz addr: 10 rd").is_err());
        assert!(from_text("Instr: 10 addr: 10 rw").is_err());
        assert!(from_text("garbage").is_err());
        let e = from_text("Checkpoint: 0\ngarbage").unwrap_err();
        assert_eq!(e.line, 2);
    }
}

#[cfg(test)]
mod reader_edge_tests {
    use super::*;

    #[test]
    fn reader_stops_at_first_error_and_reports_line() {
        let text = "Checkpoint: 0\nCheckpoint: 1\nbroken line\n";
        let reader = TextReader::new(text.as_bytes());
        let results: Vec<_> = reader.collect();
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(results[1].is_ok());
        let err = results[2].as_ref().unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn reader_skips_interior_blank_lines() {
        let text = "Checkpoint: 0\n\n\nCheckpoint: 1\n";
        let reader = TextReader::new(text.as_bytes());
        let n = reader.filter(|r| r.is_ok()).count();
        assert_eq!(n, 2);
    }

    #[test]
    fn parse_error_display() {
        let e = ParseTraceError { line: 7, msg: "bad".into() };
        assert_eq!(e.to_string(), "trace line 7: bad");
    }

    #[test]
    fn whitespace_tolerance() {
        let r = parse_line("  Checkpoint:   12  ", 1).unwrap().unwrap();
        assert!(matches!(r, Record::Checkpoint { .. }));
    }
}
