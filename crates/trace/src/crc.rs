//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) for trace-file integrity.
//!
//! The `foray-trace/v2` container checksums every block payload (and the
//! checkpoint index) so bit rot in archived traces is caught at open time
//! instead of surfacing as a mis-decoded record stream. The implementation
//! is a four-lane *slicing-by-8* table walk: large inputs split into
//! four independent lanes whose CRCs evolve in one fused loop (a CRC is
//! one serial dependency chain per lane, so four lanes quadruple the
//! instruction-level parallelism), then recombine through compile-time
//! "advance through N zero bytes" tables — CRC-32 is linear, so
//! `crc(A‖B‖C)` is the XOR of each lane's register shifted past the
//! bytes that follow it. The tail falls back to single-lane
//! slicing-by-16. Everything is `const`-built table arithmetic; the
//! `trace_codec` bench measures the full open-and-decode path this
//! feeds.
//!
//! # Examples
//!
//! ```
//! use minic_trace::crc::crc32;
//!
//! // The catalogue check value for CRC-32/ISO-HDLC.
//! assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
//! assert_eq!(crc32(b""), 0);
//! ```

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Sixteen slicing tables: `TABLES[0]` is the classic byte-at-a-time
/// table, `TABLES[k][b]` advances byte `b` through `k` further zero bytes.
const TABLES: [[u32; 256]; 16] = build_tables();

const fn build_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut b = 0usize;
    while b < 256 {
        let mut crc = b as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][b] = crc;
        b += 1;
    }
    let mut k = 1usize;
    while k < 16 {
        let mut b = 0usize;
        while b < 256 {
            let prev = tables[k - 1][b];
            tables[k][b] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            b += 1;
        }
        k += 1;
    }
    tables
}

/// Bytes per lane in the three-lane hot loop; a multiple of eight so the
/// doubling construction of the shift tables applies.
const LANE: usize = 1024;

/// Tables advancing a CRC register through one, two, or three lanes of
/// zero bytes, one 256-entry table per register byte: the register is a
/// linear function of the input, so its shift decomposes into an XOR of
/// per-byte contributions.
const SHIFT_LANE: [[u32; 256]; 4] = build_shift(LANE);
const SHIFT_LANE2: [[u32; 256]; 4] = build_shift(2 * LANE);
const SHIFT_LANE3: [[u32; 256]; 4] = compose_shift(&SHIFT_LANE, &SHIFT_LANE2);

/// Composes two advance tables: the result advances through the sum of
/// their zero-byte counts (shifts are linear maps, so composition on the
/// per-byte generators suffices).
const fn compose_shift(a: &[[u32; 256]; 4], b: &[[u32; 256]; 4]) -> [[u32; 256]; 4] {
    let mut t = [[0u32; 256]; 4];
    let mut k = 0;
    while k < 4 {
        let mut v = 0;
        while v < 256 {
            t[k][v] = apply_shift(b, a[k][v]);
            v += 1;
        }
        k += 1;
    }
    t
}

/// One reflected zero-byte step of the CRC register.
const fn shift_zero_byte(state: u32) -> u32 {
    (state >> 8) ^ TABLES[0][(state & 0xff) as usize]
}

/// Applies an "advance through zero bytes" table to a register.
const fn apply_shift(t: &[[u32; 256]; 4], s: u32) -> u32 {
    t[0][(s & 0xff) as usize]
        ^ t[1][((s >> 8) & 0xff) as usize]
        ^ t[2][((s >> 16) & 0xff) as usize]
        ^ t[3][(s >> 24) as usize]
}

/// Builds the advance-through-`n`-zero-bytes tables (`n` a power-of-two
/// multiple of eight): a direct shift-by-8 table, then repeated
/// squaring, since `shift_2w = shift_w ∘ shift_w`.
const fn build_shift(n: usize) -> [[u32; 256]; 4] {
    let mut t = [[0u32; 256]; 4];
    let mut k = 0;
    while k < 4 {
        let mut b = 0;
        while b < 256 {
            let mut s = (b as u32) << (8 * k);
            let mut i = 0;
            while i < 8 {
                s = shift_zero_byte(s);
                i += 1;
            }
            t[k][b] = s;
            b += 1;
        }
        k += 1;
    }
    let mut width = 8usize;
    while width < n {
        let mut doubled = [[0u32; 256]; 4];
        let mut k = 0;
        while k < 4 {
            let mut b = 0;
            while b < 256 {
                doubled[k][b] = apply_shift(&t, t[k][b]);
                b += 1;
            }
            k += 1;
        }
        t = doubled;
        width *= 2;
    }
    t
}

/// One slicing-by-8 step: folds an 8-byte chunk into `crc`.
#[inline(always)]
fn step8(chunk: &[u8], crc: u32) -> u32 {
    let lo = u32::from_le_bytes(chunk[..4].try_into().expect("chunk length")) ^ crc;
    let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("chunk length"));
    TABLES[7][(lo & 0xff) as usize]
        ^ TABLES[6][((lo >> 8) & 0xff) as usize]
        ^ TABLES[5][((lo >> 16) & 0xff) as usize]
        ^ TABLES[4][(lo >> 24) as usize]
        ^ TABLES[3][(hi & 0xff) as usize]
        ^ TABLES[2][((hi >> 8) & 0xff) as usize]
        ^ TABLES[1][((hi >> 16) & 0xff) as usize]
        ^ TABLES[0][(hi >> 24) as usize]
}

/// CRC-32 of `bytes` with the conventional `0xFFFF_FFFF` init/final XOR.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut pos = 0usize;
    while bytes.len() - pos >= 4 * LANE {
        let (l0, l1, l2, l3) = (
            &bytes[pos..pos + LANE],
            &bytes[pos + LANE..pos + 2 * LANE],
            &bytes[pos + 2 * LANE..pos + 3 * LANE],
            &bytes[pos + 3 * LANE..pos + 4 * LANE],
        );
        let (mut c0, mut c1, mut c2, mut c3) = (crc, 0u32, 0u32, 0u32);
        for (((a, b), c), d) in l0
            .chunks_exact(8)
            .zip(l1.chunks_exact(8))
            .zip(l2.chunks_exact(8))
            .zip(l3.chunks_exact(8))
        {
            c0 = step8(a, c0);
            c1 = step8(b, c1);
            c2 = step8(c, c2);
            c3 = step8(d, c3);
        }
        crc = apply_shift(&SHIFT_LANE3, c0)
            ^ apply_shift(&SHIFT_LANE2, c1)
            ^ apply_shift(&SHIFT_LANE, c2)
            ^ c3;
        pos += 4 * LANE;
    }
    let mut chunks = bytes[pos..].chunks_exact(16);
    for chunk in &mut chunks {
        let a = u32::from_le_bytes(chunk[..4].try_into().expect("chunk length")) ^ crc;
        let b = u32::from_le_bytes(chunk[4..8].try_into().expect("chunk length"));
        let c = u32::from_le_bytes(chunk[8..12].try_into().expect("chunk length"));
        let d = u32::from_le_bytes(chunk[12..].try_into().expect("chunk length"));
        crc = TABLES[15][(a & 0xff) as usize]
            ^ TABLES[14][((a >> 8) & 0xff) as usize]
            ^ TABLES[13][((a >> 16) & 0xff) as usize]
            ^ TABLES[12][(a >> 24) as usize]
            ^ TABLES[11][(b & 0xff) as usize]
            ^ TABLES[10][((b >> 8) & 0xff) as usize]
            ^ TABLES[9][((b >> 16) & 0xff) as usize]
            ^ TABLES[8][(b >> 24) as usize]
            ^ TABLES[7][(c & 0xff) as usize]
            ^ TABLES[6][((c >> 8) & 0xff) as usize]
            ^ TABLES[5][((c >> 16) & 0xff) as usize]
            ^ TABLES[4][(c >> 24) as usize]
            ^ TABLES[3][(d & 0xff) as usize]
            ^ TABLES[2][((d >> 8) & 0xff) as usize]
            ^ TABLES[1][((d >> 16) & 0xff) as usize]
            ^ TABLES[0][(d >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-at-a-time reference implementation.
    fn crc32_reference(bytes: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in bytes {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
        }
        !crc
    }

    #[test]
    fn matches_catalogue_check_values() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn slicing_matches_the_bitwise_reference_at_every_length() {
        // Lengths straddling the 16-byte chunk boundary, with non-trivial
        // content, so both the sliced loop and the remainder tail are hit.
        let data: Vec<u8> = (0u32..257).map(|i| (i.wrapping_mul(167) >> 3) as u8).collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), crc32_reference(&data[..len]), "len={len}");
        }
    }

    #[test]
    fn lane_recombination_matches_the_reference_across_the_lane_boundary() {
        // Lengths straddling the 4-lane super-chunk boundary (one, two,
        // and part of a third super-chunk plus ragged tails), so the
        // fused lane loop, the shift-table recombination, and the
        // single-lane remainder all execute together.
        let data: Vec<u8> = (0u32..(4 * LANE as u32) * 2 + 100)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        for len in [
            4 * LANE - 1,
            4 * LANE,
            4 * LANE + 1,
            4 * LANE + 17,
            8 * LANE - 1,
            8 * LANE,
            8 * LANE + 99,
        ] {
            assert_eq!(crc32(&data[..len]), crc32_reference(&data[..len]), "len={len}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let want = crc32(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32(&copy), want, "flip at {byte}.{bit} went undetected");
                copy[byte] ^= 1 << bit;
            }
        }
    }
}
