//! The `foray-trace/v2` checkpoint index: per-block seek metadata.
//!
//! A v2 writer appends one [`IndexEntry`] per block between the block
//! terminator and the footer. Each entry records where the block starts,
//! which global record ordinal it begins at, and the range of loop ids
//! whose checkpoints appear inside it — enough for `trace analyze
//! --from-loop N` to drop a reader at the first block that can contain
//! loop `N` without replaying (or even CRC-checking) the prefix. Because
//! the v2 delta state resets at block boundaries, a block located through
//! the index decodes stand-alone.
//!
//! On-disk layout (all integers little-endian, following the 12-byte zero
//! block terminator):
//!
//! ```text
//! +0       4     entry count E, u32 (0 = index absent/disabled)
//! +4       24·E  entries:
//!   +0     8     block file offset (of the block's length field), u64
//!   +8     8     global ordinal of the block's first record, u64
//!   +16    4     smallest checkpoint LoopId in the block, u32
//!   +20    4     largest checkpoint LoopId in the block, u32
//! +4+24·E  4     CRC32 over the E·24 entry bytes
//! ```
//!
//! Blocks with no checkpoint records store the inverted range
//! `(u32::MAX, 0)` — impossible for a real min/max pair, so every actual
//! loop id (including `u32::MAX`) stays representable. It is surfaced as
//! [`IndexEntry::loop_range`] = `None`.

use crate::crc::crc32;
use minic::LoopId;

/// Sentinel pair for "this block holds no checkpoint records": an
/// inverted (min, max) range no real block can produce.
const NO_LOOPS: (u32, u32) = (u32::MAX, 0);

/// Encoded size of one index entry.
pub const ENTRY_BYTES: usize = 24;

/// Seek metadata for one block of a v2 trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// File offset of the block (its length field).
    pub offset: u64,
    /// Global ordinal (0-based) of the block's first record.
    pub first_ordinal: u64,
    /// Smallest loop id among the block's checkpoints (the [`NO_LOOPS`]
    /// inverted pair if the block has none).
    loop_min: u32,
    /// Largest loop id among the block's checkpoints.
    loop_max: u32,
}

impl IndexEntry {
    /// Builds an entry; `loops` is the (min, max) checkpoint loop-id range
    /// observed in the block, or `None` for a checkpoint-free block.
    pub fn new(offset: u64, first_ordinal: u64, loops: Option<(LoopId, LoopId)>) -> IndexEntry {
        let (loop_min, loop_max) = match loops {
            Some((lo, hi)) => (lo.0, hi.0),
            None => NO_LOOPS,
        };
        IndexEntry { offset, first_ordinal, loop_min, loop_max }
    }

    /// The inclusive range of checkpoint loop ids in the block, `None` if
    /// the block holds only access records.
    pub fn loop_range(&self) -> Option<(LoopId, LoopId)> {
        if self.loop_min > self.loop_max {
            None
        } else {
            Some((LoopId(self.loop_min), LoopId(self.loop_max)))
        }
    }

    /// Whether checkpoints for `loop_id` can appear in this block (range
    /// test — a hit means "possibly present", a miss means "certainly
    /// absent").
    pub fn may_contain(&self, loop_id: LoopId) -> bool {
        self.loop_range().is_some_and(|(lo, hi)| lo <= loop_id && loop_id <= hi)
    }
}

/// The complete per-block index of a v2 trace file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointIndex {
    entries: Vec<IndexEntry>,
}

impl CheckpointIndex {
    /// Wraps a built entry list (one per block, in file order).
    pub fn new(entries: Vec<IndexEntry>) -> CheckpointIndex {
        CheckpointIndex { entries }
    }

    /// The entries, in file order.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Entry of the first block that may contain a checkpoint for
    /// `loop_id` (see [`IndexEntry::may_contain`]); `None` when no block's
    /// range covers it, i.e. the loop certainly never runs in this trace.
    pub fn find_loop(&self, loop_id: LoopId) -> Option<&IndexEntry> {
        self.entries.iter().find(|e| e.may_contain(loop_id))
    }

    /// Serializes the index section (count, entries, CRC).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.entries.len() * ENTRY_BYTES);
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.offset.to_le_bytes());
            out.extend_from_slice(&e.first_ordinal.to_le_bytes());
            out.extend_from_slice(&e.loop_min.to_le_bytes());
            out.extend_from_slice(&e.loop_max.to_le_bytes());
        }
        let crc = crc32(&out[4..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses the entry block of an index section (the `E·24` bytes after
    /// the count) and verifies `crc` against it.
    ///
    /// # Errors
    ///
    /// A static reason string when the byte length disagrees with the
    /// entry size or the CRC does not match.
    pub fn parse(entry_bytes: &[u8], crc: u32) -> Result<CheckpointIndex, &'static str> {
        if entry_bytes.len() % ENTRY_BYTES != 0 {
            return Err("index size is not a multiple of the entry size");
        }
        if crc32(entry_bytes) != crc {
            return Err("index CRC mismatch");
        }
        let u64_at = |b: &[u8], i: usize| {
            u64::from_le_bytes(b[i..i + 8].try_into().expect("length checked"))
        };
        let u32_at = |b: &[u8], i: usize| {
            u32::from_le_bytes(b[i..i + 4].try_into().expect("length checked"))
        };
        let entries = entry_bytes
            .chunks_exact(ENTRY_BYTES)
            .map(|e| IndexEntry {
                offset: u64_at(e, 0),
                first_ordinal: u64_at(e, 8),
                loop_min: u32_at(e, 16),
                loop_max: u32_at(e, 20),
            })
            .collect();
        Ok(CheckpointIndex { entries })
    }
}

/// Running (min, max) loop-range accumulator a writer keeps per block.
#[derive(Debug, Default, Clone, Copy)]
pub struct LoopRange {
    range: Option<(u32, u32)>,
}

impl LoopRange {
    /// Folds one checkpoint's loop id into the range.
    pub fn observe(&mut self, loop_id: LoopId) {
        self.range = Some(match self.range {
            None => (loop_id.0, loop_id.0),
            Some((lo, hi)) => (lo.min(loop_id.0), hi.max(loop_id.0)),
        });
    }

    /// The accumulated range, and resets for the next block.
    pub fn take(&mut self) -> Option<(LoopId, LoopId)> {
        self.range.take().map(|(lo, hi)| (LoopId(lo), LoopId(hi)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointIndex {
        CheckpointIndex::new(vec![
            IndexEntry::new(16, 0, Some((LoopId(0), LoopId(3)))),
            IndexEntry::new(4096, 900, None),
            IndexEntry::new(8192, 1800, Some((LoopId(2), LoopId(7)))),
        ])
    }

    #[test]
    fn encode_parse_round_trip() {
        let index = sample();
        let bytes = index.encode();
        assert_eq!(bytes.len(), 4 + 3 * ENTRY_BYTES + 4);
        let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        let parsed = CheckpointIndex::parse(&bytes[4..bytes.len() - 4], crc).unwrap();
        assert_eq!(parsed, index);
    }

    #[test]
    fn parse_rejects_corruption() {
        let index = sample();
        let bytes = index.encode();
        let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        let mut flipped = bytes[4..bytes.len() - 4].to_vec();
        flipped[5] ^= 1;
        assert_eq!(CheckpointIndex::parse(&flipped, crc), Err("index CRC mismatch"));
        assert!(CheckpointIndex::parse(&bytes[4..bytes.len() - 5], crc).is_err());
    }

    #[test]
    fn find_loop_uses_the_first_covering_block() {
        let index = sample();
        assert_eq!(index.find_loop(LoopId(2)).unwrap().offset, 16);
        assert_eq!(index.find_loop(LoopId(7)).unwrap().offset, 8192);
        assert!(index.find_loop(LoopId(8)).is_none());
        // The checkpoint-free block never matches.
        assert!(!index.entries()[1].may_contain(LoopId(0)));
    }

    #[test]
    fn loop_range_accumulates_and_resets() {
        let mut r = LoopRange::default();
        assert!(r.take().is_none());
        r.observe(LoopId(5));
        r.observe(LoopId(2));
        r.observe(LoopId(9));
        assert_eq!(r.take(), Some((LoopId(2), LoopId(9))));
        assert!(r.take().is_none());
    }
}
