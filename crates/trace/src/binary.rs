//! Compact binary trace format.
//!
//! Traces get long (the paper's runs reach tens of millions of accesses), so
//! a fixed-width binary encoding is provided alongside the paper-style text
//! format: a 1-byte tag followed by little-endian fields.
//!
//! ```text
//! 0x01 loop:u32 kind:u8              checkpoint
//! 0x02 instr:u32 addr:u32 kind:u8    access
//! ```

use crate::record::{Access, AccessKind, InstrAddr, MemAddr, Record};
use crate::sink::TraceSink;
use minic::{CheckpointKind, LoopId};
use std::io::{self, Read, Write};

const TAG_CHECKPOINT: u8 = 0x01;
const TAG_ACCESS: u8 = 0x02;

fn kind_byte(kind: CheckpointKind) -> u8 {
    match kind {
        CheckpointKind::LoopBegin => 0,
        CheckpointKind::BodyBegin => 1,
        CheckpointKind::BodyEnd => 2,
    }
}

fn kind_from_byte(b: u8) -> Option<CheckpointKind> {
    Some(match b {
        0 => CheckpointKind::LoopBegin,
        1 => CheckpointKind::BodyBegin,
        2 => CheckpointKind::BodyEnd,
        _ => return None,
    })
}

/// Encodes one record into a byte buffer.
pub fn encode_record(rec: &Record, out: &mut Vec<u8>) {
    match rec {
        Record::Checkpoint { loop_id, kind } => {
            out.push(TAG_CHECKPOINT);
            out.extend_from_slice(&loop_id.0.to_le_bytes());
            out.push(kind_byte(*kind));
        }
        Record::Access(a) => {
            out.push(TAG_ACCESS);
            out.extend_from_slice(&a.instr.0.to_le_bytes());
            out.extend_from_slice(&a.addr.0.to_le_bytes());
            out.push(match a.kind {
                AccessKind::Read => 0,
                AccessKind::Write => 1,
            });
        }
    }
}

/// Encodes a whole trace.
pub fn to_bytes(records: &[Record]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * 10);
    for r in records {
        encode_record(r, &mut out);
    }
    out
}

/// Decodes a whole binary trace.
///
/// # Errors
///
/// Returns [`io::Error`] with kind `InvalidData` on bad tags or truncation.
///
/// # Examples
///
/// ```
/// # fn main() -> std::io::Result<()> {
/// use minic_trace::{binary, AccessKind, Record};
/// let recs = vec![Record::access(0x400000, 0x1000_0000, AccessKind::Read)];
/// let bytes = binary::to_bytes(&recs);
/// assert_eq!(binary::from_bytes(&bytes)?, recs);
/// # Ok(())
/// # }
/// ```
pub fn from_bytes(bytes: &[u8]) -> io::Result<Vec<Record>> {
    BinaryReader::new(bytes).collect()
}

/// Writes binary records to any [`Write`]; pass `&mut writer` to keep
/// ownership.
#[derive(Debug)]
pub struct BinaryWriter<W: Write> {
    out: W,
    buf: Vec<u8>,
    error: Option<io::Error>,
}

impl<W: Write> BinaryWriter<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        BinaryWriter { out, buf: Vec::with_capacity(16), error: None }
    }

    /// First latched I/O error, if any (see [`crate::text::TextWriter`]).
    pub fn io_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> TraceSink for BinaryWriter<W> {
    fn record(&mut self, rec: &Record) {
        if self.error.is_some() {
            return;
        }
        self.buf.clear();
        encode_record(rec, &mut self.buf);
        if let Err(e) = self.out.write_all(&self.buf) {
            self.error = Some(e);
        }
    }

    fn finish(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// Streaming binary decoder.
#[derive(Debug)]
pub struct BinaryReader<R: Read> {
    input: R,
}

impl<R: Read> BinaryReader<R> {
    /// Wraps a reader.
    pub fn new(input: R) -> Self {
        BinaryReader { input }
    }

    fn read_u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.input.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn read_u8(&mut self) -> io::Result<u8> {
        let mut b = [0u8; 1];
        self.input.read_exact(&mut b)?;
        Ok(b[0])
    }
}

impl<R: Read> Iterator for BinaryReader<R> {
    type Item = io::Result<Record>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut tag = [0u8; 1];
        match self.input.read(&mut tag) {
            Ok(0) => return None,
            Ok(_) => {}
            Err(e) => return Some(Err(e)),
        }
        let result = (|| -> io::Result<Record> {
            match tag[0] {
                TAG_CHECKPOINT => {
                    let loop_id = self.read_u32()?;
                    let kind = kind_from_byte(self.read_u8()?).ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad checkpoint kind")
                    })?;
                    Ok(Record::Checkpoint { loop_id: LoopId(loop_id), kind })
                }
                TAG_ACCESS => {
                    let instr = self.read_u32()?;
                    let addr = self.read_u32()?;
                    let kind = match self.read_u8()? {
                        0 => AccessKind::Read,
                        1 => AccessKind::Write,
                        _ => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "bad access kind",
                            ));
                        }
                    };
                    Ok(Record::Access(Access {
                        instr: InstrAddr(instr),
                        addr: MemAddr(addr),
                        kind,
                    }))
                }
                t => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad record tag {t:#x}"),
                )),
            }
        })();
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Record> {
        vec![
            Record::checkpoint(0, CheckpointKind::LoopBegin),
            Record::checkpoint(0, CheckpointKind::BodyBegin),
            Record::access(0x4002a0, 0x7fff5934, AccessKind::Write),
            Record::access(0x400004, 0x10000000, AccessKind::Read),
            Record::checkpoint(0, CheckpointKind::BodyEnd),
        ]
    }

    #[test]
    fn round_trip() {
        let recs = sample();
        assert_eq!(from_bytes(&to_bytes(&recs)).unwrap(), recs);
    }

    #[test]
    fn writer_round_trip() {
        let mut buf = Vec::new();
        {
            let mut w = BinaryWriter::new(&mut buf);
            for r in sample() {
                w.record(&r);
            }
            w.finish();
            assert!(w.io_error().is_none());
        }
        assert_eq!(from_bytes(&buf).unwrap(), sample());
    }

    #[test]
    fn rejects_truncation_and_bad_tags() {
        let bytes = to_bytes(&sample());
        assert!(from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(from_bytes(&[0xff]).is_err());
        assert!(from_bytes(&[TAG_CHECKPOINT, 0, 0, 0, 0, 9]).is_err());
    }

    #[test]
    fn encoding_is_compact() {
        let recs = sample();
        let bytes = to_bytes(&recs);
        // 2 accesses * 10 bytes + 3 checkpoints * 6 bytes.
        assert_eq!(bytes.len(), 2 * 10 + 3 * 6);
    }
}
