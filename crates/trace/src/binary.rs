//! Compact binary trace format.
//!
//! Traces get long (the paper's runs reach tens of millions of accesses), so
//! a fixed-width binary encoding is provided alongside the paper-style text
//! format: a 1-byte tag followed by little-endian fields.
//!
//! ```text
//! 0x01 loop:u32 kind:u8              checkpoint   (6 bytes)
//! 0x02 instr:u32 addr:u32 kind:u8    access       (10 bytes)
//! ```
//!
//! Decoding is **zero-copy**: [`RecordReader`] walks a `&[u8]` in place and
//! yields [`Record`]s without any intermediate `Vec<Record>` or per-record
//! heap allocation — the building block under the framed
//! [`foray-trace/v1`](crate::file) container. Failures are reported as a
//! typed [`DecodeError`] carrying the byte offset and reason.

use crate::record::{Access, AccessKind, InstrAddr, MemAddr, Record};
use crate::sink::TraceSink;
use minic::{CheckpointKind, LoopId};
use std::fmt;
use std::io::{self, Read, Write};

const TAG_CHECKPOINT: u8 = 0x01;
const TAG_ACCESS: u8 = 0x02;

const CHECKPOINT_BYTES: usize = 6;
const ACCESS_BYTES: usize = 10;

/// Upper bound on the encoded size of any single record — the size of a
/// caller-provided scratch buffer for [`encode_record_into`].
pub const MAX_RECORD_BYTES: usize = ACCESS_BYTES;

fn kind_byte(kind: CheckpointKind) -> u8 {
    match kind {
        CheckpointKind::LoopBegin => 0,
        CheckpointKind::BodyBegin => 1,
        CheckpointKind::BodyEnd => 2,
    }
}

fn kind_from_byte(b: u8) -> Option<CheckpointKind> {
    Some(match b {
        0 => CheckpointKind::LoopBegin,
        1 => CheckpointKind::BodyBegin,
        2 => CheckpointKind::BodyEnd,
        _ => return None,
    })
}

/// Why a byte stream failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeReason {
    /// The record tag byte is neither checkpoint nor access.
    BadTag(u8),
    /// The checkpoint-kind byte is out of range.
    BadCheckpointKind(u8),
    /// The read/write byte is out of range.
    BadAccessKind(u8),
    /// The stream ends mid-record.
    Truncated {
        /// Bytes the current record still needs (tag included).
        needed: usize,
        /// Bytes actually left in the stream.
        available: usize,
    },
}

impl fmt::Display for DecodeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeReason::BadTag(t) => write!(f, "bad record tag {t:#04x}"),
            DecodeReason::BadCheckpointKind(k) => write!(f, "bad checkpoint kind {k}"),
            DecodeReason::BadAccessKind(k) => write!(f, "bad access kind {k}"),
            DecodeReason::Truncated { needed, available } => {
                write!(f, "truncated record: needs {needed} bytes, {available} left")
            }
        }
    }
}

/// Typed decode failure: where in the stream, and why.
///
/// # Examples
///
/// ```
/// use minic_trace::binary::{self, DecodeReason};
///
/// let err = binary::from_bytes(&[0xff]).unwrap_err();
/// assert_eq!(err.offset, 0);
/// assert_eq!(err.reason, DecodeReason::BadTag(0xff));
/// assert_eq!(err.to_string(), "trace byte 0: bad record tag 0xff");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset of the record that failed to decode (the tag byte).
    pub offset: u64,
    /// What went wrong.
    pub reason: DecodeReason,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for DecodeError {}

impl From<DecodeError> for io::Error {
    fn from(e: DecodeError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Encoded size of one record, in bytes.
pub fn encoded_len(rec: &Record) -> usize {
    match rec {
        Record::Checkpoint { .. } => CHECKPOINT_BYTES,
        Record::Access(_) => ACCESS_BYTES,
    }
}

/// Encodes one record into a caller-provided fixed scratch buffer,
/// returning the number of bytes written — the allocation-free core of
/// every encoder in this module.
///
/// # Examples
///
/// ```
/// use minic_trace::binary::{encode_record_into, MAX_RECORD_BYTES};
/// use minic_trace::{AccessKind, Record};
///
/// let mut scratch = [0u8; MAX_RECORD_BYTES];
/// let rec = Record::access(0x4002a0, 0x7fff5934, AccessKind::Write);
/// let n = encode_record_into(&rec, &mut scratch);
/// assert_eq!(n, 10);
/// assert_eq!(scratch[0], 0x02);
/// ```
pub fn encode_record_into(rec: &Record, buf: &mut [u8; MAX_RECORD_BYTES]) -> usize {
    match rec {
        Record::Checkpoint { loop_id, kind } => {
            buf[0] = TAG_CHECKPOINT;
            buf[1..5].copy_from_slice(&loop_id.0.to_le_bytes());
            buf[5] = kind_byte(*kind);
            CHECKPOINT_BYTES
        }
        Record::Access(a) => {
            buf[0] = TAG_ACCESS;
            buf[1..5].copy_from_slice(&a.instr.0.to_le_bytes());
            buf[5..9].copy_from_slice(&a.addr.0.to_le_bytes());
            buf[9] = match a.kind {
                AccessKind::Read => 0,
                AccessKind::Write => 1,
            };
            ACCESS_BYTES
        }
    }
}

/// Appends one encoded record to `out` (no temporary allocation; the bytes
/// go through a stack scratch buffer).
pub fn encode_record(rec: &Record, out: &mut Vec<u8>) {
    let mut scratch = [0u8; MAX_RECORD_BYTES];
    let n = encode_record_into(rec, &mut scratch);
    out.extend_from_slice(&scratch[..n]);
}

/// Encodes a whole trace, reserving the exact output size up front.
pub fn to_bytes(records: &[Record]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.iter().map(encoded_len).sum());
    for r in records {
        encode_record(r, &mut out);
    }
    out
}

/// Decodes a whole binary trace into an owned vector.
///
/// Prefer [`RecordReader`] when the records are consumed once in order —
/// it performs no intermediate allocation.
///
/// # Errors
///
/// Returns a [`DecodeError`] with byte offset and reason on bad tags, bad
/// kind bytes, or truncation.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), minic_trace::DecodeError> {
/// use minic_trace::{binary, AccessKind, Record};
/// let recs = vec![Record::access(0x400000, 0x1000_0000, AccessKind::Read)];
/// let bytes = binary::to_bytes(&recs);
/// assert_eq!(binary::from_bytes(&bytes)?, recs);
/// # Ok(())
/// # }
/// ```
pub fn from_bytes(bytes: &[u8]) -> Result<Vec<Record>, DecodeError> {
    RecordReader::new(bytes).collect()
}

/// Decodes the record starting at `bytes[0]`, reporting errors at absolute
/// offset `base`. Returns the record and its encoded length.
pub(crate) fn decode_one(bytes: &[u8], base: u64) -> Result<(Record, usize), DecodeError> {
    let err = |reason| DecodeError { offset: base, reason };
    let need = |n: usize| {
        if bytes.len() < n {
            Err(err(DecodeReason::Truncated { needed: n, available: bytes.len() }))
        } else {
            Ok(())
        }
    };
    let u32_at = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().expect("length checked"));
    match bytes.first() {
        None => Err(err(DecodeReason::Truncated { needed: 1, available: 0 })),
        Some(&TAG_CHECKPOINT) => {
            need(CHECKPOINT_BYTES)?;
            let kind = kind_from_byte(bytes[5])
                .ok_or_else(|| err(DecodeReason::BadCheckpointKind(bytes[5])))?;
            Ok((Record::Checkpoint { loop_id: LoopId(u32_at(1)), kind }, CHECKPOINT_BYTES))
        }
        Some(&TAG_ACCESS) => {
            need(ACCESS_BYTES)?;
            let kind = match bytes[9] {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                k => return Err(err(DecodeReason::BadAccessKind(k))),
            };
            let access = Access { instr: InstrAddr(u32_at(1)), addr: MemAddr(u32_at(5)), kind };
            Ok((Record::Access(access), ACCESS_BYTES))
        }
        Some(&t) => Err(err(DecodeReason::BadTag(t))),
    }
}

/// Zero-copy streaming decoder over a byte slice.
///
/// Decodes records in place — no intermediate `Vec<Record>`, no per-record
/// heap allocation. After the first error the iterator is fused (further
/// calls yield `None`).
///
/// # Examples
///
/// ```
/// use minic_trace::{binary, AccessKind, Record};
///
/// let recs =
///     vec![Record::checkpoint(4, minic::CheckpointKind::LoopBegin), Record::access(0x4002a0, 0x7fff5934, AccessKind::Write)];
/// let bytes = binary::to_bytes(&recs);
/// let decoded: Result<Vec<Record>, _> = binary::RecordReader::new(&bytes).collect();
/// assert_eq!(decoded.unwrap(), recs);
/// ```
#[derive(Debug, Clone)]
pub struct RecordReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    failed: bool,
}

impl<'a> RecordReader<'a> {
    /// Wraps a byte slice holding concatenated binary records.
    pub fn new(bytes: &'a [u8]) -> Self {
        RecordReader { bytes, pos: 0, failed: false }
    }

    /// Byte offset of the next record to decode.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// The undecoded tail of the input.
    pub fn remaining(&self) -> &'a [u8] {
        &self.bytes[self.pos..]
    }
}

impl Iterator for RecordReader<'_> {
    type Item = Result<Record, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.pos == self.bytes.len() {
            return None;
        }
        match decode_one(&self.bytes[self.pos..], self.pos as u64) {
            Ok((rec, len)) => {
                self.pos += len;
                Some(Ok(rec))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Writes binary records to any [`Write`]; pass `&mut writer` to keep
/// ownership.
#[derive(Debug)]
pub struct BinaryWriter<W: Write> {
    out: W,
    error: Option<io::Error>,
}

impl<W: Write> BinaryWriter<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        BinaryWriter { out, error: None }
    }

    /// First latched I/O error, if any (see [`crate::text::TextWriter`]).
    pub fn io_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> TraceSink for BinaryWriter<W> {
    fn record(&mut self, rec: &Record) {
        if self.error.is_some() {
            return;
        }
        let mut scratch = [0u8; MAX_RECORD_BYTES];
        let n = encode_record_into(rec, &mut scratch);
        if let Err(e) = self.out.write_all(&scratch[..n]) {
            self.error = Some(e);
        }
    }

    fn finish(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// Streaming binary decoder over any [`Read`].
///
/// For byte slices already in memory, prefer the allocation-free
/// [`RecordReader`]; this type exists for sockets, pipes, and other
/// unseekable streams of raw (unframed) records.
#[derive(Debug)]
pub struct BinaryReader<R: Read> {
    input: R,
    offset: u64,
}

impl<R: Read> BinaryReader<R> {
    /// Wraps a reader.
    pub fn new(input: R) -> Self {
        BinaryReader { input, offset: 0 }
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.input.read_exact(buf)?;
        self.offset += buf.len() as u64;
        Ok(())
    }
}

impl<R: Read> Iterator for BinaryReader<R> {
    type Item = io::Result<Record>;

    fn next(&mut self) -> Option<Self::Item> {
        let start = self.offset;
        let mut buf = [0u8; MAX_RECORD_BYTES];
        match self.input.read(&mut buf[..1]) {
            Ok(0) => return None,
            Ok(_) => self.offset += 1,
            Err(e) => return Some(Err(e)),
        }
        let body = match buf[0] {
            TAG_CHECKPOINT => CHECKPOINT_BYTES - 1,
            TAG_ACCESS => ACCESS_BYTES - 1,
            t => {
                return Some(Err(
                    DecodeError { offset: start, reason: DecodeReason::BadTag(t) }.into()
                ));
            }
        };
        if let Err(e) = self.read_exact(&mut buf[1..=body]) {
            return Some(Err(e));
        }
        Some(decode_one(&buf[..=body], start).map(|(rec, _)| rec).map_err(Into::into))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Record> {
        vec![
            Record::checkpoint(0, CheckpointKind::LoopBegin),
            Record::checkpoint(0, CheckpointKind::BodyBegin),
            Record::access(0x4002a0, 0x7fff5934, AccessKind::Write),
            Record::access(0x400004, 0x10000000, AccessKind::Read),
            Record::checkpoint(0, CheckpointKind::BodyEnd),
        ]
    }

    #[test]
    fn round_trip() {
        let recs = sample();
        assert_eq!(from_bytes(&to_bytes(&recs)).unwrap(), recs);
    }

    #[test]
    fn record_reader_round_trip_and_offsets() {
        let recs = sample();
        let bytes = to_bytes(&recs);
        let mut reader = RecordReader::new(&bytes);
        assert_eq!(reader.offset(), 0);
        let decoded: Vec<Record> = reader.by_ref().map(Result::unwrap).collect();
        assert_eq!(decoded, recs);
        assert_eq!(reader.offset(), bytes.len());
        assert!(reader.remaining().is_empty());
    }

    #[test]
    fn io_reader_round_trip() {
        let bytes = to_bytes(&sample());
        let decoded: io::Result<Vec<Record>> = BinaryReader::new(bytes.as_slice()).collect();
        assert_eq!(decoded.unwrap(), sample());
    }

    #[test]
    fn writer_round_trip() {
        let mut buf = Vec::new();
        {
            let mut w = BinaryWriter::new(&mut buf);
            for r in sample() {
                w.record(&r);
            }
            w.finish();
            assert!(w.io_error().is_none());
        }
        assert_eq!(from_bytes(&buf).unwrap(), sample());
    }

    #[test]
    fn rejects_truncation_and_bad_tags() {
        let bytes = to_bytes(&sample());
        let err = from_bytes(&bytes[..bytes.len() - 1]).unwrap_err();
        assert!(matches!(err.reason, DecodeReason::Truncated { .. }));
        // The stream ends inside the final 6-byte checkpoint.
        assert_eq!(err.offset, bytes.len() as u64 - CHECKPOINT_BYTES as u64);
        let err = from_bytes(&[0xff]).unwrap_err();
        assert_eq!(err, DecodeError { offset: 0, reason: DecodeReason::BadTag(0xff) });
        let err = from_bytes(&[TAG_CHECKPOINT, 0, 0, 0, 0, 9]).unwrap_err();
        assert_eq!(err.reason, DecodeReason::BadCheckpointKind(9));
        let bytes = to_bytes(&[Record::access(1, 2, AccessKind::Read)]);
        let mut corrupt = bytes.clone();
        corrupt[9] = 7;
        assert_eq!(from_bytes(&corrupt).unwrap_err().reason, DecodeReason::BadAccessKind(7));
    }

    #[test]
    fn error_offsets_point_at_the_failing_record() {
        // Two good checkpoints (12 bytes), then garbage.
        let mut bytes = to_bytes(&sample()[..2]);
        bytes.push(0xee);
        let err = from_bytes(&bytes).unwrap_err();
        assert_eq!(err.offset, 12);
        assert_eq!(err.reason, DecodeReason::BadTag(0xee));
        // The zero-copy reader fuses after the error.
        let mut r = RecordReader::new(&bytes);
        assert!(r.next().unwrap().is_ok());
        assert!(r.next().unwrap().is_ok());
        assert!(r.next().unwrap().is_err());
        assert!(r.next().is_none());
    }

    #[test]
    fn encoding_is_compact_and_sized_exactly() {
        let recs = sample();
        let bytes = to_bytes(&recs);
        // 2 accesses * 10 bytes + 3 checkpoints * 6 bytes.
        assert_eq!(bytes.len(), 2 * 10 + 3 * 6);
        assert_eq!(bytes.len(), recs.iter().map(encoded_len).sum::<usize>());
        assert_eq!(bytes.capacity(), bytes.len(), "to_bytes reserves exactly");
    }

    #[test]
    fn decode_errors_convert_to_io_errors() {
        let e: io::Error = from_bytes(&[0xff]).unwrap_err().into();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("bad record tag"));
    }
}
