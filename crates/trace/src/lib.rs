//! # minic-trace — profiling trace substrate for the FORAY-GEN reproduction
//!
//! The paper's flow (Algorithm 1) profiles an annotated program on an
//! instruction-set simulator that emits a *trace file*: memory access events
//! `(instruction address, access address, read/write)` interleaved with loop
//! *checkpoints*. This crate defines those records, two serializations (the
//! paper-compatible text format of Fig. 4(c) and a compact binary format),
//! streaming readers/writers, the versioned `foray-trace` on-disk
//! container ([`mod@file`]: fixed-width v1, and the default compressed +
//! CRC-checked + [indexed](mod@index) v2 whose [`mod@v2`] codec
//! packs records as length-tagged deltas), the shared address-space layout, and the two
//! halves of the stream contract: [`TraceSink`] (push — lets the analyzer
//! run *online* during profiling, the constant-space mode the paper
//! highlights at the end of Section 4) and [`RecordSource`] (pull —
//! replays slices, zero-copy byte decoders, and trace files into any
//! sink). See `docs/ARCHITECTURE.md` at the repository root for the full
//! stream contract and the on-disk format specification.
//!
//! # Examples
//!
//! ```
//! use minic_trace::{text, AccessKind, Record, TraceSink, TraceStats, VecSink};
//!
//! // Produce a small trace.
//! let mut sink = VecSink::new();
//! sink.record(&Record::checkpoint(4, minic::CheckpointKind::LoopBegin));
//! sink.record(&Record::access(0x4002a0, 0x7fff5934, AccessKind::Write));
//!
//! // Serialize it in the paper's format.
//! let textual = text::to_text(&sink.records);
//! assert!(textual.contains("Instr: 4002a0 addr: 7fff5934 wr"));
//!
//! // And compute Table-III-style totals.
//! let stats = TraceStats::from_records(&sink.records);
//! assert_eq!(stats.references(), 1);
//! ```

#![warn(missing_docs)]

pub mod binary;
pub mod crc;
pub mod file;
pub mod index;
pub mod layout;
pub mod record;
pub mod sample;
pub mod shard;
pub mod sink;
pub mod source;
pub mod stats;
pub mod text;
pub mod v2;

pub use binary::{DecodeError, DecodeReason, RecordReader};
pub use file::{FormatVersion, ReadError, TraceFile, TraceReader, TraceWriter};
pub use index::{CheckpointIndex, IndexEntry};
pub use record::{Access, AccessKind, InstrAddr, MemAddr, Record};
pub use sample::{SampleSink, SampleSpec, SampleState, DEFAULT_SAMPLE_SEED};
pub use shard::{
    shard_of, BlockItem, BlockRouter, RecordRouter, ShardBlock, ShardBuffer, ShardingSink,
};
pub use sink::{CountingSink, NullSink, TeeSink, TraceSink, VecSink};
pub use source::RecordSource;
pub use stats::TraceStats;
pub use text::ParseTraceError;
