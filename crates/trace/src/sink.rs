//! Trace consumers.
//!
//! The simulator pushes [`Record`]s into a [`TraceSink`]. Because the
//! paper's analysis touches every record exactly once, in order, the same
//! trait serves both "write a trace file" (offline mode) and "analyze
//! during profiling" (the paper's constant-space online mode — the FORAY
//! analyzer itself implements [`TraceSink`]).

use crate::record::Record;

/// A consumer of trace records.
pub trait TraceSink {
    /// Accepts the next record of the stream.
    fn record(&mut self, rec: &Record);

    /// Called once when the stream ends. Default: no-op.
    fn finish(&mut self) {}
}

/// Collects records into a vector (offline analysis, tests).
///
/// # Examples
///
/// ```
/// use minic_trace::{AccessKind, Record, TraceSink, VecSink};
///
/// let mut sink = VecSink::new();
/// sink.record(&Record::access(0x400000, 0x1000_0000, AccessKind::Read));
/// assert_eq!(sink.into_records().len(), 1);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct VecSink {
    /// Records in arrival order.
    pub records: Vec<Record>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Consumes the sink, yielding the collected records.
    pub fn into_records(self) -> Vec<Record> {
        self.records
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, rec: &Record) {
        self.records.push(*rec);
    }
}

/// Discards every record (useful for benchmarking raw simulation speed).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: &Record) {}
}

/// Counts records without storing them.
///
/// # Examples
///
/// ```
/// use minic_trace::{AccessKind, CountingSink, Record, TraceSink};
///
/// let mut sink = CountingSink::new();
/// sink.record(&Record::access(0x400000, 0x1000_0000, AccessKind::Read));
/// sink.record(&Record::checkpoint(0, minic::CheckpointKind::LoopBegin));
/// assert_eq!((sink.accesses, sink.checkpoints, sink.total()), (1, 1, 2));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of access records seen.
    pub accesses: u64,
    /// Number of checkpoint records seen.
    pub checkpoints: u64,
}

impl CountingSink {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Total records seen.
    pub fn total(&self) -> u64 {
        self.accesses + self.checkpoints
    }
}

impl TraceSink for CountingSink {
    fn record(&mut self, rec: &Record) {
        match rec {
            Record::Access(_) => self.accesses += 1,
            Record::Checkpoint { .. } => self.checkpoints += 1,
        }
    }
}

/// Duplicates the stream into two sinks (e.g. write a file *and* analyze
/// online in one profiling run).
///
/// # Examples
///
/// ```
/// use minic_trace::{AccessKind, CountingSink, Record, TeeSink, TraceSink, VecSink};
///
/// let mut tee = TeeSink::new(VecSink::new(), CountingSink::new());
/// tee.record(&Record::access(0x400000, 0x1000_0000, AccessKind::Write));
/// tee.finish();
/// let (stored, counted) = tee.into_inner();
/// assert_eq!((stored.records.len(), counted.total()), (1, 1));
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TeeSink<A, B> {
    /// First consumer.
    pub first: A,
    /// Second consumer.
    pub second: B,
}

impl<A: TraceSink, B: TraceSink> TeeSink<A, B> {
    /// Combines two sinks.
    pub fn new(first: A, second: B) -> Self {
        TeeSink { first, second }
    }

    /// Splits the tee back into its parts.
    pub fn into_inner(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn record(&mut self, rec: &Record) {
        self.first.record(rec);
        self.second.record(rec);
    }

    fn finish(&mut self) {
        self.first.finish();
        self.second.finish();
    }
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn record(&mut self, rec: &Record) {
        (**self).record(rec);
    }

    fn finish(&mut self) {
        (**self).finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AccessKind;
    use minic::CheckpointKind;

    fn sample() -> Vec<Record> {
        vec![
            Record::checkpoint(0, CheckpointKind::LoopBegin),
            Record::checkpoint(0, CheckpointKind::BodyBegin),
            Record::access(0x400000, 0x10000000, AccessKind::Read),
            Record::checkpoint(0, CheckpointKind::BodyEnd),
        ]
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink = VecSink::new();
        for r in sample() {
            sink.record(&r);
        }
        assert_eq!(sink.into_records(), sample());
    }

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::new();
        for r in sample() {
            sink.record(&r);
        }
        assert_eq!(sink.accesses, 1);
        assert_eq!(sink.checkpoints, 3);
        assert_eq!(sink.total(), 4);
    }

    #[test]
    fn tee_feeds_both() {
        let mut tee = TeeSink::new(VecSink::new(), CountingSink::new());
        for r in sample() {
            tee.record(&r);
        }
        tee.finish();
        let (v, c) = tee.into_inner();
        assert_eq!(v.records.len(), 4);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn mut_ref_is_a_sink() {
        let mut sink = CountingSink::new();
        {
            let mut by_ref: &mut CountingSink = &mut sink;
            for r in sample() {
                TraceSink::record(&mut by_ref, &r);
            }
        }
        assert_eq!(sink.total(), 4);
    }
}
