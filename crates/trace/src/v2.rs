//! The compressed record codec behind the `foray-trace/v2` container.
//!
//! Memory traces are highly compressible: each static reference advances
//! by a small affine stride (the very property the analyzer recovers),
//! consecutive accesses usually come from the same or a nearby
//! instruction, checkpoints repeat the same loop id in begin/end pairs,
//! and the tag + kind of a record fit a single byte. The v2 codec
//! exploits all four with *length-tagged deltas*: every field's byte
//! count is stored in the packed byte, and the fields themselves are raw
//! truncated little-endian integers —
//!
//! ```text
//! checkpoint  1 byte   packed: 0b0LLs_kk01, kk = kind ∈ {0,1,2},
//!                      s = "same loop id as the previous checkpoint",
//!                      LL = loop-id bytes − 1 (zero when s = 1)
//!             ≤4 bytes loop id, unsigned little-endian — only when s = 0
//! access      1 byte   packed: 0bIIAA_sw10, w = write bit,
//!                      s = "same instr as the previous access",
//!                      II = instr-delta bytes − 1 (zero when s = 1),
//!                      AA = addr-delta bytes − 1
//!             ≤4 bytes instr − prev_instr, sign-extended LE — when s = 0
//!             ≤4 bytes addr − table[slot(instr)], sign-extended LE
//! ```
//!
//! Tagging lengths up front (the stream-vbyte idea) rather than chaining
//! continuation bits (LEB128) matters twice. A sign-extended byte covers
//! [-128, 127] where a zigzag varint byte covers [-64, 63], so records
//! are never larger and often smaller. And the decoder learns a record's
//! length from its first byte alone — no data-dependent scan over
//! continuation bits — so the bulk decoder can select each length
//! through a predicted branch and keep the record-to-record position
//! chain off the load path (see `fast_step`). Decode runs within ~25%
//! of fixed-width v1 record throughput on ~4x fewer bytes: far cheaper
//! per file byte, which is what bounds replay from storage.
//!
//! The address delta is **per instruction**, not global: a 256-entry
//! direct-mapped table keyed by the instruction address holds each
//! reference's last address, so interleaved references (`a[i]`, `b[i]`,
//! `c[i]` in one body) each see their own small stride instead of the
//! large jumps between arrays. Slot collisions merely produce larger
//! deltas — encoder and decoder run the same table deterministically, so
//! every `u32` still round-trips (deltas wrap modulo 2³²).
//!
//! The whole [`V2State`] **resets at every block boundary**, which is
//! what makes v2 blocks independently decodable — the checkpoint index
//! can drop a reader into the middle of a file without replaying the
//! prefix. Typical corpus records shrink from the fixed 10 bytes
//! (access) / 6 bytes (checkpoint) of the [v1 codec](crate::binary) to
//! 2 / 1 bytes.
//!
//! Failures are reported with the same typed
//! [`DecodeError`] as v1, offset at the record's packed byte.
//!
//! # Examples
//!
//! ```
//! use minic_trace::v2::{self, V2State};
//! use minic_trace::{AccessKind, Record};
//!
//! let recs = vec![
//!     Record::access(0x400000, 0x1000_0000, AccessKind::Read),
//!     Record::access(0x400000, 0x1000_0004, AccessKind::Read), // stride 4
//! ];
//! let mut out = Vec::new();
//! let mut enc = V2State::default();
//! for r in &recs {
//!     v2::encode_record(&mut enc, r, &mut out);
//! }
//! // First access pays for the absolute values; the second is 2 bytes
//! // (same-instr flag + one-byte stride delta).
//! let mut dec = V2State::default();
//! let (first, n) = v2::decode_one(&out, 0, &mut dec).unwrap();
//! assert_eq!(first, recs[0]);
//! let (second, m) = v2::decode_one(&out[n..], n as u64, &mut dec).unwrap();
//! assert_eq!((second, m), (recs[1], 2));
//! ```

use crate::binary::{DecodeError, DecodeReason};
use crate::record::{Access, AccessKind, InstrAddr, MemAddr, Record};
use minic::{CheckpointKind, LoopId};

/// Record type in the packed byte's low two bits (matching the v1 tags).
const TYPE_CHECKPOINT: u8 = 0x01;
const TYPE_ACCESS: u8 = 0x02;

/// Access bit 3: the instr equals the previous access's instr, so no
/// instr delta follows (and the II length bits must be zero).
const FLAG_SAME_INSTR: u8 = 0x08;
/// Checkpoint bit 4: the loop id equals the previous checkpoint's, so no
/// loop id follows (and the LL length bits must be zero).
const FLAG_SAME_LOOP: u8 = 0x10;

/// Upper bound on the encoded size of any single v2 record: the packed
/// byte plus two worst-case 4-byte fields.
pub const MAX_RECORD_BYTES: usize = 9;

/// Delta state shared by the encoder and decoder.
///
/// Holds the previous access's instr, the previous checkpoint's loop id,
/// and a 256-entry direct-mapped table of each instruction's last address
/// (see the module docs). Both sides must reset it
/// (`V2State::default()`) at every block boundary so blocks stay
/// independently decodable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct V2State {
    prev_instr: u32,
    prev_loop: u32,
    addr_table: [u32; 256],
}

impl Default for V2State {
    fn default() -> Self {
        Self { prev_instr: 0, prev_loop: 0, addr_table: [0; 256] }
    }
}

/// Direct-mapped `addr_table` slot for an instruction address. Word
/// addressing (instrs are 4 apart) means dropping the two low bits, so
/// any 1KiB window of code maps collision-free — and a hot loop body is
/// far smaller than that. A shift-and-mask rather than a multiplicative
/// hash keeps the slot off the decode critical path (`instr` → slot →
/// table load → `addr`); collisions beyond the window only cost
/// compression, never correctness, since both sides stay in lockstep.
#[inline]
fn slot(instr: u32) -> usize {
    ((instr >> 2) & 0xff) as usize
}

/// Minimal sign-extended little-endian length (1..=4 bytes) for `d`.
#[inline]
fn signed_len(d: i32) -> usize {
    if (-0x80..0x80).contains(&d) {
        1
    } else if (-0x8000..0x8000).contains(&d) {
        2
    } else if (-0x80_0000..0x80_0000).contains(&d) {
        3
    } else {
        4
    }
}

/// Minimal unsigned little-endian length (1..=4 bytes) for `v`.
#[inline]
fn unsigned_len(v: u32) -> usize {
    1 + usize::from(v > 0xff) + usize::from(v > 0xffff) + usize::from(v > 0xff_ffff)
}

/// Appends the low `n` bytes of `v`, little-endian.
#[inline]
fn push_le(v: u32, n: usize, out: &mut Vec<u8>) {
    out.extend_from_slice(&v.to_le_bytes()[..n]);
}

/// Little-endian unsigned load of a 1..=4 byte field.
#[inline]
fn load_le(bytes: &[u8]) -> u32 {
    let mut v = 0u32;
    for (i, &b) in bytes.iter().enumerate() {
        v |= (b as u32) << (8 * i);
    }
    v
}

/// Sign-extends the low `n` bytes (1..=4) of `raw`.
#[inline]
fn sext(raw: u32, n: usize) -> i32 {
    let sh = 32 - 8 * n as u32;
    ((raw << sh) as i32) >> sh
}

/// Zero-extends the low `n` bytes (1..=4) of `raw`.
#[inline]
fn zext(raw: u32, n: usize) -> u32 {
    let sh = 32 - 8 * n as u32;
    (raw << sh) >> sh
}

fn checkpoint_kind_bits(kind: CheckpointKind) -> u8 {
    match kind {
        CheckpointKind::LoopBegin => 0,
        CheckpointKind::BodyBegin => 1,
        CheckpointKind::BodyEnd => 2,
    }
}

fn checkpoint_kind_from_bits(bits: u8) -> Option<CheckpointKind> {
    Some(match bits {
        0 => CheckpointKind::LoopBegin,
        1 => CheckpointKind::BodyBegin,
        2 => CheckpointKind::BodyEnd,
        _ => return None,
    })
}

/// Appends one record in v2 encoding, updating the delta state.
pub fn encode_record(state: &mut V2State, rec: &Record, out: &mut Vec<u8>) {
    match rec {
        Record::Checkpoint { loop_id, kind } => {
            let packed = TYPE_CHECKPOINT | (checkpoint_kind_bits(*kind) << 2);
            if loop_id.0 == state.prev_loop {
                out.push(packed | FLAG_SAME_LOOP);
            } else {
                let n = unsigned_len(loop_id.0);
                out.push(packed | (((n - 1) as u8) << 5));
                push_le(loop_id.0, n, out);
                state.prev_loop = loop_id.0;
            }
        }
        Record::Access(a) => {
            let write_bit = match a.kind {
                AccessKind::Read => 0,
                AccessKind::Write => 1,
            };
            let mut packed = TYPE_ACCESS | (write_bit << 2);
            let s = slot(a.instr.0);
            let addr_delta = a.addr.0.wrapping_sub(state.addr_table[s]) as i32;
            let alen = signed_len(addr_delta);
            packed |= ((alen - 1) as u8) << 4;
            if a.instr.0 == state.prev_instr {
                out.push(packed | FLAG_SAME_INSTR);
            } else {
                let instr_delta = a.instr.0.wrapping_sub(state.prev_instr) as i32;
                let ilen = signed_len(instr_delta);
                out.push(packed | (((ilen - 1) as u8) << 6));
                push_le(instr_delta as u32, ilen, out);
                state.prev_instr = a.instr.0;
            }
            push_le(addr_delta as u32, alen, out);
            state.addr_table[s] = a.addr.0;
        }
    }
}

/// Encodes a whole record slice as one v2 stream (fresh delta state, as at
/// a block boundary).
pub fn to_bytes(records: &[Record]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * 3);
    let mut state = V2State::default();
    for r in records {
        encode_record(&mut state, r, &mut out);
    }
    out
}

/// Decodes the record starting at `bytes[0]`, reporting errors at absolute
/// offset `base` and updating the delta state. Returns the record and its
/// encoded length.
///
/// # Errors
///
/// [`DecodeError`] with [`DecodeReason::BadTag`] on an unknown or
/// contradictory packed byte (bad type, reserved bit set, or a "same"
/// flag combined with non-zero length bits),
/// [`DecodeReason::BadCheckpointKind`] on an out-of-range kind, and
/// [`DecodeReason::Truncated`] when the stream ends mid-record.
#[inline]
pub fn decode_one(
    bytes: &[u8],
    base: u64,
    state: &mut V2State,
) -> Result<(Record, usize), DecodeError> {
    let err = |reason| DecodeError { offset: base, reason };
    let Some(&packed) = bytes.first() else {
        return Err(err(DecodeReason::Truncated { needed: 1, available: 0 }));
    };
    match packed & 0x03 {
        TYPE_CHECKPOINT => {
            if packed & 0x80 != 0 {
                return Err(err(DecodeReason::BadTag(packed)));
            }
            let kind_bits = (packed >> 2) & 0x03;
            let kind = checkpoint_kind_from_bits(kind_bits)
                .ok_or_else(|| err(DecodeReason::BadCheckpointKind(kind_bits)))?;
            if packed & FLAG_SAME_LOOP != 0 {
                if packed & 0x60 != 0 {
                    return Err(err(DecodeReason::BadTag(packed)));
                }
                return Ok((Record::Checkpoint { loop_id: LoopId(state.prev_loop), kind }, 1));
            }
            let n = ((packed >> 5) & 0x03) as usize + 1;
            let Some(field) = bytes.get(1..1 + n) else {
                return Err(err(DecodeReason::Truncated { needed: 1 + n, available: bytes.len() }));
            };
            let loop_id = load_le(field);
            state.prev_loop = loop_id;
            Ok((Record::Checkpoint { loop_id: LoopId(loop_id), kind }, 1 + n))
        }
        TYPE_ACCESS => {
            let same = packed & FLAG_SAME_INSTR != 0;
            if same && packed & 0xc0 != 0 {
                return Err(err(DecodeReason::BadTag(packed)));
            }
            let ilen = if same { 0 } else { ((packed >> 6) & 0x03) as usize + 1 };
            let alen = ((packed >> 4) & 0x03) as usize + 1;
            let needed = 1 + ilen + alen;
            if bytes.len() < needed {
                return Err(err(DecodeReason::Truncated { needed, available: bytes.len() }));
            }
            let instr = if same {
                state.prev_instr
            } else {
                let d = sext(load_le(&bytes[1..1 + ilen]), ilen);
                let i = state.prev_instr.wrapping_add(d as u32);
                state.prev_instr = i;
                i
            };
            let s = slot(instr);
            let d = sext(load_le(&bytes[1 + ilen..needed]), alen);
            let addr = state.addr_table[s].wrapping_add(d as u32);
            state.addr_table[s] = addr;
            let kind = if packed & 0x04 != 0 { AccessKind::Write } else { AccessKind::Read };
            let access = Access { instr: InstrAddr(instr), addr: MemAddr(addr), kind };
            Ok((Record::Access(access), needed))
        }
        _ => Err(err(DecodeReason::BadTag(packed))),
    }
}

/// Per-packed-byte fast-path dispatch table.
///
/// `0` marks bytes that need the careful path (unknown type, reserved
/// bit, out-of-range checkpoint kind, or a "same" flag contradicting
/// non-zero length bits). One L1-hot load per record thus subsumes every
/// per-flag validity branch into a single zero test, and a nonzero entry
/// guarantees the invariants the [`fast_step`] dispatch arms rely on
/// (e.g. a "same" flag's length bits really are zero). Nonzero values
/// also pack the record's total encoded length into bits 0..4 and, for
/// an access, the instr-field length into bits 4..7 (zero when
/// `FLAG_SAME_INSTR`) — the fast path recomputes those per dispatch arm
/// as constants and `debug_assert!`s them against this table.
const INFO: [u8; 256] = {
    let mut t = [0u8; 256];
    let mut b = 0usize;
    while b < 256 {
        let by = b as u8;
        match by & 0x03 {
            TYPE_CHECKPOINT if (by >> 2) & 0x03 != 3 && by & 0x80 == 0 => {
                if by & FLAG_SAME_LOOP != 0 {
                    if by & 0x60 == 0 {
                        t[b] = 1;
                    }
                } else {
                    t[b] = 2 + ((by >> 5) & 0x03);
                }
            }
            TYPE_ACCESS => {
                let alen = ((by >> 4) & 0x03) + 1;
                if by & FLAG_SAME_INSTR != 0 {
                    if by & 0xc0 == 0 {
                        t[b] = 1 + alen;
                    }
                } else {
                    let ioff = ((by >> 6) & 0x03) + 1;
                    t[b] = (1 + ioff + alen) | (ioff << 4);
                }
            }
            _ => {}
        }
        b += 1;
    }
    t
};

/// Checkpoint kinds by their two kind bits. Index 3 is unreachable past
/// [`INFO`] but must hold something; the table load replaces the
/// conditional-move chain the optimizer emits for the 2-bit match.
const CHECKPOINT_KINDS: [CheckpointKind; 4] = [
    CheckpointKind::LoopBegin,
    CheckpointKind::BodyBegin,
    CheckpointKind::BodyEnd,
    CheckpointKind::BodyEnd,
];

/// One fast-path decode attempt at `bytes[start]`, for callers that have
/// already checked a worst-case record fits ([`MAX_RECORD_BYTES`]) and
/// hold the record's packed byte `b` (`== bytes[start]`) in a register.
///
/// With that guarantee every byte the record could touch is known in
/// bounds: one [`INFO`] zero test validates the packed byte, and one
/// wide load covers all fields of either record type — never a
/// data-dependent scan.
///
/// The loop-carried scalars (`prev_instr`, `prev_loop`) travel by value —
/// in, and back out in the return tuple alongside the record and the next
/// position — so a caller's decode loop keeps them in registers instead
/// of round-tripping a `&mut` state through memory every record (see
/// [`decode_fold`]). Only the address table, inherently memory, is passed
/// by reference. Returns `None` on any packed byte that needs the careful
/// path (unknown type, reserved bit, out-of-range kind, contradictory
/// flags); the table is untouched in that case.
///
/// The step is an interpreter-style dispatch: a short branch tree on the
/// packed byte's field-width bits selects a monomorphized arm
/// ([`acc_new`], [`acc_same`], [`cp_new`]) in which every field offset —
/// and crucially the record *length* — is a compile-time constant. The
/// length sequences the caller's decode loop, so leaving it to
/// data-dependent arithmetic chains the packed-byte load into every later
/// record's position (load → ALU → next load, ~10 cycles per record). As
/// a branch target the length is *speculated* instead: the predictor
/// keeps the position chain at the cost of a constant add, and the loads
/// only verify the prediction — the same reason the v1 decoder's
/// fixed-per-type records decode fast.
#[inline(always)]
fn fast_step(
    bytes: &[u8],
    start: usize,
    b: u8,
    prev_instr: u32,
    prev_loop: u32,
    table: &mut [u32; 256],
) -> Option<(Record, usize, u32, u32)> {
    if INFO[b as usize] == 0 {
        return None;
    }
    // One wide load covers the fields of either record type (≤8 bytes
    // after the packed byte); everything below is register arithmetic.
    let w = u64::from_le_bytes(bytes[start + 1..start + 9].try_into().expect("fast-path window"));
    let (rec, len, prev_instr, prev_loop) = if b & 0x03 == TYPE_ACCESS {
        if b & FLAG_SAME_INSTR != 0 {
            // Validity (via `INFO`) pinned the instr-width bits to zero,
            // so the high nibble is exactly the addr-width bits.
            let (rec, len) = match b >> 4 {
                0 => acc_same::<1>(b, w, prev_instr, table),
                1 => acc_same::<2>(b, w, prev_instr, table),
                2 => acc_same::<3>(b, w, prev_instr, table),
                _ => acc_same::<4>(b, w, prev_instr, table),
            };
            (rec, len, prev_instr, prev_loop)
        } else {
            // High nibble = instr-width bits (6–7) over addr-width
            // bits (4–5); each combination is its own arm.
            let (rec, len, instr) = match b >> 4 {
                0 => acc_new::<1, 1>(b, w, prev_instr, table),
                1 => acc_new::<1, 2>(b, w, prev_instr, table),
                2 => acc_new::<1, 3>(b, w, prev_instr, table),
                3 => acc_new::<1, 4>(b, w, prev_instr, table),
                4 => acc_new::<2, 1>(b, w, prev_instr, table),
                5 => acc_new::<2, 2>(b, w, prev_instr, table),
                6 => acc_new::<2, 3>(b, w, prev_instr, table),
                7 => acc_new::<2, 4>(b, w, prev_instr, table),
                8 => acc_new::<3, 1>(b, w, prev_instr, table),
                9 => acc_new::<3, 2>(b, w, prev_instr, table),
                10 => acc_new::<3, 3>(b, w, prev_instr, table),
                11 => acc_new::<3, 4>(b, w, prev_instr, table),
                12 => acc_new::<4, 1>(b, w, prev_instr, table),
                13 => acc_new::<4, 2>(b, w, prev_instr, table),
                14 => acc_new::<4, 3>(b, w, prev_instr, table),
                _ => acc_new::<4, 4>(b, w, prev_instr, table),
            };
            (rec, len, instr, prev_loop)
        }
    } else if b & FLAG_SAME_LOOP != 0 {
        // The single most common record in loop traces: one byte.
        let kind = CHECKPOINT_KINDS[((b >> 2) & 0x03) as usize];
        (Record::Checkpoint { loop_id: LoopId(prev_loop), kind }, 1, prev_instr, prev_loop)
    } else {
        let (rec, len, loop_id) = match (b >> 5) & 0x03 {
            0 => cp_new::<1>(b, w),
            1 => cp_new::<2>(b, w),
            2 => cp_new::<3>(b, w),
            _ => cp_new::<4>(b, w),
        };
        (rec, len, prev_instr, loop_id)
    };
    debug_assert_eq!(len, (INFO[b as usize] & 0x0f) as usize);
    Some((rec, start + len, prev_instr, prev_loop))
}

/// [`fast_step`] arm: access with an explicit `IBYTES`-byte instruction
/// delta and an `ABYTES`-byte address delta. Returns the record, the total
/// record length (constant), and the new previous-instruction value.
#[inline(always)]
fn acc_new<const IBYTES: usize, const ABYTES: usize>(
    b: u8,
    w: u64,
    prev_instr: u32,
    table: &mut [u32; 256],
) -> (Record, usize, u32) {
    let instr = prev_instr.wrapping_add(sext(w as u32, IBYTES) as u32);
    let s = slot(instr);
    let d = sext((w >> (8 * IBYTES)) as u32, ABYTES);
    let addr = table[s].wrapping_add(d as u32);
    table[s] = addr;
    let kind = if b & 0x04 != 0 { AccessKind::Write } else { AccessKind::Read };
    (
        Record::Access(Access { instr: InstrAddr(instr), addr: MemAddr(addr), kind }),
        1 + IBYTES + ABYTES,
        instr,
    )
}

/// [`fast_step`] arm: access repeating the previous instruction, with an
/// `ABYTES`-byte address delta.
#[inline(always)]
fn acc_same<const ABYTES: usize>(
    b: u8,
    w: u64,
    prev_instr: u32,
    table: &mut [u32; 256],
) -> (Record, usize) {
    let s = slot(prev_instr);
    let d = sext(w as u32, ABYTES);
    let addr = table[s].wrapping_add(d as u32);
    table[s] = addr;
    let kind = if b & 0x04 != 0 { AccessKind::Write } else { AccessKind::Read };
    (Record::Access(Access { instr: InstrAddr(prev_instr), addr: MemAddr(addr), kind }), 1 + ABYTES)
}

/// [`fast_step`] arm: checkpoint with an explicit `LBYTES`-byte loop id.
#[inline(always)]
fn cp_new<const LBYTES: usize>(b: u8, w: u64) -> (Record, usize, u32) {
    let kind = CHECKPOINT_KINDS[((b >> 2) & 0x03) as usize];
    let loop_id = zext(w as u32, LBYTES);
    (Record::Checkpoint { loop_id: LoopId(loop_id), kind }, 1 + LBYTES, loop_id)
}

/// Decodes the record at `bytes[*pos]`, advancing `*pos` and reporting
/// errors at `base + *pos`.
///
/// The per-record decode step behind the framed readers' `next()`: the
/// [`fast_step`] window when a worst-case record fits in the remaining
/// input, the careful [`decode_one`] — which checks per byte and produces
/// the exact typed error — near the end of the input or on a malformed
/// packed byte. Bulk consumers should prefer [`decode_fold`], which keeps
/// the loop-carried scalars in registers across records.
///
/// # Errors
///
/// The same typed [`DecodeError`]s as [`decode_one`], offset at the
/// record's packed byte.
#[inline(always)]
pub(crate) fn decode_step(
    bytes: &[u8],
    pos: &mut usize,
    base: u64,
    state: &mut V2State,
) -> Result<Record, DecodeError> {
    let start = *pos;
    if bytes.len() - start >= MAX_RECORD_BYTES {
        if let Some((rec, next, prev_instr, prev_loop)) = fast_step(
            bytes,
            start,
            bytes[start],
            state.prev_instr,
            state.prev_loop,
            &mut state.addr_table,
        ) {
            *pos = next;
            state.prev_instr = prev_instr;
            state.prev_loop = prev_loop;
            return Ok(rec);
        }
    }
    let (rec, n) = careful(bytes, start, base, state)?;
    *pos = start + n;
    Ok(rec)
}

/// Careful-path fallback shared by [`decode_step`] and [`decode_fold`]:
/// truncation window, malformed packed byte, or end of input —
/// [`decode_one`] distinguishes them. Out of line so the fast paths stay
/// compact.
#[cold]
fn careful(
    bytes: &[u8],
    start: usize,
    base: u64,
    state: &mut V2State,
) -> Result<(Record, usize), DecodeError> {
    decode_one(&bytes[start..], base + start as u64, state)
}

/// Folds every record from `bytes[*pos]` to the end of the payload into
/// `acc` — the bulk path behind the framed readers' `fold`.
///
/// Functionally [`decode_step`] in a loop, but the loop-carried scalars
/// (position, previous instr, previous loop id) live in locals: threaded
/// through a `&mut V2State` they are stored and reloaded once per record
/// — the careful fallback's escaping pointer keeps the compiler from
/// register-promoting them — which puts a store-to-load forward on the
/// chain that sequences record boundaries. Here the fallback syncs the
/// state only on its own cold edge. `*pos` and `state` are written back
/// on every exit, so a decode error leaves them at the failed record
/// exactly as a `decode_step` loop would, and the returned error carries
/// the same offset.
pub(crate) fn decode_fold<B>(
    bytes: &[u8],
    pos: &mut usize,
    base: u64,
    state: &mut V2State,
    acc: B,
    mut f: impl FnMut(B, Record) -> B,
) -> (B, Option<DecodeError>) {
    let n = bytes.len();
    let mut p = *pos;
    let mut prev_instr = state.prev_instr;
    let mut prev_loop = state.prev_loop;
    let mut acc = acc;
    let err = 'outer: loop {
        if p >= n {
            break None;
        }
        // Tail window or a packed byte the fast path rejected: decode one
        // record carefully, then rejoin.
        if n - p < MAX_RECORD_BYTES || INFO[bytes[p] as usize] == 0 {
            state.prev_instr = prev_instr;
            state.prev_loop = prev_loop;
            match careful(bytes, p, base, state) {
                Ok((rec, len)) => {
                    p += len;
                    prev_instr = state.prev_instr;
                    prev_loop = state.prev_loop;
                    acc = f(acc, rec);
                    continue;
                }
                Err(e) => break Some(e),
            }
        }
        // Fast runs: each `fast_step` advances `p` by a branch-selected
        // constant, so the packed-byte load below only verifies the
        // predictor's choice instead of sequencing the next iteration
        // (see `fast_step`). A worst-case record fits at `p` on entry.
        loop {
            let Some((rec, next, pi, pl)) =
                fast_step(bytes, p, bytes[p], prev_instr, prev_loop, &mut state.addr_table)
            else {
                // `p` untouched: the outer loop re-dispatches to careful.
                continue 'outer;
            };
            p = next;
            prev_instr = pi;
            prev_loop = pl;
            acc = f(acc, rec);
            if n - p < MAX_RECORD_BYTES {
                continue 'outer;
            }
        }
    };
    *pos = p;
    state.prev_instr = prev_instr;
    state.prev_loop = prev_loop;
    (acc, err)
}

/// Decodes a whole block payload (fresh delta state, as at a block
/// boundary), appending to `out` and reporting errors at `base` plus the
/// record's offset within `bytes`.
///
/// # Errors
///
/// The first [`DecodeError`] in the stream; records decoded before it
/// remain appended to `out`.
pub fn decode_block(bytes: &[u8], base: u64, out: &mut Vec<Record>) -> Result<(), DecodeError> {
    let mut state = V2State::default();
    let mut pos = 0usize;
    let ((), err) = decode_fold(bytes, &mut pos, base, &mut state, (), |(), rec| out.push(rec));
    err.map_or(Ok(()), Err)
}

/// Decodes a whole v2 stream (fresh delta state) into an owned vector.
///
/// # Errors
///
/// The first [`DecodeError`] in the stream.
pub fn from_bytes(bytes: &[u8]) -> Result<Vec<Record>, DecodeError> {
    let mut out = Vec::new();
    decode_block(bytes, 0, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Record> {
        vec![
            Record::checkpoint(0, CheckpointKind::LoopBegin),
            Record::checkpoint(0, CheckpointKind::BodyBegin),
            Record::access(0x4002a0, 0x7fff5934, AccessKind::Write),
            Record::access(0x4002a4, 0x7fff5938, AccessKind::Read),
            Record::access(0x4002a0, 0x7fff5934, AccessKind::Write),
            Record::checkpoint(200_000, CheckpointKind::BodyEnd),
        ]
    }

    #[test]
    fn round_trip() {
        let recs = sample();
        assert_eq!(from_bytes(&to_bytes(&recs)).unwrap(), recs);
    }

    #[test]
    fn strided_accesses_compress_to_two_bytes() {
        let recs: Vec<Record> = (0..100)
            .map(|i| Record::access(0x400000, 0x1000_0000 + 4 * i, AccessKind::Read))
            .collect();
        let bytes = to_bytes(&recs);
        // First record pays for the absolute values (tag + 3-byte instr
        // delta + 4-byte addr delta); every subsequent one is a
        // same-instr tag + 1-byte stride delta.
        assert_eq!(bytes.len(), 8 + 99 * 2);
        assert_eq!(from_bytes(&bytes).unwrap(), recs);
    }

    #[test]
    fn interleaved_references_each_keep_their_own_stride() {
        // Three references walking three far-apart arrays in lockstep: the
        // per-instr address table must keep each delta at one byte even
        // though consecutive accesses jump between arrays.
        let bases = [0x1000_0000u32, 0x5000_0000, 0x9000_0000];
        let recs: Vec<Record> = (0..90)
            .map(|i| {
                let r = (i % 3) as usize;
                Record::access(0x400000 + 4 * (i % 3), bases[r] + 4 * (i / 3), AccessKind::Read)
            })
            .collect();
        let bytes = to_bytes(&recs);
        // After the first round trip through the three references, every
        // record is tag + small instr delta + 1-byte per-instr stride:
        // 3 bytes, not the 5-6 a single global predecessor would need.
        assert!(bytes.len() <= 30 + 87 * 3, "interleaved encoding too large: {}", bytes.len());
        assert_eq!(from_bytes(&bytes).unwrap(), recs);
    }

    #[test]
    fn repeated_loop_checkpoints_are_one_byte() {
        let recs = vec![
            Record::checkpoint(7, CheckpointKind::LoopBegin),
            Record::checkpoint(7, CheckpointKind::BodyBegin),
            Record::checkpoint(7, CheckpointKind::BodyEnd),
        ];
        let bytes = to_bytes(&recs);
        // First checkpoint: tag + 1-byte loop id. The next two reuse the
        // loop id via the same-loop flag: one byte each.
        assert_eq!(bytes.len(), 2 + 1 + 1);
        assert_eq!(from_bytes(&bytes).unwrap(), recs);
    }

    #[test]
    fn extreme_values_round_trip() {
        let recs = vec![
            Record::access(u32::MAX, 0, AccessKind::Read),
            Record::access(0, u32::MAX, AccessKind::Write),
            Record::access(u32::MAX, u32::MAX, AccessKind::Read),
            Record::checkpoint(u32::MAX, CheckpointKind::LoopBegin),
        ];
        assert_eq!(from_bytes(&to_bytes(&recs)).unwrap(), recs);
    }

    #[test]
    fn field_lengths_are_minimal_and_round_trip() {
        for (d, n) in [
            (0i32, 1),
            (127, 1),
            (-128, 1),
            (128, 2),
            (-129, 2),
            (0x7fff, 2),
            (-0x8000, 2),
            (0x8000, 3),
            (-0x8001, 3),
            (0x7f_ffff, 3),
            (-0x80_0000, 3),
            (0x80_0000, 4),
            (i32::MAX, 4),
            (i32::MIN, 4),
        ] {
            assert_eq!(signed_len(d), n, "signed_len({d})");
            let mut out = Vec::new();
            push_le(d as u32, n, &mut out);
            assert_eq!(sext(load_le(&out), n), d, "round trip of {d} in {n} bytes");
        }
        for (v, n) in [
            (0u32, 1),
            (255, 1),
            (256, 2),
            (65535, 2),
            (65536, 3),
            (0xff_ffff, 3),
            (0x100_0000, 4),
            (u32::MAX, 4),
        ] {
            assert_eq!(unsigned_len(v), n, "unsigned_len({v})");
            let mut out = Vec::new();
            push_le(v, n, &mut out);
            assert_eq!(zext(load_le(&out), n), v, "round trip of {v} in {n} bytes");
        }
    }

    #[test]
    fn rejects_bad_tags_truncation_and_contradictory_lengths() {
        let err = from_bytes(&[0x00]).unwrap_err();
        assert_eq!(err.reason, DecodeReason::BadTag(0x00));
        let err = from_bytes(&[0x03]).unwrap_err();
        assert_eq!(err.reason, DecodeReason::BadTag(0x03));
        // Checkpoint with the reserved top bit set.
        let err = from_bytes(&[0x81, 0]).unwrap_err();
        assert_eq!(err.reason, DecodeReason::BadTag(0x81));
        // A same-loop checkpoint carrying loop-id length bits.
        let err = from_bytes(&[0x31]).unwrap_err();
        assert_eq!(err.reason, DecodeReason::BadTag(0x31));
        // Checkpoint kind 3 is out of range.
        let err = from_bytes(&[TYPE_CHECKPOINT | (3 << 2), 0]).unwrap_err();
        assert_eq!(err.reason, DecodeReason::BadCheckpointKind(3));
        // A same-instr access carrying instr-delta length bits.
        let err = from_bytes(&[0x4a, 0]).unwrap_err();
        assert_eq!(err.reason, DecodeReason::BadTag(0x4a));
        // Access cut off inside its address delta.
        let err = from_bytes(&[TYPE_ACCESS, 0]).unwrap_err();
        assert!(matches!(err.reason, DecodeReason::Truncated { .. }), "{:?}", err.reason);
        // Checkpoint cut off inside a 4-byte loop id.
        let err = from_bytes(&[TYPE_CHECKPOINT | (3 << 5), 1, 2, 3]).unwrap_err();
        assert!(matches!(err.reason, DecodeReason::Truncated { .. }), "{:?}", err.reason);
    }

    #[test]
    fn error_offsets_point_at_the_failing_record() {
        let mut bytes = to_bytes(&sample()[..2]);
        let good = bytes.len();
        bytes.push(0x00);
        let err = from_bytes(&bytes).unwrap_err();
        assert_eq!(err.offset, good as u64);
    }

    #[test]
    fn block_boundary_state_reset_is_the_callers_contract() {
        // Encoding two halves with fresh states and decoding them with
        // fresh states must agree with the one-shot encoding record-wise.
        let recs = sample();
        let (a, b) = recs.split_at(3);
        let (mut left, mut right) = (Vec::new(), Vec::new());
        let mut s = V2State::default();
        for r in a {
            encode_record(&mut s, r, &mut left);
        }
        let mut s = V2State::default();
        for r in b {
            encode_record(&mut s, r, &mut right);
        }
        let mut decoded = from_bytes(&left).unwrap();
        decoded.extend(from_bytes(&right).unwrap());
        assert_eq!(decoded, recs);
    }
}
