//! The `foray-trace/v1` on-disk trace container.
//!
//! The raw [binary codec](crate::binary) is a bare record concatenation: it
//! cannot be identified on disk, versioned, or validated without decoding
//! every byte. This module frames it into a self-describing file format so
//! traces can be recorded once and re-analyzed many times (the paper's
//! offline mode at scales where re-profiling is the bottleneck):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"FORAYTRC"
//! 8       2     format version, u16 LE (this module writes 1)
//! 10      2     reserved, must be 0
//! 12      4     writer block-capacity hint in bytes, u32 LE
//! 16      ..    length-prefixed blocks, then the terminator + footer
//!
//! block   4     payload length N in bytes, u32 LE (N = 0 terminates)
//!         4     record count in this block, u32 LE
//!         N     payload: concatenated binary records
//!
//! footer  8     total record count, u64 LE (after the N = 0 terminator)
//! ```
//!
//! All integers are little-endian. Blocks make streaming writes cheap (one
//! `write` syscall per ~64 KiB, no seeking back to patch a header), let
//! readers detect truncation at block granularity, and keep the in-memory
//! working set of [`TraceReader`] at one block regardless of trace length.
//! The footer double-checks that the stream was finished, not chopped.
//!
//! Three consumers cover the access patterns:
//!
//! * [`TraceFile`] — whole file in one buffer, records decoded zero-copy by
//!   [`FileRecords`]. This is the memory-mapped shape; the workspace denies
//!   `unsafe` code, so the buffer comes from one [`std::fs::read`] instead
//!   of `mmap(2)` — same single-allocation behaviour, no page-cache
//!   sharing.
//! * [`TraceReader`] — constant-memory streaming over any [`Read`].
//! * [`TraceWriter`] — a [`TraceSink`], so it can ride a profiling run and
//!   write the file without ever materializing a `Vec<Record>`.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use minic_trace::file::{TraceFile, TraceWriter};
//! use minic_trace::{AccessKind, Record, TraceSink};
//!
//! let trace = vec![
//!     Record::checkpoint(0, minic::CheckpointKind::LoopBegin),
//!     Record::access(0x400000, 0x1000_0000, AccessKind::Read),
//! ];
//! let mut writer = TraceWriter::new(Vec::new());
//! for r in &trace {
//!     writer.record(r);
//! }
//! writer.finish();
//! let file = TraceFile::from_bytes(writer.into_inner())?;
//! assert_eq!(file.record_count(), 2);
//! let decoded: Result<Vec<Record>, _> = file.records().collect();
//! assert_eq!(decoded?, trace);
//! # Ok(())
//! # }
//! ```

use crate::binary::{self, DecodeError, MAX_RECORD_BYTES};
use crate::record::Record;
use crate::sink::TraceSink;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

/// The 8 magic bytes opening every trace file.
pub const MAGIC: [u8; 8] = *b"FORAYTRC";

/// The format version this module reads and writes.
pub const VERSION: u16 = 1;

/// Fixed header size: magic + version + reserved + block hint.
pub const HEADER_BYTES: usize = 16;

/// Default block payload capacity for [`TraceWriter`].
pub const DEFAULT_BLOCK_BYTES: usize = 64 * 1024;

/// Upper bound a reader accepts for one block's payload — a corrupt length
/// field must not trigger a gigabyte allocation.
const MAX_BLOCK_BYTES: u32 = 1 << 30;

/// Why a trace file failed to open or replay.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic([u8; 8]),
    /// The file's format version is newer than this reader.
    UnsupportedVersion(u16),
    /// The reserved header field is non-zero.
    BadHeader,
    /// The file ends mid-structure (`what` names the missing piece).
    Truncated {
        /// Byte offset where the missing structure should start.
        offset: u64,
        /// Which structure is cut off.
        what: &'static str,
    },
    /// A block's payload failed to decode; the offset is absolute.
    Decode(DecodeError),
    /// A block declares a payload length past the sanity bound.
    OversizedBlock {
        /// Byte offset of the block header.
        offset: u64,
        /// The declared payload length.
        len: u32,
    },
    /// A block's payload decoded to a different number of records than its
    /// header declared.
    BlockCountMismatch {
        /// Byte offset of the block header.
        offset: u64,
        /// Record count the block header declared.
        declared: u32,
        /// Records actually decoded from the payload.
        decoded: u32,
    },
    /// The footer's total record count disagrees with the blocks.
    CountMismatch {
        /// Count the footer declared.
        declared: u64,
        /// Records actually seen across all blocks.
        decoded: u64,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "trace file i/o: {e}"),
            ReadError::BadMagic(m) => write!(f, "not a foray-trace file (magic {m:02x?})"),
            ReadError::UnsupportedVersion(v) => {
                write!(f, "unsupported foray-trace version {v} (reader supports {VERSION})")
            }
            ReadError::BadHeader => write!(f, "corrupt foray-trace header (reserved field set)"),
            ReadError::Truncated { offset, what } => {
                write!(f, "trace file truncated at byte {offset}: missing {what}")
            }
            ReadError::Decode(e) => write!(f, "trace file {e}"),
            ReadError::OversizedBlock { offset, len } => {
                write!(f, "block at byte {offset} declares an oversized payload ({len} bytes)")
            }
            ReadError::BlockCountMismatch { offset, declared, decoded } => {
                write!(f, "block at byte {offset} declares {declared} records but holds {decoded}")
            }
            ReadError::CountMismatch { declared, decoded } => {
                write!(f, "footer declares {declared} records but the blocks hold {decoded}")
            }
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn header_bytes(block_hint: u32) -> [u8; HEADER_BYTES] {
    let mut h = [0u8; HEADER_BYTES];
    h[..8].copy_from_slice(&MAGIC);
    h[8..10].copy_from_slice(&VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&block_hint.to_le_bytes());
    h
}

/// Validates a header, returning the writer's block-capacity hint.
fn parse_header(h: &[u8; HEADER_BYTES]) -> Result<u32, ReadError> {
    if h[..8] != MAGIC {
        return Err(ReadError::BadMagic(h[..8].try_into().expect("slice length")));
    }
    let version = u16::from_le_bytes(h[8..10].try_into().expect("slice length"));
    if version != VERSION {
        return Err(ReadError::UnsupportedVersion(version));
    }
    if h[10..12] != [0, 0] {
        return Err(ReadError::BadHeader);
    }
    Ok(u32::from_le_bytes(h[12..16].try_into().expect("slice length")))
}

/// Writes a `foray-trace/v1` file to any [`Write`], buffering records into
/// length-prefixed blocks.
///
/// `TraceWriter` is a [`TraceSink`], so it can sit directly behind the
/// profiler: `minic_sim::run_with_sink(&prog, &cfg, &inputs, &mut writer)`
/// records a trace to disk without ever holding it in memory. Because
/// [`TraceSink::record`] cannot return errors, I/O failures are latched;
/// check [`Self::io_error`] after [`Self::finish`].
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    block: Vec<u8>,
    block_records: u32,
    block_cap: usize,
    total: u64,
    error: Option<io::Error>,
    finished: bool,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps a writer, emitting the file header immediately, with the
    /// default block capacity.
    pub fn new(out: W) -> Self {
        TraceWriter::with_block_bytes(out, DEFAULT_BLOCK_BYTES)
    }

    /// [`Self::new`] with an explicit block payload capacity, clamped to at
    /// least one record and to the readers' block sanity bound (a block may
    /// overshoot the capacity by one record before it flushes, so the upper
    /// clamp leaves that headroom — every written block stays readable).
    pub fn with_block_bytes(out: W, block_cap: usize) -> Self {
        let block_cap =
            block_cap.clamp(MAX_RECORD_BYTES, MAX_BLOCK_BYTES as usize - MAX_RECORD_BYTES);
        let mut w = TraceWriter {
            out,
            // Reserve for the common case only; oversized blocks grow
            // organically instead of pre-claiming up to the 1 GiB bound.
            block: Vec::with_capacity(block_cap.min(DEFAULT_BLOCK_BYTES) + MAX_RECORD_BYTES),
            block_records: 0,
            block_cap,
            total: 0,
            error: None,
            finished: false,
        };
        let header = header_bytes(block_cap as u32);
        if let Err(e) = w.out.write_all(&header) {
            w.error = Some(e);
        }
        w
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.total
    }

    /// First latched I/O error, if any.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Unwraps the inner writer (call [`Self::finish`] first).
    pub fn into_inner(self) -> W {
        self.out
    }

    fn flush_block(&mut self) {
        if self.error.is_some() || self.block.is_empty() {
            return;
        }
        let len = self.block.len() as u32;
        let result = self
            .out
            .write_all(&len.to_le_bytes())
            .and_then(|()| self.out.write_all(&self.block_records.to_le_bytes()))
            .and_then(|()| self.out.write_all(&self.block));
        if let Err(e) = result {
            self.error = Some(e);
        }
        self.block.clear();
        self.block_records = 0;
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    fn record(&mut self, rec: &Record) {
        if self.error.is_some() {
            return;
        }
        binary::encode_record(rec, &mut self.block);
        self.block_records += 1;
        self.total += 1;
        if self.block.len() >= self.block_cap {
            self.flush_block();
        }
    }

    /// Flushes the last block and writes the terminator + footer.
    /// Idempotent: later calls are no-ops.
    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.flush_block();
        if self.error.is_some() {
            return;
        }
        let result = self
            .out
            .write_all(&0u32.to_le_bytes())
            .and_then(|()| self.out.write_all(&0u32.to_le_bytes()))
            .and_then(|()| self.out.write_all(&self.total.to_le_bytes()))
            .and_then(|()| self.out.flush());
        if let Err(e) = result {
            self.error = Some(e);
        }
    }
}

/// Writes a complete record slice as a `foray-trace/v1` stream.
///
/// # Errors
///
/// Propagates the first I/O failure.
pub fn write_to<W: Write>(out: W, records: &[Record]) -> io::Result<u64> {
    let mut w = TraceWriter::new(out);
    for r in records {
        w.record(r);
    }
    w.finish();
    match w.error {
        Some(e) => Err(e),
        None => Ok(w.total),
    }
}

/// Writes a complete record slice to a new `foray-trace/v1` file, returning
/// the record count.
///
/// # Errors
///
/// Propagates file-creation and write failures.
///
/// # Examples
///
/// ```no_run
/// use minic_trace::{file, AccessKind, Record};
/// let recs = vec![Record::access(0x400000, 0x1000_0000, AccessKind::Read)];
/// file::write_file("trace.ftrace", &recs).unwrap();
/// ```
pub fn write_file<P: AsRef<Path>>(path: P, records: &[Record]) -> io::Result<u64> {
    write_to(io::BufWriter::new(std::fs::File::create(path)?), records)
}

/// Maps `read_exact` failures to [`ReadError::Truncated`] when the stream
/// simply ended, so corrupt files report *what* is missing.
fn read_struct<R: Read>(
    input: &mut R,
    buf: &mut [u8],
    offset: u64,
    what: &'static str,
) -> Result<(), ReadError> {
    input.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ReadError::Truncated { offset, what }
        } else {
            ReadError::Io(e)
        }
    })
}

/// Constant-memory streaming reader over any [`Read`]: holds one block in
/// memory at a time, whatever the trace length.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), minic_trace::ReadError> {
/// use minic_trace::{file, AccessKind, Record};
///
/// let recs = vec![Record::access(0x400000, 0x1000_0000, AccessKind::Read)];
/// let mut bytes = Vec::new();
/// file::write_to(&mut bytes, &recs).unwrap();
/// let reader = file::TraceReader::new(bytes.as_slice())?;
/// let decoded: Result<Vec<Record>, _> = reader.collect();
/// assert_eq!(decoded?, recs);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    offset: u64,
    block: Vec<u8>,
    pos: usize,
    block_base: u64,
    block_declared: u32,
    block_decoded: u32,
    total: u64,
    state: ReaderState,
}

#[derive(Debug, PartialEq, Eq)]
enum ReaderState {
    Reading,
    Done,
    Failed,
}

impl<R: Read> TraceReader<R> {
    /// Wraps a reader, consuming and validating the file header.
    ///
    /// # Errors
    ///
    /// [`ReadError::BadMagic`], [`ReadError::UnsupportedVersion`],
    /// [`ReadError::BadHeader`], or an I/O / truncation failure.
    pub fn new(mut input: R) -> Result<Self, ReadError> {
        let mut header = [0u8; HEADER_BYTES];
        read_struct(&mut input, &mut header, 0, "file header")?;
        parse_header(&header)?;
        Ok(TraceReader {
            input,
            offset: HEADER_BYTES as u64,
            block: Vec::new(),
            pos: 0,
            block_base: 0,
            block_declared: 0,
            block_decoded: 0,
            total: 0,
            state: ReaderState::Reading,
        })
    }

    /// Records decoded so far.
    pub fn records_read(&self) -> u64 {
        self.total
    }

    /// Loads the next block; `Ok(false)` means the terminator + footer were
    /// consumed and the stream is complete.
    fn next_block(&mut self) -> Result<bool, ReadError> {
        if self.block_decoded != self.block_declared {
            return Err(ReadError::BlockCountMismatch {
                offset: self.block_base,
                declared: self.block_declared,
                decoded: self.block_decoded,
            });
        }
        let header_offset = self.offset;
        let mut header = [0u8; 8];
        read_struct(&mut self.input, &mut header, header_offset, "block header")?;
        self.offset += 8;
        let len = u32::from_le_bytes(header[..4].try_into().expect("slice length"));
        let count = u32::from_le_bytes(header[4..].try_into().expect("slice length"));
        if len == 0 {
            let mut footer = [0u8; 8];
            read_struct(&mut self.input, &mut footer, self.offset, "footer")?;
            self.offset += 8;
            let declared = u64::from_le_bytes(footer);
            if declared != self.total {
                return Err(ReadError::CountMismatch { declared, decoded: self.total });
            }
            return Ok(false);
        }
        if len > MAX_BLOCK_BYTES {
            return Err(ReadError::OversizedBlock { offset: header_offset, len });
        }
        self.block.resize(len as usize, 0);
        read_struct(&mut self.input, &mut self.block, self.offset, "block payload")?;
        self.block_base = header_offset;
        self.block_declared = count;
        self.block_decoded = 0;
        self.pos = 0;
        self.offset += len as u64;
        Ok(true)
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<Record, ReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.state != ReaderState::Reading {
            return None;
        }
        while self.pos == self.block.len() {
            match self.next_block() {
                Ok(true) => {}
                Ok(false) => {
                    self.state = ReaderState::Done;
                    return None;
                }
                Err(e) => {
                    self.state = ReaderState::Failed;
                    return Some(Err(e));
                }
            }
        }
        // Payload offsets are relative to the block payload start
        // (block_base + the 8-byte block header).
        let abs = self.block_base + 8 + self.pos as u64;
        match binary::decode_one(&self.block[self.pos..], abs) {
            Ok((rec, len)) => {
                self.pos += len;
                self.block_decoded += 1;
                self.total += 1;
                Some(Ok(rec))
            }
            Err(e) => {
                self.state = ReaderState::Failed;
                Some(Err(ReadError::Decode(e)))
            }
        }
    }
}

/// A whole `foray-trace/v1` file held in one buffer, decoded zero-copy.
///
/// [`Self::open`] performs a single bulk read (the workspace forbids
/// `unsafe`, so this is the `mmap` stand-in), validates the header and the
/// block structure up front, and then [`Self::records`] iterates without
/// further allocation. Structure errors (bad magic, truncation, count
/// mismatches) surface at open time; only payload decode errors can appear
/// during iteration.
#[derive(Debug, Clone)]
pub struct TraceFile {
    bytes: Vec<u8>,
    record_count: u64,
    block_hint: u32,
}

impl TraceFile {
    /// Reads and validates a trace file.
    ///
    /// # Errors
    ///
    /// Any [`ReadError`] arising from I/O or file structure.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<TraceFile, ReadError> {
        TraceFile::from_bytes(std::fs::read(path)?)
    }

    /// Validates an in-memory byte buffer as a trace file.
    ///
    /// # Errors
    ///
    /// Any structural [`ReadError`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<TraceFile, ReadError> {
        if bytes.len() < HEADER_BYTES {
            return Err(ReadError::Truncated { offset: bytes.len() as u64, what: "file header" });
        }
        let block_hint = parse_header(bytes[..HEADER_BYTES].try_into().expect("length checked"))?;
        // Walk the block headers (no payload decoding) to validate the
        // frame structure and read the footer.
        let mut pos = HEADER_BYTES;
        let mut declared_total = 0u64;
        loop {
            let Some(header) = bytes.get(pos..pos + 8) else {
                return Err(ReadError::Truncated { offset: pos as u64, what: "block header" });
            };
            let len = u32::from_le_bytes(header[..4].try_into().expect("slice length"));
            let count = u32::from_le_bytes(header[4..].try_into().expect("slice length"));
            if len == 0 {
                let Some(footer) = bytes.get(pos + 8..pos + 16) else {
                    return Err(ReadError::Truncated { offset: pos as u64 + 8, what: "footer" });
                };
                let declared = u64::from_le_bytes(footer.try_into().expect("slice length"));
                if declared != declared_total {
                    return Err(ReadError::CountMismatch { declared, decoded: declared_total });
                }
                break;
            }
            if len > MAX_BLOCK_BYTES {
                return Err(ReadError::OversizedBlock { offset: pos as u64, len });
            }
            if bytes.len() < pos + 8 + len as usize {
                return Err(ReadError::Truncated { offset: pos as u64 + 8, what: "block payload" });
            }
            declared_total += count as u64;
            pos += 8 + len as usize;
        }
        Ok(TraceFile { bytes, record_count: declared_total, block_hint })
    }

    /// Total records in the file (from the block headers, validated against
    /// the footer at open time).
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// The writer's block-capacity hint recorded in the header.
    pub fn block_hint(&self) -> u32 {
        self.block_hint
    }

    /// The raw file bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Iterates the records, decoding zero-copy from the file buffer.
    pub fn records(&self) -> FileRecords<'_> {
        FileRecords {
            bytes: &self.bytes,
            pos: HEADER_BYTES,
            inner: binary::RecordReader::new(&[]),
            block_base: HEADER_BYTES as u64,
            block_declared: 0,
            block_decoded: 0,
            done: false,
        }
    }
}

/// Zero-copy record iterator over a [`TraceFile`] buffer.
///
/// Decodes each block payload in place with
/// [`RecordReader`](binary::RecordReader); no per-record or per-block
/// allocation. Fuses after the first error.
#[derive(Debug, Clone)]
pub struct FileRecords<'a> {
    bytes: &'a [u8],
    /// Offset of the next unread block header.
    pos: usize,
    inner: binary::RecordReader<'a>,
    block_base: u64,
    block_declared: u32,
    block_decoded: u32,
    done: bool,
}

impl FileRecords<'_> {
    /// Advances to the next block. `Ok(false)` at the terminator. The frame
    /// structure was validated at open time, so header/length reads cannot
    /// fail here.
    fn next_block(&mut self) -> Result<bool, ReadError> {
        if self.block_decoded != self.block_declared {
            return Err(ReadError::BlockCountMismatch {
                offset: self.block_base,
                declared: self.block_declared,
                decoded: self.block_decoded,
            });
        }
        let header = &self.bytes[self.pos..self.pos + 8];
        let len = u32::from_le_bytes(header[..4].try_into().expect("slice length")) as usize;
        let count = u32::from_le_bytes(header[4..].try_into().expect("slice length"));
        if len == 0 {
            return Ok(false);
        }
        let payload = &self.bytes[self.pos + 8..self.pos + 8 + len];
        self.inner = binary::RecordReader::new(payload);
        self.block_base = self.pos as u64;
        self.block_declared = count;
        self.block_decoded = 0;
        self.pos += 8 + len;
        Ok(true)
    }
}

impl Iterator for FileRecords<'_> {
    type Item = Result<Record, ReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        while self.inner.remaining().is_empty() {
            match self.next_block() {
                Ok(true) => {}
                Ok(false) => {
                    self.done = true;
                    return None;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
        match self.inner.next()? {
            Ok(rec) => {
                self.block_decoded += 1;
                Some(Ok(rec))
            }
            Err(e) => {
                self.done = true;
                // Map the payload-relative offset to a file offset.
                let offset = self.block_base + 8 + e.offset;
                Some(Err(ReadError::Decode(DecodeError { offset, ..e })))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AccessKind;
    use minic::CheckpointKind;

    fn sample(n: u32) -> Vec<Record> {
        let mut recs = vec![Record::checkpoint(0, CheckpointKind::LoopBegin)];
        for i in 0..n {
            recs.push(Record::checkpoint(0, CheckpointKind::BodyBegin));
            recs.push(Record::access(0x40_0000 + 4 * (i % 7), 0x1000_0000 + i, AccessKind::Read));
            recs.push(Record::checkpoint(0, CheckpointKind::BodyEnd));
        }
        recs
    }

    fn encode(records: &[Record], block_bytes: usize) -> Vec<u8> {
        let mut w = TraceWriter::with_block_bytes(Vec::new(), block_bytes);
        for r in records {
            w.record(r);
        }
        w.finish();
        assert!(w.io_error().is_none());
        w.into_inner()
    }

    #[test]
    fn round_trip_across_block_sizes() {
        let recs = sample(100);
        for block_bytes in [1, 16, 64, 4096, DEFAULT_BLOCK_BYTES] {
            let bytes = encode(&recs, block_bytes);
            let file = TraceFile::from_bytes(bytes.clone()).unwrap();
            assert_eq!(file.record_count(), recs.len() as u64);
            let decoded: Vec<Record> = file.records().map(Result::unwrap).collect();
            assert_eq!(decoded, recs, "block_bytes={block_bytes}");
            let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
            let streamed: Vec<Record> = reader.by_ref().map(Result::unwrap).collect();
            assert_eq!(streamed, recs, "block_bytes={block_bytes}");
            assert_eq!(reader.records_read(), recs.len() as u64);
        }
    }

    #[test]
    fn empty_trace_is_a_valid_file() {
        let bytes = encode(&[], DEFAULT_BLOCK_BYTES);
        assert_eq!(bytes.len(), HEADER_BYTES + 8 + 8, "header + terminator + footer");
        let file = TraceFile::from_bytes(bytes.clone()).unwrap();
        assert_eq!(file.record_count(), 0);
        assert_eq!(file.records().count(), 0);
        assert_eq!(TraceReader::new(bytes.as_slice()).unwrap().count(), 0);
    }

    #[test]
    fn write_file_and_open_round_trip() {
        let recs = sample(30);
        let path = std::env::temp_dir().join("foray_trace_file_test.ftrace");
        assert_eq!(write_file(&path, &recs).unwrap(), recs.len() as u64);
        let file = TraceFile::open(&path).unwrap();
        let decoded: Vec<Record> = file.records().map(Result::unwrap).collect();
        assert_eq!(decoded, recs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = encode(&sample(3), 64);
        bytes[0] = b'X';
        assert!(matches!(TraceFile::from_bytes(bytes.clone()), Err(ReadError::BadMagic(_))));
        bytes[0] = MAGIC[0];
        bytes[8] = 0xfe;
        assert!(matches!(
            TraceFile::from_bytes(bytes.clone()),
            Err(ReadError::UnsupportedVersion(0xfe))
        ));
        bytes[8] = VERSION as u8;
        bytes[10] = 1;
        assert!(matches!(TraceFile::from_bytes(bytes.clone()), Err(ReadError::BadHeader)));
        bytes[10] = 0;
        assert!(TraceFile::from_bytes(bytes).is_ok(), "restored header parses again");
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = encode(&sample(40), 64);
        for cut in [3, HEADER_BYTES - 1, HEADER_BYTES + 3, bytes.len() / 2, bytes.len() - 1] {
            let truncated = bytes[..cut].to_vec();
            assert!(
                matches!(
                    TraceFile::from_bytes(truncated.clone()),
                    Err(ReadError::Truncated { .. })
                ),
                "cut={cut}"
            );
            let streamed: Result<Vec<Record>, ReadError> =
                match TraceReader::new(truncated.as_slice()) {
                    Ok(r) => r.collect(),
                    Err(e) => Err(e),
                };
            assert!(matches!(streamed, Err(ReadError::Truncated { .. })), "cut={cut}");
        }
    }

    #[test]
    fn rejects_footer_count_mismatch() {
        let mut bytes = encode(&sample(5), DEFAULT_BLOCK_BYTES);
        let footer_at = bytes.len() - 8;
        bytes[footer_at] ^= 1;
        assert!(matches!(
            TraceFile::from_bytes(bytes.clone()),
            Err(ReadError::CountMismatch { .. })
        ));
        let streamed: Result<Vec<Record>, _> =
            TraceReader::new(bytes.as_slice()).unwrap().collect();
        assert!(matches!(streamed, Err(ReadError::CountMismatch { .. })));
    }

    #[test]
    fn rejects_block_count_mismatch() {
        let mut bytes = encode(&sample(5), DEFAULT_BLOCK_BYTES);
        // Bump the single block's record-count field; fix the footer to
        // match so the frame walk passes and decoding catches the lie.
        let count_at = HEADER_BYTES + 4;
        bytes[count_at] += 1;
        let footer_at = bytes.len() - 8;
        bytes[footer_at] += 1;
        let file = TraceFile::from_bytes(bytes.clone()).unwrap();
        let got: Result<Vec<Record>, _> = file.records().collect();
        assert!(matches!(got, Err(ReadError::BlockCountMismatch { .. })));
        let streamed: Result<Vec<Record>, _> =
            TraceReader::new(bytes.as_slice()).unwrap().collect();
        assert!(matches!(streamed, Err(ReadError::BlockCountMismatch { .. })));
    }

    #[test]
    fn corrupt_payload_reports_absolute_offset() {
        let recs = sample(2);
        let mut bytes = encode(&recs, DEFAULT_BLOCK_BYTES);
        // First payload byte is the first record's tag.
        let tag_at = HEADER_BYTES + 8;
        bytes[tag_at] = 0xaa;
        let file = TraceFile::from_bytes(bytes.clone()).unwrap();
        let err = file.records().find_map(Result::err).unwrap();
        let ReadError::Decode(d) = &err else { panic!("want decode error, got {err}") };
        assert_eq!(d.offset, tag_at as u64);
        let err = TraceReader::new(bytes.as_slice()).unwrap().find_map(Result::err).unwrap();
        let ReadError::Decode(d) = &err else { panic!("want decode error, got {err}") };
        assert_eq!(d.offset, tag_at as u64);
    }

    #[test]
    fn rejects_oversized_block_declarations() {
        let mut bytes = Vec::from(header_bytes(64));
        bytes.extend_from_slice(&(MAX_BLOCK_BYTES + 1).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            TraceFile::from_bytes(bytes.clone()),
            Err(ReadError::OversizedBlock { .. })
        ));
        let streamed: Result<Vec<Record>, _> =
            TraceReader::new(bytes.as_slice()).unwrap().collect();
        assert!(matches!(streamed, Err(ReadError::OversizedBlock { .. })));
    }

    #[test]
    fn absurd_block_capacities_still_produce_readable_files() {
        // Capacities past the readers' sanity bound (or past u32) must be
        // clamped at write time, never produce a file the readers reject.
        let recs = sample(20);
        for cap in [0usize, MAX_BLOCK_BYTES as usize, usize::MAX] {
            let mut w = TraceWriter::with_block_bytes(Vec::new(), cap);
            for r in &recs {
                w.record(r);
            }
            w.finish();
            assert!(w.io_error().is_none());
            let file = TraceFile::from_bytes(w.into_inner()).unwrap();
            assert!(file.block_hint() <= MAX_BLOCK_BYTES, "cap={cap}");
            let decoded: Vec<Record> = file.records().map(Result::unwrap).collect();
            assert_eq!(decoded, recs, "cap={cap}");
        }
    }

    #[test]
    fn writer_reports_counts_and_is_idempotent_on_finish() {
        let recs = sample(10);
        let mut w = TraceWriter::new(Vec::new());
        for r in &recs {
            w.record(r);
        }
        assert_eq!(w.records_written(), recs.len() as u64);
        w.finish();
        w.finish(); // no double terminator
        let bytes = w.into_inner();
        let file = TraceFile::from_bytes(bytes).unwrap();
        assert_eq!(file.record_count(), recs.len() as u64);
    }
}
