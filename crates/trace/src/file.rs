//! The `foray-trace` on-disk trace container (versions 1 and 2).
//!
//! The raw [binary codec](crate::binary) is a bare record concatenation: it
//! cannot be identified on disk, versioned, or validated without decoding
//! every byte. This module frames record streams into a self-describing
//! file format so traces can be recorded once and re-analyzed many times
//! (the paper's offline mode at scales where re-profiling is the
//! bottleneck). Two format versions share the 16-byte header:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"FORAYTRC"
//! 8       2     format version, u16 LE (1 or 2)
//! 10      2     reserved, must be 0
//! 12      4     writer block-capacity hint in bytes, u32 LE
//! 16      ..    length-prefixed blocks, then the terminator + trailer
//! ```
//!
//! **Version 1** (frozen, readable forever) stores fixed-width records:
//!
//! ```text
//! block   4     payload length N in bytes, u32 LE (N = 0 terminates)
//!         4     record count in this block, u32 LE
//!         N     payload: concatenated fixed-width binary records
//! footer  8     total record count, u64 LE (after the N = 0 terminator)
//! ```
//!
//! **Version 2** (the default) compresses each block with the
//! [length-tagged delta codec](crate::v2), adds a CRC32 per payload, and appends
//! a [checkpoint index](crate::index) before the footer so readers can
//! seek to a loop region without replaying the prefix:
//!
//! ```text
//! block   4     payload length N in bytes, u32 LE (N = 0 terminates)
//!         4     record count in this block, u32 LE
//!         4     CRC32 of the payload, u32 LE
//!         N     payload: v2 length-tagged delta records (state resets per block)
//! index   4     entry count E, u32 LE; then E × 24-byte entries + CRC32
//! footer  8     total record count, u64 LE
//! ```
//!
//! All integers are little-endian. Blocks make streaming writes cheap (one
//! `write` syscall per ~64 KiB, no seeking back to patch a header), let
//! readers detect truncation at block granularity, and keep the in-memory
//! working set of [`TraceReader`] at one block regardless of trace length.
//! The footer double-checks that the stream was finished, not chopped.
//!
//! Three consumers cover the access patterns:
//!
//! * [`TraceFile`] — whole file in one buffer, records decoded zero-copy by
//!   [`FileRecords`]. This is the memory-mapped shape; the workspace denies
//!   `unsafe` code, so the buffer comes from one [`std::fs::read`] instead
//!   of `mmap(2)` — same single-allocation behaviour, no page-cache
//!   sharing. v2 files additionally expose
//!   [`TraceFile::records_from_loop`], the seekable entry point.
//! * [`TraceReader`] — constant-memory streaming over any [`Read`].
//! * [`TraceWriter`] — a [`TraceSink`], so it can ride a profiling run and
//!   write the file without ever materializing a `Vec<Record>`. The
//!   [`FormatVersion`] knob picks the container version (default v2).
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use minic_trace::file::{FormatVersion, TraceFile, TraceWriter};
//! use minic_trace::{AccessKind, Record, TraceSink};
//!
//! let trace = vec![
//!     Record::checkpoint(0, minic::CheckpointKind::LoopBegin),
//!     Record::access(0x400000, 0x1000_0000, AccessKind::Read),
//! ];
//! let mut writer = TraceWriter::new(Vec::new()); // v2 by default
//! for r in &trace {
//!     writer.record(r);
//! }
//! writer.finish();
//! let file = TraceFile::from_bytes(writer.into_inner())?;
//! assert_eq!(file.version(), FormatVersion::V2);
//! assert_eq!(file.record_count(), 2);
//! let decoded: Result<Vec<Record>, _> = file.records().collect();
//! assert_eq!(decoded?, trace);
//! # Ok(())
//! # }
//! ```

use crate::binary::{self, DecodeError};
use crate::crc::crc32;
use crate::index::{CheckpointIndex, IndexEntry, LoopRange, ENTRY_BYTES};
use crate::record::Record;
use crate::sink::TraceSink;
use crate::v2::{self, V2State};
use minic::LoopId;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

/// The 8 magic bytes opening every trace file.
pub const MAGIC: [u8; 8] = *b"FORAYTRC";

/// The newest format version this module writes (and the default).
pub const VERSION: u16 = 2;

/// Fixed header size: magic + version + reserved + block hint.
pub const HEADER_BYTES: usize = 16;

/// Default block payload capacity for [`TraceWriter`].
pub const DEFAULT_BLOCK_BYTES: usize = 64 * 1024;

/// Upper bound a reader accepts for one block's payload — a corrupt length
/// field must not trigger a gigabyte allocation.
const MAX_BLOCK_BYTES: u32 = 1 << 30;

/// Container version selector for [`TraceWriter`] (readers accept both,
/// per the versioning contract in `docs/ARCHITECTURE.md`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum FormatVersion {
    /// Fixed-width records, no checksums, no index. Frozen; readable
    /// forever.
    V1,
    /// Per-block length-tagged delta compression + CRC32 + checkpoint index.
    #[default]
    V2,
}

impl FormatVersion {
    /// The on-disk `u16` version number.
    pub const fn number(self) -> u16 {
        match self {
            FormatVersion::V1 => 1,
            FormatVersion::V2 => 2,
        }
    }

    /// Maps an on-disk version number back to a known format.
    pub fn from_number(v: u16) -> Option<FormatVersion> {
        match v {
            1 => Some(FormatVersion::V1),
            2 => Some(FormatVersion::V2),
            _ => None,
        }
    }

    /// CLI spelling (`v1` / `v2`).
    pub fn as_str(self) -> &'static str {
        match self {
            FormatVersion::V1 => "v1",
            FormatVersion::V2 => "v2",
        }
    }

    /// Parses the CLI spelling accepted by `--trace-format`.
    pub fn parse(s: &str) -> Option<FormatVersion> {
        match s {
            "v1" | "1" => Some(FormatVersion::V1),
            "v2" | "2" => Some(FormatVersion::V2),
            _ => None,
        }
    }

    /// Size of a block header in this version (v2 adds the CRC field).
    const fn block_header_bytes(self) -> usize {
        match self {
            FormatVersion::V1 => 8,
            FormatVersion::V2 => 12,
        }
    }

    /// Worst-case encoded size of one record in this version.
    const fn max_record_bytes(self) -> usize {
        match self {
            FormatVersion::V1 => binary::MAX_RECORD_BYTES,
            FormatVersion::V2 => v2::MAX_RECORD_BYTES,
        }
    }
}

impl fmt::Display for FormatVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a trace file failed to open or replay.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic([u8; 8]),
    /// The file's format version is not one this reader knows (newer than
    /// [`VERSION`], or an unknown number like 0).
    UnsupportedVersion(u16),
    /// The reserved header field is non-zero.
    BadHeader,
    /// The file ends mid-structure (`what` names the missing piece).
    Truncated {
        /// Byte offset where the missing structure should start.
        offset: u64,
        /// Which structure is cut off.
        what: &'static str,
    },
    /// A block's payload failed to decode; the offset is absolute.
    Decode(DecodeError),
    /// A block declares a payload length past the sanity bound.
    OversizedBlock {
        /// Byte offset of the block header.
        offset: u64,
        /// The declared payload length.
        len: u32,
    },
    /// A v2 block's payload does not match its stored CRC32.
    BadBlockCrc {
        /// Byte offset of the block header.
        offset: u64,
        /// CRC stored in the block header.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// The v2 checkpoint index is corrupt or disagrees with the blocks.
    BadIndex {
        /// Byte offset of the index section.
        offset: u64,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// A block's payload decoded to a different number of records than its
    /// header declared.
    BlockCountMismatch {
        /// Byte offset of the block header.
        offset: u64,
        /// Record count the block header declared.
        declared: u32,
        /// Records actually decoded from the payload.
        decoded: u32,
    },
    /// The footer's total record count disagrees with the blocks.
    CountMismatch {
        /// Count the footer declared.
        declared: u64,
        /// Records actually seen across all blocks.
        decoded: u64,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "trace file i/o: {e}"),
            ReadError::BadMagic(m) => write!(f, "not a foray-trace file (magic {m:02x?})"),
            ReadError::UnsupportedVersion(v) => {
                if *v > VERSION {
                    write!(
                        f,
                        "foray-trace version {v} is newer than this reader supports \
                         (reads 1..={VERSION})"
                    )
                } else {
                    write!(f, "unknown foray-trace version {v} (reader reads 1..={VERSION})")
                }
            }
            ReadError::BadHeader => write!(f, "corrupt foray-trace header (reserved field set)"),
            ReadError::Truncated { offset, what } => {
                write!(f, "trace file truncated at byte {offset}: missing {what}")
            }
            ReadError::Decode(e) => write!(f, "trace file {e}"),
            ReadError::OversizedBlock { offset, len } => {
                write!(f, "block at byte {offset} declares an oversized payload ({len} bytes)")
            }
            ReadError::BadBlockCrc { offset, stored, computed } => {
                write!(
                    f,
                    "block at byte {offset} fails its integrity check \
                     (stored crc {stored:#010x}, computed {computed:#010x})"
                )
            }
            ReadError::BadIndex { offset, reason } => {
                write!(f, "checkpoint index at byte {offset} is corrupt: {reason}")
            }
            ReadError::BlockCountMismatch { offset, declared, decoded } => {
                write!(f, "block at byte {offset} declares {declared} records but holds {decoded}")
            }
            ReadError::CountMismatch { declared, decoded } => {
                write!(f, "footer declares {declared} records but the blocks hold {decoded}")
            }
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn header_bytes(format: FormatVersion, block_hint: u32) -> [u8; HEADER_BYTES] {
    let mut h = [0u8; HEADER_BYTES];
    h[..8].copy_from_slice(&MAGIC);
    h[8..10].copy_from_slice(&format.number().to_le_bytes());
    h[12..16].copy_from_slice(&block_hint.to_le_bytes());
    h
}

/// Validates a header, returning the format version and the writer's
/// block-capacity hint.
fn parse_header(h: &[u8; HEADER_BYTES]) -> Result<(FormatVersion, u32), ReadError> {
    if h[..8] != MAGIC {
        return Err(ReadError::BadMagic(h[..8].try_into().expect("slice length")));
    }
    let version = u16::from_le_bytes(h[8..10].try_into().expect("slice length"));
    let format =
        FormatVersion::from_number(version).ok_or(ReadError::UnsupportedVersion(version))?;
    if h[10..12] != [0, 0] {
        return Err(ReadError::BadHeader);
    }
    Ok((format, u32::from_le_bytes(h[12..16].try_into().expect("slice length"))))
}

/// Writes a `foray-trace` file (v1 or v2) to any [`Write`], buffering
/// records into length-prefixed blocks.
///
/// `TraceWriter` is a [`TraceSink`], so it can sit directly behind the
/// profiler: `minic_sim::run_with_sink(&prog, &cfg, &inputs, &mut writer)`
/// records a trace to disk without ever holding it in memory. Because
/// [`TraceSink::record`] cannot return errors, I/O failures are latched;
/// check [`Self::io_error`] after [`Self::finish`].
///
/// In v2 mode (the default) each flushed block is delta-compressed
/// with its own CRC32, and a checkpoint index is accumulated (one entry
/// per block) and appended at [`Self::finish`] — disable it with
/// [`Self::with_checkpoint_index`] to shave the trailer from short-lived
/// files.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    format: FormatVersion,
    block: Vec<u8>,
    block_records: u32,
    block_cap: usize,
    total: u64,
    error: Option<io::Error>,
    finished: bool,
    /// v2 delta state, reset at block boundaries.
    v2_state: V2State,
    /// File offset where the next block will land (v2 index bookkeeping).
    out_offset: u64,
    /// Global ordinal of the current block's first record.
    block_first_ordinal: u64,
    /// Loop-id range observed in the current block.
    loops: LoopRange,
    /// Accumulated index entries (`None` = disabled or v1).
    index: Option<Vec<IndexEntry>>,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps a writer, emitting the file header immediately — the default
    /// format ([`FormatVersion::V2`]) with the default block capacity.
    pub fn new(out: W) -> Self {
        TraceWriter::with_options(out, FormatVersion::default(), DEFAULT_BLOCK_BYTES)
    }

    /// [`Self::new`] with an explicit container version.
    pub fn with_format(out: W, format: FormatVersion) -> Self {
        TraceWriter::with_options(out, format, DEFAULT_BLOCK_BYTES)
    }

    /// [`Self::new`] with an explicit block payload capacity.
    pub fn with_block_bytes(out: W, block_cap: usize) -> Self {
        TraceWriter::with_options(out, FormatVersion::default(), block_cap)
    }

    /// Fully explicit constructor. The capacity is clamped to at least one
    /// record and to the readers' block sanity bound (a block may overshoot
    /// the capacity by one record before it flushes, so the upper clamp
    /// leaves that headroom — every written block stays readable whatever
    /// capacity the caller asks for).
    pub fn with_options(out: W, format: FormatVersion, block_cap: usize) -> Self {
        let max_record = format.max_record_bytes();
        let block_cap = block_cap.clamp(max_record, MAX_BLOCK_BYTES as usize - max_record);
        let mut w = TraceWriter {
            out,
            format,
            // Reserve for the common case only; oversized blocks grow
            // organically instead of pre-claiming up to the 1 GiB bound.
            block: Vec::with_capacity(block_cap.min(DEFAULT_BLOCK_BYTES) + max_record),
            block_records: 0,
            block_cap,
            total: 0,
            error: None,
            finished: false,
            v2_state: V2State::default(),
            out_offset: HEADER_BYTES as u64,
            block_first_ordinal: 0,
            loops: LoopRange::default(),
            index: match format {
                FormatVersion::V1 => None,
                FormatVersion::V2 => Some(Vec::new()),
            },
        };
        let header = header_bytes(format, block_cap as u32);
        if let Err(e) = w.out.write_all(&header) {
            w.error = Some(e);
        }
        w
    }

    /// Enables or disables the v2 checkpoint index (ignored in v1, where
    /// no index exists). Call before the first record is flushed; entries
    /// already accumulated are dropped when disabling.
    pub fn with_checkpoint_index(mut self, enabled: bool) -> Self {
        self.index = match (self.format, enabled) {
            (FormatVersion::V2, true) => Some(self.index.take().unwrap_or_default()),
            _ => None,
        };
        self
    }

    /// The container version being written.
    pub fn format(&self) -> FormatVersion {
        self.format
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.total
    }

    /// First latched I/O error, if any.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Unwraps the inner writer (call [`Self::finish`] first).
    pub fn into_inner(self) -> W {
        self.out
    }

    fn flush_block(&mut self) {
        if self.error.is_some() || self.block.is_empty() {
            return;
        }
        let len = self.block.len() as u32;
        let result = self
            .out
            .write_all(&len.to_le_bytes())
            .and_then(|()| self.out.write_all(&self.block_records.to_le_bytes()))
            .and_then(|()| match self.format {
                FormatVersion::V1 => Ok(()),
                FormatVersion::V2 => self.out.write_all(&crc32(&self.block).to_le_bytes()),
            })
            .and_then(|()| self.out.write_all(&self.block));
        if let Err(e) = result {
            self.error = Some(e);
        }
        let loops = self.loops.take();
        if let Some(index) = &mut self.index {
            index.push(IndexEntry::new(self.out_offset, self.block_first_ordinal, loops));
        }
        self.out_offset += (self.format.block_header_bytes() + self.block.len()) as u64;
        self.v2_state = V2State::default();
        self.block.clear();
        self.block_records = 0;
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    fn record(&mut self, rec: &Record) {
        if self.error.is_some() {
            return;
        }
        if self.block.is_empty() {
            self.block_first_ordinal = self.total;
        }
        match self.format {
            FormatVersion::V1 => binary::encode_record(rec, &mut self.block),
            FormatVersion::V2 => {
                if let Record::Checkpoint { loop_id, .. } = rec {
                    self.loops.observe(*loop_id);
                }
                v2::encode_record(&mut self.v2_state, rec, &mut self.block);
            }
        }
        self.block_records += 1;
        self.total += 1;
        if self.block.len() >= self.block_cap {
            self.flush_block();
        }
    }

    /// Flushes the last block and writes the terminator, the index (v2),
    /// and the footer. Idempotent: later calls are no-ops.
    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.flush_block();
        if self.error.is_some() {
            return;
        }
        let terminator = [0u8; 12];
        let result = self
            .out
            .write_all(&terminator[..self.format.block_header_bytes()])
            .and_then(|()| match self.format {
                FormatVersion::V1 => Ok(()),
                FormatVersion::V2 => {
                    let index = CheckpointIndex::new(self.index.take().unwrap_or_default());
                    self.out.write_all(&index.encode())
                }
            })
            .and_then(|()| self.out.write_all(&self.total.to_le_bytes()))
            .and_then(|()| self.out.flush());
        if let Err(e) = result {
            self.error = Some(e);
        }
    }
}

/// Writes a complete record slice as a trace stream in the given format.
///
/// # Errors
///
/// Propagates the first I/O failure.
pub fn write_to_with<W: Write>(
    out: W,
    records: &[Record],
    format: FormatVersion,
) -> io::Result<u64> {
    let mut w = TraceWriter::with_format(out, format);
    for r in records {
        w.record(r);
    }
    w.finish();
    match w.error {
        Some(e) => Err(e),
        None => Ok(w.total),
    }
}

/// Writes a complete record slice as a trace stream in the default format
/// ([`FormatVersion::V2`]).
///
/// # Errors
///
/// Propagates the first I/O failure.
pub fn write_to<W: Write>(out: W, records: &[Record]) -> io::Result<u64> {
    write_to_with(out, records, FormatVersion::default())
}

/// Writes a complete record slice to a new trace file in the given
/// format, returning the record count.
///
/// # Errors
///
/// Propagates file-creation and write failures.
pub fn write_file_with<P: AsRef<Path>>(
    path: P,
    records: &[Record],
    format: FormatVersion,
) -> io::Result<u64> {
    write_to_with(io::BufWriter::new(std::fs::File::create(path)?), records, format)
}

/// Writes a complete record slice to a new trace file in the default
/// format ([`FormatVersion::V2`]), returning the record count.
///
/// # Errors
///
/// Propagates file-creation and write failures.
///
/// # Examples
///
/// ```no_run
/// use minic_trace::{file, AccessKind, Record};
/// let recs = vec![Record::access(0x400000, 0x1000_0000, AccessKind::Read)];
/// file::write_file("trace.ftrace", &recs).unwrap();
/// ```
pub fn write_file<P: AsRef<Path>>(path: P, records: &[Record]) -> io::Result<u64> {
    write_file_with(path, records, FormatVersion::default())
}

/// Maps `read_exact` failures to [`ReadError::Truncated`] when the stream
/// simply ended, so corrupt files report *what* is missing.
fn read_struct<R: Read>(
    input: &mut R,
    buf: &mut [u8],
    offset: u64,
    what: &'static str,
) -> Result<(), ReadError> {
    input.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ReadError::Truncated { offset, what }
        } else {
            ReadError::Io(e)
        }
    })
}

/// Constant-memory streaming reader over any [`Read`]: holds one block in
/// memory at a time, whatever the trace length. Reads both container
/// versions, dispatching on the header (v2 blocks are CRC-verified as
/// they are loaded).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), minic_trace::ReadError> {
/// use minic_trace::{file, AccessKind, Record};
///
/// let recs = vec![Record::access(0x400000, 0x1000_0000, AccessKind::Read)];
/// let mut bytes = Vec::new();
/// file::write_to(&mut bytes, &recs).unwrap();
/// let reader = file::TraceReader::new(bytes.as_slice())?;
/// let decoded: Result<Vec<Record>, _> = reader.collect();
/// assert_eq!(decoded?, recs);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    format: FormatVersion,
    offset: u64,
    block: Vec<u8>,
    pos: usize,
    block_base: u64,
    block_declared: u32,
    block_decoded: u32,
    total: u64,
    v2_state: V2State,
    index: Option<CheckpointIndex>,
    state: ReaderState,
}

#[derive(Debug, PartialEq, Eq)]
enum ReaderState {
    Reading,
    Done,
    Failed,
}

impl<R: Read> TraceReader<R> {
    /// Wraps a reader, consuming and validating the file header.
    ///
    /// # Errors
    ///
    /// [`ReadError::BadMagic`], [`ReadError::UnsupportedVersion`],
    /// [`ReadError::BadHeader`], or an I/O / truncation failure.
    pub fn new(mut input: R) -> Result<Self, ReadError> {
        let mut header = [0u8; HEADER_BYTES];
        read_struct(&mut input, &mut header, 0, "file header")?;
        let (format, _) = parse_header(&header)?;
        Ok(TraceReader {
            input,
            format,
            offset: HEADER_BYTES as u64,
            block: Vec::new(),
            pos: 0,
            block_base: 0,
            block_declared: 0,
            block_decoded: 0,
            total: 0,
            v2_state: V2State::default(),
            index: None,
            state: ReaderState::Reading,
        })
    }

    /// The container version being read.
    pub fn format(&self) -> FormatVersion {
        self.format
    }

    /// Records decoded so far.
    pub fn records_read(&self) -> u64 {
        self.total
    }

    /// The checkpoint index, available once the stream has been fully
    /// drained (v2 files with an index only; a sequential reader cannot
    /// seek, but the index still validates and is exposed for callers
    /// that cache it).
    pub fn index(&self) -> Option<&CheckpointIndex> {
        self.index.as_ref()
    }

    /// Reads and validates the v2 index section, leaving the stream at
    /// the footer.
    fn read_index(&mut self) -> Result<(), ReadError> {
        let section_offset = self.offset;
        let mut count = [0u8; 4];
        read_struct(&mut self.input, &mut count, self.offset, "index entry count")?;
        self.offset += 4;
        let count = u32::from_le_bytes(count) as usize;
        // The index holds one entry per block, and every block preceding
        // it occupies at least a header plus one payload byte — so a
        // count past that ratio is corrupt, not just large, and must not
        // trigger a giant allocation.
        if count as u64 > self.offset / (self.format.block_header_bytes() as u64 + 1) {
            return Err(ReadError::BadIndex {
                offset: section_offset,
                reason: "entry count is implausibly large",
            });
        }
        let len = count * ENTRY_BYTES;
        let mut entries = vec![0u8; len];
        read_struct(&mut self.input, &mut entries, self.offset, "index entries")?;
        self.offset += len as u64;
        let mut crc = [0u8; 4];
        read_struct(&mut self.input, &mut crc, self.offset, "index checksum")?;
        self.offset += 4;
        let index = CheckpointIndex::parse(&entries, u32::from_le_bytes(crc))
            .map_err(|reason| ReadError::BadIndex { offset: section_offset, reason })?;
        if !index.entries().is_empty() {
            self.index = Some(index);
        }
        Ok(())
    }

    /// Loads the next block; `Ok(false)` means the terminator, trailer,
    /// and footer were consumed and the stream is complete.
    fn next_block(&mut self) -> Result<bool, ReadError> {
        if self.block_decoded != self.block_declared {
            return Err(ReadError::BlockCountMismatch {
                offset: self.block_base,
                declared: self.block_declared,
                decoded: self.block_decoded,
            });
        }
        let header_offset = self.offset;
        let header_len = self.format.block_header_bytes();
        let mut header = [0u8; 12];
        read_struct(&mut self.input, &mut header[..header_len], header_offset, "block header")?;
        self.offset += header_len as u64;
        let len = u32::from_le_bytes(header[..4].try_into().expect("slice length"));
        let count = u32::from_le_bytes(header[4..8].try_into().expect("slice length"));
        let stored_crc = u32::from_le_bytes(header[8..12].try_into().expect("slice length"));
        if len == 0 {
            if self.format == FormatVersion::V2 {
                self.read_index()?;
            }
            let mut footer = [0u8; 8];
            read_struct(&mut self.input, &mut footer, self.offset, "footer")?;
            self.offset += 8;
            let declared = u64::from_le_bytes(footer);
            if declared != self.total {
                return Err(ReadError::CountMismatch { declared, decoded: self.total });
            }
            return Ok(false);
        }
        if len > MAX_BLOCK_BYTES {
            return Err(ReadError::OversizedBlock { offset: header_offset, len });
        }
        self.block.resize(len as usize, 0);
        read_struct(&mut self.input, &mut self.block, self.offset, "block payload")?;
        if self.format == FormatVersion::V2 {
            let computed = crc32(&self.block);
            if computed != stored_crc {
                return Err(ReadError::BadBlockCrc {
                    offset: header_offset,
                    stored: stored_crc,
                    computed,
                });
            }
        }
        self.block_base = header_offset;
        self.block_declared = count;
        self.block_decoded = 0;
        self.pos = 0;
        self.v2_state = V2State::default();
        self.offset += len as u64;
        Ok(true)
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<Record, ReadError>;

    /// Bulk drain: decodes each block in a tight loop with the consumer
    /// inlined, instead of paying a `next()` call (and its memory-returned
    /// `Option<Result<..>>`) per record. `for_each`, `fold`-composing
    /// adapters like `map`, and the `RecordSource::stream_into` replay
    /// path `trace analyze` sits on all route through here. Semantics match
    /// `next()` exactly — the reader fuses after the first error, so the
    /// closure sees every record up to and including that error and
    /// nothing after.
    fn fold<B, F>(mut self, init: B, mut f: F) -> B
    where
        F: FnMut(B, Self::Item) -> B,
    {
        let mut acc = init;
        if self.state != ReaderState::Reading {
            return acc;
        }
        loop {
            let payload_base = self.block_base + self.format.block_header_bytes() as u64;
            match self.format {
                FormatVersion::V1 => {
                    while self.pos < self.block.len() {
                        match binary::decode_one(
                            &self.block[self.pos..],
                            payload_base + self.pos as u64,
                        ) {
                            Ok((rec, len)) => {
                                self.pos += len;
                                self.block_decoded += 1;
                                self.total += 1;
                                acc = f(acc, Ok(rec));
                            }
                            Err(e) => return f(acc, Err(ReadError::Decode(e))),
                        }
                    }
                }
                FormatVersion::V2 => {
                    // The counters ride in the accumulator so the loop's
                    // only per-record memory traffic is the payload and
                    // the address table (see `v2::decode_fold`).
                    let ((a, n), err) = v2::decode_fold(
                        &self.block,
                        &mut self.pos,
                        payload_base,
                        &mut self.v2_state,
                        (acc, 0u64),
                        |(a, n), rec| (f(a, Ok(rec)), n + 1),
                    );
                    acc = a;
                    self.block_decoded += n as u32;
                    self.total += n;
                    if let Some(e) = err {
                        return f(acc, Err(ReadError::Decode(e)));
                    }
                }
            }
            match self.next_block() {
                Ok(true) => {}
                Ok(false) => return acc,
                Err(e) => return f(acc, Err(e)),
            }
        }
    }

    fn next(&mut self) -> Option<Self::Item> {
        if self.state != ReaderState::Reading {
            return None;
        }
        loop {
            // Decode the next record in place. Payload offsets are
            // relative to the block payload start (block_base + header).
            if self.pos < self.block.len() {
                let payload_base = self.block_base + self.format.block_header_bytes() as u64;
                let res = match self.format {
                    FormatVersion::V1 => {
                        match binary::decode_one(
                            &self.block[self.pos..],
                            payload_base + self.pos as u64,
                        ) {
                            Ok((rec, len)) => {
                                self.pos += len;
                                Ok(rec)
                            }
                            Err(e) => Err(e),
                        }
                    }
                    FormatVersion::V2 => v2::decode_step(
                        &self.block,
                        &mut self.pos,
                        payload_base,
                        &mut self.v2_state,
                    ),
                };
                match res {
                    Ok(rec) => {
                        self.block_decoded += 1;
                        self.total += 1;
                        return Some(Ok(rec));
                    }
                    Err(e) => {
                        self.state = ReaderState::Failed;
                        return Some(Err(ReadError::Decode(e)));
                    }
                }
            }
            match self.next_block() {
                Ok(true) => {}
                Ok(false) => {
                    self.state = ReaderState::Done;
                    return None;
                }
                Err(e) => {
                    self.state = ReaderState::Failed;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// A whole trace file held in one buffer, decoded zero-copy.
///
/// [`Self::open`] performs a single bulk read (the workspace forbids
/// `unsafe`, so this is the `mmap` stand-in), validates the header and the
/// block structure up front — including every v2 block CRC and the
/// checkpoint index — and then [`Self::records`] iterates without further
/// allocation. Structure and integrity errors surface at open time; only
/// payload decode errors can appear during iteration.
#[derive(Debug, Clone)]
pub struct TraceFile {
    bytes: Vec<u8>,
    format: FormatVersion,
    record_count: u64,
    block_hint: u32,
    index: Option<CheckpointIndex>,
}

impl TraceFile {
    /// Reads and validates a trace file.
    ///
    /// # Errors
    ///
    /// Any [`ReadError`] arising from I/O or file structure.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<TraceFile, ReadError> {
        TraceFile::from_bytes(std::fs::read(path)?)
    }

    /// Validates an in-memory byte buffer as a trace file.
    ///
    /// # Errors
    ///
    /// Any structural [`ReadError`] — including [`ReadError::BadBlockCrc`]
    /// and [`ReadError::BadIndex`] for v2 files, both checked here.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<TraceFile, ReadError> {
        if bytes.len() < HEADER_BYTES {
            return Err(ReadError::Truncated { offset: bytes.len() as u64, what: "file header" });
        }
        let (format, block_hint) =
            parse_header(bytes[..HEADER_BYTES].try_into().expect("length checked"))?;
        let header_len = format.block_header_bytes();
        // Walk the block headers (no payload decoding; v2 payloads are
        // CRC-checked) to validate the frame structure, remembering each
        // block's offset and starting ordinal to audit the index against.
        let mut pos = HEADER_BYTES;
        let mut declared_total = 0u64;
        let mut blocks: Vec<(u64, u64)> = Vec::new();
        loop {
            let Some(header) = bytes.get(pos..pos + header_len) else {
                return Err(ReadError::Truncated { offset: pos as u64, what: "block header" });
            };
            let len = u32::from_le_bytes(header[..4].try_into().expect("slice length"));
            let count = u32::from_le_bytes(header[4..8].try_into().expect("slice length"));
            if len == 0 {
                pos += header_len;
                break;
            }
            if len > MAX_BLOCK_BYTES {
                return Err(ReadError::OversizedBlock { offset: pos as u64, len });
            }
            let Some(payload) = bytes.get(pos + header_len..pos + header_len + len as usize) else {
                return Err(ReadError::Truncated {
                    offset: (pos + header_len) as u64,
                    what: "block payload",
                });
            };
            if format == FormatVersion::V2 {
                let stored = u32::from_le_bytes(header[8..12].try_into().expect("slice length"));
                let computed = crc32(payload);
                if computed != stored {
                    return Err(ReadError::BadBlockCrc { offset: pos as u64, stored, computed });
                }
            }
            blocks.push((pos as u64, declared_total));
            declared_total += count as u64;
            pos += header_len + len as usize;
        }
        let index = match format {
            FormatVersion::V1 => None,
            FormatVersion::V2 => {
                let (parsed, consumed) = parse_index_section(&bytes, pos, &blocks)?;
                pos += consumed;
                parsed
            }
        };
        let Some(footer) = bytes.get(pos..pos + 8) else {
            return Err(ReadError::Truncated { offset: pos as u64, what: "footer" });
        };
        let declared = u64::from_le_bytes(footer.try_into().expect("slice length"));
        if declared != declared_total {
            return Err(ReadError::CountMismatch { declared, decoded: declared_total });
        }
        Ok(TraceFile { bytes, format, record_count: declared_total, block_hint, index })
    }

    /// The container version of this file.
    pub fn version(&self) -> FormatVersion {
        self.format
    }

    /// Total records in the file (from the block headers, validated against
    /// the footer at open time).
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// The writer's block-capacity hint recorded in the header.
    pub fn block_hint(&self) -> u32 {
        self.block_hint
    }

    /// The raw file bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The checkpoint index (v2 files written with one), validated at
    /// open time against the actual block offsets and ordinals.
    pub fn index(&self) -> Option<&CheckpointIndex> {
        self.index.as_ref()
    }

    /// Iterates the records, decoding zero-copy from the file buffer.
    pub fn records(&self) -> FileRecords<'_> {
        FileRecords {
            bytes: &self.bytes,
            pos: HEADER_BYTES,
            format: self.format,
            payload: &[],
            ppos: 0,
            v2_state: V2State::default(),
            block_base: HEADER_BYTES as u64,
            block_declared: 0,
            block_decoded: 0,
            skip_until: None,
            done: false,
        }
    }

    /// Seeks to loop `loop_id` via the checkpoint index: returns an
    /// iterator positioned at the first block whose loop range covers the
    /// id, which then skips records until the loop's first checkpoint and
    /// yields everything from that checkpoint on — without decoding (or
    /// having CRC-checked block payloads of) the prefix. This is the
    /// seekable [`RecordSource`](crate::source::RecordSource) entry point.
    ///
    /// Returns `None` when the file has no index (v1, or a v2 file
    /// written with the index disabled) or when no block's range covers
    /// the loop — i.e. the loop certainly never runs in this trace. A
    /// range hit is only "possibly present": if the id turns out to be
    /// absent, the returned iterator skips to the end and yields nothing.
    pub fn records_from_loop(&self, loop_id: LoopId) -> Option<FileRecords<'_>> {
        let entry = self.index.as_ref()?.find_loop(loop_id)?;
        Some(FileRecords {
            bytes: &self.bytes,
            pos: usize::try_from(entry.offset).expect("validated block offset"),
            format: self.format,
            payload: &[],
            ppos: 0,
            v2_state: V2State::default(),
            block_base: entry.offset,
            block_declared: 0,
            block_decoded: 0,
            skip_until: Some(loop_id),
            done: false,
        })
    }
}

/// Parses and audits the v2 index section starting at `pos`; returns the
/// index (if non-empty) and the number of bytes consumed.
fn parse_index_section(
    bytes: &[u8],
    pos: usize,
    blocks: &[(u64, u64)],
) -> Result<(Option<CheckpointIndex>, usize), ReadError> {
    let section = pos as u64;
    let Some(count_bytes) = bytes.get(pos..pos + 4) else {
        return Err(ReadError::Truncated { offset: pos as u64, what: "index entry count" });
    };
    let count = u32::from_le_bytes(count_bytes.try_into().expect("slice length")) as usize;
    if count == 0 {
        // Disabled or empty index: just the count and the empty CRC.
        let Some(crc) = bytes.get(pos + 4..pos + 8) else {
            return Err(ReadError::Truncated { offset: pos as u64 + 4, what: "index checksum" });
        };
        if u32::from_le_bytes(crc.try_into().expect("slice length")) != crc32(&[]) {
            return Err(ReadError::BadIndex { offset: section, reason: "index CRC mismatch" });
        }
        return Ok((None, 8));
    }
    if count != blocks.len() {
        return Err(ReadError::BadIndex {
            offset: section,
            reason: "entry count disagrees with the block count",
        });
    }
    let len = count * ENTRY_BYTES;
    let Some(entries) = bytes.get(pos + 4..pos + 4 + len) else {
        return Err(ReadError::Truncated { offset: pos as u64 + 4, what: "index entries" });
    };
    let Some(crc) = bytes.get(pos + 4 + len..pos + 8 + len) else {
        return Err(ReadError::Truncated {
            offset: (pos + 4 + len) as u64,
            what: "index checksum",
        });
    };
    let index = CheckpointIndex::parse(entries, u32::from_le_bytes(crc.try_into().expect("len")))
        .map_err(|reason| ReadError::BadIndex { offset: section, reason })?;
    for (entry, (offset, ordinal)) in index.entries().iter().zip(blocks) {
        if entry.offset != *offset || entry.first_ordinal != *ordinal {
            return Err(ReadError::BadIndex {
                offset: section,
                reason: "entry disagrees with the block layout",
            });
        }
    }
    Ok((Some(index), 8 + len))
}

/// Zero-copy record iterator over a [`TraceFile`] buffer.
///
/// Decodes each block payload in place; no per-record or per-block
/// allocation. Fuses after the first error. Obtained from
/// [`TraceFile::records`] (the whole stream) or
/// [`TraceFile::records_from_loop`] (positioned mid-file by the
/// checkpoint index).
#[derive(Debug, Clone)]
pub struct FileRecords<'a> {
    bytes: &'a [u8],
    /// Offset of the next unread block header.
    pos: usize,
    format: FormatVersion,
    /// Current block payload and the decode position inside it.
    payload: &'a [u8],
    ppos: usize,
    v2_state: V2State,
    block_base: u64,
    block_declared: u32,
    block_decoded: u32,
    /// When seeking: drop records until this loop's first checkpoint.
    skip_until: Option<LoopId>,
    done: bool,
}

impl FileRecords<'_> {
    /// Advances to the next block. `Ok(false)` at the terminator. The
    /// frame structure was validated at open time, so header/length reads
    /// cannot fail here.
    fn next_block(&mut self) -> Result<bool, ReadError> {
        if self.block_decoded != self.block_declared {
            return Err(ReadError::BlockCountMismatch {
                offset: self.block_base,
                declared: self.block_declared,
                decoded: self.block_decoded,
            });
        }
        let header_len = self.format.block_header_bytes();
        let header = &self.bytes[self.pos..self.pos + header_len];
        let len = u32::from_le_bytes(header[..4].try_into().expect("slice length")) as usize;
        let count = u32::from_le_bytes(header[4..8].try_into().expect("slice length"));
        if len == 0 {
            return Ok(false);
        }
        self.payload = &self.bytes[self.pos + header_len..self.pos + header_len + len];
        self.block_base = self.pos as u64;
        self.block_declared = count;
        self.block_decoded = 0;
        self.ppos = 0;
        self.v2_state = V2State::default();
        self.pos += header_len + len;
        Ok(true)
    }
}

impl Iterator for FileRecords<'_> {
    type Item = Result<Record, ReadError>;

    /// Bulk drain, mirroring [`TraceReader`]'s `fold`: one tight decode
    /// loop per block with the consumer inlined, no per-record iterator
    /// call. The seek filter (`skip_until`) stays on the fast path — it
    /// is a predictable not-taken branch once positioned.
    fn fold<B, F>(mut self, init: B, mut f: F) -> B
    where
        F: FnMut(B, Self::Item) -> B,
    {
        let mut acc = init;
        if self.done {
            return acc;
        }
        loop {
            while self.ppos == self.payload.len() {
                match self.next_block() {
                    Ok(true) => {}
                    Ok(false) => return acc,
                    Err(e) => return f(acc, Err(e)),
                }
            }
            let payload_base = self.block_base + self.format.block_header_bytes() as u64;
            match self.format {
                FormatVersion::V1 => {
                    while self.ppos < self.payload.len() {
                        match binary::decode_one(
                            &self.payload[self.ppos..],
                            payload_base + self.ppos as u64,
                        ) {
                            Ok((rec, len)) => {
                                self.ppos += len;
                                self.block_decoded += 1;
                                if let Some(id) = self.skip_until {
                                    match rec {
                                        Record::Checkpoint { loop_id, .. } if loop_id == id => {
                                            self.skip_until = None;
                                        }
                                        _ => continue,
                                    }
                                }
                                acc = f(acc, Ok(rec));
                            }
                            Err(e) => return f(acc, Err(ReadError::Decode(e))),
                        }
                    }
                }
                FormatVersion::V2 => {
                    // Counters and the seek filter ride in the closure so
                    // the loop's only per-record memory traffic is the
                    // payload and the address table (see
                    // `v2::decode_fold`). The filter is a predictable
                    // not-taken branch once positioned.
                    let skip = &mut self.skip_until;
                    let ((a, n), err) = v2::decode_fold(
                        self.payload,
                        &mut self.ppos,
                        payload_base,
                        &mut self.v2_state,
                        (acc, 0u64),
                        |(a, n), rec| {
                            if let Some(id) = *skip {
                                match rec {
                                    Record::Checkpoint { loop_id, .. } if loop_id == id => {
                                        *skip = None;
                                    }
                                    _ => return (a, n + 1),
                                }
                            }
                            (f(a, Ok(rec)), n + 1)
                        },
                    );
                    acc = a;
                    self.block_decoded += n as u32;
                    if let Some(e) = err {
                        return f(acc, Err(ReadError::Decode(e)));
                    }
                }
            }
        }
    }

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            while self.ppos == self.payload.len() {
                match self.next_block() {
                    Ok(true) => {}
                    Ok(false) => {
                        self.done = true;
                        return None;
                    }
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                }
            }
            let payload_base = self.block_base + self.format.block_header_bytes() as u64;
            let res = match self.format {
                FormatVersion::V1 => {
                    match binary::decode_one(
                        &self.payload[self.ppos..],
                        payload_base + self.ppos as u64,
                    ) {
                        Ok((rec, len)) => {
                            self.ppos += len;
                            Ok(rec)
                        }
                        Err(e) => Err(e),
                    }
                }
                FormatVersion::V2 => {
                    v2::decode_step(self.payload, &mut self.ppos, payload_base, &mut self.v2_state)
                }
            };
            match res {
                Ok(rec) => {
                    self.block_decoded += 1;
                    if let Some(id) = self.skip_until {
                        match rec {
                            Record::Checkpoint { loop_id, .. } if loop_id == id => {
                                self.skip_until = None;
                            }
                            _ => continue,
                        }
                    }
                    return Some(Ok(rec));
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(ReadError::Decode(e)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AccessKind;
    use minic::CheckpointKind;

    const FORMATS: [FormatVersion; 2] = [FormatVersion::V1, FormatVersion::V2];

    fn sample(n: u32) -> Vec<Record> {
        let mut recs = vec![Record::checkpoint(0, CheckpointKind::LoopBegin)];
        for i in 0..n {
            recs.push(Record::checkpoint(0, CheckpointKind::BodyBegin));
            recs.push(Record::access(0x40_0000 + 4 * (i % 7), 0x1000_0000 + i, AccessKind::Read));
            recs.push(Record::checkpoint(0, CheckpointKind::BodyEnd));
        }
        recs
    }

    fn encode_with(format: FormatVersion, records: &[Record], block_bytes: usize) -> Vec<u8> {
        let mut w = TraceWriter::with_options(Vec::new(), format, block_bytes);
        for r in records {
            w.record(r);
        }
        w.finish();
        assert!(w.io_error().is_none());
        w.into_inner()
    }

    #[test]
    fn round_trip_across_block_sizes_and_formats() {
        let recs = sample(100);
        for format in FORMATS {
            for block_bytes in [1, 16, 64, 4096, DEFAULT_BLOCK_BYTES] {
                let bytes = encode_with(format, &recs, block_bytes);
                let file = TraceFile::from_bytes(bytes.clone()).unwrap();
                assert_eq!(file.version(), format);
                assert_eq!(file.record_count(), recs.len() as u64);
                let decoded: Vec<Record> = file.records().map(Result::unwrap).collect();
                assert_eq!(decoded, recs, "{format} block_bytes={block_bytes}");
                let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
                let streamed: Vec<Record> = reader.by_ref().map(Result::unwrap).collect();
                assert_eq!(streamed, recs, "{format} block_bytes={block_bytes}");
                assert_eq!(reader.records_read(), recs.len() as u64);
            }
        }
    }

    #[test]
    fn v2_files_are_smaller() {
        let recs = sample(500);
        let v1 = encode_with(FormatVersion::V1, &recs, DEFAULT_BLOCK_BYTES);
        let v2 = encode_with(FormatVersion::V2, &recs, DEFAULT_BLOCK_BYTES);
        assert!(
            v2.len() * 3 <= v1.len(),
            "v2 ({}) should be at least 3x smaller than v1 ({})",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn empty_trace_is_a_valid_file_in_both_formats() {
        let v1 = encode_with(FormatVersion::V1, &[], DEFAULT_BLOCK_BYTES);
        assert_eq!(v1.len(), HEADER_BYTES + 8 + 8, "v1: header + terminator + footer");
        let v2 = encode_with(FormatVersion::V2, &[], DEFAULT_BLOCK_BYTES);
        assert_eq!(
            v2.len(),
            HEADER_BYTES + 12 + 8 + 8,
            "v2: header + terminator + empty index + footer"
        );
        for bytes in [v1, v2] {
            let file = TraceFile::from_bytes(bytes.clone()).unwrap();
            assert_eq!(file.record_count(), 0);
            assert_eq!(file.records().count(), 0);
            assert!(file.index().is_none());
            assert_eq!(TraceReader::new(bytes.as_slice()).unwrap().count(), 0);
        }
    }

    #[test]
    fn write_file_and_open_round_trip() {
        let recs = sample(30);
        let path = std::env::temp_dir().join("foray_trace_file_test.ftrace");
        assert_eq!(write_file(&path, &recs).unwrap(), recs.len() as u64);
        let file = TraceFile::open(&path).unwrap();
        assert_eq!(file.version(), FormatVersion::V2);
        let decoded: Vec<Record> = file.records().map(Result::unwrap).collect();
        assert_eq!(decoded, recs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = encode_with(FormatVersion::V2, &sample(3), 64);
        bytes[0] = b'X';
        assert!(matches!(TraceFile::from_bytes(bytes.clone()), Err(ReadError::BadMagic(_))));
        bytes[0] = MAGIC[0];
        bytes[8] = 0xfe;
        let err = TraceFile::from_bytes(bytes.clone()).unwrap_err();
        assert!(matches!(err, ReadError::UnsupportedVersion(0xfe)));
        assert!(err.to_string().contains("newer than this reader"), "{err}");
        // Version 0 is not "newer", it is unknown.
        bytes[8] = 0;
        let err = TraceFile::from_bytes(bytes.clone()).unwrap_err();
        assert!(matches!(err, ReadError::UnsupportedVersion(0)));
        assert!(err.to_string().contains("unknown"), "{err}");
        bytes[8] = VERSION as u8;
        bytes[10] = 1;
        assert!(matches!(TraceFile::from_bytes(bytes.clone()), Err(ReadError::BadHeader)));
        bytes[10] = 0;
        assert!(TraceFile::from_bytes(bytes).is_ok(), "restored header parses again");
    }

    #[test]
    fn old_version_stays_readable_through_the_dispatch() {
        // The versioning contract: a v1 file written by an older tree must
        // open in a reader whose default (and newest) format is v2.
        let recs = sample(10);
        let bytes = encode_with(FormatVersion::V1, &recs, 64);
        assert_eq!(bytes[8], 1, "v1 on disk");
        let file = TraceFile::from_bytes(bytes).unwrap();
        assert_eq!(file.version(), FormatVersion::V1);
        let decoded: Vec<Record> = file.records().map(Result::unwrap).collect();
        assert_eq!(decoded, recs);
    }

    #[test]
    fn rejects_truncation_everywhere() {
        for format in FORMATS {
            let bytes = encode_with(format, &sample(40), 64);
            for cut in [3, HEADER_BYTES - 1, HEADER_BYTES + 3, bytes.len() / 2, bytes.len() - 1] {
                let truncated = bytes[..cut].to_vec();
                assert!(
                    TraceFile::from_bytes(truncated.clone()).is_err(),
                    "{format} cut={cut} must not open"
                );
                let streamed: Result<Vec<Record>, ReadError> =
                    match TraceReader::new(truncated.as_slice()) {
                        Ok(r) => r.collect(),
                        Err(e) => Err(e),
                    };
                assert!(streamed.is_err(), "{format} cut={cut} must not stream");
            }
        }
    }

    #[test]
    fn rejects_footer_count_mismatch() {
        for format in FORMATS {
            let mut bytes = encode_with(format, &sample(5), DEFAULT_BLOCK_BYTES);
            let footer_at = bytes.len() - 8;
            bytes[footer_at] ^= 1;
            assert!(matches!(
                TraceFile::from_bytes(bytes.clone()),
                Err(ReadError::CountMismatch { .. })
            ));
            let streamed: Result<Vec<Record>, _> =
                TraceReader::new(bytes.as_slice()).unwrap().collect();
            assert!(matches!(streamed, Err(ReadError::CountMismatch { .. })), "{format}");
        }
    }

    #[test]
    fn rejects_block_count_mismatch() {
        // v1 only: in v2 the per-block record count is validated against
        // the index ordinals at open, and payload tampering trips the CRC
        // first — the v1 path is the one that must catch the lie at
        // decode time.
        let mut bytes = encode_with(FormatVersion::V1, &sample(5), DEFAULT_BLOCK_BYTES);
        // Bump the single block's record-count field; fix the footer to
        // match so the frame walk passes and decoding catches the lie.
        let count_at = HEADER_BYTES + 4;
        bytes[count_at] += 1;
        let footer_at = bytes.len() - 8;
        bytes[footer_at] += 1;
        let file = TraceFile::from_bytes(bytes.clone()).unwrap();
        let got: Result<Vec<Record>, _> = file.records().collect();
        assert!(matches!(got, Err(ReadError::BlockCountMismatch { .. })));
        let streamed: Result<Vec<Record>, _> =
            TraceReader::new(bytes.as_slice()).unwrap().collect();
        assert!(matches!(streamed, Err(ReadError::BlockCountMismatch { .. })));
    }

    #[test]
    fn v1_corrupt_payload_reports_absolute_offset() {
        let recs = sample(2);
        let mut bytes = encode_with(FormatVersion::V1, &recs, DEFAULT_BLOCK_BYTES);
        // First payload byte is the first record's tag.
        let tag_at = HEADER_BYTES + 8;
        bytes[tag_at] = 0xaa;
        let file = TraceFile::from_bytes(bytes.clone()).unwrap();
        let err = file.records().find_map(Result::err).unwrap();
        let ReadError::Decode(d) = &err else { panic!("want decode error, got {err}") };
        assert_eq!(d.offset, tag_at as u64);
        let err = TraceReader::new(bytes.as_slice()).unwrap().find_map(Result::err).unwrap();
        let ReadError::Decode(d) = &err else { panic!("want decode error, got {err}") };
        assert_eq!(d.offset, tag_at as u64);
    }

    #[test]
    fn v2_payload_corruption_trips_the_block_crc() {
        let mut bytes = encode_with(FormatVersion::V2, &sample(8), DEFAULT_BLOCK_BYTES);
        let payload_at = HEADER_BYTES + 12;
        bytes[payload_at] ^= 0x40;
        assert!(matches!(TraceFile::from_bytes(bytes.clone()), Err(ReadError::BadBlockCrc { .. })));
        let streamed: Result<Vec<Record>, _> =
            TraceReader::new(bytes.as_slice()).unwrap().collect();
        assert!(matches!(streamed, Err(ReadError::BadBlockCrc { .. })));
        // Corrupting the stored CRC itself is equally fatal.
        let mut bytes = encode_with(FormatVersion::V2, &sample(8), DEFAULT_BLOCK_BYTES);
        bytes[HEADER_BYTES + 8] ^= 1;
        assert!(matches!(TraceFile::from_bytes(bytes), Err(ReadError::BadBlockCrc { .. })));
    }

    #[test]
    fn v2_index_corruption_is_rejected() {
        let bytes = encode_with(FormatVersion::V2, &sample(40), 64);
        let file = TraceFile::from_bytes(bytes.clone()).unwrap();
        let n_blocks = file.index().unwrap().entries().len();
        assert!(n_blocks > 1, "want a multi-block file");
        // The index section starts after the terminator; entry count is
        // its first field. Find it from the end: footer(8) + crc(4) +
        // entries + count(4).
        let count_at = bytes.len() - 8 - 4 - n_blocks * ENTRY_BYTES - 4;
        let mut tampered = bytes.clone();
        tampered[count_at] ^= 1;
        assert!(matches!(TraceFile::from_bytes(tampered), Err(ReadError::BadIndex { .. })));
        // Flipping an entry byte breaks the index CRC.
        let mut tampered = bytes.clone();
        tampered[count_at + 4] ^= 1;
        assert!(matches!(TraceFile::from_bytes(tampered), Err(ReadError::BadIndex { .. })));
    }

    #[test]
    fn rejects_oversized_block_declarations() {
        for format in FORMATS {
            let mut bytes = Vec::from(header_bytes(format, 64));
            bytes.extend_from_slice(&(MAX_BLOCK_BYTES + 1).to_le_bytes());
            bytes.extend_from_slice(&0u32.to_le_bytes());
            if format == FormatVersion::V2 {
                bytes.extend_from_slice(&0u32.to_le_bytes());
            }
            assert!(matches!(
                TraceFile::from_bytes(bytes.clone()),
                Err(ReadError::OversizedBlock { .. })
            ));
            let streamed: Result<Vec<Record>, _> =
                TraceReader::new(bytes.as_slice()).unwrap().collect();
            assert!(matches!(streamed, Err(ReadError::OversizedBlock { .. })), "{format}");
        }
    }

    #[test]
    fn absurd_block_capacities_still_produce_readable_files() {
        // Capacities past the readers' sanity bound (or past u32) must be
        // clamped at write time, never produce a file the readers reject.
        let recs = sample(20);
        for format in FORMATS {
            for cap in [0usize, MAX_BLOCK_BYTES as usize, usize::MAX] {
                let mut w = TraceWriter::with_options(Vec::new(), format, cap);
                for r in &recs {
                    w.record(r);
                }
                w.finish();
                assert!(w.io_error().is_none());
                let file = TraceFile::from_bytes(w.into_inner()).unwrap();
                assert!(file.block_hint() <= MAX_BLOCK_BYTES, "{format} cap={cap}");
                let decoded: Vec<Record> = file.records().map(Result::unwrap).collect();
                assert_eq!(decoded, recs, "{format} cap={cap}");
            }
        }
    }

    #[test]
    fn writer_reports_counts_and_is_idempotent_on_finish() {
        let recs = sample(10);
        let mut w = TraceWriter::new(Vec::new());
        for r in &recs {
            w.record(r);
        }
        assert_eq!(w.records_written(), recs.len() as u64);
        w.finish();
        w.finish(); // no double terminator / index / footer
        let bytes = w.into_inner();
        let file = TraceFile::from_bytes(bytes).unwrap();
        assert_eq!(file.record_count(), recs.len() as u64);
    }

    #[test]
    fn index_entries_describe_the_blocks() {
        let recs = sample(50);
        // Tiny blocks so the index has many entries.
        let bytes = encode_with(FormatVersion::V2, &recs, 32);
        let file = TraceFile::from_bytes(bytes.clone()).unwrap();
        let index = file.index().expect("v2 writes an index by default");
        assert!(index.entries().len() > 1);
        assert_eq!(index.entries()[0].offset, HEADER_BYTES as u64);
        assert_eq!(index.entries()[0].first_ordinal, 0);
        // Ordinals are strictly increasing and cover all records.
        let ordinals: Vec<u64> = index.entries().iter().map(|e| e.first_ordinal).collect();
        assert!(ordinals.windows(2).all(|w| w[0] < w[1]));
        // Every entry's loop range covers loop 0 or is access-only.
        assert!(index.find_loop(LoopId(0)).is_some());
        // The streaming reader sees (and validates) the same index.
        let mut reader = TraceReader::new(bytes.as_slice()).unwrap();
        assert!(reader.index().is_none(), "index arrives only after the drain");
        reader.by_ref().for_each(|r| {
            r.unwrap();
        });
        assert_eq!(reader.index().unwrap(), index);
    }

    #[test]
    fn disabled_index_round_trips_and_reports_unseekable() {
        let recs = sample(20);
        let mut w = TraceWriter::with_options(Vec::new(), FormatVersion::V2, 64)
            .with_checkpoint_index(false);
        for r in &recs {
            w.record(r);
        }
        w.finish();
        assert!(w.io_error().is_none());
        let file = TraceFile::from_bytes(w.into_inner()).unwrap();
        assert!(file.index().is_none());
        assert!(file.records_from_loop(LoopId(0)).is_none());
        let decoded: Vec<Record> = file.records().map(Result::unwrap).collect();
        assert_eq!(decoded, recs);
    }

    /// A trace where loop ids appear in disjoint phases, so later loops
    /// live in blocks the seek must skip to.
    fn phased_trace(loops: u32, bodies: u32) -> Vec<Record> {
        let mut t = Vec::new();
        for l in 0..loops {
            t.push(Record::checkpoint(l, CheckpointKind::LoopBegin));
            for i in 0..bodies {
                t.push(Record::checkpoint(l, CheckpointKind::BodyBegin));
                t.push(Record::access(
                    0x40_0000 + 16 * l,
                    0x1000_0000 + (l << 20) + 4 * i,
                    AccessKind::Read,
                ));
                t.push(Record::checkpoint(l, CheckpointKind::BodyEnd));
            }
        }
        t
    }

    #[test]
    fn seek_to_loop_equals_the_scanned_suffix() {
        let recs = phased_trace(6, 30);
        for block_bytes in [24, 64, 512] {
            let bytes = encode_with(FormatVersion::V2, &recs, block_bytes);
            let file = TraceFile::from_bytes(bytes).unwrap();
            for l in 0..6u32 {
                let want: Vec<Record> = {
                    let at = recs
                        .iter()
                        .position(
                            |r| matches!(r, Record::Checkpoint { loop_id, .. } if loop_id.0 == l),
                        )
                        .unwrap();
                    recs[at..].to_vec()
                };
                let got: Vec<Record> = file
                    .records_from_loop(LoopId(l))
                    .expect("indexed loop is seekable")
                    .map(Result::unwrap)
                    .collect();
                assert_eq!(got, want, "loop {l} block_bytes={block_bytes}");
            }
            // A loop id past every range is reported as certainly absent.
            assert!(file.records_from_loop(LoopId(99)).is_none());
        }
    }
}
