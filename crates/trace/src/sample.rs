//! Deterministic trace sampling.
//!
//! Billion-record traces do not need every access to fit a good affine
//! model — but they *do* need reproducibility: the same program and the
//! same configuration must always yield the same model, independent of
//! wall-clock, thread scheduling, or a global RNG. Every mode here is
//! therefore a pure function of a seeded counter/hash over the access
//! stream:
//!
//! | Spec | Meaning |
//! |---|---|
//! | `full` | identity — every record forwarded |
//! | `every:N` | per reference, keep accesses `0, N, 2N, ...` |
//! | `warmup:N` | per reference, *skip* the first `N` accesses |
//! | `reservoir:N[:SEED]` | per reference, keep the first `N` accesses, then accept access `k` iff `hash(seed, instr, k) mod (k+1) < N` — Algorithm R's acceptance schedule made deterministic, forwarding `O(N log K)` of `K` accesses |
//!
//! "Per reference" means per instruction address — exactly the key the
//! sharded analyzer partitions by, so a sampled stream analyzes
//! **identically** for any worker count: each shard observes its own
//! references' full access sub-sequences and reproduces the same accept
//! decisions the sequential analyzer makes. Checkpoints always pass
//! (Algorithm 2's loop-tree reconstruction must see every one), so
//! sampling changes *model fidelity*, never *model validity*.
//!
//! [`SampleState`] is the bare accept/reject decision procedure (embedded
//! by the analyzer); [`SampleSink`] lifts it into a composable
//! [`TraceSink`] adapter for filtering arbitrary consumers (e.g. a
//! [`crate::TraceWriter`] recording a thinned trace).

use crate::record::{Access, Record};
use crate::sink::TraceSink;
use std::collections::HashMap;
use std::fmt;

/// Seed used by `reservoir:N` when the spec does not carry one.
pub const DEFAULT_SAMPLE_SEED: u64 = 0x5EED_F04A_9E37_79B9;

/// A deterministic sampling policy (see the module docs for the table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SampleSpec {
    /// Identity: every access forwarded.
    #[default]
    Full,
    /// Per reference, keep every `n`-th access (the 0th, `n`-th, ...).
    EveryNth {
        /// Keep one access in `n`; `1` (or `0`) is the identity.
        n: u64,
    },
    /// Per reference, skip the first `skip` accesses (drop cold-start
    /// noise before the steady-state pattern); `0` is the identity.
    Warmup {
        /// Accesses to drop per reference before forwarding.
        skip: u64,
    },
    /// Per reference, keep the first `size` accesses, then follow
    /// Algorithm R's acceptance schedule with a seeded hash in place of
    /// the RNG.
    Reservoir {
        /// Guaranteed-kept prefix length / acceptance numerator.
        size: u64,
        /// Hash seed ([`DEFAULT_SAMPLE_SEED`] unless the spec names one).
        seed: u64,
    },
}

impl SampleSpec {
    /// Whether this spec forwards every record unchanged.
    pub fn is_identity(&self) -> bool {
        matches!(
            self,
            SampleSpec::Full | SampleSpec::EveryNth { n: 0 | 1 } | SampleSpec::Warmup { skip: 0 }
        )
    }

    /// Parses the CLI spelling: `full`, `every:N`, `warmup:N`, or
    /// `reservoir:N[:SEED]`.
    ///
    /// # Errors
    ///
    /// A human-readable message when the spec is malformed (unknown mode,
    /// missing or non-numeric parameter, `every:0`/`reservoir:0`).
    ///
    /// # Examples
    ///
    /// ```
    /// use minic_trace::SampleSpec;
    ///
    /// assert_eq!(SampleSpec::parse("every:8"), Ok(SampleSpec::EveryNth { n: 8 }));
    /// assert!(SampleSpec::parse("every:0").is_err());
    /// assert!(SampleSpec::parse("coinflip").is_err());
    /// ```
    pub fn parse(spec: &str) -> Result<SampleSpec, String> {
        let mut parts = spec.split(':');
        let mode = parts.next().unwrap_or_default();
        let num = |p: Option<&str>| -> Result<u64, String> {
            let v = p.ok_or_else(|| format!("`{spec}` is missing its numeric parameter"))?;
            v.parse().map_err(|_| format!("`{v}` in `{spec}` is not a number"))
        };
        let done = |mut parts: std::str::Split<'_, char>, r: SampleSpec| match parts.next() {
            Some(extra) => Err(format!("unexpected `{extra}` in `{spec}`")),
            None => Ok(r),
        };
        match mode {
            "full" | "none" => done(parts, SampleSpec::Full),
            "every" => match num(parts.next())? {
                0 => Err(format!("`{spec}`: every:N needs N >= 1")),
                n => done(parts, SampleSpec::EveryNth { n }),
            },
            "warmup" => {
                let skip = num(parts.next())?;
                done(parts, SampleSpec::Warmup { skip })
            }
            "reservoir" => match num(parts.next())? {
                0 => Err(format!("`{spec}`: reservoir:N needs N >= 1")),
                size => {
                    let seed = match parts.next() {
                        Some(s) => s
                            .parse()
                            .map_err(|_| format!("seed `{s}` in `{spec}` is not a number"))?,
                        None => DEFAULT_SAMPLE_SEED,
                    };
                    done(parts, SampleSpec::Reservoir { size, seed })
                }
            },
            other => Err(format!(
                "unknown sampling mode `{other}` (use full, every:N, warmup:N, reservoir:N[:SEED])"
            )),
        }
    }
}

impl fmt::Display for SampleSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleSpec::Full => write!(f, "full"),
            SampleSpec::EveryNth { n } => write!(f, "every:{n}"),
            SampleSpec::Warmup { skip } => write!(f, "warmup:{skip}"),
            SampleSpec::Reservoir { size, seed } if *seed == DEFAULT_SAMPLE_SEED => {
                write!(f, "reservoir:{size}")
            }
            SampleSpec::Reservoir { size, seed } => write!(f, "reservoir:{size}:{seed}"),
        }
    }
}

/// SplitMix64 finalizer: the deterministic stand-in for Algorithm R's RNG.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The streaming accept/reject decision procedure for a [`SampleSpec`].
///
/// State is one counter per instruction address, so decisions depend only
/// on each reference's own access sub-sequence — the property that makes
/// sampling commute with instruction-address sharding.
#[derive(Debug, Clone, Default)]
pub struct SampleState {
    spec: SampleSpec,
    counts: HashMap<u32, u64>,
}

impl SampleState {
    /// Creates the decision state for `spec`.
    pub fn new(spec: SampleSpec) -> SampleState {
        SampleState { spec, counts: HashMap::new() }
    }

    /// The policy in force.
    pub fn spec(&self) -> SampleSpec {
        self.spec
    }

    /// Returns this reference's 0-based access ordinal and advances it.
    fn next(&mut self, instr: u32) -> u64 {
        let c = self.counts.entry(instr).or_insert(0);
        let k = *c;
        *c += 1;
        k
    }

    /// Decides whether `a` is forwarded, advancing the per-reference
    /// counter. Deterministic: the decision is a pure function of the
    /// spec, the instruction address, and how many accesses of that
    /// instruction came before.
    pub fn accept(&mut self, a: &Access) -> bool {
        match self.spec {
            SampleSpec::Full => true,
            SampleSpec::EveryNth { n } => {
                if n <= 1 {
                    return true;
                }
                self.next(a.instr.0) % n == 0
            }
            SampleSpec::Warmup { skip } => {
                if skip == 0 {
                    return true;
                }
                self.next(a.instr.0) >= skip
            }
            SampleSpec::Reservoir { size, seed } => {
                let k = self.next(a.instr.0);
                if k < size {
                    return true;
                }
                mix64(seed ^ mix64((u64::from(a.instr.0) << 32) ^ k)) % (k + 1) < size
            }
        }
    }
}

/// Composable [`TraceSink`] adapter applying a [`SampleSpec`] to the
/// access stream: checkpoints always pass, accesses pass when the policy
/// accepts them.
///
/// # Examples
///
/// ```
/// use minic_trace::{AccessKind, Record, SampleSink, SampleSpec, TraceSink, VecSink};
///
/// let spec = SampleSpec::parse("every:2").unwrap();
/// let mut sink = SampleSink::new(spec, VecSink::new());
/// for i in 0..4 {
///     sink.record(&Record::access(0x400000, 0x1000 + i, AccessKind::Read));
/// }
/// sink.finish();
/// assert_eq!((sink.seen(), sink.kept()), (4, 2));
/// assert_eq!(sink.into_inner().records.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SampleSink<S> {
    state: SampleState,
    inner: S,
    seen: u64,
    kept: u64,
}

impl<S: TraceSink> SampleSink<S> {
    /// Wraps `inner` with the sampling policy `spec`.
    pub fn new(spec: SampleSpec, inner: S) -> SampleSink<S> {
        SampleSink { state: SampleState::new(spec), inner, seen: 0, kept: 0 }
    }

    /// Accesses observed (before sampling).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Accesses forwarded (after sampling).
    pub fn kept(&self) -> u64 {
        self.kept
    }

    /// Unwraps the downstream sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TraceSink> TraceSink for SampleSink<S> {
    fn record(&mut self, rec: &Record) {
        match rec {
            Record::Checkpoint { .. } => self.inner.record(rec),
            Record::Access(a) => {
                self.seen += 1;
                if self.state.accept(a) {
                    self.kept += 1;
                    self.inner.record(rec);
                }
            }
        }
    }

    fn finish(&mut self) {
        self.inner.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AccessKind;
    use crate::sink::VecSink;
    use minic::CheckpointKind;

    fn stream(per_ref: u64) -> Vec<Record> {
        let mut t = vec![Record::checkpoint(0, CheckpointKind::LoopBegin)];
        for i in 0..per_ref {
            t.push(Record::checkpoint(0, CheckpointKind::BodyBegin));
            for instr in [0x40_0000u32, 0x40_0008] {
                t.push(Record::access(instr, 0x1000 + 4 * i as u32, AccessKind::Read));
            }
            t.push(Record::checkpoint(0, CheckpointKind::BodyEnd));
        }
        t
    }

    fn run(spec: SampleSpec, records: &[Record]) -> (Vec<Record>, u64, u64) {
        let mut sink = SampleSink::new(spec, VecSink::new());
        for r in records {
            sink.record(r);
        }
        sink.finish();
        let (seen, kept) = (sink.seen(), sink.kept());
        (sink.into_inner().into_records(), seen, kept)
    }

    #[test]
    fn parse_round_trips() {
        for spec in ["full", "every:4", "warmup:100", "reservoir:32", "reservoir:8:99"] {
            let parsed = SampleSpec::parse(spec).unwrap();
            assert_eq!(parsed.to_string(), spec);
        }
        assert_eq!(SampleSpec::parse("none"), Ok(SampleSpec::Full));
        for bad in
            ["", "every", "every:", "every:0", "every:x", "reservoir:0", "warmup:-1", "every:2:3"]
        {
            assert!(SampleSpec::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn identity_specs_forward_everything() {
        let records = stream(10);
        for spec in ["full", "every:1", "warmup:0"] {
            let spec = SampleSpec::parse(spec).unwrap();
            assert!(spec.is_identity());
            let (out, seen, kept) = run(spec, &records);
            assert_eq!(out, records);
            assert_eq!(seen, kept);
        }
        assert!(!SampleSpec::parse("every:2").unwrap().is_identity());
        assert!(!SampleSpec::parse("reservoir:1000000").unwrap().is_identity());
    }

    #[test]
    fn every_nth_is_per_reference() {
        let (out, seen, kept) = run(SampleSpec::EveryNth { n: 3 }, &stream(9));
        assert_eq!(seen, 18);
        assert_eq!(kept, 6, "each of the two references keeps accesses 0, 3, 6");
        // Checkpoints are untouched: 1 + 9 * 2.
        let checkpoints = out.iter().filter(|r| matches!(r, Record::Checkpoint { .. })).count();
        assert_eq!(checkpoints, 19);
    }

    #[test]
    fn warmup_skips_the_cold_start_per_reference() {
        let (out, seen, kept) = run(SampleSpec::Warmup { skip: 7 }, &stream(10));
        assert_eq!((seen, kept), (20, 6));
        // The survivors are the *late* accesses of each reference.
        for r in &out {
            if let Record::Access(a) = r {
                assert!(a.addr.0 >= 0x1000 + 4 * 7, "kept a warmup access: {a:?}");
            }
        }
    }

    #[test]
    fn reservoir_keeps_the_prefix_and_is_deterministic() {
        let records = stream(500);
        let spec = SampleSpec::Reservoir { size: 16, seed: DEFAULT_SAMPLE_SEED };
        let (a, seen, kept) = run(spec, &records);
        let (b, _, _) = run(spec, &records);
        assert_eq!(a, b, "same spec, same stream, same sample");
        assert_eq!(seen, 1000);
        // Guaranteed prefix, logarithmic tail: far fewer than all, at
        // least `size` per reference.
        assert!((32..500).contains(&kept), "kept {kept}");
        // A different seed gives a different (but still deterministic)
        // tail selection.
        let (c, _, _) = run(SampleSpec::Reservoir { size: 16, seed: 1 }, &records);
        assert_ne!(a, c, "seed must steer the tail selection");
    }

    #[test]
    fn state_decisions_match_the_sink() {
        let records = stream(50);
        let spec = SampleSpec::Reservoir { size: 4, seed: 7 };
        let (out, _, _) = run(spec, &records);
        let mut state = SampleState::new(spec);
        let direct: Vec<Record> = records
            .iter()
            .filter(|r| match r {
                Record::Checkpoint { .. } => true,
                Record::Access(a) => state.accept(a),
            })
            .copied()
            .collect();
        assert_eq!(out, direct);
        assert_eq!(state.spec(), spec);
    }
}
