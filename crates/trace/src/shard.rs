//! Record-stream sharding for parallel analysis.
//!
//! The affine state of a reference depends only on the accesses of its own
//! `(node, instruction)` key plus the checkpoint stream that positions the
//! loop-tree walker — so a trace can be split by *instruction address* into
//! K independent sub-streams, each carrying every checkpoint but only its
//! own slice of the accesses. Two sinks implement that routing:
//!
//! * [`ShardingSink`] buffers whole per-shard streams, physically copying
//!   every checkpoint into every shard (simple, O(trace) memory — the
//!   offline buffered path);
//! * [`BlockRouter`] streams bounded [`ShardBlock`]s and keeps **one**
//!   shared, run-length-compacted loop-context log instead of broadcasting:
//!   a shard receives the context between two of its accesses as a handful
//!   of [`BlockItem::Checkpoint`] / [`BlockItem::IterRun`] items, delivered
//!   lazily when its next access (or the end of stream) arrives. Encoding a
//!   checkpoint is O(1) regardless of K, so routed volume is
//!   O(accesses + compressed context) instead of O(K × checkpoints) — the
//!   property that lets streaming analysis scale out on many-core hosts.
//!
//! Both stamp each access with its global ordinal so a downstream merge can
//! restore the exact first-observation order of the sequential analysis,
//! and both deliver a per-shard event sequence whose *decompressed* form is
//! identical: every checkpoint of the original trace (in order) plus the
//! shard's own accesses (in order) — the invariant the byte-identity of
//! sharded analysis rests on.

use crate::record::{Access, InstrAddr, Record};
use crate::sink::TraceSink;
use minic::{CheckpointKind, LoopId};
use std::collections::VecDeque;

/// Deterministically maps an instruction address to a shard in `0..shards`.
///
/// Uses a Fibonacci multiplicative hash so that the dense, stride-patterned
/// synthetic instruction addresses of the simulator spread evenly instead
/// of aliasing a plain modulus.
///
/// # Panics
///
/// Panics if `shards` is zero.
///
/// # Examples
///
/// ```
/// use minic_trace::{shard_of, InstrAddr};
///
/// let s = shard_of(InstrAddr(0x4002a0), 4);
/// assert!(s < 4);
/// assert_eq!(s, shard_of(InstrAddr(0x4002a0), 4)); // stable
/// ```
pub fn shard_of(instr: InstrAddr, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be non-zero");
    let h = (instr.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // High bits carry the most mixing; fold them into the modulus.
    ((h >> 32) % shards as u64) as usize
}

/// One shard's routed sub-stream: every checkpoint of the original trace
/// plus this shard's accesses, each access tagged with its global ordinal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardBuffer {
    /// Records in original relative order (all checkpoints + own accesses).
    pub records: Vec<Record>,
    /// Global access ordinal for each `Record::Access` in `records`,
    /// in the same order the accesses appear.
    pub access_seqs: Vec<u64>,
}

/// One event of a routed [`ShardBlock`] — an access, a verbatim
/// checkpoint, or a run-length-compressed span of empty body iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockItem {
    /// One of this shard's own accesses.
    Access(Access),
    /// A loop-context checkpoint, verbatim.
    Checkpoint {
        /// Which loop.
        loop_id: LoopId,
        /// Which of the three checkpoint kinds.
        kind: CheckpointKind,
    },
    /// `runs` consecutive body iterations of one loop in which this shard
    /// had nothing to do — semantically `(BodyBegin; BodyEnd) × runs`.
    /// Replaying it moves the loop-tree walker exactly as the expanded
    /// pairs would (see `foray::LoopTree::on_body_run`).
    IterRun {
        /// Which loop.
        loop_id: LoopId,
        /// How many complete `(BodyBegin; BodyEnd)` pairs this stands for.
        runs: u32,
    },
}

/// One bounded block of a shard's routed sub-stream, in compacted form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardBlock {
    /// Events in original relative order (context items interleaved with
    /// this shard's accesses).
    pub items: Vec<BlockItem>,
    /// Global access ordinal for each [`BlockItem::Access`] in `items`,
    /// in the same order the accesses appear.
    pub access_seqs: Vec<u64>,
}

impl ShardBlock {
    fn with_capacity(cap: usize) -> ShardBlock {
        // Full capacity pre-reserved so filling never reallocates (the
        // routing hot path runs while the VM is executing).
        ShardBlock { items: Vec::with_capacity(cap), access_seqs: Vec::with_capacity(cap) }
    }

    /// Expands the compacted items back into plain [`Record`]s — each
    /// [`BlockItem::IterRun`] becomes its `(BodyBegin; BodyEnd)` pairs.
    /// Concatenating the expansions of one shard's blocks reproduces
    /// exactly the [`ShardBuffer`] the broadcasting [`ShardingSink`] would
    /// have built for it (the equivalence `BlockRouter`'s tests lock down).
    pub fn expand_into(&self, buf: &mut ShardBuffer) {
        for item in &self.items {
            match item {
                BlockItem::Access(a) => buf.records.push(Record::Access(*a)),
                BlockItem::Checkpoint { loop_id, kind } => {
                    buf.records.push(Record::Checkpoint { loop_id: *loop_id, kind: *kind });
                }
                BlockItem::IterRun { loop_id, runs } => {
                    for _ in 0..*runs {
                        buf.records.push(Record::Checkpoint {
                            loop_id: *loop_id,
                            kind: CheckpointKind::BodyBegin,
                        });
                        buf.records.push(Record::Checkpoint {
                            loop_id: *loop_id,
                            kind: CheckpointKind::BodyEnd,
                        });
                    }
                }
            }
        }
        buf.access_seqs.extend_from_slice(&self.access_seqs);
    }
}

/// Routes a record stream into per-shard buffers (see the module docs).
///
/// # Examples
///
/// ```
/// use minic_trace::{AccessKind, Record, ShardingSink, TraceSink};
///
/// let mut sink = ShardingSink::new(4);
/// sink.record(&Record::checkpoint(0, minic::CheckpointKind::LoopBegin));
/// sink.record(&Record::access(0x400000, 0x1000_0000, AccessKind::Read));
/// // Checkpoints broadcast to every shard; the access lands on one.
/// let shards = sink.into_shards();
/// assert!(shards.iter().all(|s| !s.records.is_empty()));
/// assert_eq!(shards.iter().map(|s| s.access_seqs.len()).sum::<usize>(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardingSink {
    shards: Vec<ShardBuffer>,
    seq: u64,
}

impl ShardingSink {
    /// Creates a sink with `shards` empty buffers.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be non-zero");
        ShardingSink { shards: vec![ShardBuffer::default(); shards], seq: 0 }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total accesses routed so far.
    pub fn accesses(&self) -> u64 {
        self.seq
    }

    /// Borrows the shard buffers.
    pub fn shards(&self) -> &[ShardBuffer] {
        &self.shards
    }

    /// Consumes the sink, yielding the per-shard buffers.
    pub fn into_shards(self) -> Vec<ShardBuffer> {
        self.shards
    }
}

impl TraceSink for ShardingSink {
    fn record(&mut self, rec: &Record) {
        match rec {
            Record::Checkpoint { .. } => {
                for shard in &mut self.shards {
                    shard.records.push(*rec);
                }
            }
            Record::Access(a) => {
                let idx = shard_of(a.instr, self.shards.len());
                let shard = &mut self.shards[idx];
                shard.records.push(*rec);
                shard.access_seqs.push(self.seq);
                self.seq += 1;
            }
        }
    }
}

/// One closed entry of the shared context log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtxEntry {
    /// A single checkpoint, verbatim (spans one event).
    Point { loop_id: LoopId, kind: CheckpointKind },
    /// `runs` complete `(BodyBegin; BodyEnd)` pairs of one loop (spans
    /// `2 × runs` events).
    Run { loop_id: LoopId, runs: u32 },
}

impl CtxEntry {
    fn span(&self) -> u64 {
        match self {
            CtxEntry::Point { .. } => 1,
            CtxEntry::Run { runs, .. } => 2 * u64::from(*runs),
        }
    }
}

/// A closed entry plus the global event sequence number it starts at.
#[derive(Debug, Clone, Copy)]
struct Spanned {
    start: u64,
    entry: CtxEntry,
}

/// The trailing run still being built: `runs` complete pairs, plus an
/// unmatched `BodyBegin` when `half` is set.
#[derive(Debug, Clone, Copy)]
struct OpenRun {
    loop_id: LoopId,
    start: u64,
    runs: u32,
    half: bool,
}

impl OpenRun {
    fn end(&self) -> u64 {
        self.start + 2 * u64::from(self.runs) + u64::from(self.half)
    }
}

/// Per-shard replay position in the context log: the next unconsumed
/// checkpoint event (`seq` — partial-run aware) and the absolute index of
/// the next closed entry to examine (`ord` — a deque-index hint that stays
/// valid across pruning).
#[derive(Debug, Clone, Copy, Default)]
struct Cursor {
    seq: u64,
    ord: u64,
}

/// The shared, run-length-compacted checkpoint log (see the module docs).
///
/// Every checkpoint is assigned a global event sequence number; entries
/// record which span of those events they cover, so a `Cursor` can stop
/// *inside* a run (a shard that consumed a `BodyBegin` whose `BodyEnd` had
/// not arrived yet) and resume exactly where it left off even after the
/// run grows or is flushed into closed entries.
#[derive(Debug, Default)]
struct CtxLog {
    closed: VecDeque<Spanned>,
    /// Closed entries pruned off the front so far (keeps `Cursor::ord`
    /// absolute).
    dropped: u64,
    open: Option<OpenRun>,
    next_seq: u64,
}

impl CtxLog {
    /// Appends one checkpoint — O(1), independent of the shard count.
    fn push(&mut self, loop_id: LoopId, kind: CheckpointKind) {
        match kind {
            CheckpointKind::BodyBegin => match self.open {
                Some(ref mut o) if o.loop_id == loop_id && !o.half && o.runs < u32::MAX => {
                    o.half = true;
                }
                _ => {
                    self.close_open();
                    self.open =
                        Some(OpenRun { loop_id, start: self.next_seq, runs: 0, half: true });
                }
            },
            CheckpointKind::BodyEnd => match self.open {
                Some(ref mut o) if o.loop_id == loop_id && o.half => {
                    o.half = false;
                    o.runs += 1;
                }
                _ => {
                    self.close_open();
                    self.closed.push_back(Spanned {
                        start: self.next_seq,
                        entry: CtxEntry::Point { loop_id, kind },
                    });
                }
            },
            CheckpointKind::LoopBegin => {
                self.close_open();
                self.closed.push_back(Spanned {
                    start: self.next_seq,
                    entry: CtxEntry::Point { loop_id, kind },
                });
            }
        }
        self.next_seq += 1;
    }

    /// Seals the open run into closed entries (spans unchanged, so every
    /// cursor stays valid).
    fn close_open(&mut self) {
        if let Some(o) = self.open.take() {
            let mut start = o.start;
            if o.runs > 0 {
                self.closed.push_back(Spanned {
                    start,
                    entry: CtxEntry::Run { loop_id: o.loop_id, runs: o.runs },
                });
                start += 2 * u64::from(o.runs);
            }
            if o.half {
                self.closed.push_back(Spanned {
                    start,
                    entry: CtxEntry::Point { loop_id: o.loop_id, kind: CheckpointKind::BodyBegin },
                });
            }
        }
    }

    /// Entries currently held (the log's memory footprint, in items).
    fn pending(&self) -> usize {
        self.closed.len() + usize::from(self.open.is_some())
    }

    /// Emits the not-yet-consumed suffix of the **closed** entries for one
    /// cursor, advancing it to the start of the open run (or the present).
    fn replay_closed(&self, cursor: &mut Cursor, out: &mut impl FnMut(BlockItem)) {
        // `saturating_sub`: a cursor can sit behind the prune horizon only
        // when the pruned entries were already consumed by every cursor
        // (the pruning contract), so rescanning from 0 re-skips by span.
        let mut idx = cursor.ord.saturating_sub(self.dropped) as usize;
        while idx < self.closed.len() {
            let s = self.closed[idx];
            let end = s.start + s.entry.span();
            if end > cursor.seq {
                match s.entry {
                    CtxEntry::Point { loop_id, kind } => {
                        out(BlockItem::Checkpoint { loop_id, kind })
                    }
                    CtxEntry::Run { loop_id, runs } => {
                        emit_pairs(loop_id, runs, s.start, cursor.seq, out)
                    }
                }
                cursor.seq = end;
            }
            idx += 1;
        }
        cursor.ord = self.dropped + self.closed.len() as u64;
    }

    /// Emits everything the cursor has not seen yet — closed entries and
    /// the open run — bringing it fully up to the present.
    fn replay_all(&self, cursor: &mut Cursor, mut out: impl FnMut(BlockItem)) {
        self.replay_closed(cursor, &mut out);
        if let Some(o) = self.open {
            if o.end() > cursor.seq {
                emit_pairs(o.loop_id, o.runs, o.start, cursor.seq, &mut out);
                if o.half && cursor.seq <= o.start + 2 * u64::from(o.runs) {
                    out(BlockItem::Checkpoint {
                        loop_id: o.loop_id,
                        kind: CheckpointKind::BodyBegin,
                    });
                }
                cursor.seq = o.end();
            }
        }
        debug_assert_eq!(cursor.seq, self.next_seq, "cursor fully caught up");
    }

    /// Drops every closed entry. Callers must have replayed them to every
    /// cursor first.
    fn prune_closed(&mut self) {
        self.dropped += self.closed.len() as u64;
        self.closed.clear();
    }
}

/// Emits the unconsumed part of a run of `runs` pairs starting at event
/// `start`, for a cursor positioned at `from`. A cursor parked mid-pair
/// (it consumed a `BodyBegin` whose `BodyEnd` arrived later) first gets the
/// completing `BodyEnd`, then the remaining pairs as one `IterRun`.
fn emit_pairs(loop_id: LoopId, runs: u32, start: u64, from: u64, out: &mut impl FnMut(BlockItem)) {
    let offset = from.saturating_sub(start);
    let mut done = (offset / 2) as u32;
    if offset % 2 == 1 {
        out(BlockItem::Checkpoint { loop_id, kind: CheckpointKind::BodyEnd });
        done += 1;
    }
    if runs > done {
        out(BlockItem::IterRun { loop_id, runs: runs - done });
    }
}

/// The item-level routing core shared by [`BlockRouter`] (which groups
/// items into bounded [`ShardBlock`]s for thread hand-off) and schedulers
/// that consume items in place (the single-context inline schedule in
/// `foray::shard`): the shard memo, the access-ordinal counter, and the
/// shared compacted context log with one replay `Cursor` per shard.
///
/// [`Self::route`] turns each incoming [`Record`] into zero or more
/// `(shard, item, ordinal)` emissions: an access first flushes the context
/// its shard has not seen, then the access itself (tagged with its global
/// ordinal); a checkpoint is appended to the log in O(1) and only fans out
/// once the log reaches `prune_entries` (or at [`Self::finish`]).
/// Concatenating one shard's emissions reproduces exactly the block
/// sequence [`BlockRouter`] would deliver for it — the equivalence the
/// byte-identity of every schedule rests on.
///
/// # Examples
///
/// ```
/// use minic_trace::{AccessKind, BlockItem, Record, RecordRouter};
///
/// let mut router = RecordRouter::new(2, 64);
/// let mut routed: Vec<(usize, BlockItem, Option<u64>)> = Vec::new();
/// router.route(
///     &Record::checkpoint(0, minic::CheckpointKind::LoopBegin),
///     |s, item, seq| routed.push((s, item, seq)),
/// );
/// // Checkpoints are logged, not fanned out...
/// assert!(routed.is_empty());
/// router.route(
///     &Record::access(0x400000, 0x1000, AccessKind::Read),
///     |s, item, seq| routed.push((s, item, seq)),
/// );
/// // ...and delivered to a shard just before its next access.
/// assert_eq!(routed.len(), 2);
/// assert_eq!(routed[0].2, None); // the LoopBegin context item
/// assert_eq!(routed[1].2, Some(0)); // the access, with its ordinal
/// ```
#[derive(Debug)]
pub struct RecordRouter {
    cursors: Vec<Cursor>,
    ctx: CtxLog,
    prune_entries: usize,
    seq: u64,
    records: u64,
    // Last-instruction shard memo: inner loops hammer one instruction, so
    // the Fibonacci hash is skipped on nearly every access.
    last_instr: u32,
    last_shard: usize,
}

impl RecordRouter {
    /// Creates a router for `shards` consumers whose context log is forced
    /// out to every shard (and pruned) upon reaching `prune_entries`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `prune_entries` is zero.
    pub fn new(shards: usize, prune_entries: usize) -> Self {
        assert!(shards > 0, "shard count must be non-zero");
        assert!(prune_entries > 0, "context log bound must be non-zero");
        RecordRouter {
            cursors: vec![Cursor::default(); shards],
            ctx: CtxLog::default(),
            prune_entries,
            seq: 0,
            records: 0,
            last_instr: 0,
            last_shard: shard_of(InstrAddr(0), shards),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.cursors.len()
    }

    /// Total accesses routed so far (the ordinal counter).
    pub fn accesses(&self) -> u64 {
        self.seq
    }

    /// Total records routed so far (each incoming record counted once —
    /// context compaction means a checkpoint no longer fans out per shard).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Context-log entries currently held (the router's only buffering).
    pub fn pending_context(&self) -> usize {
        self.ctx.pending()
    }

    /// Routes one access in the common no-pending-context case: when its
    /// shard's cursor is already caught up on the context log, the access
    /// routes to `(shard, ordinal)` with nothing to replay, and no
    /// [`BlockItem`] needs to exist at all. Returns `None` when context
    /// must be delivered first — callers then fall back to [`Self::route`]
    /// (which handles every case) for this record.
    #[inline]
    pub fn try_route_access(&mut self, a: &Access) -> Option<(usize, u64)> {
        let shard = if a.instr.0 == self.last_instr {
            self.last_shard
        } else {
            let s = shard_of(a.instr, self.cursors.len());
            self.last_instr = a.instr.0;
            self.last_shard = s;
            s
        };
        if self.cursors[shard].seq != self.ctx.next_seq {
            return None;
        }
        self.records += 1;
        let seq = self.seq;
        self.seq += 1;
        Some((shard, seq))
    }

    /// Routes one record, emitting `(shard, item, access ordinal)` triples.
    /// Only [`BlockItem::Access`] items carry an ordinal.
    pub fn route(&mut self, rec: &Record, mut emit: impl FnMut(usize, BlockItem, Option<u64>)) {
        self.records += 1;
        match rec {
            Record::Checkpoint { loop_id, kind } => {
                self.ctx.push(*loop_id, *kind);
                if self.ctx.closed.len() >= self.prune_entries {
                    self.catch_up_all_closed(&mut emit);
                }
            }
            Record::Access(a) => {
                let shard = if a.instr.0 == self.last_instr {
                    self.last_shard
                } else {
                    let s = shard_of(a.instr, self.cursors.len());
                    self.last_instr = a.instr.0;
                    self.last_shard = s;
                    s
                };
                let cursor = &mut self.cursors[shard];
                if cursor.seq != self.ctx.next_seq {
                    self.ctx.replay_all(cursor, |item| emit(shard, item, None));
                }
                let seq = self.seq;
                self.seq += 1;
                emit(shard, BlockItem::Access(*a), Some(seq));
            }
        }
    }

    /// Replays the closed context to every shard and prunes the log (the
    /// amortized fan-out that bounds the log's memory).
    fn catch_up_all_closed(&mut self, emit: &mut impl FnMut(usize, BlockItem, Option<u64>)) {
        for (shard, cursor) in self.cursors.iter_mut().enumerate() {
            self.ctx.replay_closed(cursor, &mut |item| emit(shard, item, None));
        }
        self.ctx.prune_closed();
    }

    /// Brings every shard fully up to date on the context log and drops it
    /// (idempotent) — every shard has then seen the complete stream.
    pub fn finish(&mut self, mut emit: impl FnMut(usize, BlockItem, Option<u64>)) {
        for (shard, cursor) in self.cursors.iter_mut().enumerate() {
            if cursor.seq != self.ctx.next_seq {
                self.ctx.replay_all(cursor, |item| emit(shard, item, None));
            }
        }
        // Every cursor is now fully caught up; sealing the trailing open
        // run lets the whole log be dropped.
        self.ctx.close_open();
        self.ctx.prune_closed();
    }
}

/// Routes a record stream into **bounded** per-shard [`ShardBlock`]s,
/// handing each block to a consumer callback the moment it fills (and
/// flushing stubs at [`TraceSink::finish`]).
///
/// This is the streaming sibling of [`ShardingSink`] with two structural
/// differences (see the module docs): checkpoints are *encoded once* into a
/// shared compacted context log instead of being copied K times, and each
/// shard receives the context it missed lazily — immediately before its
/// next access, and at the latest when the log hits its pruning bound or
/// the stream finishes. Expanded back out ([`ShardBlock::expand_into`]),
/// each shard's block sequence is identical to the [`ShardingSink`] buffer.
///
/// Memory is capped: per-shard staging holds under one block, and the
/// shared context log is pruned to one block's worth of entries — the
/// consumer (typically a bounded channel to a worker thread, see
/// `foray::shard::analyze_streaming_with`) bounds everything downstream.
///
/// # Examples
///
/// ```
/// use minic_trace::{AccessKind, BlockRouter, Record, ShardBlock, TraceSink};
///
/// let mut blocks: Vec<(usize, ShardBlock)> = Vec::new();
/// let mut router = BlockRouter::new(2, 3, |shard, block| blocks.push((shard, block)));
/// for i in 0..8 {
///     router.record(&Record::access(0x400000, 0x1000 + i, AccessKind::Read));
/// }
/// router.finish();
/// drop(router); // releases the borrow on `blocks`
/// // All accesses of one instruction land on one shard, in order.
/// let total: usize = blocks.iter().map(|(_, b)| b.items.len()).sum();
/// assert_eq!(total, 8);
/// assert!(blocks.iter().all(|(_, b)| b.items.len() <= 3));
/// ```
#[derive(Debug)]
pub struct BlockRouter<F: FnMut(usize, ShardBlock)> {
    core: RecordRouter,
    staging: Vec<ShardBlock>,
    block_records: usize,
    staged: usize,
    peak_buffered: usize,
    emit: F,
}

impl<F: FnMut(usize, ShardBlock)> BlockRouter<F> {
    /// Creates a router for `shards` consumers emitting blocks of up to
    /// `block_records` items.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `block_records` is zero.
    pub fn new(shards: usize, block_records: usize, emit: F) -> Self {
        assert!(block_records > 0, "block size must be non-zero");
        BlockRouter {
            core: RecordRouter::new(shards, block_records),
            staging: (0..shards).map(|_| ShardBlock::with_capacity(block_records)).collect(),
            block_records,
            staged: 0,
            peak_buffered: 0,
            emit,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.staging.len()
    }

    /// Total accesses routed so far (the ordinal counter).
    pub fn accesses(&self) -> u64 {
        self.core.accesses()
    }

    /// Total records routed so far (each incoming record counted once —
    /// context compaction means a checkpoint no longer fans out per shard).
    pub fn records(&self) -> u64 {
        self.core.records()
    }

    /// Items currently held by the router: staged block items plus pending
    /// context-log entries.
    pub fn buffered_records(&self) -> usize {
        self.staged + self.core.pending_context()
    }

    /// High-water mark of [`Self::buffered_records`] — bounded by
    /// `shards + 2` blocks (staging plus the pruned context log).
    pub fn peak_buffered_records(&self) -> usize {
        self.peak_buffered
    }

    fn note_peak(&mut self) {
        let b = self.staged + self.core.pending_context();
        if b > self.peak_buffered {
            self.peak_buffered = b;
        }
    }
}

/// Stages one routed item into its shard's block, handing the block off
/// the moment it fills.
#[inline]
fn stage_item(
    staging: &mut [ShardBlock],
    staged: &mut usize,
    block_records: usize,
    emit: &mut impl FnMut(usize, ShardBlock),
    shard: usize,
    item: BlockItem,
    seq: Option<u64>,
) {
    let block = &mut staging[shard];
    block.items.push(item);
    if let Some(s) = seq {
        block.access_seqs.push(s);
    }
    *staged += 1;
    if block.items.len() >= block_records {
        let full = std::mem::replace(block, ShardBlock::with_capacity(block_records));
        *staged -= full.items.len();
        emit(shard, full);
    }
}

impl<F: FnMut(usize, ShardBlock)> TraceSink for BlockRouter<F> {
    fn record(&mut self, rec: &Record) {
        let staging = &mut self.staging;
        let staged = &mut self.staged;
        let block_records = self.block_records;
        let emit = &mut self.emit;
        self.core.route(rec, |shard, item, seq| {
            stage_item(staging, staged, block_records, emit, shard, item, seq);
        });
        self.note_peak();
    }

    /// Brings every shard fully up to date on the context log, then
    /// flushes every non-empty pending block (idempotent).
    fn finish(&mut self) {
        let staging = &mut self.staging;
        let staged = &mut self.staged;
        let block_records = self.block_records;
        let emit = &mut self.emit;
        self.core.finish(|shard, item, seq| {
            stage_item(staging, staged, block_records, emit, shard, item, seq);
        });
        self.note_peak();
        for shard in 0..self.staging.len() {
            if !self.staging[shard].items.is_empty() {
                let stub = std::mem::take(&mut self.staging[shard]);
                self.staged -= stub.items.len();
                (self.emit)(shard, stub);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AccessKind;
    use minic::CheckpointKind::{BodyBegin as BB, BodyEnd as BE, LoopBegin as LB};

    fn sample(n_access: u32) -> Vec<Record> {
        let mut recs = vec![Record::checkpoint(0, LB)];
        for i in 0..n_access {
            recs.push(Record::checkpoint(0, BB));
            recs.push(Record::access(0x40_0000 + 8 * i, 0x1000 + i, AccessKind::Read));
            recs.push(Record::checkpoint(0, BE));
        }
        recs
    }

    /// A nested, multi-loop stream where most iterations carry accesses
    /// for only one of the shards — the compaction's target shape.
    fn nested(outer: u32, inner: u32) -> Vec<Record> {
        let mut recs = vec![Record::checkpoint(0, LB)];
        for i in 0..outer {
            recs.push(Record::checkpoint(0, BB));
            recs.push(Record::checkpoint(1, LB));
            for j in 0..inner {
                recs.push(Record::checkpoint(1, BB));
                if j % 5 == 0 {
                    recs.push(Record::access(
                        0x40_0000 + 8 * (i % 3),
                        0x1000 + j,
                        AccessKind::Read,
                    ));
                }
                recs.push(Record::checkpoint(1, BE));
            }
            recs.push(Record::checkpoint(0, BE));
        }
        recs
    }

    /// Routes `trace` through a [`BlockRouter`] and expands each shard's
    /// blocks back into a plain [`ShardBuffer`].
    fn route_and_expand(
        trace: &[Record],
        shards: usize,
        block_records: usize,
    ) -> (Vec<ShardBuffer>, usize, usize, u64) {
        let mut expanded = vec![ShardBuffer::default(); shards];
        let mut max_block = 0usize;
        let mut items = 0usize;
        let mut router = BlockRouter::new(shards, block_records, |shard, block| {
            max_block = max_block.max(block.items.len());
            items += block.items.len();
            block.expand_into(&mut expanded[shard]);
        });
        for r in trace {
            router.record(r);
        }
        router.finish();
        let accesses = router.accesses();
        assert_eq!(router.buffered_records(), 0, "finish flushes everything");
        drop(router);
        (expanded, max_block, items, accesses)
    }

    #[test]
    fn checkpoints_broadcast_accesses_partition() {
        let mut sink = ShardingSink::new(3);
        for r in sample(30) {
            sink.record(&r);
        }
        assert_eq!(sink.accesses(), 30);
        let shards = sink.into_shards();
        let checkpoints: Vec<usize> = shards
            .iter()
            .map(|s| s.records.iter().filter(|r| matches!(r, Record::Checkpoint { .. })).count())
            .collect();
        assert_eq!(checkpoints, vec![61, 61, 61], "every shard sees every checkpoint");
        let total_accesses: usize = shards
            .iter()
            .map(|s| s.records.iter().filter(|r| matches!(r, Record::Access(_))).count())
            .sum();
        assert_eq!(total_accesses, 30, "accesses are partitioned, not duplicated");
    }

    #[test]
    fn access_seqs_are_a_partition_of_the_ordinals() {
        let mut sink = ShardingSink::new(4);
        for r in sample(50) {
            sink.record(&r);
        }
        let mut seqs: Vec<u64> =
            sink.shards().iter().flat_map(|s| s.access_seqs.iter().copied()).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..50).collect::<Vec<u64>>());
        for s in sink.shards() {
            assert!(s.access_seqs.windows(2).all(|w| w[0] < w[1]), "per-shard seqs ascend");
            let n = s.records.iter().filter(|r| matches!(r, Record::Access(_))).count();
            assert_eq!(n, s.access_seqs.len());
        }
    }

    #[test]
    fn same_instruction_always_lands_on_the_same_shard() {
        let mut sink = ShardingSink::new(5);
        for _ in 0..10 {
            sink.record(&Record::access(0x4002a0, 0x7fff5934, AccessKind::Write));
        }
        let populated = sink.shards().iter().filter(|s| !s.records.is_empty()).count();
        assert_eq!(populated, 1);
    }

    #[test]
    fn single_shard_is_the_identity_routing() {
        let mut sink = ShardingSink::new(1);
        for r in sample(10) {
            sink.record(&r);
        }
        assert_eq!(sink.shards()[0].records, sample(10));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_shards_rejected() {
        ShardingSink::new(0);
    }

    /// The compaction-correctness lockdown: expanding a shard's emitted
    /// blocks must reproduce exactly what the broadcasting [`ShardingSink`]
    /// would have accumulated for it — every checkpoint, in order,
    /// interleaved with its own ordinal-tagged accesses.
    #[test]
    fn expanded_blocks_equal_the_sharding_sink_buffers() {
        for trace in [sample(40), nested(6, 17), nested(1, 100)] {
            for shards in [1usize, 2, 3, 5] {
                let mut buffered = ShardingSink::new(shards);
                for r in &trace {
                    buffered.record(r);
                }
                for block_records in [1usize, 2, 7, 64, 10_000] {
                    let (expanded, max_block, _, accesses) =
                        route_and_expand(&trace, shards, block_records);
                    assert!(max_block <= block_records);
                    assert_eq!(accesses, buffered.accesses());
                    assert_eq!(
                        expanded,
                        buffered.shards(),
                        "shards={shards} block={block_records}"
                    );
                }
            }
        }
    }

    /// The point of the exercise: on run-heavy streams the routed item
    /// count must be far below the K-fold checkpoint broadcast.
    #[test]
    fn iter_runs_compress_the_routed_volume() {
        let trace = nested(4, 1000);
        let shards = 4;
        let checkpoints = trace.iter().filter(|r| matches!(r, Record::Checkpoint { .. })).count();
        let accesses = trace.len() - checkpoints;
        let broadcast_items = shards * checkpoints + accesses;
        let (_, _, items, _) = route_and_expand(&trace, shards, 4096);
        assert!(
            items * 4 < broadcast_items,
            "compacted routing sent {items} items; broadcast would send {broadcast_items}"
        );
    }

    /// An access arriving mid-iteration (after `BodyBegin`, before
    /// `BodyEnd`) must see its `BodyBegin` delivered, and the matching
    /// `BodyEnd` must not be lost or duplicated for any shard.
    #[test]
    fn half_open_runs_round_trip() {
        let mut trace = vec![Record::checkpoint(0, LB)];
        for i in 0..40u32 {
            trace.push(Record::checkpoint(0, BB));
            // Alternate which shard (instruction) the body access hits, so
            // cursors constantly park mid-pair.
            trace.push(Record::access(0x40_0000 + 4 * (i % 2), 0x2000 + i, AccessKind::Write));
            trace.push(Record::checkpoint(0, BE));
        }
        let shards = 2;
        let mut buffered = ShardingSink::new(shards);
        for r in &trace {
            buffered.record(r);
        }
        for block in [1usize, 3, 128] {
            let (expanded, _, _, _) = route_and_expand(&trace, shards, block);
            assert_eq!(expanded, buffered.shards(), "block={block}");
        }
    }

    /// Checkpoint-only streams exercise the log-pruning fan-out path.
    #[test]
    fn incompressible_checkpoint_streams_prune_correctly() {
        // LoopBegins never pair, so every entry is a Point and the log
        // prunes every `block_records` checkpoints.
        let mut trace = Vec::new();
        for i in 0..100u32 {
            trace.push(Record::checkpoint(i % 7, LB));
        }
        trace.push(Record::access(0x40_0000, 0x1000, AccessKind::Read));
        let shards = 3;
        let mut buffered = ShardingSink::new(shards);
        for r in &trace {
            buffered.record(r);
        }
        for block in [1usize, 4, 16] {
            let (expanded, _, _, _) = route_and_expand(&trace, shards, block);
            assert_eq!(expanded, buffered.shards(), "block={block}");
        }
    }

    #[test]
    fn block_router_finish_is_idempotent() {
        let mut emitted = 0usize;
        let mut router = BlockRouter::new(2, 8, |_, block| emitted += block.items.len());
        for r in sample(5) {
            router.record(&r);
        }
        router.finish();
        router.finish();
        drop(router);
        // 5 accesses; 11 checkpoints (LB + 5 BB/BE pairs) reach both
        // shards as at most 11 items each — compaction may use fewer.
        assert!(emitted >= 5, "accesses all delivered");
        assert!(emitted <= 5 + 2 * 11, "no more than the broadcast volume");
    }

    #[test]
    fn peak_buffered_stays_within_staging_plus_log() {
        let trace = nested(8, 64);
        for (shards, block) in [(1usize, 4usize), (3, 16), (5, 1)] {
            let mut router = BlockRouter::new(shards, block, |_, _| {});
            for r in &trace {
                router.record(r);
            }
            router.finish();
            let bound = (shards + 2) * block + 4;
            assert!(
                router.peak_buffered_records() <= bound,
                "shards={shards} block={block}: peak {} over {bound}",
                router.peak_buffered_records()
            );
        }
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_rejected() {
        BlockRouter::new(2, 0, |_, _| {});
    }
}
