//! Record-stream sharding for parallel analysis.
//!
//! The affine state of a reference depends only on the accesses of its own
//! `(node, instruction)` key plus the checkpoint stream that positions the
//! loop-tree walker — so a trace can be split by *instruction address* into
//! K independent sub-streams, each carrying every checkpoint but only its
//! own slice of the accesses. [`ShardingSink`] performs that routing online
//! (it is a [`TraceSink`], so it can ride a profiling run), stamping each
//! access with its global ordinal so a downstream merge can restore the
//! exact first-observation order of the sequential analysis.

use crate::record::{InstrAddr, Record};
use crate::sink::TraceSink;

/// Deterministically maps an instruction address to a shard in `0..shards`.
///
/// Uses a Fibonacci multiplicative hash so that the dense, stride-patterned
/// synthetic instruction addresses of the simulator spread evenly instead
/// of aliasing a plain modulus.
///
/// # Panics
///
/// Panics if `shards` is zero.
///
/// # Examples
///
/// ```
/// use minic_trace::{shard_of, InstrAddr};
///
/// let s = shard_of(InstrAddr(0x4002a0), 4);
/// assert!(s < 4);
/// assert_eq!(s, shard_of(InstrAddr(0x4002a0), 4)); // stable
/// ```
pub fn shard_of(instr: InstrAddr, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be non-zero");
    let h = (instr.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // High bits carry the most mixing; fold them into the modulus.
    ((h >> 32) % shards as u64) as usize
}

/// One shard's routed sub-stream: every checkpoint of the original trace
/// plus this shard's accesses, each access tagged with its global ordinal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardBuffer {
    /// Records in original relative order (all checkpoints + own accesses).
    pub records: Vec<Record>,
    /// Global access ordinal for each `Record::Access` in `records`,
    /// in the same order the accesses appear.
    pub access_seqs: Vec<u64>,
}

/// Routes a record stream into per-shard buffers (see the module docs).
///
/// # Examples
///
/// ```
/// use minic_trace::{AccessKind, Record, ShardingSink, TraceSink};
///
/// let mut sink = ShardingSink::new(4);
/// sink.record(&Record::checkpoint(0, minic::CheckpointKind::LoopBegin));
/// sink.record(&Record::access(0x400000, 0x1000_0000, AccessKind::Read));
/// // Checkpoints broadcast to every shard; the access lands on one.
/// let shards = sink.into_shards();
/// assert!(shards.iter().all(|s| !s.records.is_empty()));
/// assert_eq!(shards.iter().map(|s| s.access_seqs.len()).sum::<usize>(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardingSink {
    shards: Vec<ShardBuffer>,
    seq: u64,
}

impl ShardingSink {
    /// Creates a sink with `shards` empty buffers.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be non-zero");
        ShardingSink { shards: vec![ShardBuffer::default(); shards], seq: 0 }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total accesses routed so far.
    pub fn accesses(&self) -> u64 {
        self.seq
    }

    /// Borrows the shard buffers.
    pub fn shards(&self) -> &[ShardBuffer] {
        &self.shards
    }

    /// Consumes the sink, yielding the per-shard buffers.
    pub fn into_shards(self) -> Vec<ShardBuffer> {
        self.shards
    }
}

impl TraceSink for ShardingSink {
    fn record(&mut self, rec: &Record) {
        match rec {
            Record::Checkpoint { .. } => {
                for shard in &mut self.shards {
                    shard.records.push(*rec);
                }
            }
            Record::Access(a) => {
                let idx = shard_of(a.instr, self.shards.len());
                let shard = &mut self.shards[idx];
                shard.records.push(*rec);
                shard.access_seqs.push(self.seq);
                self.seq += 1;
            }
        }
    }
}

/// Routes a record stream into **bounded** per-shard blocks, handing each
/// block to a consumer callback the moment it fills (and flushing stubs at
/// [`TraceSink::finish`]).
///
/// This is the streaming sibling of [`ShardingSink`]: same routing rule
/// (checkpoints broadcast, accesses partitioned by instruction address,
/// global access ordinals), but memory is capped at
/// `shards x block_records` pending records instead of the whole trace —
/// the consumer (typically a bounded channel to a worker thread, see
/// `foray::shard::analyze_streaming_with`) sees the identical per-shard
/// record sequence, just chopped into blocks.
///
/// # Examples
///
/// ```
/// use minic_trace::{AccessKind, BlockRouter, Record, ShardBuffer, TraceSink};
///
/// let mut blocks: Vec<(usize, ShardBuffer)> = Vec::new();
/// let mut router = BlockRouter::new(2, 3, |shard, block| blocks.push((shard, block)));
/// for i in 0..8 {
///     router.record(&Record::access(0x400000, 0x1000 + i, AccessKind::Read));
/// }
/// router.finish();
/// drop(router); // releases the borrow on `blocks`
/// // All accesses of one instruction land on one shard, in order.
/// let total: usize = blocks.iter().map(|(_, b)| b.records.len()).sum();
/// assert_eq!(total, 8);
/// assert!(blocks.iter().all(|(_, b)| b.records.len() <= 3));
/// ```
#[derive(Debug)]
pub struct BlockRouter<F: FnMut(usize, ShardBuffer)> {
    pending: Vec<ShardBuffer>,
    block_records: usize,
    seq: u64,
    records: u64,
    buffered: usize,
    peak_buffered: usize,
    emit: F,
}

impl<F: FnMut(usize, ShardBuffer)> BlockRouter<F> {
    /// Creates a router for `shards` consumers emitting blocks of up to
    /// `block_records` records.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `block_records` is zero.
    pub fn new(shards: usize, block_records: usize, emit: F) -> Self {
        assert!(shards > 0, "shard count must be non-zero");
        assert!(block_records > 0, "block size must be non-zero");
        BlockRouter {
            pending: (0..shards).map(|_| fresh_block(block_records)).collect(),
            block_records,
            seq: 0,
            records: 0,
            buffered: 0,
            peak_buffered: 0,
            emit,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.pending.len()
    }

    /// Total accesses routed so far (the ordinal counter).
    pub fn accesses(&self) -> u64 {
        self.seq
    }

    /// Total records routed so far (accesses + broadcast checkpoint
    /// copies counted once per arrival, not per shard).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Records currently sitting in not-yet-emitted blocks.
    pub fn buffered_records(&self) -> usize {
        self.buffered
    }

    /// High-water mark of [`Self::buffered_records`] — by construction at
    /// most `shards x block_records`.
    pub fn peak_buffered_records(&self) -> usize {
        self.peak_buffered
    }

    #[inline]
    fn push(&mut self, shard: usize, rec: &Record, seq: Option<u64>) {
        self.buffered += 1;
        self.peak_buffered = self.peak_buffered.max(self.buffered);
        let buf = &mut self.pending[shard];
        buf.records.push(*rec);
        if let Some(s) = seq {
            buf.access_seqs.push(s);
        }
        if buf.records.len() >= self.block_records {
            let full = std::mem::replace(buf, fresh_block(self.block_records));
            self.buffered -= full.records.len();
            (self.emit)(shard, full);
        }
    }
}

/// An empty block with its full capacity pre-reserved, so filling it never
/// reallocates (the routing hot path runs while the VM is executing).
fn fresh_block(block_records: usize) -> ShardBuffer {
    ShardBuffer {
        records: Vec::with_capacity(block_records),
        access_seqs: Vec::with_capacity(block_records),
    }
}

impl<F: FnMut(usize, ShardBuffer)> TraceSink for BlockRouter<F> {
    fn record(&mut self, rec: &Record) {
        self.records += 1;
        match rec {
            Record::Checkpoint { .. } => {
                for shard in 0..self.pending.len() {
                    self.push(shard, rec, None);
                }
            }
            Record::Access(a) => {
                let shard = shard_of(a.instr, self.pending.len());
                let seq = self.seq;
                self.seq += 1;
                self.push(shard, rec, Some(seq));
            }
        }
    }

    /// Flushes every non-empty pending block (idempotent).
    fn finish(&mut self) {
        for shard in 0..self.pending.len() {
            if !self.pending[shard].records.is_empty() {
                let stub = std::mem::take(&mut self.pending[shard]);
                self.buffered -= stub.records.len();
                (self.emit)(shard, stub);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AccessKind;
    use minic::CheckpointKind;

    fn sample(n_access: u32) -> Vec<Record> {
        let mut recs = vec![Record::checkpoint(0, CheckpointKind::LoopBegin)];
        for i in 0..n_access {
            recs.push(Record::checkpoint(0, CheckpointKind::BodyBegin));
            recs.push(Record::access(0x40_0000 + 8 * i, 0x1000 + i, AccessKind::Read));
            recs.push(Record::checkpoint(0, CheckpointKind::BodyEnd));
        }
        recs
    }

    #[test]
    fn checkpoints_broadcast_accesses_partition() {
        let mut sink = ShardingSink::new(3);
        for r in sample(30) {
            sink.record(&r);
        }
        assert_eq!(sink.accesses(), 30);
        let shards = sink.into_shards();
        let checkpoints: Vec<usize> = shards
            .iter()
            .map(|s| s.records.iter().filter(|r| matches!(r, Record::Checkpoint { .. })).count())
            .collect();
        assert_eq!(checkpoints, vec![61, 61, 61], "every shard sees every checkpoint");
        let total_accesses: usize = shards
            .iter()
            .map(|s| s.records.iter().filter(|r| matches!(r, Record::Access(_))).count())
            .sum();
        assert_eq!(total_accesses, 30, "accesses are partitioned, not duplicated");
    }

    #[test]
    fn access_seqs_are_a_partition_of_the_ordinals() {
        let mut sink = ShardingSink::new(4);
        for r in sample(50) {
            sink.record(&r);
        }
        let mut seqs: Vec<u64> =
            sink.shards().iter().flat_map(|s| s.access_seqs.iter().copied()).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..50).collect::<Vec<u64>>());
        for s in sink.shards() {
            assert!(s.access_seqs.windows(2).all(|w| w[0] < w[1]), "per-shard seqs ascend");
            let n = s.records.iter().filter(|r| matches!(r, Record::Access(_))).count();
            assert_eq!(n, s.access_seqs.len());
        }
    }

    #[test]
    fn same_instruction_always_lands_on_the_same_shard() {
        let mut sink = ShardingSink::new(5);
        for _ in 0..10 {
            sink.record(&Record::access(0x4002a0, 0x7fff5934, AccessKind::Write));
        }
        let populated = sink.shards().iter().filter(|s| !s.records.is_empty()).count();
        assert_eq!(populated, 1);
    }

    #[test]
    fn single_shard_is_the_identity_routing() {
        let mut sink = ShardingSink::new(1);
        for r in sample(10) {
            sink.record(&r);
        }
        assert_eq!(sink.shards()[0].records, sample(10));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_shards_rejected() {
        ShardingSink::new(0);
    }

    /// Concatenating a shard's emitted blocks must reproduce exactly what
    /// the buffering [`ShardingSink`] would have accumulated for it.
    #[test]
    fn block_router_blocks_concatenate_to_the_sharding_sink_buffers() {
        let trace = sample(40);
        let shards = 3;
        let mut buffered = ShardingSink::new(shards);
        for r in &trace {
            buffered.record(r);
        }
        for block_records in [1usize, 2, 7, 64, 10_000] {
            let mut streamed = vec![ShardBuffer::default(); shards];
            let mut max_block = 0usize;
            let mut router = BlockRouter::new(shards, block_records, |shard, block| {
                max_block = max_block.max(block.records.len());
                streamed[shard].records.extend_from_slice(&block.records);
                streamed[shard].access_seqs.extend_from_slice(&block.access_seqs);
            });
            for r in &trace {
                router.record(r);
            }
            router.finish();
            assert_eq!(router.accesses(), 40);
            assert_eq!(router.records(), trace.len() as u64);
            assert_eq!(router.buffered_records(), 0, "finish flushes everything");
            assert!(router.peak_buffered_records() <= shards * block_records);
            drop(router);
            assert!(max_block <= block_records);
            assert_eq!(streamed, buffered.shards(), "block={block_records}");
        }
    }

    #[test]
    fn block_router_finish_is_idempotent() {
        let mut emitted = 0usize;
        let mut router = BlockRouter::new(2, 8, |_, block| emitted += block.records.len());
        for r in sample(5) {
            router.record(&r);
        }
        router.finish();
        router.finish();
        drop(router);
        // 5 accesses + 11 checkpoints broadcast to both shards = 5 + 22.
        assert_eq!(emitted, 5 + 2 * 11);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_rejected() {
        BlockRouter::new(2, 0, |_, _| {});
    }
}
