//! Record-stream sharding for parallel analysis.
//!
//! The affine state of a reference depends only on the accesses of its own
//! `(node, instruction)` key plus the checkpoint stream that positions the
//! loop-tree walker — so a trace can be split by *instruction address* into
//! K independent sub-streams, each carrying every checkpoint but only its
//! own slice of the accesses. [`ShardingSink`] performs that routing online
//! (it is a [`TraceSink`], so it can ride a profiling run), stamping each
//! access with its global ordinal so a downstream merge can restore the
//! exact first-observation order of the sequential analysis.

use crate::record::{InstrAddr, Record};
use crate::sink::TraceSink;

/// Deterministically maps an instruction address to a shard in `0..shards`.
///
/// Uses a Fibonacci multiplicative hash so that the dense, stride-patterned
/// synthetic instruction addresses of the simulator spread evenly instead
/// of aliasing a plain modulus.
///
/// # Panics
///
/// Panics if `shards` is zero.
///
/// # Examples
///
/// ```
/// use minic_trace::{shard_of, InstrAddr};
///
/// let s = shard_of(InstrAddr(0x4002a0), 4);
/// assert!(s < 4);
/// assert_eq!(s, shard_of(InstrAddr(0x4002a0), 4)); // stable
/// ```
pub fn shard_of(instr: InstrAddr, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be non-zero");
    let h = (instr.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // High bits carry the most mixing; fold them into the modulus.
    ((h >> 32) % shards as u64) as usize
}

/// One shard's routed sub-stream: every checkpoint of the original trace
/// plus this shard's accesses, each access tagged with its global ordinal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardBuffer {
    /// Records in original relative order (all checkpoints + own accesses).
    pub records: Vec<Record>,
    /// Global access ordinal for each `Record::Access` in `records`,
    /// in the same order the accesses appear.
    pub access_seqs: Vec<u64>,
}

/// Routes a record stream into per-shard buffers (see the module docs).
///
/// # Examples
///
/// ```
/// use minic_trace::{AccessKind, Record, ShardingSink, TraceSink};
///
/// let mut sink = ShardingSink::new(4);
/// sink.record(&Record::checkpoint(0, minic::CheckpointKind::LoopBegin));
/// sink.record(&Record::access(0x400000, 0x1000_0000, AccessKind::Read));
/// // Checkpoints broadcast to every shard; the access lands on one.
/// let shards = sink.into_shards();
/// assert!(shards.iter().all(|s| !s.records.is_empty()));
/// assert_eq!(shards.iter().map(|s| s.access_seqs.len()).sum::<usize>(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardingSink {
    shards: Vec<ShardBuffer>,
    seq: u64,
}

impl ShardingSink {
    /// Creates a sink with `shards` empty buffers.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be non-zero");
        ShardingSink { shards: vec![ShardBuffer::default(); shards], seq: 0 }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total accesses routed so far.
    pub fn accesses(&self) -> u64 {
        self.seq
    }

    /// Borrows the shard buffers.
    pub fn shards(&self) -> &[ShardBuffer] {
        &self.shards
    }

    /// Consumes the sink, yielding the per-shard buffers.
    pub fn into_shards(self) -> Vec<ShardBuffer> {
        self.shards
    }
}

impl TraceSink for ShardingSink {
    fn record(&mut self, rec: &Record) {
        match rec {
            Record::Checkpoint { .. } => {
                for shard in &mut self.shards {
                    shard.records.push(*rec);
                }
            }
            Record::Access(a) => {
                let idx = shard_of(a.instr, self.shards.len());
                let shard = &mut self.shards[idx];
                shard.records.push(*rec);
                shard.access_seqs.push(self.seq);
                self.seq += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::AccessKind;
    use minic::CheckpointKind;

    fn sample(n_access: u32) -> Vec<Record> {
        let mut recs = vec![Record::checkpoint(0, CheckpointKind::LoopBegin)];
        for i in 0..n_access {
            recs.push(Record::checkpoint(0, CheckpointKind::BodyBegin));
            recs.push(Record::access(0x40_0000 + 8 * i, 0x1000 + i, AccessKind::Read));
            recs.push(Record::checkpoint(0, CheckpointKind::BodyEnd));
        }
        recs
    }

    #[test]
    fn checkpoints_broadcast_accesses_partition() {
        let mut sink = ShardingSink::new(3);
        for r in sample(30) {
            sink.record(&r);
        }
        assert_eq!(sink.accesses(), 30);
        let shards = sink.into_shards();
        let checkpoints: Vec<usize> = shards
            .iter()
            .map(|s| s.records.iter().filter(|r| matches!(r, Record::Checkpoint { .. })).count())
            .collect();
        assert_eq!(checkpoints, vec![61, 61, 61], "every shard sees every checkpoint");
        let total_accesses: usize = shards
            .iter()
            .map(|s| s.records.iter().filter(|r| matches!(r, Record::Access(_))).count())
            .sum();
        assert_eq!(total_accesses, 30, "accesses are partitioned, not duplicated");
    }

    #[test]
    fn access_seqs_are_a_partition_of_the_ordinals() {
        let mut sink = ShardingSink::new(4);
        for r in sample(50) {
            sink.record(&r);
        }
        let mut seqs: Vec<u64> =
            sink.shards().iter().flat_map(|s| s.access_seqs.iter().copied()).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..50).collect::<Vec<u64>>());
        for s in sink.shards() {
            assert!(s.access_seqs.windows(2).all(|w| w[0] < w[1]), "per-shard seqs ascend");
            let n = s.records.iter().filter(|r| matches!(r, Record::Access(_))).count();
            assert_eq!(n, s.access_seqs.len());
        }
    }

    #[test]
    fn same_instruction_always_lands_on_the_same_shard() {
        let mut sink = ShardingSink::new(5);
        for _ in 0..10 {
            sink.record(&Record::access(0x4002a0, 0x7fff5934, AccessKind::Write));
        }
        let populated = sink.shards().iter().filter(|s| !s.records.is_empty()).count();
        assert_eq!(populated, 1);
    }

    #[test]
    fn single_shard_is_the_identity_routing() {
        let mut sink = ShardingSink::new(1);
        for r in sample(10) {
            sink.record(&r);
        }
        assert_eq!(sink.shards()[0].records, sample(10));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_shards_rejected() {
        ShardingSink::new(0);
    }
}
