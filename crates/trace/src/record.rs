//! Trace record types.
//!
//! A profiling run produces a stream of [`Record`]s: checkpoint events
//! marking loop structure (Step 1/2 of the paper's Algorithm 1) interleaved
//! with memory-access events `(instruction address, access address, r/w)`,
//! exactly the information the paper's modified SimpleScalar writes to its
//! trace file (Fig. 4(c)).

use minic::{CheckpointKind, LoopId};
use std::fmt;

/// A synthetic instruction address identifying a static memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstrAddr(pub u32);

impl fmt::Display for InstrAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.0)
    }
}

impl fmt::LowerHex for InstrAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A data-memory address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemAddr(pub u32);

impl fmt::Display for MemAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.0)
    }
}

impl fmt::LowerHex for MemAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store.
    Write,
}

impl AccessKind {
    /// The paper's trace-file spelling (`rd` / `wr`).
    pub fn code(self) -> &'static str {
        match self {
            AccessKind::Read => "rd",
            AccessKind::Write => "wr",
        }
    }
}

/// A single memory access event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// Address of the instruction performing the access (identifies the
    /// static reference).
    pub instr: InstrAddr,
    /// Address touched.
    pub addr: MemAddr,
    /// Load or store.
    pub kind: AccessKind,
}

/// One trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Record {
    /// A loop checkpoint.
    Checkpoint {
        /// Which loop.
        loop_id: LoopId,
        /// Which of the three checkpoint kinds.
        kind: CheckpointKind,
    },
    /// A memory access.
    Access(Access),
}

impl Record {
    /// Convenience constructor for an access record.
    pub fn access(instr: u32, addr: u32, kind: AccessKind) -> Record {
        Record::Access(Access { instr: InstrAddr(instr), addr: MemAddr(addr), kind })
    }

    /// Convenience constructor for a checkpoint record.
    pub fn checkpoint(loop_id: u32, kind: CheckpointKind) -> Record {
        Record::Checkpoint { loop_id: LoopId(loop_id), kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_display() {
        assert_eq!(InstrAddr(0x4002a0).to_string(), "4002a0");
        assert_eq!(MemAddr(0x7fff5934).to_string(), "7fff5934");
        assert_eq!(format!("{:08x}", InstrAddr(0xff)), "000000ff");
    }

    #[test]
    fn access_kind_codes() {
        assert_eq!(AccessKind::Read.code(), "rd");
        assert_eq!(AccessKind::Write.code(), "wr");
    }

    #[test]
    fn constructors() {
        let r = Record::access(0x4002a0, 0x7fff5934, AccessKind::Write);
        let Record::Access(a) = r else { panic!() };
        assert_eq!(a.instr, InstrAddr(0x4002a0));
        let c = Record::checkpoint(4, CheckpointKind::BodyBegin);
        assert!(matches!(c, Record::Checkpoint { loop_id: LoopId(4), .. }));
    }
}
