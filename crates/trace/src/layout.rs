//! Address-space layout shared between the simulator and the analyzer.
//!
//! The simulator lays data out in the flavour of the paper's SimpleScalar
//! runs: globals low, heap in the middle, stack descending from just under
//! `0x8000_0000` (the paper's Fig. 4 stack addresses are `0x7fff_xxxx`), and
//! synthetic code addresses near `0x0040_0000` (the paper's example
//! instruction is `0x4002a0`). "System library" builtins get instruction
//! addresses from a separate range so the analyzer — and Table III — can
//! classify their traffic without any side channel.

use crate::record::InstrAddr;

/// Base of user-code instruction addresses; site `s` maps to
/// `CODE_BASE + 4*s`.
pub const CODE_BASE: u32 = 0x0040_0000;

/// Base of system-library instruction addresses (builtin `b`, internal
/// access slot `k` maps to `LIB_CODE_BASE + 64*b + 4*k`).
pub const LIB_CODE_BASE: u32 = 0x0030_0000;

/// Exclusive upper bound of the library instruction range.
pub const LIB_CODE_END: u32 = CODE_BASE;

/// Base of instruction addresses for compiler-generated frame traffic
/// (argument stores/loads around calls). The paper notes such references
/// ("placing arguments to the stack before performing function calls,
/// memory spills, etc.") appear in its traces and are filtered out by
/// Step 4; they are *user* code, not library code.
pub const FRAME_CODE_BASE: u32 = 0x0050_0000;

/// Base address of the globals segment.
pub const GLOBAL_BASE: u32 = 0x1000_0000;

/// Base address of internal system-library data (allocator metadata, RNG
/// state, I/O staging buffers).
pub const LIB_DATA_BASE: u32 = 0x2000_0000;

/// Base address of the heap segment (grows upward).
pub const HEAP_BASE: u32 = 0x4000_0000;

/// Initial stack pointer (stack grows downward).
pub const STACK_TOP: u32 = 0x7fff_fff0;

/// Classifies an instruction address as system-library code.
///
/// # Examples
///
/// ```
/// use minic_trace::{layout, InstrAddr};
/// assert!(layout::is_library_instr(InstrAddr(layout::LIB_CODE_BASE + 8)));
/// assert!(!layout::is_library_instr(InstrAddr(layout::CODE_BASE)));
/// ```
pub fn is_library_instr(instr: InstrAddr) -> bool {
    (LIB_CODE_BASE..LIB_CODE_END).contains(&instr.0)
}

/// Maps a user site index to its synthetic instruction address.
pub fn user_instr(site: u32) -> InstrAddr {
    InstrAddr(CODE_BASE + 4 * site)
}

/// Maps a library routine index and access slot to an instruction address.
pub fn library_instr(builtin: u32, slot: u32) -> InstrAddr {
    debug_assert!(slot < 16, "library access slot out of range");
    InstrAddr(LIB_CODE_BASE + 64 * builtin + 4 * slot)
}

/// Maps a function index and frame slot to the instruction address of the
/// synthetic argument-passing access (caller store / callee load).
pub fn frame_instr(func: u32, slot: u32) -> InstrAddr {
    InstrAddr(FRAME_CODE_BASE + 64 * func + 4 * (slot % 16))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(is_library_instr(library_instr(0, 0)));
        assert!(is_library_instr(library_instr(10, 15)));
        assert!(!is_library_instr(user_instr(0)));
        assert!(!is_library_instr(user_instr(1_000_000)));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // deliberate invariant checks
    fn segments_are_disjoint_and_ordered() {
        assert!(LIB_CODE_BASE < CODE_BASE);
        assert!(CODE_BASE < GLOBAL_BASE);
        assert!(GLOBAL_BASE < HEAP_BASE);
        assert!(HEAP_BASE < STACK_TOP);
    }

    #[test]
    fn user_instr_mapping_is_injective_for_small_sites() {
        assert_eq!(user_instr(0).0, CODE_BASE);
        assert_eq!(user_instr(1).0, CODE_BASE + 4);
        assert_ne!(user_instr(7), user_instr(8));
    }
}
