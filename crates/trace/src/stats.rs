//! Whole-trace statistics: the raw numbers behind the paper's Table III
//! ("total number of references / accesses / footprint" columns).

use crate::layout;
use crate::record::{AccessKind, InstrAddr, MemAddr, Record};
use crate::sink::TraceSink;
use std::collections::HashSet;

/// Aggregate statistics over a trace. Implements [`TraceSink`], so it can
/// ride along any profiling run (e.g. inside a
/// [`TeeSink`](crate::sink::TeeSink)).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Total access records.
    pub accesses: u64,
    /// Total checkpoint records.
    pub checkpoints: u64,
    /// Loads.
    pub reads: u64,
    /// Stores.
    pub writes: u64,
    /// Accesses from library instruction addresses.
    pub library_accesses: u64,
    distinct_instrs: HashSet<InstrAddr>,
    library_instrs: HashSet<InstrAddr>,
    distinct_addrs: HashSet<MemAddr>,
    library_addrs: HashSet<MemAddr>,
}

impl TraceStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        TraceStats::default()
    }

    /// Computes statistics over a complete trace.
    ///
    /// # Examples
    ///
    /// ```
    /// use minic_trace::{AccessKind, Record, TraceStats};
    /// let recs = [
    ///     Record::access(0x400000, 0x1000_0000, AccessKind::Read),
    ///     Record::access(0x400000, 0x1000_0004, AccessKind::Write),
    /// ];
    /// let stats = TraceStats::from_records(&recs);
    /// assert_eq!(stats.references(), 1);
    /// assert_eq!(stats.footprint(), 2);
    /// ```
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a Record>) -> Self {
        let mut stats = TraceStats::new();
        for r in records {
            stats.record(r);
        }
        stats
    }

    /// Number of distinct static references (instruction addresses),
    /// library references included.
    pub fn references(&self) -> u64 {
        self.distinct_instrs.len() as u64
    }

    /// Number of distinct library references.
    pub fn library_references(&self) -> u64 {
        self.library_instrs.len() as u64
    }

    /// Number of distinct data addresses touched.
    pub fn footprint(&self) -> u64 {
        self.distinct_addrs.len() as u64
    }

    /// Number of distinct data addresses touched by library code.
    pub fn library_footprint(&self) -> u64 {
        self.library_addrs.len() as u64
    }

    /// Accesses from user code.
    pub fn user_accesses(&self) -> u64 {
        self.accesses - self.library_accesses
    }
}

impl TraceSink for TraceStats {
    fn record(&mut self, rec: &Record) {
        match rec {
            Record::Checkpoint { .. } => self.checkpoints += 1,
            Record::Access(a) => {
                self.accesses += 1;
                match a.kind {
                    AccessKind::Read => self.reads += 1,
                    AccessKind::Write => self.writes += 1,
                }
                self.distinct_instrs.insert(a.instr);
                self.distinct_addrs.insert(a.addr);
                if layout::is_library_instr(a.instr) {
                    self.library_accesses += 1;
                    self.library_instrs.insert(a.instr);
                    self.library_addrs.insert(a.addr);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::CheckpointKind;

    #[test]
    fn splits_library_traffic() {
        let recs = [
            Record::access(layout::CODE_BASE, 0x1000_0000, AccessKind::Read),
            Record::access(layout::LIB_CODE_BASE, 0x4000_0000, AccessKind::Write),
            Record::access(layout::LIB_CODE_BASE, 0x4000_0000, AccessKind::Write),
            Record::checkpoint(0, CheckpointKind::LoopBegin),
        ];
        let s = TraceStats::from_records(&recs);
        assert_eq!(s.accesses, 3);
        assert_eq!(s.library_accesses, 2);
        assert_eq!(s.user_accesses(), 1);
        assert_eq!(s.references(), 2);
        assert_eq!(s.library_references(), 1);
        assert_eq!(s.footprint(), 2);
        assert_eq!(s.library_footprint(), 1);
        assert_eq!(s.checkpoints, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 2);
    }

    #[test]
    fn footprint_dedupes() {
        let recs: Vec<Record> = (0..100)
            .map(|i| Record::access(0x400000, 0x1000_0000 + (i % 10), AccessKind::Read))
            .collect();
        let s = TraceStats::from_records(&recs);
        assert_eq!(s.accesses, 100);
        assert_eq!(s.footprint(), 10);
        assert_eq!(s.references(), 1);
    }
}
