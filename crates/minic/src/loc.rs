//! Source-size metrics, feeding Table I's "Number of lines" column.

/// Line-count metrics for a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LineCounts {
    /// Physical lines, as an editor would report.
    pub total: usize,
    /// Lines that contain code (not blank, not comment-only).
    pub code: usize,
    /// Lines that are blank or whitespace-only.
    pub blank: usize,
    /// Lines containing only comments.
    pub comment: usize,
}

/// Counts lines in mini-C source text.
///
/// # Examples
///
/// ```
/// let counts = minic::count_lines("int x;\n\n// note\nvoid main() { }\n");
/// assert_eq!(counts.total, 4);
/// assert_eq!(counts.code, 2);
/// assert_eq!(counts.blank, 1);
/// assert_eq!(counts.comment, 1);
/// ```
pub fn count_lines(src: &str) -> LineCounts {
    let mut counts = LineCounts::default();
    let mut in_block_comment = false;
    for line in src.lines() {
        counts.total += 1;
        let classified = classify(line, &mut in_block_comment);
        match classified {
            LineClass::Blank => counts.blank += 1,
            LineClass::Comment => counts.comment += 1,
            LineClass::Code => counts.code += 1,
        }
    }
    counts
}

enum LineClass {
    Blank,
    Comment,
    Code,
}

fn classify(line: &str, in_block: &mut bool) -> LineClass {
    let mut has_code = false;
    let mut has_comment = *in_block;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if *in_block {
            has_comment = true;
            if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                *in_block = false;
                i += 2;
            } else {
                i += 1;
            }
        } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'/') {
            has_comment = true;
            break;
        } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
            has_comment = true;
            *in_block = true;
            i += 2;
        } else {
            if !bytes[i].is_ascii_whitespace() {
                has_code = true;
            }
            i += 1;
        }
    }
    if has_code {
        LineClass::Code
    } else if has_comment {
        LineClass::Comment
    } else {
        LineClass::Blank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_line_is_code() {
        let c = count_lines("x = 1; // trailing\n");
        assert_eq!(c.code, 1);
        assert_eq!(c.comment, 0);
    }

    #[test]
    fn block_comments_span_lines() {
        let c = count_lines("/* one\n   two\n   three */\nint x;\n");
        assert_eq!(c.comment, 3);
        assert_eq!(c.code, 1);
    }

    #[test]
    fn code_after_block_close_counts() {
        let c = count_lines("/* c */ int x;\n");
        assert_eq!(c.code, 1);
    }

    #[test]
    fn empty_source() {
        assert_eq!(count_lines(""), LineCounts::default());
    }

    #[test]
    fn totals_add_up() {
        let src = "int a;\n\n// c\n/* b\n*/\nint d;\n";
        let c = count_lines(src);
        assert_eq!(c.total, c.code + c.blank + c.comment);
        assert_eq!(c.total, 6);
    }
}
