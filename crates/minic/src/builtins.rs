//! Registry of built-in ("system library") functions.
//!
//! The paper's Table III splits memory activity three ways: references
//! captured by the FORAY model, *system library* references, and everything
//! else. These builtins are our stand-in for the C library that MiBench
//! binaries drag in: the simulator executes them natively and tags the
//! memory traffic they generate with instruction addresses from a dedicated
//! library range, so the analyzer can classify it.

/// Dense builtin identity — what the simulators dispatch on (an integer
/// match, not a string comparison; the names only matter at resolution
/// time in the frontend and the bytecode lowerer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BuiltinKind {
    Malloc,
    Free,
    Memset,
    Memcpy,
    PrintInt,
    Input,
    Rand,
    Srand,
    Abs,
    Min,
    Max,
}

/// Description of one builtin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Builtin {
    /// Callable name.
    pub name: &'static str,
    /// Dispatch identity.
    pub kind: BuiltinKind,
    /// Exact number of arguments.
    pub arity: usize,
    /// Whether the call yields a value (usable in expressions).
    pub returns_value: bool,
}

/// All builtins known to the language.
pub const BUILTINS: &[Builtin] = &[
    Builtin { name: "malloc", kind: BuiltinKind::Malloc, arity: 1, returns_value: true },
    Builtin { name: "free", kind: BuiltinKind::Free, arity: 1, returns_value: false },
    Builtin { name: "memset", kind: BuiltinKind::Memset, arity: 3, returns_value: false },
    Builtin { name: "memcpy", kind: BuiltinKind::Memcpy, arity: 3, returns_value: false },
    Builtin { name: "print_int", kind: BuiltinKind::PrintInt, arity: 1, returns_value: false },
    Builtin { name: "input", kind: BuiltinKind::Input, arity: 1, returns_value: true },
    Builtin { name: "rand", kind: BuiltinKind::Rand, arity: 0, returns_value: true },
    Builtin { name: "srand", kind: BuiltinKind::Srand, arity: 1, returns_value: false },
    Builtin { name: "abs", kind: BuiltinKind::Abs, arity: 1, returns_value: true },
    Builtin { name: "min", kind: BuiltinKind::Min, arity: 2, returns_value: true },
    Builtin { name: "max", kind: BuiltinKind::Max, arity: 2, returns_value: true },
];

/// Looks up a builtin by name.
pub fn builtin(name: &str) -> Option<&'static Builtin> {
    BUILTINS.iter().find(|b| b.name == name)
}

/// Whether `name` names a builtin.
pub fn is_builtin(name: &str) -> bool {
    builtin(name).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup() {
        assert!(is_builtin("malloc"));
        assert!(!is_builtin("fopen"));
        assert_eq!(builtin("memcpy").unwrap().arity, 3);
        assert!(builtin("rand").unwrap().returns_value);
        assert!(!builtin("free").unwrap().returns_value);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = BUILTINS.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BUILTINS.len());
    }
}
