//! Error types for the `minic` frontend.

use crate::token::Loc;
use std::fmt;

/// Crate-wide result alias.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// A single semantic diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Where the problem was detected.
    pub loc: Loc,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.loc, self.msg)
    }
}

/// Errors produced while lexing, parsing, or semantically checking a
/// mini-C program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexical error.
    Lex {
        /// Location of the offending input.
        loc: Loc,
        /// Description.
        msg: String,
    },
    /// Syntax error.
    Parse {
        /// Location of the offending token.
        loc: Loc,
        /// Description.
        msg: String,
    },
    /// One or more semantic errors.
    Sema(Vec<Diagnostic>),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { loc, msg } => write!(f, "lex error at {loc}: {msg}"),
            Error::Parse { loc, msg } => write!(f, "parse error at {loc}: {msg}"),
            Error::Sema(diags) => {
                write!(f, "semantic errors:")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::Lex { loc: Loc::new(1, 2), msg: "bad".into() };
        assert_eq!(e.to_string(), "lex error at 1:2: bad");
        let e = Error::Sema(vec![Diagnostic { loc: Loc::new(3, 4), msg: "undefined x".into() }]);
        assert!(e.to_string().contains("3:4: undefined x"));
    }
}
