//! Abstract syntax tree for mini-C.
//!
//! Two pieces of identity metadata are attached during parsing (and
//! re-canonicalized by [`crate::sema::check`]):
//!
//! * every loop carries a [`LoopId`], which the instrumentation pass
//!   (Step 1 of FORAY-GEN's Algorithm 1) turns into checkpoint ids, and
//! * every expression that can touch memory (array subscript, pointer
//!   dereference, or variable read) carries a [`SiteId`]. The simulator maps
//!   each site to a synthetic *instruction address*, which is what the trace
//!   records and what Algorithm 3 uses to identify a static memory
//!   reference.

use crate::token::Loc;
use std::fmt;

/// Identity of a loop in the program, dense from zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Identity of a potential memory-access site, dense from zero.
///
/// The simulator derives the synthetic instruction address of the site as
/// `CODE_BASE + 4 * site` (see `minic-sim`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Scalar or pointer type. Arrays are not first-class types; they are
/// declaration shapes (see [`GlobalDecl::array_len`] / [`Stmt::LocalDecl`]),
/// and array names decay to pointers when used, as in C.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// 32-bit signed integer, 4 bytes in memory.
    Int,
    /// 8-bit unsigned character, 1 byte in memory.
    Char,
    /// Pointer to `T`, 4 bytes in memory (32-bit target, as in the paper's
    /// SimpleScalar setup).
    Ptr(Box<Type>),
}

impl Type {
    /// Size in bytes of a value of this type when stored in memory.
    pub fn size(&self) -> u32 {
        match self {
            Type::Int => 4,
            Type::Char => 1,
            Type::Ptr(_) => 4,
        }
    }

    /// Size in bytes of the pointee, used to scale pointer arithmetic.
    /// Returns `None` for non-pointer types.
    pub fn pointee_size(&self) -> Option<u32> {
        match self {
            Type::Ptr(inner) => Some(inner.size()),
            _ => None,
        }
    }

    /// Convenience: `int*`.
    pub fn ptr_to(inner: Type) -> Type {
        Type::Ptr(Box::new(inner))
    }

    /// Whether this is a pointer type.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Char => write!(f, "char"),
            Type::Ptr(inner) => write!(f, "{inner}*"),
        }
    }
}

/// Binary operators, named after their C spelling (see [`BinOp::as_str`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    /// Short-circuiting logical and.
    And,
    /// Short-circuiting logical or.
    Or,
}

impl BinOp {
    /// C spelling of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// Whether the operator produces a boolean (0/1) result.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`), yields 0/1.
    Not,
    /// Bitwise complement (`~`).
    BitNot,
}

impl UnOp {
    /// C spelling of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
        }
    }
}

/// Increment/decrement flavor for `++`/`--` expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncDec {
    /// `x++` — evaluates to the old value.
    PostInc,
    /// `x--`.
    PostDec,
    /// `++x` — evaluates to the new value.
    PreInc,
    /// `--x`.
    PreDec,
}

impl IncDec {
    /// +1 or -1.
    pub fn delta(self) -> i64 {
        match self {
            IncDec::PostInc | IncDec::PreInc => 1,
            IncDec::PostDec | IncDec::PreDec => -1,
        }
    }

    /// Whether the expression yields the value before the update.
    pub fn is_post(self) -> bool {
        matches!(self, IncDec::PostInc | IncDec::PostDec)
    }
}

/// Assignment operators (simple and compound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
    /// `%=`
    Rem,
}

impl AssignOp {
    /// C spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            AssignOp::Set => "=",
            AssignOp::Add => "+=",
            AssignOp::Sub => "-=",
            AssignOp::Mul => "*=",
            AssignOp::Div => "/=",
            AssignOp::Rem => "%=",
        }
    }

    /// The arithmetic operator a compound assignment applies, if any.
    pub fn bin_op(self) -> Option<BinOp> {
        match self {
            AssignOp::Set => None,
            AssignOp::Add => Some(BinOp::Add),
            AssignOp::Sub => Some(BinOp::Sub),
            AssignOp::Mul => Some(BinOp::Mul),
            AssignOp::Div => Some(BinOp::Div),
            AssignOp::Rem => Some(BinOp::Rem),
        }
    }
}

/// Expression node. Fields named `site` are memory-access identities
/// ([`SiteId`]); `loc` fields are source locations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Variable reference. The [`SiteId`] is meaningful only when the
    /// variable is a memory-resident scalar (a global); register-allocated
    /// locals produce no memory traffic.
    Var { name: String, site: SiteId, loc: Loc },
    /// `base[index]` — loads/stores through the decayed pointer.
    Index { base: Box<Expr>, index: Box<Expr>, site: SiteId, loc: Loc },
    /// `*ptr`.
    Deref { ptr: Box<Expr>, site: SiteId, loc: Loc },
    /// `&lvalue`.
    AddrOf { lvalue: Box<Expr>, loc: Loc },
    /// Unary operator application.
    Unary { op: UnOp, expr: Box<Expr> },
    /// Binary operator application.
    Binary { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// `++`/`--` applied to an lvalue.
    IncDec { op: IncDec, target: Box<Expr> },
    /// Ternary conditional `c ? t : e`.
    Cond { cond: Box<Expr>, then: Box<Expr>, els: Box<Expr> },
    /// Function (or builtin) call.
    Call { name: String, args: Vec<Expr>, loc: Loc },
}

impl Expr {
    /// Whether the expression is syntactically an lvalue.
    pub fn is_lvalue(&self) -> bool {
        matches!(self, Expr::Var { .. } | Expr::Index { .. } | Expr::Deref { .. })
    }

    /// Source location most representative of the expression, if tracked.
    pub fn loc(&self) -> Option<Loc> {
        match self {
            Expr::Var { loc, .. }
            | Expr::Index { loc, .. }
            | Expr::Deref { loc, .. }
            | Expr::AddrOf { loc, .. }
            | Expr::Call { loc, .. } => Some(*loc),
            Expr::Unary { expr, .. } => expr.loc(),
            Expr::Binary { lhs, .. } => lhs.loc(),
            Expr::IncDec { target, .. } => target.loc(),
            Expr::Cond { cond, .. } => cond.loc(),
            Expr::IntLit(_) => None,
        }
    }
}

/// Checkpoint kinds inserted around loops by the instrumentation pass,
/// mirroring the paper's three checkpoint types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CheckpointKind {
    /// Emitted once each time control enters the loop statement
    /// (before the first condition test). Paper: "beginning-of-the-loop".
    LoopBegin,
    /// Emitted at the start of every body iteration.
    /// Paper: "beginning-of-the-loop-body".
    BodyBegin,
    /// Emitted at the end of every body iteration.
    /// Paper: "end-of-the-loop-body".
    BodyEnd,
}

impl CheckpointKind {
    /// Short code used in trace text dumps.
    pub fn code(self) -> &'static str {
        match self {
            CheckpointKind::LoopBegin => "LB",
            CheckpointKind::BodyBegin => "BB",
            CheckpointKind::BodyEnd => "BE",
        }
    }
}

/// Statement node. Loop variants carry their [`LoopId`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Stmt {
    /// Local variable or local array declaration.
    LocalDecl {
        name: String,
        ty: Type,
        /// `Some(n)` declares `ty name[n]` (stack-resident storage).
        array_len: Option<u32>,
        /// Optional scalar initializer (arrays cannot be initialized inline).
        init: Option<Expr>,
        loc: Loc,
    },
    /// Assignment through an lvalue.
    Assign { target: Expr, op: AssignOp, value: Expr },
    /// Expression evaluated for effect (calls, `x++`, ...).
    Expr(Expr),
    /// Conditional.
    If { cond: Expr, then_blk: Block, else_blk: Option<Block> },
    /// `while (cond) body`.
    While { id: LoopId, cond: Expr, body: Block },
    /// `do body while (cond);`.
    DoWhile { id: LoopId, body: Block, cond: Expr },
    /// `for (init; cond; step) body`. `init`/`step` are restricted to
    /// assignments, declarations, or expression statements.
    For {
        id: LoopId,
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Block,
    },
    /// `return e;` / `return;`.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// Nested block scope.
    Block(Block),
    /// Instrumentation checkpoint (inserted by [`crate::instrument()`];
    /// never produced by the parser from user source).
    Checkpoint { loop_id: LoopId, kind: CheckpointKind },
}

impl Stmt {
    /// Loop id if this statement is a loop.
    pub fn loop_id(&self) -> Option<LoopId> {
        match self {
            Stmt::While { id, .. } | Stmt::DoWhile { id, .. } | Stmt::For { id, .. } => Some(*id),
            _ => None,
        }
    }
}

/// A brace-delimited statement sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Creates an empty block.
    pub fn new() -> Self {
        Block::default()
    }
}

impl FromIterator<Stmt> for Block {
    fn from_iter<I: IntoIterator<Item = Stmt>>(iter: I) -> Self {
        Block { stmts: iter.into_iter().collect() }
    }
}

/// Function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
}

/// Function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name; `main` is the entry point.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Return type; `None` is `void`.
    pub ret: Option<Type>,
    /// Body.
    pub body: Block,
    /// Definition site.
    pub loc: Loc,
}

/// Global variable or array declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDecl {
    /// Global name.
    pub name: String,
    /// Element type.
    pub ty: Type,
    /// `Some(n)` declares an array of `n` elements.
    pub array_len: Option<u32>,
    /// Optional initializer values (scalars take one; arrays up to `n`,
    /// remainder zero-filled).
    pub init: Vec<i64>,
    /// Declaration site.
    pub loc: Loc,
}

impl GlobalDecl {
    /// Total byte size of the global's storage.
    pub fn byte_size(&self) -> u32 {
        self.ty.size() * self.array_len.unwrap_or(1)
    }
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Globals in declaration order (memory is laid out in this order).
    pub globals: Vec<GlobalDecl>,
    /// Function definitions.
    pub functions: Vec<Function>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&GlobalDecl> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Number of loops in the program (after canonical renumbering, loop
    /// ids are `0..count`).
    pub fn loop_count(&self) -> u32 {
        let mut n = 0;
        self.visit_stmts(&mut |s| {
            if s.loop_id().is_some() {
                n += 1;
            }
        });
        n
    }

    /// Number of memory-access sites (after canonical renumbering, site ids
    /// are `0..count`).
    pub fn site_count(&self) -> u32 {
        let mut n = 0;
        self.visit_exprs(&mut |e| {
            if matches!(e, Expr::Var { .. } | Expr::Index { .. } | Expr::Deref { .. }) {
                n += 1;
            }
        });
        n
    }

    /// Calls `f` on every statement, in a deterministic pre-order walk.
    pub fn visit_stmts(&self, f: &mut impl FnMut(&Stmt)) {
        for func in &self.functions {
            visit_block_stmts(&func.body, f);
        }
    }

    /// Calls `f` on every expression, in a deterministic pre-order walk.
    pub fn visit_exprs(&self, f: &mut impl FnMut(&Expr)) {
        self.visit_stmts(&mut |s| visit_stmt_exprs(s, f));
    }
}

fn visit_block_stmts(block: &Block, f: &mut impl FnMut(&Stmt)) {
    for stmt in &block.stmts {
        visit_stmt(stmt, f);
    }
}

fn visit_stmt(stmt: &Stmt, f: &mut impl FnMut(&Stmt)) {
    f(stmt);
    match stmt {
        Stmt::If { then_blk, else_blk, .. } => {
            visit_block_stmts(then_blk, f);
            if let Some(e) = else_blk {
                visit_block_stmts(e, f);
            }
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => visit_block_stmts(body, f),
        Stmt::For { init, step, body, .. } => {
            if let Some(i) = init {
                visit_stmt(i, f);
            }
            if let Some(s) = step {
                visit_stmt(s, f);
            }
            visit_block_stmts(body, f);
        }
        Stmt::Block(b) => visit_block_stmts(b, f),
        _ => {}
    }
}

fn visit_stmt_exprs(stmt: &Stmt, f: &mut impl FnMut(&Expr)) {
    match stmt {
        Stmt::LocalDecl { init: Some(e), .. } => visit_expr(e, f),
        Stmt::Assign { target, value, .. } => {
            visit_expr(target, f);
            visit_expr(value, f);
        }
        Stmt::Expr(e) => visit_expr(e, f),
        Stmt::If { cond, .. } => visit_expr(cond, f),
        Stmt::While { cond, .. } | Stmt::DoWhile { cond, .. } => visit_expr(cond, f),
        Stmt::For { cond: Some(c), .. } => visit_expr(c, f),
        Stmt::Return(Some(e)) => visit_expr(e, f),
        _ => {}
    }
}

/// Calls `f` on `expr` and every sub-expression, pre-order.
pub fn visit_expr(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    f(expr);
    match expr {
        Expr::Index { base, index, .. } => {
            visit_expr(base, f);
            visit_expr(index, f);
        }
        Expr::Deref { ptr, .. } => visit_expr(ptr, f),
        Expr::AddrOf { lvalue, .. } => visit_expr(lvalue, f),
        Expr::Unary { expr, .. } => visit_expr(expr, f),
        Expr::Binary { lhs, rhs, .. } => {
            visit_expr(lhs, f);
            visit_expr(rhs, f);
        }
        Expr::IncDec { target, .. } => visit_expr(target, f),
        Expr::Cond { cond, then, els } => {
            visit_expr(cond, f);
            visit_expr(then, f);
            visit_expr(els, f);
        }
        Expr::Call { args, .. } => {
            for a in args {
                visit_expr(a, f);
            }
        }
        Expr::IntLit(_) | Expr::Var { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes_match_32bit_target() {
        assert_eq!(Type::Int.size(), 4);
        assert_eq!(Type::Char.size(), 1);
        assert_eq!(Type::ptr_to(Type::Char).size(), 4);
        assert_eq!(Type::ptr_to(Type::Int).pointee_size(), Some(4));
        assert_eq!(Type::ptr_to(Type::Char).pointee_size(), Some(1));
        assert_eq!(Type::Int.pointee_size(), None);
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::ptr_to(Type::ptr_to(Type::Char)).to_string(), "char**");
    }

    #[test]
    fn incdec_semantics() {
        assert_eq!(IncDec::PostInc.delta(), 1);
        assert_eq!(IncDec::PreDec.delta(), -1);
        assert!(IncDec::PostDec.is_post());
        assert!(!IncDec::PreInc.is_post());
    }

    #[test]
    fn assign_op_decomposition() {
        assert_eq!(AssignOp::Add.bin_op(), Some(BinOp::Add));
        assert_eq!(AssignOp::Set.bin_op(), None);
    }

    #[test]
    fn lvalue_classification() {
        let loc = Loc::default();
        let var = Expr::Var { name: "x".into(), site: SiteId(0), loc };
        assert!(var.is_lvalue());
        assert!(!Expr::IntLit(1).is_lvalue());
        assert!(Expr::Deref { ptr: Box::new(Expr::IntLit(0)), site: SiteId(1), loc }.is_lvalue());
    }

    #[test]
    fn global_byte_size() {
        let g = GlobalDecl {
            name: "q".into(),
            ty: Type::Char,
            array_len: Some(10000),
            init: vec![],
            loc: Loc::default(),
        };
        assert_eq!(g.byte_size(), 10000);
    }
}
