//! Pretty-printer: renders an AST back to mini-C source.
//!
//! The output of an *uninstrumented* program re-parses to an equal AST
//! (modulo locations and id numbering); this round-trip is property-tested.
//! Instrumented programs additionally render `CHECKPOINT(n);` statements in
//! the style of the paper's Fig. 4(b), with `n = 3*loop + kind` (kind:
//! 0 = loop-begin, 1 = body-begin, 2 = body-end).

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a program as mini-C source text.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), minic::Error> {
/// let prog = minic::parse("int a[4]; void main() { a[0] = 1 + 2; }")?;
/// let text = minic::pretty(&prog);
/// assert!(text.contains("a[0] = 1 + 2;"));
/// # Ok(())
/// # }
/// ```
pub fn pretty(prog: &Program) -> String {
    let mut p = Printer::default();
    p.program(prog);
    p.out
}

/// Encodes a checkpoint as the paper's flat integer id:
/// `3 * loop + kind_offset`.
pub fn checkpoint_number(loop_id: LoopId, kind: CheckpointKind) -> u32 {
    let offset = match kind {
        CheckpointKind::LoopBegin => 0,
        CheckpointKind::BodyBegin => 1,
        CheckpointKind::BodyEnd => 2,
    };
    3 * loop_id.0 + offset
}

/// Decodes a flat checkpoint integer back into `(loop, kind)`.
pub fn checkpoint_from_number(n: u32) -> (LoopId, CheckpointKind) {
    let kind = match n % 3 {
        0 => CheckpointKind::LoopBegin,
        1 => CheckpointKind::BodyBegin,
        _ => CheckpointKind::BodyEnd,
    };
    (LoopId(n / 3), kind)
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn program(&mut self, prog: &Program) {
        for g in &prog.globals {
            self.global(g);
        }
        if !prog.globals.is_empty() {
            self.out.push('\n');
        }
        for (i, f) in prog.functions.iter().enumerate() {
            if i > 0 {
                self.out.push('\n');
            }
            self.function(f);
        }
    }

    fn global(&mut self, g: &GlobalDecl) {
        let mut s = format!("{} {}", g.ty, g.name);
        if let Some(n) = g.array_len {
            let _ = write!(s, "[{n}]");
        }
        if !g.init.is_empty() {
            if g.array_len.is_some() {
                let vals: Vec<String> = g.init.iter().map(|v| v.to_string()).collect();
                let _ = write!(s, " = {{ {} }}", vals.join(", "));
            } else {
                let _ = write!(s, " = {}", g.init[0]);
            }
        }
        s.push(';');
        self.line(&s);
    }

    fn function(&mut self, f: &Function) {
        let ret = f.ret.as_ref().map_or("void".to_owned(), |t| t.to_string());
        let params: Vec<String> = f.params.iter().map(|p| format!("{} {}", p.ty, p.name)).collect();
        self.line(&format!("{ret} {}({}) {{", f.name, params.join(", ")));
        self.indent += 1;
        for s in &f.body.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
        self.line("}");
    }

    fn block_body(&mut self, b: &Block) {
        self.indent += 1;
        for s in &b.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::LocalDecl { .. } | Stmt::Assign { .. } | Stmt::Expr(_) => {
                let text = self.simple_stmt(s);
                self.line(&format!("{text};"));
            }
            Stmt::If { cond, then_blk, else_blk } => {
                self.line(&format!("if ({}) {{", expr(cond)));
                self.block_body(then_blk);
                match else_blk {
                    Some(e) => {
                        self.line("} else {");
                        self.block_body(e);
                        self.line("}");
                    }
                    None => self.line("}"),
                }
            }
            Stmt::While { cond, body, .. } => {
                self.line(&format!("while ({}) {{", expr(cond)));
                self.block_body(body);
                self.line("}");
            }
            Stmt::DoWhile { body, cond, .. } => {
                self.line("do {");
                self.block_body(body);
                self.line(&format!("}} while ({});", expr(cond)));
            }
            Stmt::For { init, cond, step, body, .. } => {
                let i = init.as_deref().map_or(String::new(), |s| self.simple_stmt(s));
                let c = cond.as_ref().map_or(String::new(), |c| format!(" {}", expr(c)));
                let st =
                    step.as_deref().map_or(String::new(), |s| format!(" {}", self.simple_stmt(s)));
                self.line(&format!("for ({i};{c};{st}) {{"));
                self.block_body(body);
                self.line("}");
            }
            Stmt::Return(None) => self.line("return;"),
            Stmt::Return(Some(e)) => self.line(&format!("return {};", expr(e))),
            Stmt::Break => self.line("break;"),
            Stmt::Continue => self.line("continue;"),
            Stmt::Block(b) => {
                self.line("{");
                self.block_body(b);
                self.line("}");
            }
            Stmt::Checkpoint { loop_id, kind } => {
                self.line(&format!("CHECKPOINT({});", checkpoint_number(*loop_id, *kind)));
            }
        }
    }

    fn simple_stmt(&mut self, s: &Stmt) -> String {
        match s {
            Stmt::LocalDecl { name, ty, array_len, init, .. } => {
                let mut t = format!("{ty} {name}");
                if let Some(n) = array_len {
                    let _ = write!(t, "[{n}]");
                }
                if let Some(e) = init {
                    let _ = write!(t, " = {}", expr(e));
                }
                t
            }
            Stmt::Assign { target, op, value } => {
                format!("{} {} {}", expr(target), op.as_str(), expr(value))
            }
            Stmt::Expr(e) => expr(e),
            other => panic!("not a simple statement: {other:?}"),
        }
    }
}

/// Renders an expression with minimal-but-safe parenthesization.
pub fn expr(e: &Expr) -> String {
    expr_prec(e, 0)
}

fn prec_of(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::BitOr => 3,
        BinOp::BitXor => 4,
        BinOp::BitAnd => 5,
        BinOp::Eq | BinOp::Ne => 6,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 7,
        BinOp::Shl | BinOp::Shr => 8,
        BinOp::Add | BinOp::Sub => 9,
        BinOp::Mul | BinOp::Div | BinOp::Rem => 10,
    }
}

const PREC_UNARY: u8 = 11;
const PREC_POSTFIX: u8 = 12;

fn expr_prec(e: &Expr, min: u8) -> String {
    let (text, prec) = match e {
        Expr::IntLit(v) => (v.to_string(), PREC_POSTFIX),
        Expr::Var { name, .. } => (name.clone(), PREC_POSTFIX),
        Expr::Index { base, index, .. } => {
            (format!("{}[{}]", expr_prec(base, PREC_POSTFIX), expr(index)), PREC_POSTFIX)
        }
        Expr::Deref { ptr, .. } => (format!("*{}", expr_prec(ptr, PREC_UNARY)), PREC_UNARY),
        Expr::AddrOf { lvalue, .. } => (format!("&{}", expr_prec(lvalue, PREC_UNARY)), PREC_UNARY),
        Expr::Unary { op, expr: inner } => {
            (format!("{}{}", op.as_str(), expr_prec(inner, PREC_UNARY)), PREC_UNARY)
        }
        Expr::Binary { op, lhs, rhs } => {
            let p = prec_of(*op);
            (format!("{} {} {}", expr_prec(lhs, p), op.as_str(), expr_prec(rhs, p + 1)), p)
        }
        Expr::IncDec { op, target } => {
            let t = expr_prec(target, PREC_POSTFIX);
            let s = match op {
                IncDec::PostInc => format!("{t}++"),
                IncDec::PostDec => format!("{t}--"),
                IncDec::PreInc => format!("++{t}"),
                IncDec::PreDec => format!("--{t}"),
            };
            (s, if op.is_post() { PREC_POSTFIX } else { PREC_UNARY })
        }
        Expr::Cond { cond, then, els } => {
            (format!("{} ? {} : {}", expr_prec(cond, 1), expr(then), expr(els)), 0)
        }
        Expr::Call { name, args, .. } => {
            let a: Vec<String> = args.iter().map(expr).collect();
            (format!("{name}({})", a.join(", ")), PREC_POSTFIX)
        }
    };
    if prec < min {
        format!("({text})")
    } else {
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn round_trip(src: &str) {
        let mut a = parse(src).unwrap();
        crate::sema::renumber(&mut a);
        let text = pretty(&a);
        let mut b = parse(&text).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{text}"));
        crate::sema::renumber(&mut b);
        assert_eq!(strip(&a), strip(&b), "round trip mismatch:\n{text}");
    }

    /// Strips locations so structural equality ignores them.
    fn strip(p: &Program) -> String {
        // Debug output with all `loc:` fields zeroed via a clone-and-clear walk
        // would be heavy; instead compare pretty-printed forms, which do not
        // include locations.
        pretty(p)
    }

    #[test]
    fn round_trips() {
        round_trip("int a[4]; void main() { a[0] = 1 + 2 * 3; }");
        round_trip(
            "char q[100]; char *ptr; void main() { int i; ptr = q;
             while (i < 100) { for (i = 40; i > 37; i--) { *ptr++ = i * i % 256; } } }",
        );
        round_trip("int f(int x) { return x ? f(x - 1) : 0; } void main() { f(3); }");
        round_trip("void main() { int x; x = (1 + 2) * 3; x = 1 + (2 * 3); }");
        round_trip("void main() { do { } while (0); }");
        round_trip("int g = 7; int t[3] = { 1, 2, 3 }; void main() { }");
        round_trip("void main() { int i; for (i = 0; i < 10; i += 2) { continue; } }");
    }

    #[test]
    fn parenthesization_preserves_shape() {
        // (1+2)*3 must not print as 1+2*3.
        let prog = parse("void main() { int x; x = (1 + 2) * 3; }").unwrap();
        let text = pretty(&prog);
        assert!(text.contains("(1 + 2) * 3"), "{text}");
    }

    #[test]
    fn left_associativity_no_spurious_parens() {
        let prog = parse("void main() { int x; x = 1 - 2 - 3; }").unwrap();
        let text = pretty(&prog);
        assert!(text.contains("1 - 2 - 3"), "{text}");
        // But right-nested subtraction needs parens.
        let prog = parse("void main() { int x; x = 1 - (2 - 3); }").unwrap();
        let text = pretty(&prog);
        assert!(text.contains("1 - (2 - 3)"), "{text}");
    }

    #[test]
    fn checkpoint_numbering_round_trips() {
        for loop_id in 0..5 {
            for kind in
                [CheckpointKind::LoopBegin, CheckpointKind::BodyBegin, CheckpointKind::BodyEnd]
            {
                let n = checkpoint_number(LoopId(loop_id), kind);
                assert_eq!(checkpoint_from_number(n), (LoopId(loop_id), kind));
            }
        }
    }

    #[test]
    fn checkpoints_render() {
        let mut prog = parse("void main() { while (0) { } }").unwrap();
        crate::instrument::instrument(&mut prog);
        let text = pretty(&prog);
        assert!(text.contains("CHECKPOINT(0);"), "{text}");
        assert!(text.contains("CHECKPOINT(1);"), "{text}");
        assert!(text.contains("CHECKPOINT(2);"), "{text}");
    }

    #[test]
    fn deref_of_postincrement() {
        let prog = parse("char *p; void main() { *p++ = 1; }").unwrap();
        let text = pretty(&prog);
        assert!(text.contains("*p++ = 1;"), "{text}");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::parse;

    fn pp(src: &str) -> String {
        pretty(&parse(src).unwrap())
    }

    #[test]
    fn if_else_chains() {
        let t = pp("void main() { int x; if (x) { x = 1; } else { x = 2; } }");
        assert!(t.contains("if (x) {"));
        assert!(t.contains("} else {"));
    }

    #[test]
    fn ternary_renders() {
        let t = pp("void main() { int x; x = x > 0 ? 1 : 0 - 1; }");
        assert!(t.contains("x > 0 ? 1 : 0 - 1"), "{t}");
    }

    #[test]
    fn addr_of_and_calls() {
        let t = pp("int a[4]; void main() { int *p; p = &a[2]; memset(p, 0, 4); }");
        assert!(t.contains("p = &a[2];"), "{t}");
        assert!(t.contains("memset(p, 0, 4);"), "{t}");
    }

    #[test]
    fn do_while_renders() {
        let t = pp("void main() { int i; do { i++; } while (i < 3); }");
        assert!(t.contains("do {"), "{t}");
        assert!(t.contains("} while (i < 3);"), "{t}");
    }

    #[test]
    fn for_with_empty_slots() {
        let t = pp("void main() { for (;;) { break; } }");
        assert!(t.contains("for (;;) {"), "{t}");
    }

    #[test]
    fn mixed_precedence_fixpoint() {
        let src = "void main() { int x; x = (1 | 2) & 3 ^ 4 >> (1 + 1) << 2; }";
        let once = pp(src);
        let twice = pretty(&parse(&once).unwrap());
        assert_eq!(once, twice);
    }

    #[test]
    fn comparison_chains_parenthesize() {
        // (a < b) == c must keep its parens... actually < binds tighter
        // than ==, so a < b == c already parses as (a < b) == c; check the
        // reverse nesting.
        let src = "void main() { int a; int b; int c; int x; x = a < (b == c); }";
        let t = pp(src);
        assert!(t.contains("a < (b == c)"), "{t}");
    }

    #[test]
    fn global_scalar_with_negative_init() {
        let t = pp("int g = -5; void main() { }");
        assert!(t.contains("int g = -5;"), "{t}");
    }
}
