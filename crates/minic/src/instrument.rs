//! Checkpoint instrumentation — Step 1 of FORAY-GEN's Algorithm 1.
//!
//! Every loop is bracketed with the paper's three checkpoint kinds
//! (Fig. 4(b)): a *loop-begin* before the loop statement, a *body-begin* at
//! the top of each iteration, and a *body-end* at the bottom. To keep the
//! emitted checkpoint stream well-nested under early exits, the pass also
//! rewrites `break`, `continue`, and `return` inside loop bodies to emit the
//! body-end checkpoints they would otherwise skip — the mechanical
//! equivalent of what a careful manual annotator would write.

use crate::ast::*;

/// Instruments all loops of a program in place.
///
/// Idempotence is *not* guaranteed; instrument a program once. (A second
/// pass would re-wrap loops with duplicate checkpoints.)
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), minic::Error> {
/// let mut prog = minic::parse("void main() { while (0) { } }")?;
/// minic::instrument(&mut prog);
/// assert!(minic::pretty(&prog).contains("CHECKPOINT(0);"));
/// # Ok(())
/// # }
/// ```
pub fn instrument(prog: &mut Program) {
    for func in &mut prog.functions {
        let mut enclosing = Vec::new();
        instrument_block(&mut func.body, &mut enclosing);
    }
}

/// Returns whether a program already contains checkpoints.
pub fn is_instrumented(prog: &Program) -> bool {
    let mut found = false;
    prog.visit_stmts(&mut |s| {
        if matches!(s, Stmt::Checkpoint { .. }) {
            found = true;
        }
    });
    found
}

fn checkpoint(loop_id: LoopId, kind: CheckpointKind) -> Stmt {
    Stmt::Checkpoint { loop_id, kind }
}

/// `enclosing` tracks the loop ids around the current statement, innermost
/// last, within the current function.
fn instrument_block(block: &mut Block, enclosing: &mut Vec<LoopId>) {
    let old = std::mem::take(&mut block.stmts);
    let mut out = Vec::with_capacity(old.len());
    for stmt in old {
        instrument_stmt(stmt, enclosing, &mut out);
    }
    block.stmts = out;
}

fn instrument_body(body: &mut Block, id: LoopId, enclosing: &mut Vec<LoopId>) {
    enclosing.push(id);
    instrument_block(body, enclosing);
    enclosing.pop();
    body.stmts.insert(0, checkpoint(id, CheckpointKind::BodyBegin));
    body.stmts.push(checkpoint(id, CheckpointKind::BodyEnd));
}

fn instrument_stmt(mut stmt: Stmt, enclosing: &mut Vec<LoopId>, out: &mut Vec<Stmt>) {
    match &mut stmt {
        Stmt::While { id, body, .. }
        | Stmt::DoWhile { id, body, .. }
        | Stmt::For { id, body, .. } => {
            let id = *id;
            instrument_body(body, id, enclosing);
            out.push(checkpoint(id, CheckpointKind::LoopBegin));
            out.push(stmt);
        }
        Stmt::If { then_blk, else_blk, .. } => {
            instrument_block(then_blk, enclosing);
            if let Some(e) = else_blk {
                instrument_block(e, enclosing);
            }
            out.push(stmt);
        }
        Stmt::Block(b) => {
            instrument_block(b, enclosing);
            out.push(stmt);
        }
        Stmt::Continue => {
            // Close the innermost loop's iteration before jumping back.
            if let Some(&inner) = enclosing.last() {
                out.push(checkpoint(inner, CheckpointKind::BodyEnd));
            }
            out.push(stmt);
        }
        Stmt::Break => {
            if let Some(&inner) = enclosing.last() {
                out.push(checkpoint(inner, CheckpointKind::BodyEnd));
            }
            out.push(stmt);
        }
        Stmt::Return(_) => {
            // Close every enclosing loop body in this function,
            // innermost first.
            for &id in enclosing.iter().rev() {
                out.push(checkpoint(id, CheckpointKind::BodyEnd));
            }
            out.push(stmt);
        }
        _ => out.push(stmt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn checkpoints_of(src: &str) -> Vec<(u32, CheckpointKind)> {
        let mut prog = parse(src).unwrap();
        crate::sema::check(&mut prog).unwrap();
        instrument(&mut prog);
        let mut out = Vec::new();
        prog.visit_stmts(&mut |s| {
            if let Stmt::Checkpoint { loop_id, kind } = s {
                out.push((loop_id.0, *kind));
            }
        });
        out
    }

    use CheckpointKind::{BodyBegin as BB, BodyEnd as BE, LoopBegin as LB};

    #[test]
    fn brackets_simple_while() {
        let cps = checkpoints_of("void main() { while (0) { } }");
        assert_eq!(cps, vec![(0, LB), (0, BB), (0, BE)]);
    }

    #[test]
    fn nested_loops_bracketed_inside_out() {
        let cps = checkpoints_of("void main() { while (0) { for (;;) { } } }");
        // Static order: LB(outer) appears before the while; inside the body:
        // BB(outer), LB(inner), [BB(inner), BE(inner)] inside for, BE(outer).
        assert_eq!(cps, vec![(0, LB), (0, BB), (1, LB), (1, BB), (1, BE), (0, BE)]);
    }

    #[test]
    fn continue_gets_body_end() {
        let cps = checkpoints_of("void main() { while (0) { continue; } }");
        // LB, BB, BE (for the continue), BE (structural end).
        assert_eq!(cps, vec![(0, LB), (0, BB), (0, BE), (0, BE)]);
    }

    #[test]
    fn return_closes_all_enclosing_loops() {
        let cps = checkpoints_of(
            "int f() { while (0) { for (;;) { return 1; } } return 0; } void main() { f(); }",
        );
        // Inside the for body: return is preceded by BE(for)=loop1, BE(while)=loop0.
        let idx = cps.iter().position(|&(id, k)| id == 1 && k == BB).unwrap();
        assert_eq!(&cps[idx + 1..idx + 3], &[(1, BE), (0, BE)]);
    }

    #[test]
    fn break_gets_body_end() {
        let cps = checkpoints_of("void main() { do { break; } while (1); }");
        assert_eq!(cps, vec![(0, LB), (0, BB), (0, BE), (0, BE)]);
    }

    #[test]
    fn detects_instrumentation() {
        let mut prog = parse("void main() { while (0) { } }").unwrap();
        assert!(!is_instrumented(&prog));
        instrument(&mut prog);
        assert!(is_instrumented(&prog));
    }

    #[test]
    fn loops_in_if_branches() {
        let cps =
            checkpoints_of("void main() { int c; if (c) { while (0) { } } else { for (;;) { } } }");
        assert_eq!(cps, vec![(0, LB), (0, BB), (0, BE), (1, LB), (1, BB), (1, BE)]);
    }
}
