//! Hand-written lexer for mini-C.
//!
//! Supports `//` and `/* */` comments, decimal and hexadecimal integer
//! literals, and character literals with the common escapes.

use crate::error::{Error, Result};
use crate::token::{Keyword, Loc, Token, TokenKind};

/// Lexes an entire source string into a token vector terminated by
/// [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns [`Error::Lex`] on unterminated comments or character literals,
/// malformed numbers, or characters outside the language's alphabet.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), minic::Error> {
/// let toks = minic::lex("x += 0x10; // bump")?;
/// assert_eq!(toks.len(), 5); // x, +=, 16, ;, eof
/// # Ok(())
/// # }
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn loc(&self) -> Loc {
        Loc::new(self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::Lex { loc: self.loc(), msg: msg.into() }
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let loc = self.loc();
            let Some(c) = self.peek() else {
                out.push(Token::new(TokenKind::Eof, loc));
                return Ok(out);
            };
            let kind = match c {
                b'0'..=b'9' => self.number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident_or_kw(),
                b'\'' => self.char_lit()?,
                _ => self.operator()?,
            };
            out.push(Token::new(kind, loc));
        }
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.loc();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(Error::Lex {
                                    loc: start,
                                    msg: "unterminated block comment".into(),
                                });
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self) -> Result<TokenKind> {
        let mut value: i64 = 0;
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x' | b'X')) {
            self.bump();
            self.bump();
            let mut any = false;
            while let Some(c) = self.peek() {
                let digit = match c {
                    b'0'..=b'9' => (c - b'0') as i64,
                    b'a'..=b'f' => (c - b'a' + 10) as i64,
                    b'A'..=b'F' => (c - b'A' + 10) as i64,
                    _ => break,
                };
                any = true;
                value = value
                    .checked_mul(16)
                    .and_then(|v| v.checked_add(digit))
                    .ok_or_else(|| self.err("hex literal overflows i64"))?;
                self.bump();
            }
            if !any {
                return Err(self.err("hex literal needs at least one digit"));
            }
        } else {
            while let Some(c @ b'0'..=b'9') = self.peek() {
                value = value
                    .checked_mul(10)
                    .and_then(|v| v.checked_add((c - b'0') as i64))
                    .ok_or_else(|| self.err("decimal literal overflows i64"))?;
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'a'..=b'z' | b'A'..=b'Z' | b'_')) {
            return Err(self.err("identifier character directly after number"));
        }
        Ok(TokenKind::IntLit(value))
    }

    fn ident_or_kw(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') = self.peek() {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        match Keyword::from_str(text) {
            Some(kw) => TokenKind::Kw(kw),
            None => TokenKind::Ident(text.to_owned()),
        }
    }

    fn char_lit(&mut self) -> Result<TokenKind> {
        self.bump(); // opening quote
        let c = match self.bump() {
            Some(b'\\') => match self.bump() {
                Some(b'n') => b'\n',
                Some(b't') => b'\t',
                Some(b'r') => b'\r',
                Some(b'0') => 0,
                Some(b'\\') => b'\\',
                Some(b'\'') => b'\'',
                other => {
                    return Err(self.err(format!(
                        "unsupported escape: \\{}",
                        other.map(|c| c as char).unwrap_or('?')
                    )));
                }
            },
            Some(b'\'') => return Err(self.err("empty character literal")),
            Some(c) => c,
            None => return Err(self.err("unterminated character literal")),
        };
        if self.bump() != Some(b'\'') {
            return Err(self.err("character literal must be a single character"));
        }
        Ok(TokenKind::CharLit(c))
    }

    fn operator(&mut self) -> Result<TokenKind> {
        let c = self.bump().expect("caller checked non-empty");
        let two = |lexer: &mut Self, next: u8, yes: TokenKind, no: TokenKind| {
            if lexer.peek() == Some(next) {
                lexer.bump();
                yes
            } else {
                no
            }
        };
        Ok(match c {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b';' => TokenKind::Semi,
            b',' => TokenKind::Comma,
            b'?' => TokenKind::Question,
            b':' => TokenKind::Colon,
            b'~' => TokenKind::Tilde,
            b'^' => TokenKind::Caret,
            b'+' => match self.peek() {
                Some(b'+') => {
                    self.bump();
                    TokenKind::PlusPlus
                }
                Some(b'=') => {
                    self.bump();
                    TokenKind::PlusAssign
                }
                _ => TokenKind::Plus,
            },
            b'-' => match self.peek() {
                Some(b'-') => {
                    self.bump();
                    TokenKind::MinusMinus
                }
                Some(b'=') => {
                    self.bump();
                    TokenKind::MinusAssign
                }
                _ => TokenKind::Minus,
            },
            b'*' => two(self, b'=', TokenKind::StarAssign, TokenKind::Star),
            b'/' => two(self, b'=', TokenKind::SlashAssign, TokenKind::Slash),
            b'%' => two(self, b'=', TokenKind::PercentAssign, TokenKind::Percent),
            b'&' => two(self, b'&', TokenKind::AmpAmp, TokenKind::Amp),
            b'|' => two(self, b'|', TokenKind::PipePipe, TokenKind::Pipe),
            b'!' => two(self, b'=', TokenKind::BangEq, TokenKind::Bang),
            b'=' => two(self, b'=', TokenKind::EqEq, TokenKind::Assign),
            b'<' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    TokenKind::Le
                }
                Some(b'<') => {
                    self.bump();
                    TokenKind::Shl
                }
                _ => TokenKind::Lt,
            },
            b'>' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    TokenKind::Ge
                }
                Some(b'>') => {
                    self.bump();
                    TokenKind::Shr
                }
                _ => TokenKind::Gt,
            },
            other => {
                return Err(self.err(format!("unexpected character {:?}", other as char)));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_figure4_statement() {
        // `*ptr++ = i*i % 256;` — the key idiom from the paper's Fig 4(a).
        let k = kinds("*ptr++ = i*i % 256;");
        assert_eq!(
            k,
            vec![
                TokenKind::Star,
                TokenKind::Ident("ptr".into()),
                TokenKind::PlusPlus,
                TokenKind::Assign,
                TokenKind::Ident("i".into()),
                TokenKind::Star,
                TokenKind::Ident("i".into()),
                TokenKind::Percent,
                TokenKind::IntLit(256),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn hex_and_decimal() {
        assert_eq!(
            kinds("0x10 0XfF 42"),
            vec![
                TokenKind::IntLit(16),
                TokenKind::IntLit(255),
                TokenKind::IntLit(42),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("a // line\n /* block\n over lines */ b");
        assert_eq!(
            k,
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn char_literals() {
        assert_eq!(
            kinds(r"'a' '\n' '\0'"),
            vec![
                TokenKind::CharLit(b'a'),
                TokenKind::CharLit(b'\n'),
                TokenKind::CharLit(0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn location_tracking() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].loc, Loc::new(1, 1));
        assert_eq!(toks[1].loc, Loc::new(2, 3));
    }

    #[test]
    fn compound_operators() {
        let k = kinds("<<= is not a token, but << = are");
        // `<<=` lexes as `<<` `=` in this grammar (no shift-assign).
        assert_eq!(k[0], TokenKind::Shl);
        assert_eq!(k[1], TokenKind::Assign);
    }

    #[test]
    fn errors_on_garbage() {
        assert!(lex("@").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("'ab'").is_err());
        assert!(lex("99999999999999999999").is_err());
        assert!(lex("12abc").is_err());
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            kinds("for forever"),
            vec![TokenKind::Kw(Keyword::For), TokenKind::Ident("forever".into()), TokenKind::Eof]
        );
    }
}
