//! # minic — a mini-C frontend for memory-behaviour research
//!
//! This crate is the language substrate of the FORAY-GEN reproduction
//! (Issenin & Dutt, *FORAY-GEN: Automatic Generation of Affine Functions for
//! Memory Optimizations*, DATE 2005). It models the C subset that matters
//! for the paper's profile-based analysis: `for`/`while`/`do` loops,
//! pointer arithmetic and `*p++` walks, one-dimensional arrays, functions
//! with data-dependent arguments, and a small "system library" of builtins.
//!
//! The pipeline stages offered here:
//!
//! * [`parse`] — source text → [`ast::Program`];
//! * [`check`] — semantic validation + canonical loop/site numbering;
//! * [`instrument()`] — Step 1 of the paper's Algorithm 1 (loop checkpoints);
//! * [`pretty()`] — AST → source text (round-trips);
//! * [`count_lines`] — Table I's line metrics;
//! * [`build`] — programmatic AST construction.
//!
//! Execution and trace generation live in the `minic-sim` crate; the FORAY
//! model extraction itself lives in the `foray` crate.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), minic::Error> {
//! let src = r#"
//!     char q[10000];
//!     char *ptr;
//!     void main() {
//!         int i; int t1 = 98;
//!         ptr = q;
//!         while (t1 < 100) {
//!             t1++;
//!             ptr += 100;
//!             for (i = 40; i > 37; i--) { *ptr++ = i * i % 256; }
//!         }
//!     }
//! "#;
//! let mut prog = minic::parse(src)?;
//! let info = minic::check(&mut prog)?;
//! assert_eq!(info.loops, 2);
//! minic::instrument(&mut prog);
//! assert!(minic::pretty(&prog).contains("CHECKPOINT"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod build;
pub mod builtins;
mod error;
pub mod instrument;
mod lexer;
pub mod loc;
mod parser;
pub mod pretty;
pub mod sema;
pub mod token;

pub use ast::{
    AssignOp, BinOp, Block, CheckpointKind, Expr, Function, GlobalDecl, IncDec, LoopId, Param,
    Program, SiteId, Stmt, Type, UnOp,
};
pub use error::{Diagnostic, Error, Result};
pub use instrument::{instrument, is_instrumented};
pub use lexer::lex;
pub use loc::{count_lines, LineCounts};
pub use parser::parse;
pub use pretty::{checkpoint_from_number, checkpoint_number, pretty};
pub use sema::{check, ProgramInfo};
pub use token::Loc;

/// Parses, checks, and instruments a program in one step — the usual
/// front-door for profiling flows.
///
/// # Errors
///
/// Propagates [`Error`] from [`parse`] or [`check`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), minic::Error> {
/// let prog = minic::frontend("void main() { while (0) { } }")?;
/// assert!(minic::is_instrumented(&prog));
/// # Ok(())
/// # }
/// ```
pub fn frontend(src: &str) -> Result<Program> {
    let mut prog = parse(src)?;
    check(&mut prog)?;
    instrument(&mut prog);
    Ok(prog)
}
