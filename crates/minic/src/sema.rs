//! Semantic checking and canonical renumbering.
//!
//! [`check`] validates name resolution, call arity, loop-control placement,
//! and declaration shapes, then renumbers every [`LoopId`] and [`SiteId`]
//! into dense pre-order sequences. Downstream crates (the simulator's
//! instruction-address layout, the instrumentation pass, the FORAY analyzer)
//! rely on that canonical numbering.

use crate::ast::*;
use crate::builtins;
use crate::error::{Diagnostic, Error, Result};
use crate::token::Loc;
use std::collections::{HashMap, HashSet};

/// Summary of a checked program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramInfo {
    /// Number of loops; ids are `0..loops`.
    pub loops: u32,
    /// Number of memory-access sites; ids are `0..sites`.
    pub sites: u32,
    /// Names of user functions, entry (`main`) included.
    pub functions: Vec<String>,
}

/// Checks a program and canonicalizes its loop/site ids.
///
/// # Errors
///
/// Returns [`Error::Sema`] listing every diagnostic found: undeclared or
/// duplicate names, unknown callees or wrong arity, `break`/`continue`
/// outside loops, missing or malformed `main`, oversized global
/// initializers, and value-position calls of `void` functions.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), minic::Error> {
/// let mut prog = minic::parse("int a[4]; void main() { a[1] = 2; }")?;
/// let info = minic::check(&mut prog)?;
/// assert_eq!(info.loops, 0);
/// # Ok(())
/// # }
/// ```
pub fn check(prog: &mut Program) -> Result<ProgramInfo> {
    renumber(prog);
    let mut checker = Checker::new(prog);
    checker.run(prog);
    if checker.diags.is_empty() {
        Ok(ProgramInfo {
            loops: prog.loop_count(),
            sites: prog.site_count(),
            functions: prog.functions.iter().map(|f| f.name.clone()).collect(),
        })
    } else {
        Err(Error::Sema(checker.diags))
    }
}

/// Renumbers loops and sites in deterministic pre-order. Exposed for tools
/// that synthesize ASTs directly (see [`crate::build`]).
pub fn renumber(prog: &mut Program) {
    let mut next_loop = 0u32;
    let mut next_site = 0u32;
    for func in &mut prog.functions {
        renumber_block(&mut func.body, &mut next_loop, &mut next_site);
    }
}

fn renumber_block(block: &mut Block, nl: &mut u32, ns: &mut u32) {
    for stmt in &mut block.stmts {
        renumber_stmt(stmt, nl, ns);
    }
}

fn renumber_stmt(stmt: &mut Stmt, nl: &mut u32, ns: &mut u32) {
    match stmt {
        Stmt::LocalDecl { init, .. } => {
            if let Some(e) = init {
                renumber_expr(e, ns);
            }
        }
        Stmt::Assign { target, value, .. } => {
            renumber_expr(target, ns);
            renumber_expr(value, ns);
        }
        Stmt::Expr(e) => renumber_expr(e, ns),
        Stmt::If { cond, then_blk, else_blk } => {
            renumber_expr(cond, ns);
            renumber_block(then_blk, nl, ns);
            if let Some(b) = else_blk {
                renumber_block(b, nl, ns);
            }
        }
        Stmt::While { id, cond, body } => {
            *id = LoopId(*nl);
            *nl += 1;
            renumber_expr(cond, ns);
            renumber_block(body, nl, ns);
        }
        Stmt::DoWhile { id, body, cond } => {
            *id = LoopId(*nl);
            *nl += 1;
            renumber_block(body, nl, ns);
            renumber_expr(cond, ns);
        }
        Stmt::For { id, init, cond, step, body } => {
            *id = LoopId(*nl);
            *nl += 1;
            if let Some(s) = init {
                renumber_stmt(s, nl, ns);
            }
            if let Some(c) = cond {
                renumber_expr(c, ns);
            }
            if let Some(s) = step {
                renumber_stmt(s, nl, ns);
            }
            renumber_block(body, nl, ns);
        }
        Stmt::Return(Some(e)) => renumber_expr(e, ns),
        Stmt::Block(b) => renumber_block(b, nl, ns),
        Stmt::Return(None) | Stmt::Break | Stmt::Continue | Stmt::Checkpoint { .. } => {}
    }
}

fn renumber_expr(expr: &mut Expr, ns: &mut u32) {
    let mut fresh = |site: &mut SiteId| {
        *site = SiteId(*ns);
        *ns += 1;
    };
    match expr {
        Expr::Var { site, .. } => fresh(site),
        Expr::Index { base, index, site, .. } => {
            fresh(site);
            renumber_expr(base, ns);
            renumber_expr(index, ns);
        }
        Expr::Deref { ptr, site, .. } => {
            fresh(site);
            renumber_expr(ptr, ns);
        }
        Expr::AddrOf { lvalue, .. } => renumber_expr(lvalue, ns),
        Expr::Unary { expr, .. } => renumber_expr(expr, ns),
        Expr::Binary { lhs, rhs, .. } => {
            renumber_expr(lhs, ns);
            renumber_expr(rhs, ns);
        }
        Expr::IncDec { target, .. } => renumber_expr(target, ns),
        Expr::Cond { cond, then, els } => {
            renumber_expr(cond, ns);
            renumber_expr(then, ns);
            renumber_expr(els, ns);
        }
        Expr::Call { args, .. } => {
            for a in args {
                renumber_expr(a, ns);
            }
        }
        Expr::IntLit(_) => {}
    }
}

/// Shape of a declared name within a scope.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Binding {
    Scalar(Type),
    Array(Type, u32),
}

struct FuncSig {
    arity: usize,
    returns_value: bool,
}

struct Checker {
    diags: Vec<Diagnostic>,
    funcs: HashMap<String, FuncSig>,
    globals: HashMap<String, Binding>,
    scopes: Vec<HashMap<String, Binding>>,
    loop_depth: usize,
}

impl Checker {
    fn new(prog: &Program) -> Self {
        let mut funcs = HashMap::new();
        for f in &prog.functions {
            funcs.insert(
                f.name.clone(),
                FuncSig { arity: f.params.len(), returns_value: f.ret.is_some() },
            );
        }
        Checker {
            diags: Vec::new(),
            funcs,
            globals: HashMap::new(),
            scopes: Vec::new(),
            loop_depth: 0,
        }
    }

    fn diag(&mut self, loc: Loc, msg: impl Into<String>) {
        self.diags.push(Diagnostic { loc, msg: msg.into() });
    }

    fn run(&mut self, prog: &Program) {
        self.check_globals(prog);
        self.check_main(prog);
        let mut seen = HashSet::new();
        for f in &prog.functions {
            if !seen.insert(f.name.as_str()) {
                self.diag(f.loc, format!("duplicate function `{}`", f.name));
            }
            if builtins::is_builtin(&f.name) {
                self.diag(f.loc, format!("`{}` shadows a builtin", f.name));
            }
            self.check_function(f);
        }
    }

    fn check_globals(&mut self, prog: &Program) {
        for g in &prog.globals {
            if self.globals.contains_key(&g.name) {
                self.diag(g.loc, format!("duplicate global `{}`", g.name));
                continue;
            }
            if self.funcs.contains_key(&g.name) {
                self.diag(g.loc, format!("global `{}` collides with a function", g.name));
            }
            match g.array_len {
                Some(0) => self.diag(g.loc, format!("array `{}` has zero length", g.name)),
                Some(n) => {
                    if g.init.len() > n as usize {
                        self.diag(
                            g.loc,
                            format!(
                                "array `{}` initializer has {} values for {} elements",
                                g.name,
                                g.init.len(),
                                n
                            ),
                        );
                    }
                    self.globals.insert(g.name.clone(), Binding::Array(g.ty.clone(), n));
                }
                None => {
                    if g.init.len() > 1 {
                        self.diag(g.loc, format!("scalar `{}` has multiple initializers", g.name));
                    }
                    self.globals.insert(g.name.clone(), Binding::Scalar(g.ty.clone()));
                }
            }
        }
    }

    fn check_main(&mut self, prog: &Program) {
        match prog.function("main") {
            None => self.diag(Loc::default(), "program has no `main` function"),
            Some(m) if !m.params.is_empty() => {
                self.diag(m.loc, "`main` must take no parameters");
            }
            Some(_) => {}
        }
    }

    fn check_function(&mut self, func: &Function) {
        self.scopes.clear();
        self.loop_depth = 0;
        let mut top = HashMap::new();
        for p in &func.params {
            if top.insert(p.name.clone(), Binding::Scalar(p.ty.clone())).is_some() {
                self.diag(func.loc, format!("duplicate parameter `{}`", p.name));
            }
        }
        self.scopes.push(top);
        self.check_block(&func.body);
        self.scopes.pop();
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Some(b);
            }
        }
        self.globals.get(name)
    }

    fn declare(&mut self, loc: Loc, name: &str, binding: Binding) {
        let scope = self.scopes.last_mut().expect("scope stack non-empty");
        if scope.insert(name.to_owned(), binding).is_some() {
            self.diag(loc, format!("duplicate declaration of `{name}` in this scope"));
        }
    }

    fn check_block(&mut self, block: &Block) {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.check_stmt(stmt);
        }
        self.scopes.pop();
    }

    fn check_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::LocalDecl { name, ty, array_len, init, loc } => {
                if let Some(e) = init {
                    self.check_expr(e, true);
                }
                match array_len {
                    Some(0) => self.diag(*loc, format!("array `{name}` has zero length")),
                    Some(n) => self.declare(*loc, name, Binding::Array(ty.clone(), *n)),
                    None => self.declare(*loc, name, Binding::Scalar(ty.clone())),
                }
            }
            Stmt::Assign { target, value, .. } => {
                self.check_assign_target(target);
                self.check_expr(target, true);
                self.check_expr(value, true);
            }
            Stmt::Expr(e) => self.check_expr(e, false),
            Stmt::If { cond, then_blk, else_blk } => {
                self.check_expr(cond, true);
                self.check_block(then_blk);
                if let Some(b) = else_blk {
                    self.check_block(b);
                }
            }
            Stmt::While { cond, body, .. } => {
                self.check_expr(cond, true);
                self.loop_depth += 1;
                self.check_block(body);
                self.loop_depth -= 1;
            }
            Stmt::DoWhile { body, cond, .. } => {
                self.loop_depth += 1;
                self.check_block(body);
                self.loop_depth -= 1;
                self.check_expr(cond, true);
            }
            Stmt::For { init, cond, step, body, .. } => {
                // The init declaration scopes over cond/step/body.
                self.scopes.push(HashMap::new());
                if let Some(s) = init {
                    self.check_stmt(s);
                }
                if let Some(c) = cond {
                    self.check_expr(c, true);
                }
                if let Some(s) = step {
                    self.check_stmt(s);
                }
                self.loop_depth += 1;
                self.check_block(body);
                self.loop_depth -= 1;
                self.scopes.pop();
            }
            Stmt::Return(e) => {
                if let Some(e) = e {
                    self.check_expr(e, true);
                }
            }
            Stmt::Break | Stmt::Continue => {
                if self.loop_depth == 0 {
                    self.diag(Loc::default(), "`break`/`continue` outside of a loop");
                }
            }
            Stmt::Block(b) => self.check_block(b),
            Stmt::Checkpoint { .. } => {}
        }
    }

    fn check_assign_target(&mut self, target: &Expr) {
        if let Expr::Var { name, loc, .. } = target {
            if let Some(Binding::Array(..)) = self.lookup(name) {
                self.diag(*loc, format!("cannot assign to array name `{name}`"));
            }
        }
    }

    fn check_expr(&mut self, expr: &Expr, value_position: bool) {
        match expr {
            Expr::IntLit(_) => {}
            Expr::Var { name, loc, .. } => {
                if self.lookup(name).is_none() {
                    self.diag(*loc, format!("undeclared variable `{name}`"));
                }
            }
            Expr::Index { base, index, .. } => {
                self.check_expr(base, true);
                self.check_expr(index, true);
            }
            Expr::Deref { ptr, .. } => self.check_expr(ptr, true),
            Expr::AddrOf { lvalue, .. } => self.check_expr(lvalue, true),
            Expr::Unary { expr, .. } => self.check_expr(expr, true),
            Expr::Binary { lhs, rhs, .. } => {
                self.check_expr(lhs, true);
                self.check_expr(rhs, true);
            }
            Expr::IncDec { target, .. } => {
                self.check_assign_target(target);
                self.check_expr(target, true);
            }
            Expr::Cond { cond, then, els } => {
                self.check_expr(cond, true);
                self.check_expr(then, true);
                self.check_expr(els, true);
            }
            Expr::Call { name, args, loc } => {
                for a in args {
                    self.check_expr(a, true);
                }
                let (arity, returns_value) = if let Some(b) = builtins::builtin(name) {
                    (b.arity, b.returns_value)
                } else if let Some(sig) = self.funcs.get(name) {
                    (sig.arity, sig.returns_value)
                } else {
                    self.diag(*loc, format!("call to undefined function `{name}`"));
                    return;
                };
                if args.len() != arity {
                    self.diag(
                        *loc,
                        format!("`{name}` expects {arity} argument(s), got {}", args.len()),
                    );
                }
                if value_position && !returns_value {
                    self.diag(*loc, format!("void function `{name}` used in an expression"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn check_src(src: &str) -> Result<ProgramInfo> {
        let mut prog = parse(src).unwrap();
        check(&mut prog)
    }

    fn errors(src: &str) -> Vec<String> {
        match check_src(src) {
            Ok(_) => vec![],
            Err(Error::Sema(diags)) => diags.into_iter().map(|d| d.msg).collect(),
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    }

    #[test]
    fn accepts_figure4() {
        let info = check_src(
            "char q[10000]; char *ptr;
             void main() { int i; int t1 = 98; ptr = q;
               while (t1 < 100) { t1++; ptr += 100;
                 for (i = 40; i > 37; i--) { *ptr++ = i*i % 256; } } }",
        )
        .unwrap();
        assert_eq!(info.loops, 2);
        assert_eq!(info.functions, vec!["main"]);
    }

    #[test]
    fn rejects_undeclared() {
        let errs = errors("void main() { x = 1; }");
        assert!(errs.iter().any(|e| e.contains("undeclared variable `x`")));
    }

    #[test]
    fn rejects_missing_main() {
        let errs = errors("int f() { return 0; }");
        assert!(errs.iter().any(|e| e.contains("no `main`")));
    }

    #[test]
    fn rejects_bad_arity() {
        let errs = errors("int f(int a) { return a; } void main() { f(1, 2); }");
        assert!(errs.iter().any(|e| e.contains("expects 1 argument")));
    }

    #[test]
    fn rejects_undefined_call() {
        let errs = errors("void main() { g(); }");
        assert!(errs.iter().any(|e| e.contains("undefined function `g`")));
    }

    #[test]
    fn builtins_resolve() {
        assert!(check_src("void main() { int x; x = abs(-3) + max(1, 2); srand(7); }").is_ok());
    }

    #[test]
    fn rejects_void_in_expression() {
        let errs = errors("char b[8]; void main() { int x; x = memset(b, 0, 8); }");
        assert!(errs.iter().any(|e| e.contains("void function `memset`")));
    }

    #[test]
    fn rejects_break_outside_loop() {
        let errs = errors("void main() { break; }");
        assert!(errs.iter().any(|e| e.contains("outside of a loop")));
    }

    #[test]
    fn rejects_array_assignment() {
        let errs = errors("int a[4]; void main() { a = 0; }");
        assert!(errs.iter().any(|e| e.contains("cannot assign to array name")));
    }

    #[test]
    fn rejects_duplicate_global_and_local() {
        let errs = errors("int g; int g; void main() { int x; int x; }");
        assert!(errs.iter().any(|e| e.contains("duplicate global `g`")));
        assert!(errs.iter().any(|e| e.contains("duplicate declaration of `x`")));
    }

    #[test]
    fn block_scoping_allows_shadowing() {
        assert!(check_src("void main() { int x; { int x; x = 1; } x = 2; }").is_ok());
    }

    #[test]
    fn for_init_scopes_over_body() {
        assert!(check_src("void main() { for (int i = 0; i < 3; i++) { int y; y = i; } }").is_ok());
        let errs = errors("void main() { for (int i = 0; i < 3; i++) {} i = 1; }");
        assert!(errs.iter().any(|e| e.contains("undeclared variable `i`")));
    }

    #[test]
    fn renumbering_is_dense_preorder() {
        let mut prog = parse(
            "void f() { while (1) { } }
             void main() { for (;;) {} do {} while (0); f(); }",
        )
        .unwrap();
        check(&mut prog).unwrap();
        let mut ids = Vec::new();
        prog.visit_stmts(&mut |s| {
            if let Some(id) = s.loop_id() {
                ids.push(id.0);
            }
        });
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn rejects_zero_length_arrays() {
        let errs = errors("int a[0]; void main() { int b[0]; }");
        assert_eq!(errs.iter().filter(|e| e.contains("zero length")).count(), 2);
    }

    #[test]
    fn rejects_oversized_initializer() {
        let errs = errors("int a[2] = {1,2,3}; void main() {}");
        assert!(errs.iter().any(|e| e.contains("initializer has 3 values")));
    }

    #[test]
    fn rejects_main_with_params() {
        let errs = errors("void main(int argc) {}");
        assert!(errs.iter().any(|e| e.contains("`main` must take no parameters")));
    }

    #[test]
    fn rejects_builtin_shadowing() {
        let errs = errors("int rand() { return 4; } void main() {}");
        assert!(errs.iter().any(|e| e.contains("shadows a builtin")));
    }
}
