//! Token definitions for the mini-C lexer.
//!
//! The token set covers the C subset exercised by the FORAY-GEN paper's
//! examples and benchmarks: integer/char literals, identifiers, the loop
//! keywords (`for`, `while`, `do`), pointers and address arithmetic, and the
//! usual operator zoo including pre/post increment (needed for the
//! `*ptr++ = v` idiom of Fig. 1/4).

use std::fmt;

/// A source location: 1-based line and column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Loc {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Loc {
    /// Creates a location from 1-based line and column numbers.
    pub fn new(line: u32, col: u32) -> Self {
        Loc { line, col }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Keywords recognized by the lexer, named after their C spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Int,
    Char,
    Void,
    If,
    Else,
    For,
    While,
    Do,
    Return,
    Break,
    Continue,
}

impl Keyword {
    /// Looks up a keyword from its source spelling. (Not the `FromStr`
    /// trait: lookup failure is an expected `None`, not an error.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "int" => Keyword::Int,
            "char" => Keyword::Char,
            "void" => Keyword::Void,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "for" => Keyword::For,
            "while" => Keyword::While,
            "do" => Keyword::Do,
            "return" => Keyword::Return,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            _ => return None,
        })
    }

    /// The source spelling of the keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Int => "int",
            Keyword::Char => "char",
            Keyword::Void => "void",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::For => "for",
            Keyword::While => "while",
            Keyword::Do => "do",
            Keyword::Return => "return",
            Keyword::Break => "break",
            Keyword::Continue => "continue",
        }
    }
}

/// The kind of a lexed token. Punctuation/operator variants carry no
/// payload and are named after their C spelling (see the `Display` impl).
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum TokenKind {
    /// Integer literal (decimal or `0x` hex).
    IntLit(i64),
    /// Character literal such as `'a'`, valued as its byte.
    CharLit(u8),
    /// Identifier.
    Ident(String),
    /// Reserved keyword.
    Kw(Keyword),

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    BangEq,
    AmpAmp,
    PipePipe,
    Shl,
    Shr,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    PlusPlus,
    MinusMinus,
    Question,
    Colon,

    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::IntLit(v) => write!(f, "{v}"),
            TokenKind::CharLit(c) => write!(f, "'{}'", *c as char),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Kw(k) => write!(f, "{}", k.as_str()),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Semi => write!(f, ";"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::Amp => write!(f, "&"),
            TokenKind::Pipe => write!(f, "|"),
            TokenKind::Caret => write!(f, "^"),
            TokenKind::Tilde => write!(f, "~"),
            TokenKind::Bang => write!(f, "!"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::EqEq => write!(f, "=="),
            TokenKind::BangEq => write!(f, "!="),
            TokenKind::AmpAmp => write!(f, "&&"),
            TokenKind::PipePipe => write!(f, "||"),
            TokenKind::Shl => write!(f, "<<"),
            TokenKind::Shr => write!(f, ">>"),
            TokenKind::Assign => write!(f, "="),
            TokenKind::PlusAssign => write!(f, "+="),
            TokenKind::MinusAssign => write!(f, "-="),
            TokenKind::StarAssign => write!(f, "*="),
            TokenKind::SlashAssign => write!(f, "/="),
            TokenKind::PercentAssign => write!(f, "%="),
            TokenKind::PlusPlus => write!(f, "++"),
            TokenKind::MinusMinus => write!(f, "--"),
            TokenKind::Question => write!(f, "?"),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token paired with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it starts in the source.
    pub loc: Loc,
}

impl Token {
    /// Creates a token at a location.
    pub fn new(kind: TokenKind, loc: Loc) -> Self {
        Token { kind, loc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Int,
            Keyword::Char,
            Keyword::Void,
            Keyword::If,
            Keyword::Else,
            Keyword::For,
            Keyword::While,
            Keyword::Do,
            Keyword::Return,
            Keyword::Break,
            Keyword::Continue,
        ] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_str("loop"), None);
    }

    #[test]
    fn display_covers_operators() {
        assert_eq!(TokenKind::PlusPlus.to_string(), "++");
        assert_eq!(TokenKind::Shl.to_string(), "<<");
        assert_eq!(TokenKind::Ident("ptr".into()).to_string(), "ptr");
        assert_eq!(TokenKind::IntLit(42).to_string(), "42");
    }

    #[test]
    fn loc_display() {
        assert_eq!(Loc::new(3, 14).to_string(), "3:14");
    }
}
