//! Recursive-descent parser for mini-C.
//!
//! Grammar summary (C subset):
//!
//! ```text
//! program     := (global | function)*
//! global      := type ident ('[' int ']')? ('=' init)? ';'
//! function    := (type | 'void') ident '(' params? ')' block
//! block       := '{' stmt* '}'
//! stmt        := decl | assign | exprstmt | if | while | do | for
//!              | return | break | continue | block | ';'
//! assign      := lvalue ('='|'+='|'-='|'*='|'/='|'%=') expr ';'
//! expr        := ternary with C precedence, pointer arithmetic,
//!                '*' deref, '&' addr-of, calls, ++/--
//! ```
//!
//! Loops receive sequential [`LoopId`]s and every potential memory-access
//! expression receives a sequential [`SiteId`]; both are re-canonicalized by
//! [`crate::sema::check`].

use crate::ast::*;
use crate::error::{Error, Result};
use crate::lexer::lex;
use crate::token::{Keyword, Loc, Token, TokenKind};

/// Parses a full mini-C translation unit.
///
/// # Errors
///
/// Returns [`Error::Lex`] or [`Error::Parse`] on malformed input. Semantic
/// validation is separate: see [`crate::sema::check`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), minic::Error> {
/// let prog = minic::parse("int a[8]; void main() { a[0] = 1; }")?;
/// assert_eq!(prog.globals.len(), 1);
/// assert_eq!(prog.functions.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(src: &str) -> Result<Program> {
    let tokens = lex(src)?;
    Parser::new(tokens).program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_loop: u32,
    next_site: u32,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0, next_loop: 0, next_site: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn loc(&self) -> Loc {
        self.tokens[self.pos].loc
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kind}`, found `{}`", self.peek())))
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::Parse { loc: self.loc(), msg: msg.into() }
    }

    fn fresh_loop(&mut self) -> LoopId {
        let id = LoopId(self.next_loop);
        self.next_loop += 1;
        id
    }

    fn fresh_site(&mut self) -> SiteId {
        let id = SiteId(self.next_site);
        self.next_site += 1;
        id
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                Ok(name)
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    // ---- types ------------------------------------------------------

    fn peek_is_type(&self) -> bool {
        matches!(self.peek(), TokenKind::Kw(Keyword::Int | Keyword::Char))
    }

    /// Parses `int`/`char` followed by any number of `*`s.
    fn ty(&mut self) -> Result<Type> {
        let base = match self.bump() {
            TokenKind::Kw(Keyword::Int) => Type::Int,
            TokenKind::Kw(Keyword::Char) => Type::Char,
            other => return Err(self.err(format!("expected type, found `{other}`"))),
        };
        let mut ty = base;
        while self.eat(&TokenKind::Star) {
            ty = Type::ptr_to(ty);
        }
        Ok(ty)
    }

    // ---- top level ----------------------------------------------------

    fn program(mut self) -> Result<Program> {
        let mut prog = Program::new();
        while !matches!(self.peek(), TokenKind::Eof) {
            let loc = self.loc();
            if self.eat(&TokenKind::Kw(Keyword::Void)) {
                let name = self.ident()?;
                prog.functions.push(self.function(name, None, loc)?);
                continue;
            }
            if !self.peek_is_type() {
                return Err(
                    self.err(format!("expected declaration or function, found `{}`", self.peek()))
                );
            }
            let ty = self.ty()?;
            let name = self.ident()?;
            if matches!(self.peek(), TokenKind::LParen) {
                prog.functions.push(self.function(name, Some(ty), loc)?);
            } else {
                prog.globals.push(self.global(name, ty, loc)?);
            }
        }
        Ok(prog)
    }

    fn global(&mut self, name: String, ty: Type, loc: Loc) -> Result<GlobalDecl> {
        let mut array_len = None;
        if self.eat(&TokenKind::LBracket) {
            array_len = Some(self.array_size()?);
            self.expect(&TokenKind::RBracket)?;
        }
        let mut init = Vec::new();
        if self.eat(&TokenKind::Assign) {
            if self.eat(&TokenKind::LBrace) {
                loop {
                    init.push(self.const_int()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RBrace)?;
            } else {
                init.push(self.const_int()?);
            }
        }
        self.expect(&TokenKind::Semi)?;
        Ok(GlobalDecl { name, ty, array_len, init, loc })
    }

    fn array_size(&mut self) -> Result<u32> {
        let v = self.const_int()?;
        u32::try_from(v).map_err(|_| self.err("array size must fit in u32"))
    }

    /// A constant integer expression: literal, possibly negated.
    fn const_int(&mut self) -> Result<i64> {
        let neg = self.eat(&TokenKind::Minus);
        match self.bump() {
            TokenKind::IntLit(v) => Ok(if neg { -v } else { v }),
            TokenKind::CharLit(c) => Ok(if neg { -(c as i64) } else { c as i64 }),
            other => Err(self.err(format!("expected integer constant, found `{other}`"))),
        }
    }

    fn function(&mut self, name: String, ret: Option<Type>, loc: Loc) -> Result<Function> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let ty = self.ty()?;
                let pname = self.ident()?;
                params.push(Param { name: pname, ty });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let body = self.block()?;
        Ok(Function { name, params, ret, body, loc })
    }

    // ---- statements ----------------------------------------------------

    fn block(&mut self) -> Result<Block> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt> {
        match self.peek() {
            TokenKind::Kw(Keyword::Int | Keyword::Char) => {
                let s = self.local_decl()?;
                self.expect(&TokenKind::Semi)?;
                Ok(s)
            }
            TokenKind::Kw(Keyword::If) => self.if_stmt(),
            TokenKind::Kw(Keyword::While) => self.while_stmt(),
            TokenKind::Kw(Keyword::Do) => self.do_stmt(),
            TokenKind::Kw(Keyword::For) => self.for_stmt(),
            TokenKind::Kw(Keyword::Return) => {
                self.bump();
                let value =
                    if matches!(self.peek(), TokenKind::Semi) { None } else { Some(self.expr()?) };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return(value))
            }
            TokenKind::Kw(Keyword::Break) => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Break)
            }
            TokenKind::Kw(Keyword::Continue) => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Continue)
            }
            TokenKind::LBrace => Ok(Stmt::Block(self.block()?)),
            TokenKind::Semi => {
                self.bump();
                Ok(Stmt::Block(Block::new()))
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(&TokenKind::Semi)?;
                Ok(s)
            }
        }
    }

    fn local_decl(&mut self) -> Result<Stmt> {
        let loc = self.loc();
        let ty = self.ty()?;
        let name = self.ident()?;
        let mut array_len = None;
        if self.eat(&TokenKind::LBracket) {
            array_len = Some(self.array_size()?);
            self.expect(&TokenKind::RBracket)?;
        }
        let init = if self.eat(&TokenKind::Assign) {
            if array_len.is_some() {
                return Err(self.err("local arrays cannot have initializers"));
            }
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::LocalDecl { name, ty, array_len, init, loc })
    }

    /// An assignment or expression statement, without the trailing `;`
    /// (shared by statement position and `for` init/step slots).
    fn simple_stmt(&mut self) -> Result<Stmt> {
        let expr = self.expr()?;
        let op = match self.peek() {
            TokenKind::Assign => AssignOp::Set,
            TokenKind::PlusAssign => AssignOp::Add,
            TokenKind::MinusAssign => AssignOp::Sub,
            TokenKind::StarAssign => AssignOp::Mul,
            TokenKind::SlashAssign => AssignOp::Div,
            TokenKind::PercentAssign => AssignOp::Rem,
            _ => return Ok(Stmt::Expr(expr)),
        };
        if !expr.is_lvalue() {
            return Err(self.err("left-hand side of assignment is not an lvalue"));
        }
        self.bump();
        let value = self.expr()?;
        Ok(Stmt::Assign { target: expr, op, value })
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        self.bump();
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_blk = self.stmt_as_block()?;
        let else_blk = if self.eat(&TokenKind::Kw(Keyword::Else)) {
            Some(self.stmt_as_block()?)
        } else {
            None
        };
        Ok(Stmt::If { cond, then_blk, else_blk })
    }

    /// Parses either a braced block or a single statement wrapped in a block,
    /// so loop/if bodies are uniformly [`Block`]s.
    fn stmt_as_block(&mut self) -> Result<Block> {
        if matches!(self.peek(), TokenKind::LBrace) {
            self.block()
        } else {
            Ok(Block { stmts: vec![self.stmt()?] })
        }
    }

    fn while_stmt(&mut self) -> Result<Stmt> {
        self.bump();
        let id = self.fresh_loop();
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let body = self.stmt_as_block()?;
        Ok(Stmt::While { id, cond, body })
    }

    fn do_stmt(&mut self) -> Result<Stmt> {
        self.bump();
        let id = self.fresh_loop();
        let body = self.stmt_as_block()?;
        self.expect(&TokenKind::Kw(Keyword::While))?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::Semi)?;
        Ok(Stmt::DoWhile { id, body, cond })
    }

    fn for_stmt(&mut self) -> Result<Stmt> {
        self.bump();
        let id = self.fresh_loop();
        self.expect(&TokenKind::LParen)?;
        let init = if self.eat(&TokenKind::Semi) {
            None
        } else {
            let s = if self.peek_is_type() { self.local_decl()? } else { self.simple_stmt()? };
            self.expect(&TokenKind::Semi)?;
            Some(Box::new(s))
        };
        let cond = if matches!(self.peek(), TokenKind::Semi) { None } else { Some(self.expr()?) };
        self.expect(&TokenKind::Semi)?;
        let step = if matches!(self.peek(), TokenKind::RParen) {
            None
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.expect(&TokenKind::RParen)?;
        let body = self.stmt_as_block()?;
        Ok(Stmt::For { id, init, cond, step, body })
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr> {
        let cond = self.binary(0)?;
        if self.eat(&TokenKind::Question) {
            let then = self.expr()?;
            self.expect(&TokenKind::Colon)?;
            let els = self.ternary()?;
            Ok(Expr::Cond { cond: Box::new(cond), then: Box::new(then), els: Box::new(els) })
        } else {
            Ok(cond)
        }
    }

    fn bin_op_of(kind: &TokenKind) -> Option<(BinOp, u8)> {
        // Higher binds tighter; mirrors C precedence.
        Some(match kind {
            TokenKind::PipePipe => (BinOp::Or, 1),
            TokenKind::AmpAmp => (BinOp::And, 2),
            TokenKind::Pipe => (BinOp::BitOr, 3),
            TokenKind::Caret => (BinOp::BitXor, 4),
            TokenKind::Amp => (BinOp::BitAnd, 5),
            TokenKind::EqEq => (BinOp::Eq, 6),
            TokenKind::BangEq => (BinOp::Ne, 6),
            TokenKind::Lt => (BinOp::Lt, 7),
            TokenKind::Le => (BinOp::Le, 7),
            TokenKind::Gt => (BinOp::Gt, 7),
            TokenKind::Ge => (BinOp::Ge, 7),
            TokenKind::Shl => (BinOp::Shl, 8),
            TokenKind::Shr => (BinOp::Shr, 8),
            TokenKind::Plus => (BinOp::Add, 9),
            TokenKind::Minus => (BinOp::Sub, 9),
            TokenKind::Star => (BinOp::Mul, 10),
            TokenKind::Slash => (BinOp::Div, 10),
            TokenKind::Percent => (BinOp::Rem, 10),
            _ => return None,
        })
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = Self::bin_op_of(self.peek()) {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        let loc = self.loc();
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::Neg, expr: Box::new(self.unary()?) })
            }
            TokenKind::Bang => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::Not, expr: Box::new(self.unary()?) })
            }
            TokenKind::Tilde => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::BitNot, expr: Box::new(self.unary()?) })
            }
            TokenKind::Star => {
                self.bump();
                let site = self.fresh_site();
                let inner = self.unary()?;
                Ok(Expr::Deref { ptr: Box::new(inner), site, loc })
            }
            TokenKind::Amp => {
                self.bump();
                let lvalue = self.unary()?;
                if !lvalue.is_lvalue() {
                    return Err(self.err("`&` requires an lvalue operand"));
                }
                Ok(Expr::AddrOf { lvalue: Box::new(lvalue), loc })
            }
            TokenKind::PlusPlus => {
                self.bump();
                let target = self.unary()?;
                if !target.is_lvalue() {
                    return Err(self.err("`++` requires an lvalue operand"));
                }
                Ok(Expr::IncDec { op: IncDec::PreInc, target: Box::new(target) })
            }
            TokenKind::MinusMinus => {
                self.bump();
                let target = self.unary()?;
                if !target.is_lvalue() {
                    return Err(self.err("`--` requires an lvalue operand"));
                }
                Ok(Expr::IncDec { op: IncDec::PreDec, target: Box::new(target) })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut expr = self.primary()?;
        loop {
            let loc = self.loc();
            match self.peek() {
                TokenKind::LBracket => {
                    self.bump();
                    let site = self.fresh_site();
                    let index = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    expr = Expr::Index { base: Box::new(expr), index: Box::new(index), site, loc };
                }
                TokenKind::PlusPlus => {
                    self.bump();
                    if !expr.is_lvalue() {
                        return Err(self.err("`++` requires an lvalue operand"));
                    }
                    expr = Expr::IncDec { op: IncDec::PostInc, target: Box::new(expr) };
                }
                TokenKind::MinusMinus => {
                    self.bump();
                    if !expr.is_lvalue() {
                        return Err(self.err("`--` requires an lvalue operand"));
                    }
                    expr = Expr::IncDec { op: IncDec::PostDec, target: Box::new(expr) };
                }
                _ => return Ok(expr),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        let loc = self.loc();
        match self.bump() {
            TokenKind::IntLit(v) => Ok(Expr::IntLit(v)),
            TokenKind::CharLit(c) => Ok(Expr::IntLit(c as i64)),
            TokenKind::Ident(name) => {
                if matches!(self.peek(), TokenKind::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen)?;
                    }
                    Ok(Expr::Call { name, args, loc })
                } else {
                    let site = self.fresh_site();
                    Ok(Expr::Var { name, site, loc })
                }
            }
            TokenKind::LParen => {
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            other => {
                Err(Error::Parse { loc, msg: format!("expected expression, found `{other}`") })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG4A: &str = r#"
        char q[10000];
        char *ptr;
        void main() {
            int i;
            int t1 = 98;
            ptr = q;
            while (t1 < 100) {
                t1++;
                ptr += 100;
                for (i = 40; i > 37; i--) {
                    *ptr++ = i * i % 256;
                }
            }
        }
    "#;

    #[test]
    fn parses_figure4() {
        let prog = parse(FIG4A).unwrap();
        assert_eq!(prog.globals.len(), 2);
        assert_eq!(prog.functions.len(), 1);
        assert_eq!(prog.loop_count(), 2);
    }

    #[test]
    fn loop_ids_sequential() {
        let prog = parse("void main(){ while(1){} do {} while(0); for(;;){} }").unwrap();
        let mut ids = Vec::new();
        prog.visit_stmts(&mut |s| {
            if let Some(id) = s.loop_id() {
                ids.push(id);
            }
        });
        assert_eq!(ids, vec![LoopId(0), LoopId(1), LoopId(2)]);
    }

    #[test]
    fn precedence() {
        let prog = parse("void main(){ int x; x = 1 + 2 * 3; }").unwrap();
        let Stmt::Assign { value, .. } = &prog.functions[0].body.stmts[1] else {
            panic!("expected assignment");
        };
        // 1 + (2 * 3)
        let Expr::Binary { op: BinOp::Add, rhs, .. } = value else { panic!("expected add") };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn pointer_walk_statement() {
        let prog = parse("char *p; void main(){ *p++ = 1; }").unwrap();
        let Stmt::Assign { target, .. } = &prog.functions[0].body.stmts[0] else {
            panic!("expected assignment");
        };
        // *(p++) — deref of post-increment.
        let Expr::Deref { ptr, .. } = target else { panic!("expected deref") };
        assert!(matches!(**ptr, Expr::IncDec { op: IncDec::PostInc, .. }));
    }

    #[test]
    fn for_with_decl_init() {
        let prog = parse("void main(){ for (int i = 0; i < 4; i++) {} }").unwrap();
        let Stmt::For { init, cond, step, .. } = &prog.functions[0].body.stmts[0] else {
            panic!("expected for");
        };
        assert!(matches!(init.as_deref(), Some(Stmt::LocalDecl { .. })));
        assert!(cond.is_some());
        assert!(matches!(
            step.as_deref(),
            Some(Stmt::Expr(Expr::IncDec { op: IncDec::PostInc, .. }))
        ));
    }

    #[test]
    fn global_array_with_init() {
        let prog = parse("int tab[4] = { 1, 2, 3, 4 }; void main(){}").unwrap();
        assert_eq!(prog.globals[0].init, vec![1, 2, 3, 4]);
        assert_eq!(prog.globals[0].array_len, Some(4));
    }

    #[test]
    fn ternary_and_calls() {
        let prog = parse("int f(int x){ return x ? f(x-1) : 0; } void main(){ f(3); }");
        assert!(prog.is_ok());
    }

    #[test]
    fn single_statement_bodies() {
        let prog = parse("void main(){ int s; for(int i=0;i<3;i++) s += i; if (s) s = 0; }");
        assert!(prog.is_ok());
    }

    #[test]
    fn rejects_bad_lvalues() {
        assert!(parse("void main(){ 1 = 2; }").is_err());
        assert!(parse("void main(){ int x; &1; }").is_err());
        assert!(parse("void main(){ (1+2)++; }").is_err());
    }

    #[test]
    fn rejects_unterminated() {
        assert!(parse("void main(){ ").is_err());
        assert!(parse("int x").is_err());
    }

    #[test]
    fn site_ids_are_distinct() {
        let prog = parse("int a[4]; void main(){ a[0] = a[1] + a[2]; }").unwrap();
        let mut sites = Vec::new();
        prog.visit_exprs(&mut |e| {
            if let Expr::Index { site, .. } = e {
                sites.push(*site);
            }
        });
        assert_eq!(sites.len(), 3);
        sites.dedup();
        assert_eq!(sites.len(), 3);
    }

    #[test]
    fn pointer_types_parse() {
        let prog = parse("int **pp; void main(){}").unwrap();
        assert_eq!(prog.globals[0].ty, Type::ptr_to(Type::ptr_to(Type::Int)));
    }

    #[test]
    fn empty_statement() {
        assert!(parse("void main(){ ;;; }").is_ok());
    }
}
