//! Ergonomic AST construction for tests, generators, and workloads.
//!
//! The helpers assign placeholder [`SiteId`]/[`LoopId`] values; call
//! [`crate::sema::check`] (or [`crate::sema::renumber`]) on the finished
//! [`Program`] to canonicalize them.
//!
//! # Examples
//!
//! ```
//! use minic::build::*;
//!
//! # fn main() -> Result<(), minic::Error> {
//! let mut prog = program()
//!     .global_array("a", minic::Type::Int, 16)
//!     .function("main", [], None, [
//!         for_loop("i", 0, 16, [
//!             assign(idx(var("a"), var("i")), var("i")),
//!         ]),
//!     ])
//!     .build();
//! minic::check(&mut prog)?;
//! # Ok(())
//! # }
//! ```

use crate::ast::*;
use crate::token::Loc;

fn placeholder_site() -> SiteId {
    SiteId(u32::MAX)
}

fn placeholder_loop() -> LoopId {
    LoopId(u32::MAX)
}

/// Starts a program builder.
pub fn program() -> ProgramBuilder {
    ProgramBuilder { prog: Program::new() }
}

/// Builder for [`Program`]s.
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    prog: Program,
}

impl ProgramBuilder {
    /// Adds a scalar global.
    pub fn global(mut self, name: &str, ty: Type) -> Self {
        self.prog.globals.push(GlobalDecl {
            name: name.into(),
            ty,
            array_len: None,
            init: vec![],
            loc: Loc::default(),
        });
        self
    }

    /// Adds a global array.
    pub fn global_array(mut self, name: &str, ty: Type, len: u32) -> Self {
        self.prog.globals.push(GlobalDecl {
            name: name.into(),
            ty,
            array_len: Some(len),
            init: vec![],
            loc: Loc::default(),
        });
        self
    }

    /// Adds a global array with initial values.
    pub fn global_array_init(
        mut self,
        name: &str,
        ty: Type,
        len: u32,
        init: impl IntoIterator<Item = i64>,
    ) -> Self {
        self.prog.globals.push(GlobalDecl {
            name: name.into(),
            ty,
            array_len: Some(len),
            init: init.into_iter().collect(),
            loc: Loc::default(),
        });
        self
    }

    /// Adds a function.
    pub fn function(
        mut self,
        name: &str,
        params: impl IntoIterator<Item = (&'static str, Type)>,
        ret: Option<Type>,
        body: impl IntoIterator<Item = Stmt>,
    ) -> Self {
        self.prog.functions.push(Function {
            name: name.into(),
            params: params.into_iter().map(|(n, ty)| Param { name: n.into(), ty }).collect(),
            ret,
            body: body.into_iter().collect(),
            loc: Loc::default(),
        });
        self
    }

    /// Finishes, renumbering loop and site ids canonically.
    pub fn build(mut self) -> Program {
        crate::sema::renumber(&mut self.prog);
        self.prog
    }
}

// ---- expressions -----------------------------------------------------

/// Integer literal.
pub fn int(v: i64) -> Expr {
    Expr::IntLit(v)
}

/// Variable reference.
pub fn var(name: &str) -> Expr {
    Expr::Var { name: name.into(), site: placeholder_site(), loc: Loc::default() }
}

/// `base[index]`.
pub fn idx(base: Expr, index: Expr) -> Expr {
    Expr::Index {
        base: Box::new(base),
        index: Box::new(index),
        site: placeholder_site(),
        loc: Loc::default(),
    }
}

/// `*ptr`.
pub fn deref(ptr: Expr) -> Expr {
    Expr::Deref { ptr: Box::new(ptr), site: placeholder_site(), loc: Loc::default() }
}

/// `&lvalue`.
pub fn addr_of(lvalue: Expr) -> Expr {
    Expr::AddrOf { lvalue: Box::new(lvalue), loc: Loc::default() }
}

/// Binary operation.
pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
}

/// `lhs + rhs`.
pub fn add(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Add, lhs, rhs)
}

/// `lhs - rhs`.
pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Sub, lhs, rhs)
}

/// `lhs * rhs`.
pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Mul, lhs, rhs)
}

/// `lhs < rhs`.
pub fn lt(lhs: Expr, rhs: Expr) -> Expr {
    bin(BinOp::Lt, lhs, rhs)
}

/// `target++`.
pub fn post_inc(target: Expr) -> Expr {
    Expr::IncDec { op: IncDec::PostInc, target: Box::new(target) }
}

/// Function call expression.
pub fn call(name: &str, args: impl IntoIterator<Item = Expr>) -> Expr {
    Expr::Call { name: name.into(), args: args.into_iter().collect(), loc: Loc::default() }
}

// ---- statements -----------------------------------------------------

/// Scalar local declaration with initializer.
pub fn decl(name: &str, ty: Type, init: Expr) -> Stmt {
    Stmt::LocalDecl {
        name: name.into(),
        ty,
        array_len: None,
        init: Some(init),
        loc: Loc::default(),
    }
}

/// Scalar local declaration without initializer.
pub fn decl_uninit(name: &str, ty: Type) -> Stmt {
    Stmt::LocalDecl { name: name.into(), ty, array_len: None, init: None, loc: Loc::default() }
}

/// Local array declaration.
pub fn decl_array(name: &str, ty: Type, len: u32) -> Stmt {
    Stmt::LocalDecl { name: name.into(), ty, array_len: Some(len), init: None, loc: Loc::default() }
}

/// Simple assignment `target = value;`.
pub fn assign(target: Expr, value: Expr) -> Stmt {
    Stmt::Assign { target, op: AssignOp::Set, value }
}

/// Compound assignment.
pub fn assign_op(target: Expr, op: AssignOp, value: Expr) -> Stmt {
    Stmt::Assign { target, op, value }
}

/// Expression statement.
pub fn expr_stmt(e: Expr) -> Stmt {
    Stmt::Expr(e)
}

/// Canonical counted loop: `for (int name = from; name < to; name++) body`.
pub fn for_loop(name: &str, from: i64, to: i64, body: impl IntoIterator<Item = Stmt>) -> Stmt {
    for_loop_step(name, from, to, 1, body)
}

/// Counted loop with a custom positive step.
pub fn for_loop_step(
    name: &str,
    from: i64,
    to: i64,
    step: i64,
    body: impl IntoIterator<Item = Stmt>,
) -> Stmt {
    Stmt::For {
        id: placeholder_loop(),
        init: Some(Box::new(decl(name, Type::Int, int(from)))),
        cond: Some(lt(var(name), int(to))),
        step: Some(Box::new(if step == 1 {
            Stmt::Expr(post_inc(var(name)))
        } else {
            Stmt::Assign { target: var(name), op: AssignOp::Add, value: int(step) }
        })),
        body: body.into_iter().collect(),
    }
}

/// `while (cond) body`.
pub fn while_loop(cond: Expr, body: impl IntoIterator<Item = Stmt>) -> Stmt {
    Stmt::While { id: placeholder_loop(), cond, body: body.into_iter().collect() }
}

/// `do body while (cond);`.
pub fn do_while(body: impl IntoIterator<Item = Stmt>, cond: Expr) -> Stmt {
    Stmt::DoWhile { id: placeholder_loop(), body: body.into_iter().collect(), cond }
}

/// `if (cond) then_blk`.
pub fn if_stmt(cond: Expr, then_blk: impl IntoIterator<Item = Stmt>) -> Stmt {
    Stmt::If { cond, then_blk: then_blk.into_iter().collect(), else_blk: None }
}

/// `if (cond) then_blk else else_blk`.
pub fn if_else(
    cond: Expr,
    then_blk: impl IntoIterator<Item = Stmt>,
    else_blk: impl IntoIterator<Item = Stmt>,
) -> Stmt {
    Stmt::If {
        cond,
        then_blk: then_blk.into_iter().collect(),
        else_blk: Some(else_blk.into_iter().collect()),
    }
}

/// `return e;`
pub fn ret(e: Expr) -> Stmt {
    Stmt::Return(Some(e))
}

/// `return;`
pub fn ret_void() -> Stmt {
    Stmt::Return(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sema::check;

    #[test]
    fn builds_checkable_program() {
        let mut prog = program()
            .global_array("a", Type::Int, 8)
            .function(
                "main",
                [],
                None,
                [for_loop("i", 0, 8, [assign(idx(var("a"), var("i")), mul(var("i"), int(2)))])],
            )
            .build();
        let info = check(&mut prog).unwrap();
        assert_eq!(info.loops, 1);
    }

    #[test]
    fn built_program_pretty_parses() {
        let prog = program()
            .global("g", Type::Int)
            .function(
                "main",
                [],
                None,
                [
                    decl("x", Type::Int, int(0)),
                    while_loop(
                        lt(var("x"), int(4)),
                        [assign_op(var("x"), AssignOp::Add, int(1)), assign(var("g"), var("x"))],
                    ),
                ],
            )
            .build();
        let text = crate::pretty(&prog);
        let mut reparsed = crate::parse(&text).unwrap();
        assert!(check(&mut reparsed).is_ok());
    }

    #[test]
    fn builder_functions_with_params() {
        let mut prog = program()
            .global_array("a", Type::Int, 100)
            .function(
                "foo",
                [("offset", Type::Int)],
                Some(Type::Int),
                [
                    decl("s", Type::Int, int(0)),
                    for_loop(
                        "i",
                        0,
                        10,
                        [assign_op(
                            var("s"),
                            AssignOp::Add,
                            idx(var("a"), add(var("i"), var("offset"))),
                        )],
                    ),
                    ret(var("s")),
                ],
            )
            .function("main", [], None, [expr_stmt(call("foo", [int(10)]))])
            .build();
        assert!(check(&mut prog).is_ok());
    }
}
