//! End-to-end FORAY-GEN cost per workload: frontend + profiling +
//! online analysis + model extraction + code emission (the full
//! Algorithm 1), one measurement per benchmark of the suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use foray_workloads::{all, Params};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("foray_gen_end_to_end");
    group.sample_size(10);
    for w in all(Params::default()) {
        // Pre-measure the access count so throughput is records/second.
        let accesses = w.run().expect("workload runs").sim.accesses;
        group.throughput(Throughput::Elements(accesses));
        group.bench_with_input(BenchmarkId::from_parameter(w.name), &w, |b, w| {
            b.iter(|| {
                let out = w.run().expect("workload runs");
                black_box(out.model.ref_count())
            });
        });
    }
    group.finish();
}

fn bench_frontend_only(c: &mut Criterion) {
    // Isolates parsing/checking/instrumentation from simulation.
    let mut group = c.benchmark_group("frontend_only");
    group.sample_size(30);
    for w in all(Params::default()) {
        group.bench_with_input(BenchmarkId::from_parameter(w.name), &w, |b, w| {
            b.iter(|| black_box(w.frontend().expect("compiles")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_frontend_only);
criterion_main!(benches);
