//! Phase II design-space exploration cost: exact multiple-choice knapsack
//! vs the greedy heuristic, the cached capacity plan vs per-capacity
//! re-solves, and the full parallel `SpmDesignSpace::explore` path on the
//! corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use foray_spm::{
    enumerate, select_exact, select_greedy, BufferCandidate, CapacityPlan, EnergyModel,
};
use foray_workloads::{by_name, Params};
use std::hint::black_box;

fn synth_candidates(n: usize) -> Vec<BufferCandidate> {
    (0..n)
        .map(|i| BufferCandidate {
            ref_idx: i / 2, // two levels per reference
            array: format!("A{i}"),
            level: (i % 2 + 1) as u32,
            size_bytes: 32 + ((i * 97) % 900) as u32,
            spm_accesses: 1_000 + ((i * 7919) % 100_000) as u64,
            fill_elems: 50 + ((i * 13) % 500) as u64,
            writeback_elems: if i % 3 == 0 { 100 } else { 0 },
            activations: 1,
            elem_bytes: 4,
        })
        .collect()
}

fn bench_selection(c: &mut Criterion) {
    let energy = EnergyModel::default();
    let mut group = c.benchmark_group("spm_selection");
    group.sample_size(20);
    for n in [8usize, 64, 256] {
        let cands = synth_candidates(n);
        group.bench_with_input(BenchmarkId::new("exact", n), &cands, |b, cands| {
            b.iter(|| black_box(select_exact(black_box(cands), &energy, 8 * 1024)));
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &cands, |b, cands| {
            b.iter(|| black_box(select_greedy(black_box(cands), &energy, 8 * 1024)));
        });
    }
    group.finish();
}

fn bench_workload_dse(c: &mut Criterion) {
    // Full Phase II on the jpeg-style model: enumerate + sweep.
    let w = by_name("jpegc", Params::default()).expect("jpegc exists");
    let model = w.run().expect("jpegc runs").model;
    let energy = EnergyModel::default();
    let mut group = c.benchmark_group("spm_phase2");
    group.sample_size(10);
    group.bench_function("enumerate_jpegc", |b| {
        b.iter(|| black_box(enumerate(black_box(&model))));
    });
    let cands = enumerate(&model);
    group.bench_function("sweep_jpegc_7_capacities", |b| {
        b.iter(|| {
            black_box(foray_spm::sweep(
                black_box(&cands),
                &energy,
                &[256, 512, 1024, 2048, 4096, 8192, 16384],
            ))
        });
    });
    group.finish();
}

fn bench_capacity_plan(c: &mut Criterion) {
    // The DSE capacity axis: one cached DP + per-capacity backtracks vs the
    // old per-capacity re-solve.
    let energy = EnergyModel::default();
    let cands = synth_candidates(256);
    let caps: Vec<u32> = (0..16).map(|i| 1024 + 1024 * i).collect();
    let mut group = c.benchmark_group("spm_capacity_plan");
    group.sample_size(20);
    group.bench_function("resolve_per_capacity_16", |b| {
        b.iter(|| {
            for &cap in &caps {
                black_box(select_exact(black_box(&cands), &energy, cap));
            }
        });
    });
    group.bench_function("cached_plan_16", |b| {
        b.iter(|| {
            let plan = CapacityPlan::build(black_box(&cands), &energy, *caps.last().unwrap());
            for &cap in &caps {
                black_box(plan.select(cap));
            }
        });
    });
    group.finish();
}

fn bench_corpus_explore(c: &mut Criterion) {
    // The full parallel path: profile + enumerate + plan + sweep over
    // capacities x presets x the workload corpus, sequential vs pooled.
    let mut group = c.benchmark_group("spm_dse_explore");
    group.sample_size(10);
    for jobs in [1usize, 0] {
        let label = if jobs == 0 { "jobs_auto" } else { "jobs_1" };
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(
                    foray_bench::dse_space(Params::default())
                        .explore(black_box(jobs))
                        .expect("corpus explores"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_selection,
    bench_workload_dse,
    bench_capacity_plan,
    bench_corpus_explore
);
criterion_main!(benches);
