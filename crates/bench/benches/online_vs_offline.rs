//! Online (analyze during profiling, constant space) vs offline
//! (materialize the trace, then analyze) — the trade-off the paper
//! resolves in favour of online at the end of Section 4 — plus the
//! sharded parallel paths (online sink routing and zero-copy offline
//! fan-out), which trade the constant-space property for wall-clock
//! speed.

use criterion::{criterion_group, criterion_main, Criterion};
use foray_workloads::{by_name, Params};
use minic_sim::SimConfig;
use std::hint::black_box;

fn bench_modes(c: &mut Criterion) {
    let w = by_name("fftc", Params::default()).expect("fftc exists");
    let prog = w.frontend().expect("fftc compiles");
    let mut group = c.benchmark_group("online_vs_offline");
    group.sample_size(10);

    group.bench_function("online", |b| {
        b.iter(|| {
            let mut analyzer = foray::Analyzer::new();
            let outcome = minic_sim::run_with_sink(
                black_box(&prog),
                &SimConfig::default(),
                &w.inputs,
                &mut analyzer,
            )
            .expect("runs");
            black_box((outcome.accesses, analyzer.into_analysis().refs().len()))
        });
    });

    group.bench_function("online_sharded", |b| {
        b.iter(|| {
            let mut analyzer = foray::ShardedAnalyzer::new();
            let outcome = minic_sim::run_with_sink(
                black_box(&prog),
                &SimConfig::default(),
                &w.inputs,
                &mut analyzer,
            )
            .expect("runs");
            black_box((outcome.accesses, analyzer.into_analysis().refs().len()))
        });
    });

    group.bench_function("offline_collect_then_analyze", |b| {
        b.iter(|| {
            let (_, records) =
                minic_sim::run(black_box(&prog), &SimConfig::default(), &w.inputs).expect("runs");
            let analysis = foray::analyze(&records);
            black_box(analysis.refs().len())
        });
    });

    group.bench_function("offline_collect_then_analyze_sharded", |b| {
        let (_, records) = minic_sim::run(&prog, &SimConfig::default(), &w.inputs).expect("runs");
        b.iter(|| {
            let analysis = foray::analyze_sharded(black_box(&records), 0);
            black_box(analysis.refs().len())
        });
    });

    group.bench_function("batch_suite_six_workloads", |b| {
        // The batch layer's real consumer shape: the six-workload suite
        // fanned across the shared pool.
        let jobs: Vec<foray::BatchJob> = foray_workloads::all(Params::default())
            .iter()
            .map(|wl| wl.batch_job(foray::ForayGen::new()))
            .collect();
        b.iter(|| {
            let results = foray::analyze_batch(black_box(&jobs), 0);
            black_box(results.iter().filter(|r| r.is_ok()).count())
        });
    });

    group.bench_function("offline_with_text_serialization", |b| {
        // Models the paper's "typically large trace file" path: serialize
        // to the text format and parse back before analyzing.
        b.iter(|| {
            let (_, records) =
                minic_sim::run(black_box(&prog), &SimConfig::default(), &w.inputs).expect("runs");
            let text = minic_trace::text::to_text(&records);
            let parsed = minic_trace::text::from_text(&text).expect("parses");
            let analysis = foray::analyze(&parsed);
            black_box(analysis.refs().len())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
