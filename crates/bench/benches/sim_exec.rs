//! Execution-engine microbenchmarks: tree-walking oracle vs compiled VM.
//!
//! The acceptance bar for the VM (locked by CI's `sim-vm-smoke` job via
//! the `sim_exec` bin) is ≥3x profiling throughput over the tree-walker on
//! fftc at scale 2. This bench breaks the comparison down further:
//! end-to-end runs per engine, plus compile-once/run-many to isolate the
//! lowering cost the `run_with_sink` entry point pays per run.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use foray_workloads::Params;
use minic_trace::CountingSink;
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let w = foray_workloads::by_name("fftc", Params { scale: 1 }).expect("fftc exists");
    let prog = w.frontend().expect("compiles");
    let records = {
        let mut sink = CountingSink::new();
        let config = minic_sim::SimConfig::default();
        minic_sim::run_with_sink(&prog, &config, &w.inputs, &mut sink).expect("runs");
        sink.total()
    };

    let mut group = c.benchmark_group("sim_exec_fftc");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records));

    group.bench_function("tree_walker", |b| {
        let config = minic_sim::SimConfig {
            engine: minic_sim::Engine::Tree,
            ..minic_sim::SimConfig::default()
        };
        b.iter(|| {
            let mut sink = CountingSink::new();
            minic_sim::run_with_sink(black_box(&prog), &config, &w.inputs, &mut sink).unwrap();
            black_box(sink.total())
        });
    });

    group.bench_function("vm_compile_and_run", |b| {
        let config = minic_sim::SimConfig::default();
        b.iter(|| {
            let mut sink = CountingSink::new();
            minic_sim::run_with_sink(black_box(&prog), &config, &w.inputs, &mut sink).unwrap();
            black_box(sink.total())
        });
    });

    group.bench_function("vm_precompiled", |b| {
        let compiled = minic_sim::compile(&prog);
        let config = minic_sim::SimConfig::default();
        b.iter(|| {
            let vm = minic_sim::Vm::new(
                black_box(&compiled),
                config.clone(),
                w.inputs.clone(),
                CountingSink::new(),
            );
            let (outcome, _) = vm.run().unwrap();
            black_box(outcome.accesses)
        });
    });
    group.finish();
}

fn bench_lowering(c: &mut Criterion) {
    // Compilation itself: the one-time cost per program.
    let w = foray_workloads::by_name("jpegc", Params { scale: 1 }).expect("jpegc exists");
    let prog = w.frontend().expect("compiles");
    c.bench_function("sim_exec_lowering/jpegc", |b| {
        b.iter(|| black_box(minic_sim::compile(black_box(&prog))).op_count());
    });
}

criterion_group!(benches, bench_engines, bench_lowering);
criterion_main!(benches);
