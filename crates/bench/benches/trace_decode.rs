//! Trace-layer throughput: the zero-copy decoder and the file-backed
//! analysis path.
//!
//! The acceptance bar for the streaming decoder is ≥2x over materializing
//! (`from_bytes` + iterate) on a 1M-record stream — the difference is one
//! `Vec<Record>` the size of the trace that the zero-copy path never
//! writes. The file group compares in-RAM analysis against the full
//! `foray-trace/v1` open-and-replay, which is the cost a `trace analyze`
//! run pays over `model`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use minic::CheckpointKind::{BodyBegin, BodyEnd, LoopBegin};
use minic_trace::binary::RecordReader;
use minic_trace::{binary, file, AccessKind, Record, TraceFile};
use std::hint::black_box;

/// Two-level affine nest touching 8 distinct references per body;
/// `outer * 64 * 8` accesses plus checkpoints.
fn synth_trace(outer: u32) -> Vec<Record> {
    let mut t = Vec::new();
    t.push(Record::checkpoint(0, LoopBegin));
    for j in 0..outer {
        t.push(Record::checkpoint(0, BodyBegin));
        t.push(Record::checkpoint(1, LoopBegin));
        for i in 0..64u32 {
            t.push(Record::checkpoint(1, BodyBegin));
            for r in 0..8u32 {
                let instr = 0x40_0000 + 8 * r;
                t.push(Record::access(
                    instr,
                    0x1000_0000 + (r << 20) + 4 * i + 256 * j,
                    AccessKind::Read,
                ));
            }
            t.push(Record::checkpoint(1, BodyEnd));
        }
        t.push(Record::checkpoint(0, BodyEnd));
    }
    t
}

/// ~1M-record trace for the decode benchmarks.
fn million_records() -> Vec<Record> {
    // outer=1500 → 1500 * (64 * 9 + 3) + 1 ≈ 868k records; outer=1730 ≈ 1M.
    synth_trace(1730)
}

fn bench_decode(c: &mut Criterion) {
    let records = million_records();
    let bytes = binary::to_bytes(&records);
    let mut group = c.benchmark_group("trace_decode_1m");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records.len() as u64));

    // Zero-copy: decode in place, no intermediate Vec<Record>.
    group.bench_function("record_reader", |b| {
        b.iter(|| {
            let mut accesses = 0u64;
            for rec in RecordReader::new(black_box(&bytes)) {
                if matches!(rec.unwrap(), Record::Access(_)) {
                    accesses += 1;
                }
            }
            black_box(accesses)
        });
    });

    // Materialize the whole Vec<Record>, then iterate it.
    group.bench_function("from_bytes_then_iterate", |b| {
        b.iter(|| {
            let decoded = binary::from_bytes(black_box(&bytes)).unwrap();
            let accesses = decoded.iter().filter(|r| matches!(r, Record::Access(_))).count() as u64;
            black_box(accesses)
        });
    });

    // The pre-refactor shape: generic io::Read decoding, one record at a
    // time through read() calls.
    group.bench_function("io_binary_reader", |b| {
        b.iter(|| {
            let mut accesses = 0u64;
            for rec in binary::BinaryReader::new(black_box(bytes.as_slice())) {
                if matches!(rec.unwrap(), Record::Access(_)) {
                    accesses += 1;
                }
            }
            black_box(accesses)
        });
    });
    group.finish();
}

fn bench_file_vs_in_ram(c: &mut Criterion) {
    let records = synth_trace(256);
    let path = std::env::temp_dir().join("foray_bench_trace_decode.ftrace");
    file::write_file(&path, &records).unwrap();
    let mut group = c.benchmark_group("analyze_file_vs_in_ram");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records.len() as u64));

    group.bench_function("in_ram_slice", |b| {
        b.iter(|| black_box(foray::analyze(black_box(&records)).accesses()));
    });

    // Open + replay per iteration: the whole cost of the file pipeline.
    group.bench_function("file_open_and_analyze", |b| {
        b.iter(|| {
            let file = TraceFile::open(&path).unwrap();
            black_box(foray::analyze_source(&file).unwrap().accesses())
        });
    });

    // Replay-only: the file is already open (amortized multi-analysis).
    let file = TraceFile::open(&path).unwrap();
    group.bench_function("file_replay_only", |b| {
        b.iter(|| black_box(foray::analyze_source(black_box(&file)).unwrap().accesses()));
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_decode, bench_file_vs_in_ram);
criterion_main!(benches);
