//! Analyzer throughput and the paper's linearity claim.
//!
//! Section 4: "The computational complexity of our approach ... is linear
//! with respect to the number of profiled instructions." Processing time
//! per record should therefore be flat across trace lengths; Criterion's
//! `Throughput::Elements` view makes that directly visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minic::CheckpointKind::{BodyBegin, BodyEnd, LoopBegin};
use minic_trace::{AccessKind, Record};
use std::hint::black_box;

/// Two-level affine nest trace with `outer × 64` accesses.
fn synth_trace(outer: u32) -> Vec<Record> {
    let mut t = Vec::with_capacity((outer as usize) * 64 * 3 + 8);
    t.push(Record::checkpoint(0, LoopBegin));
    for j in 0..outer {
        t.push(Record::checkpoint(0, BodyBegin));
        t.push(Record::checkpoint(1, LoopBegin));
        for i in 0..64u32 {
            t.push(Record::checkpoint(1, BodyBegin));
            t.push(Record::access(0x40_0000, 0x1000_0000 + 4 * i + 256 * j, AccessKind::Read));
            t.push(Record::checkpoint(1, BodyEnd));
        }
        t.push(Record::checkpoint(0, BodyEnd));
    }
    t
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyzer_throughput");
    group.sample_size(20);
    for outer in [64u32, 256, 1024] {
        let trace = synth_trace(outer);
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(trace.len()), &trace, |b, t| {
            b.iter(|| {
                let analysis = foray::analyze(black_box(t));
                black_box(analysis.refs().len())
            });
        });
    }
    group.finish();
}

fn bench_footprint_toggle(c: &mut Criterion) {
    // Footprint tracking is the analyzer's main per-access overhead;
    // measure both modes.
    let trace = synth_trace(512);
    let mut group = c.benchmark_group("footprint_tracking");
    group.sample_size(20);
    group.throughput(Throughput::Elements(trace.len() as u64));
    for (name, track) in [("tracked", true), ("untracked", false)] {
        group.bench_function(name, |b| {
            let config = foray::AnalyzerConfig {
                track_footprint: track,
                ..foray::AnalyzerConfig::default()
            };
            b.iter(|| {
                let analysis = foray::analyze_with(black_box(&trace), config.clone());
                black_box(analysis.accesses())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_throughput, bench_footprint_toggle);
criterion_main!(benches);
