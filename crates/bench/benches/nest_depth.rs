//! Per-access analysis cost vs loop nest depth.
//!
//! The paper argues the per-record cost of Algorithms 2/3 is "constant on
//! average" because "the maximum loop nest level is limited in real
//! programs". Each added nest level grows the iterator vector Algorithm 3
//! touches, so cost should grow gently (linearly in depth), not blow up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minic::CheckpointKind::{BodyBegin, BodyEnd, LoopBegin};
use minic_trace::{AccessKind, Record};
use std::hint::black_box;

/// Perfect nest of `depth` loops with ~4096 innermost iterations total.
fn nest_trace(depth: u32) -> Vec<Record> {
    // Choose per-level trips so the product stays near 4096.
    let trip: u64 = match depth {
        1 => 4096,
        2 => 64,
        3 => 16,
        4 => 8,
        6 => 4,
        _ => 4,
    };
    let mut t = Vec::new();
    fn rec(level: u32, depth: u32, trip: u64, iters: &mut Vec<i64>, out: &mut Vec<Record>) {
        out.push(Record::checkpoint(level, LoopBegin));
        for it in 0..trip {
            out.push(Record::checkpoint(level, BodyBegin));
            iters[(depth - 1 - level) as usize] = it as i64;
            if level + 1 == depth {
                let mut addr = 0x1000_0000i64;
                for (k, v) in iters.iter().enumerate() {
                    addr += (4 << k) * v;
                }
                out.push(Record::access(0x40_0000, addr as u32, AccessKind::Read));
            } else {
                rec(level + 1, depth, trip, iters, out);
            }
            out.push(Record::checkpoint(level, BodyEnd));
        }
    }
    let mut iters = vec![0i64; depth as usize];
    rec(0, depth, trip, &mut iters, &mut t);
    t
}

fn bench_nest_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("nest_depth");
    group.sample_size(20);
    for depth in [1u32, 2, 3, 4, 6] {
        let trace = nest_trace(depth);
        let accesses = trace.iter().filter(|r| matches!(r, Record::Access(_))).count() as u64;
        group.throughput(Throughput::Elements(accesses));
        group.bench_with_input(BenchmarkId::from_parameter(depth), &trace, |b, t| {
            b.iter(|| {
                let analysis = foray::analyze(black_box(t));
                black_box(analysis.refs().len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nest_depth);
criterion_main!(benches);
