//! Reference-lookup ablation: dense dispatch vs hash table vs linear scan.
//!
//! Section 4: "the complexity of the Algorithms 2 and 3 is constant on
//! average **if we use hash tables** for the searches". This bench puts
//! many distinct references into one loop node and compares the default
//! dense instruction-indexed tables against the paper's hash-map lookup
//! and a per-node linear scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use foray::{analyze_with, AnalyzerConfig, LookupStrategy};
use minic::CheckpointKind::{BodyBegin, BodyEnd, LoopBegin};
use minic_trace::{AccessKind, Record};
use std::hint::black_box;

/// One loop whose body touches `refs` distinct references per iteration.
fn wide_body_trace(refs: u32, iterations: u32) -> Vec<Record> {
    let mut t = vec![Record::checkpoint(0, LoopBegin)];
    for i in 0..iterations {
        t.push(Record::checkpoint(0, BodyBegin));
        for r in 0..refs {
            t.push(Record::access(
                0x40_0000 + 4 * r,
                0x1000_0000 + 0x1_0000 * r + 4 * i,
                AccessKind::Read,
            ));
        }
        t.push(Record::checkpoint(0, BodyEnd));
    }
    t
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup_ablation");
    group.sample_size(15);
    for refs in [4u32, 32, 256] {
        let trace = wide_body_trace(refs, 2048 / refs.max(1));
        let accesses = trace.iter().filter(|r| matches!(r, Record::Access(_))).count() as u64;
        group.throughput(Throughput::Elements(accesses));
        for (name, strategy) in [
            ("dense", LookupStrategy::Dense),
            ("hash", LookupStrategy::Hash),
            ("linear", LookupStrategy::Linear),
        ] {
            group.bench_with_input(BenchmarkId::new(name, refs), &trace, |b, t| {
                let config = AnalyzerConfig {
                    lookup: strategy,
                    track_footprint: false,
                    ..AnalyzerConfig::default()
                };
                b.iter(|| {
                    let analysis = analyze_with(black_box(t), config.clone());
                    black_box(analysis.refs().len())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
