//! Ablation of Step 4's purge heuristic: how the model size responds to
//! the `Nexec`/`Nloc` thresholds (the paper fixes them at 20/10 "to
//! eliminate small arrays that can fit in the scratch pad completely ...
//! and references which do not exhibit a lot of reuse").
//!
//! ```text
//! cargo run -p foray-bench --bin filter_sweep
//! ```

use foray::{FilterConfig, ForayGen, ForayModel};
use foray_bench::render_table;
use foray_workloads::{all, Params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sweeps: [(u64, u64); 6] = [(1, 1), (5, 5), (20, 10), (50, 10), (20, 50), (100, 100)];
    let mut rows = Vec::new();
    for workload in all(Params::default()) {
        // One profiling run; re-filter the same analysis repeatedly.
        let out =
            workload.run_with(ForayGen::new().filter(FilterConfig { n_exec: 1, n_loc: 1 }))?;
        let mut cells = vec![workload.name.to_string()];
        for (n_exec, n_loc) in sweeps {
            let model = ForayModel::extract(&out.analysis, &FilterConfig { n_exec, n_loc });
            cells.push(model.ref_count().to_string());
        }
        rows.push(cells);
    }
    let headers: Vec<String> = std::iter::once("benchmark".to_owned())
        .chain(sweeps.iter().map(|(e, l)| format!("{e}/{l}")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("FORAY model size (references) under Nexec/Nloc sweeps\n");
    println!("{}", render_table(&headers_ref, &rows));
    println!("paper default: 20/10 (third column).");
    Ok(())
}
