//! Regenerates **Table III** of the paper: memory behaviour of the FORAY
//! models — for each benchmark, total references/accesses/footprint and
//! the split between the FORAY model, system-library code, and the rest.
//!
//! ```text
//! cargo run -p foray-bench --bin table3 [scale]
//! ```

use foray_bench::{human, pct, render_table, run_suite};
use foray_workloads::Params;

fn main() {
    let scale: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let runs = run_suite(Params { scale });

    let mut rows = Vec::new();
    let mut sums = (0.0f64, 0.0f64, 0.0f64, 0usize);
    for run in &runs {
        let t = run.table3();
        rows.push(vec![
            run.workload.name.to_string(),
            t.total_refs.to_string(),
            human(t.total_accesses),
            t.total_footprint.to_string(),
            pct(t.model_refs, t.total_refs),
            pct(t.model_accesses, t.total_accesses),
            pct(t.model_footprint, t.total_footprint),
            pct(t.lib_refs, t.total_refs),
            pct(t.lib_accesses, t.total_accesses),
            pct(t.lib_footprint, t.total_footprint),
            pct(t.other_footprint, t.total_footprint),
        ]);
        sums.0 += 100.0 * t.model_refs as f64 / t.total_refs.max(1) as f64;
        sums.1 += 100.0 * t.model_accesses as f64 / t.total_accesses.max(1) as f64;
        sums.2 += 100.0 * t.model_footprint as f64 / t.total_footprint.max(1) as f64;
        sums.3 += 1;
    }
    println!("Table III. Memory behaviour of the FORAY models (scale {scale})\n");
    println!(
        "{}",
        render_table(
            &[
                "benchmark",
                "refs",
                "accesses",
                "footprint",
                "model refs",
                "model acc",
                "model fp",
                "lib refs",
                "lib acc",
                "lib fp",
                "other fp"
            ],
            &rows
        )
    );
    let n = sums.3 as f64;
    println!(
        "averages: {:.1}% of references / {:.1}% of accesses / {:.1}% of footprint in the model",
        sums.0 / n,
        sums.1 / n,
        sums.2 / n
    );
    println!("          (paper averages: 2.2% of references, 29% of accesses, 44% of footprint)");
}
