//! Regenerates **Table II** of the paper: loops and references converted
//! into FORAY form by Algorithm 1, and the percentage of those not in
//! FORAY form in the original program (i.e., invisible to static
//! techniques). Also prints the paper's headline metric — the average
//! multiplier in analyzable references.
//!
//! ```text
//! cargo run -p foray-bench --bin table2 [scale]
//! ```

use foray_bench::{render_table, run_suite};
use foray_workloads::Params;

fn main() {
    let scale: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let runs = run_suite(Params { scale });

    let mut rows = Vec::new();
    let mut gains = Vec::new();
    for run in &runs {
        let t = run.table2();
        rows.push(vec![
            run.workload.name.to_string(),
            t.model_loops.to_string(),
            t.model_refs.to_string(),
            format!("{:.0}%", t.pct_loops_not_static()),
            format!("{:.0}%", t.pct_refs_not_static()),
        ]);
        // For benches with zero statically-visible references the ratio is
        // unbounded; following the paper's presentation (100% not in FORAY
        // form) we cap at the model size for the average.
        gains.push(t.gain().unwrap_or(t.model_refs as f64));
    }
    println!("Table II. Loops and references converted into FORAY form (scale {scale})\n");
    println!(
        "{}",
        render_table(
            &["benchmark", "FORAY loops", "FORAY refs", "loops not static", "refs not static"],
            &rows
        )
    );
    let mean = gains.iter().sum::<f64>() / gains.len() as f64;
    let geo = gains.iter().map(|g| g.ln()).sum::<f64>() / gains.len() as f64;
    println!(
        "headline: analyzable references grow {mean:.1}x on average ({:.1}x geometric);",
        geo.exp()
    );
    println!("          the paper reports \"two times increase ... on average\".");
}
