//! Regenerates **Table I** of the paper: benchmark complexity and loop
//! distribution (lines of code, executed loops, for/while/do split).
//!
//! ```text
//! cargo run -p foray-bench --bin table1 [scale]
//! ```

use foray::LoopBreakdown;
use foray_bench::{render_table, run_suite};
use foray_workloads::Params;

fn main() {
    let scale: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let runs = run_suite(Params { scale });

    let mut rows = Vec::new();
    let mut totals = (0usize, 0usize, 0usize, 0usize);
    for run in &runs {
        let t = run.table1();
        rows.push(vec![
            run.workload.name.to_string(),
            t.lines.to_string(),
            t.total_loops.to_string(),
            format!("{:.0}%", LoopBreakdown::pct(t.for_loops, t.total_loops)),
            format!("{:.0}%", LoopBreakdown::pct(t.while_loops, t.total_loops)),
            format!("{:.0}%", LoopBreakdown::pct(t.do_loops, t.total_loops)),
        ]);
        totals.0 += t.total_loops;
        totals.1 += t.for_loops;
        totals.2 += t.while_loops;
        totals.3 += t.do_loops;
    }
    println!("Table I. Benchmark complexity and loop distribution (scale {scale})\n");
    println!("{}", render_table(&["benchmark", "lines", "loops", "for", "while", "do"], &rows));
    let non_for = totals.2 + totals.3;
    println!(
        "non-for loops overall: {:.0}% (paper reports 23% on average)",
        LoopBreakdown::pct(non_for, totals.0)
    );
}
