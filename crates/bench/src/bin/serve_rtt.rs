//! `serve_rtt` — daemon round-trip-time report: cold compute vs cached.
//!
//! Boots a real `forayd` ([`foray_serve::serve`]) on a Unix socket in a
//! temp directory, then measures full client round trips
//! (connect → submit → wait → payload) two ways:
//!
//! * **cold** — a fresh cache key each round (the filter threshold is
//!   perturbed per iteration, which never changes profile/analyze cost),
//!   so every trip pays compile + profile + analyze;
//! * **cached** — the same key every round after priming, so every trip
//!   is answered from the content-addressed cache.
//!
//! The cached payload is asserted byte-identical to the cold payload
//! before anything is reported — the speedup must never come at the cost
//! of the service's byte-identity contract. Writes a machine-readable
//! `foray-serve-bench/v1` JSON report (CI uploads it as
//! `BENCH_serve.json`).
//!
//! ```text
//! cargo run --release -p foray-bench --bin serve_rtt -- \
//!     [--workload NAME] [--scale N] [--iters N] [--quick] [--json PATH] \
//!     [--check-speedup X]
//! ```
//!
//! `--check-speedup X` exits non-zero unless the cached round trip is at
//! least `X` times faster than the cold one — the CI gate on the cache
//! actually caching.

use foray_serve::{Client, JobInput, JobSpec, Response, ServeAddr, ServeConfig, Server};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Args {
    workload: String,
    scale: u32,
    iters: u32,
    json: Option<String>,
    check_speedup: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { workload: "fftc".to_owned(), scale: 1, iters: 12, json: None, check_speedup: None };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    let need = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
        it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workload" => args.workload = need(&mut it, "--workload")?,
            "--scale" => {
                args.scale =
                    need(&mut it, "--scale")?.parse().map_err(|_| "bad --scale".to_owned())?;
            }
            "--iters" => {
                args.iters =
                    need(&mut it, "--iters")?.parse().map_err(|_| "bad --iters".to_owned())?;
            }
            "--quick" => args.iters = 6,
            "--json" => args.json = Some(need(&mut it, "--json")?),
            "--check-speedup" => {
                args.check_speedup = Some(
                    need(&mut it, "--check-speedup")?
                        .parse()
                        .map_err(|_| "bad --check-speedup".to_owned())?,
                );
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.iters == 0 {
        return Err("--iters must be at least 1".to_owned());
    }
    Ok(args)
}

/// One full client round trip: connect, submit, wait, read the payload.
fn round_trip(addr: &ServeAddr, spec: &JobSpec) -> (Duration, bool, String) {
    let start = Instant::now();
    let mut client = Client::connect(addr).expect("daemon reachable");
    let (hit, payload) = client.run(spec).expect("transport").expect("job succeeds");
    (start.elapsed(), hit, payload)
}

fn json_report(args: &Args, cold: Duration, cached: Duration, speedup: f64) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"foray-serve-bench/v1\",\n");
    let _ = writeln!(s, "  \"workload\": \"{}\",", args.workload);
    let _ = writeln!(s, "  \"scale\": {},", args.scale);
    let _ = writeln!(s, "  \"iters\": {},", args.iters);
    let _ = writeln!(s, "  \"cold_rtt_seconds\": {:.6},", cold.as_secs_f64());
    let _ = writeln!(s, "  \"cached_rtt_seconds\": {:.6},", cached.as_secs_f64());
    let _ = writeln!(s, "  \"speedup\": {speedup:.2}");
    s.push_str("}\n");
    s
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: serve_rtt [--workload NAME] [--scale N] [--iters N] [--quick] \
                 [--json PATH] [--check-speedup X]"
            );
            std::process::exit(1);
        }
    };
    if foray_workloads::by_name(&args.workload, foray_workloads::Params { scale: args.scale })
        .is_none()
    {
        eprintln!("error: unknown workload `{}`", args.workload);
        std::process::exit(1);
    }

    let sock = std::env::temp_dir().join(format!("foray-serve-rtt-{}.sock", std::process::id()));
    let addr = ServeAddr::Unix(sock.clone());
    let server = Server::new(ServeConfig { workers: 1, ..ServeConfig::default() });
    let daemon = {
        let addr = addr.clone();
        std::thread::spawn(move || foray_serve::serve(server, &addr))
    };
    for _ in 0..300 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let base = JobSpec {
        input: JobInput::Workload(args.workload.clone()),
        scale: args.scale,
        ..JobSpec::default()
    };
    println!(
        "serve_rtt: {} at scale {} over {} (best of {} iters)",
        args.workload, args.scale, addr, args.iters
    );

    // Prime the cache with the base spec; this is also the reference
    // payload for the byte-identity assertion.
    let (_, primed_hit, cold_payload) = round_trip(&addr, &base);
    assert!(!primed_hit, "priming trip must be a miss");

    let (mut cold, mut cached) = (Duration::MAX, Duration::MAX);
    for i in 0..args.iters {
        // Fresh key per cold round: perturb the Step 4 filter threshold,
        // which changes the digest but not profile/analyze cost.
        let fresh = JobSpec { n_exec: base.n_exec + 1000 + u64::from(i), ..base.clone() };
        let (t, hit, _) = round_trip(&addr, &fresh);
        assert!(!hit, "cold round {i} unexpectedly hit the cache");
        cold = cold.min(t);

        let (t, hit, payload) = round_trip(&addr, &base);
        assert!(hit, "cached round {i} unexpectedly missed");
        assert_eq!(payload, cold_payload, "cached bytes must equal cold bytes");
        cached = cached.min(t);
    }

    let mut client = Client::connect(&addr).expect("daemon reachable");
    let Response::Stats(stats) = client.stats().expect("stats") else {
        panic!("unexpected stats reply");
    };
    assert_eq!(stats.cache_hits, u64::from(args.iters), "every cached round counted as a hit");
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread").expect("daemon exits cleanly");

    let speedup = cold.as_secs_f64() / cached.as_secs_f64();
    let table = foray_bench::render_table(
        &["path", "rtt", "speedup"],
        &[
            vec![
                "cold".to_owned(),
                format!("{:.2} ms", cold.as_secs_f64() * 1e3),
                "1.00x".to_owned(),
            ],
            vec![
                "cached".to_owned(),
                format!("{:.2} ms", cached.as_secs_f64() * 1e3),
                format!("{speedup:.2}x"),
            ],
        ],
    );
    println!("{table}");

    if let Some(path) = &args.json {
        let report = json_report(&args, cold, cached, speedup);
        if let Err(e) = std::fs::write(path, report) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path} (foray-serve-bench/v1)");
    }
    if let Some(min) = args.check_speedup {
        if speedup < min {
            eprintln!("FAIL: cached speedup {speedup:.2}x is below the {min:.2}x gate");
            std::process::exit(3);
        }
        println!("check passed: {speedup:.2}x >= {min:.2}x");
    }
}
